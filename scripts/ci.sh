#!/usr/bin/env bash
# Offline CI gate for the workspace. Everything here runs hermetically —
# no network, no external crates (rand/proptest/criterion are commented
# out of the manifests; see each Cargo.toml for how to restore them).
#
#   scripts/ci.sh            # the default, fully offline gate
#   scripts/ci.sh --benches  # additionally compile the criterion benches
#                            # (requires the `criterion` dev-dependency
#                            # restored and the registry reachable)
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo build --release
run cargo test --workspace -q
# Chaos-campaign invariants (zero panics, eventual delivery, bounded
# retries); --stdout keeps the checked-in full-sweep BENCH_chaos.json.
echo "==> cargo run -p pf-bench --release --bin bench_chaos -- --smoke --stdout"
cargo run -p pf-bench --release --bin bench_chaos -- --smoke --stdout > /dev/null
# Overload-campaign invariants (flat full-armor goodput past saturation,
# no-armor livelock cliff, drop-at-NIC vs after-demux accounting); the
# smoke artifact goes to a temp path so the checked-in full-sweep
# BENCH_overload.json stays intact, and must parse as JSON.
echo "==> cargo run -p pf-bench --release --bin bench_overload -- --smoke --out <tmp>"
overload_json="$(mktemp)"
cargo run -p pf-bench --release --bin bench_overload -- --smoke --out "$overload_json" > /dev/null
python3 -m json.tool "$overload_json" > /dev/null
rm -f "$overload_json"
# Multi-core campaign invariants (frame conservation, RSS pinning and
# steering, 4-core >= 3x one-core goodput, batching beats batch=1 cost);
# same temp-path treatment so the checked-in BENCH_mc.json stays intact.
echo "==> cargo run -p pf-bench --release --bin bench_mc -- --smoke --out <tmp>"
mc_json="$(mktemp)"
cargo run -p pf-bench --release --bin bench_mc -- --smoke --out "$mc_json" > /dev/null
python3 -m json.tool "$mc_json" > /dev/null
rm -f "$mc_json"
# Demux-scaling invariants: the smoke run carries sweep-internal asserts
# (geom beats sharded-VN on the range-heavy ladder, stays within 2x on
# pure-exact populations, sublinear probe growth up the ladder, churn
# compactions amortized); same temp-path treatment, and the artifact —
# rows + range_rows + churn_rows — must parse as JSON.
echo "==> cargo run -p pf-bench --release --bin bench_demux -- --smoke --out <tmp>"
demux_json="$(mktemp)"
cargo run -p pf-bench --release --bin bench_demux -- --smoke --out "$demux_json" > /dev/null
python3 -m json.tool "$demux_json" > /dev/null
rm -f "$demux_json"
# Adversarial-traffic campaign invariants: every family's undefended row
# must collapse and its hardened row must hold goodput/coverage — the
# collapse and recovery claims are sweep-internal asserts, so the run
# itself is the proof. Same temp-path treatment; artifact must parse.
echo "==> cargo run -p pf-bench --release --bin bench_adversary -- --smoke --out <tmp>"
adversary_json="$(mktemp)"
cargo run -p pf-bench --release --bin bench_adversary -- --smoke --out "$adversary_json" > /dev/null
python3 -m json.tool "$adversary_json" > /dev/null
rm -f "$adversary_json"
# Internet-scale topology campaign invariants: exact routed delivery per
# host, bit-identical histories across queue backends, calendar >= heap
# throughput at dense pending populations — all sweep-internal asserts.
# Same temp-path treatment; artifact must parse.
echo "==> cargo run -p pf-bench --release --bin bench_net -- --smoke --out <tmp>"
net_json="$(mktemp)"
cargo run -p pf-bench --release --bin bench_net -- --smoke --out "$net_json" > /dev/null
python3 -m json.tool "$net_json" > /dev/null
rm -f "$net_json"
# Fabric-chaos campaign invariants: exact undefended blackhole
# accounting, hardened >=99% surviving-path recovery inside a
# diameter-aware convergence bound, zero TTL loops, bounded route
# churn, backend-identical histories under faults — all sweep-internal
# asserts. Same temp-path treatment; artifact must parse.
echo "==> cargo run -p pf-bench --release --bin bench_fabric -- --smoke --out <tmp>"
fabric_json="$(mktemp)"
cargo run -p pf-bench --release --bin bench_fabric -- --smoke --out "$fabric_json" > /dev/null
python3 -m json.tool "$fabric_json" > /dev/null
rm -f "$fabric_json"
# Structured fuzzing (>= 10k seeded iterations per target: word decoder,
# validator, every execution engine, geom churn; frame codec and fault
# schedules; the admission gate under config churn) — hermetic but too
# slow for the default `cargo test`, so it rides its own feature.
run cargo test -p pf-ir --release --features fuzz-tests -q
run cargo test -p pf-net --release --features fuzz-tests -q
run cargo test -p pf-kernel --release --features fuzz-tests -q

if [[ "${1:-}" == "--benches" ]]; then
    run cargo bench --workspace --features criterion-benches --no-run
fi

echo "ci: all checks passed"
