//! Acceptance tests for the overload armor: receive-livelock elimination
//! (interrupt → polling switchover with a bounded per-tick demux budget)
//! and priority-aware admission shedding ahead of the filter ladder.
//!
//! These pin the subsystem's two load-bearing guarantees:
//!
//! 1. under a saturating unwanted-traffic flood, a user process keeps a
//!    guaranteed CPU share instead of starving behind per-frame interrupt
//!    work (Mogul/Ramakrishnan-style livelock);
//! 2. with the admission gate armed, protected high-priority ports keep
//!    their throughput while best-effort traffic is shed at the NIC, with
//!    drop-at-NIC accounting kept separate from drop-after-demux.

use pf_filter::program::{Assembler, FilterProgram};
use pf_filter::samples;
use pf_filter::word::BinaryOp;
use pf_kernel::app::App;
use pf_kernel::types::{Fd, PortConfig, PortStats, ReadMode, RecvPacket};
use pf_kernel::world::{OverloadConfig, ProcCtx, World};
use pf_kernel::{AdmissionConfig, AdmissionQuota};
use pf_net::medium::Medium;
use pf_net::segment::FaultModel;
use pf_sim::cost::CostModel;
use pf_sim::time::{SimDuration, SimTime};
use pf_sim::SimClock;

fn one_host_world() -> (World, pf_kernel::types::HostId) {
    let mut w = World::new(42);
    let seg = w.add_segment(Medium::experimental_3mb(), FaultModel::default());
    let b = w.add_host("bob", seg, 0x0B, CostModel::microvax_ii());
    (w, b)
}

/// A Pup frame addressed (at the link layer) to host 0x0B, dst socket
/// `sock`.
fn pup_to_bob(sock: u16) -> Vec<u8> {
    let mut f = samples::pup_packet_3mb(2, 0, sock, 1);
    f[0] = 0x0B; // EtherDst
    f[1] = 0x0A; // EtherSrc
    f
}

/// A minimal one-test filter whose leading comparison doubles as its
/// admission signature: `packet[DstSocketLo] == sock`.
fn socket_eq_filter(priority: u8, sock: u16) -> FilterProgram {
    Assembler::new(priority)
        .pushword(samples::WORD_DSTSOCKET_LO)
        .pushlit_op(BinaryOp::Eq, sock)
        .finish()
}

/// A CPU-bound user process: each 1 ms work chunk is charged when the
/// previous one completes, so `chunks` counts how much CPU the process
/// actually obtained — the livelock observable.
struct UserLoop {
    chunks: u64,
}

const CHUNK: SimDuration = SimDuration::from_millis(1);

impl UserLoop {
    fn schedule(&mut self, k: &mut ProcCtx<'_>) {
        let done = k.compute("user:loop", CHUNK);
        let delay = done.since(k.now());
        k.set_timer(delay, 1);
    }
}

impl App for UserLoop {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        self.schedule(k);
    }
    fn on_timer(&mut self, _token: u64, k: &mut ProcCtx<'_>) {
        self.chunks += 1;
        self.schedule(k);
    }
}

/// Floods `host` with one unwanted frame every `spacing_us` microseconds
/// over [start_ms, end_ms); returns the number injected.
fn flood(
    w: &mut World,
    host: pf_kernel::types::HostId,
    start_ms: u64,
    end_ms: u64,
    spacing_us: u64,
) -> u64 {
    let mut n = 0;
    let mut t_us = start_ms * 1_000;
    while t_us < end_ms * 1_000 {
        w.inject_frame(host, pup_to_bob(99), SimTime(t_us * 1_000));
        t_us += spacing_us;
        n += 1;
    }
    n
}

/// Runs a 500 ms wire-rate flood against a host running a CPU-bound user
/// process and reports (chunks completed, world) — the measured user CPU
/// share under saturation.
fn saturated_run(armor: Option<OverloadConfig>) -> (u64, World, pf_kernel::types::HostId) {
    let (mut w, b) = one_host_world();
    if let Some(cfg) = armor {
        w.set_overload_armor(b, Some(cfg));
    }
    let p = w.spawn(b, Box::new(UserLoop { chunks: 0 }));
    // 50 µs spacing against a ~300 µs per-frame interrupt cost: a 6×
    // overload from unwanted traffic alone.
    flood(&mut w, b, 1, 500, 50);
    w.run_until(SimTime(500_000_000));
    let chunks = w.app_ref::<UserLoop>(b, p).unwrap().chunks;
    (chunks, w, b)
}

/// Acceptance (a): the polling switchover guarantees the user process a
/// CPU-share floor under a saturating flood, where the pure interrupt
/// model starves it.
#[test]
fn polling_mode_preserves_user_cpu_share_under_flood() {
    let (starved, wu, bu) = saturated_run(None);
    let (kept, wa, ba) = saturated_run(Some(OverloadConfig::default()));

    // Without armor every frame costs a ~300 µs interrupt charged at
    // arrival; the user loop's chunks queue behind an ever-refilled NIC
    // ring and starve.
    assert!(
        starved < 150,
        "interrupt model should livelock: {starved} chunks"
    );
    assert_eq!(wu.counters(bu).poll_batches, 0);
    assert_eq!(wu.counters(bu).rx_mode_switches, 0);

    // With armor the ring crossing the high-water mark switches the
    // device to polling: arrivals park for free and demux is bounded to
    // `poll_batch` frames per tick, so the user process keeps at least
    // 70% of the CPU (350 of the ~499 achievable chunks).
    assert!(kept >= 350, "user share under armor: {kept} chunks");
    assert!(
        kept >= 3 * starved.max(1),
        "armor {kept} vs livelock {starved}"
    );
    let c = wa.counters(ba);
    assert!(c.rx_mode_switches >= 1, "{c}");
    assert!(c.poll_batches > 0, "{c}");
    assert!(c.drops_interface > 0, "saturated backlog sheds at the ring");
    assert!(wa.rx_polling(ba), "still saturated at the deadline");

    // The profiler tells the same story: user work dominates the armored
    // host's 500 ms.
    let user = wa.profiler(ba).time_with_prefix("user:");
    assert!(
        user.as_nanos() >= 350_000_000,
        "user CPU time under armor: {user}"
    );
}

/// Disarming the armor drains the parked backlog through the normal
/// demux path instead of stranding it.
#[test]
fn disarming_drains_the_parked_backlog() {
    let (mut w, b) = one_host_world();
    w.set_overload_armor(
        b,
        Some(OverloadConfig {
            hi_watermark: 2,
            lo_watermark: 0,
            poll_batch: 1,
            poll_interval: SimDuration::from_millis(50),
        }),
    );
    for i in 0..6u64 {
        w.inject_frame(b, pup_to_bob(99), SimTime(i * 20_000));
    }
    w.run_until(SimTime(1_000_000));
    assert!(w.rx_polling(b), "flood pushed the device into polling");
    w.set_overload_armor(b, None);
    assert!(!w.rx_polling(b));
    w.run();
    let c = w.counters(b);
    assert_eq!(
        c.drops_no_match + c.drops_interface,
        6,
        "every frame was either demuxed (no port: no-match) or shed: {c}"
    );
}

/// A receiver on a socket-equality filter that keeps draining its port in
/// batch mode and snapshots its port stats late in the run.
struct QuotaReceiver {
    filter: FilterProgram,
    quota: Option<AdmissionQuota>,
    fd: Option<Fd>,
    got: Vec<RecvPacket>,
    stats: Option<PortStats>,
}

impl QuotaReceiver {
    fn new(filter: FilterProgram, quota: Option<AdmissionQuota>) -> Self {
        QuotaReceiver {
            filter,
            quota,
            fd: None,
            got: Vec::new(),
            stats: None,
        }
    }
}

impl App for QuotaReceiver {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        let fd = k.pf_open();
        assert!(k.pf_set_filter(fd, self.filter.clone()));
        k.pf_configure(
            fd,
            PortConfig {
                read_mode: ReadMode::Batch,
                ..Default::default()
            },
        );
        if self.quota.is_some() {
            k.pf_set_quota(fd, self.quota);
        }
        self.fd = Some(fd);
        k.pf_read(fd);
        k.set_timer(SimDuration::from_millis(600), 1);
    }
    fn on_packets(&mut self, fd: Fd, packets: Vec<RecvPacket>, k: &mut ProcCtx<'_>) {
        self.got.extend(packets);
        k.pf_read(fd);
    }
    fn on_timer(&mut self, _token: u64, k: &mut ProcCtx<'_>) {
        self.stats = k.pf_port_stats(self.fd.unwrap());
    }
}

/// Acceptance (b): with the admission gate armed, a protected
/// high-priority port keeps 100% of its traffic while a quota-limited
/// best-effort port is shed at the NIC — and the two drop locations are
/// accounted separately.
#[test]
fn admission_gate_protects_high_priority_and_sheds_best_effort() {
    let (mut w, b) = one_host_world();
    w.set_admission_control(b, Some(AdmissionConfig::default()));

    // Priority 200 ≥ the default protected threshold (192): unconditional
    // admission. Priority 10 with a zero-refill quota: exactly `burst`
    // frames admitted, the rest shed before the filter ladder runs.
    let hi = w.spawn(
        b,
        Box::new(QuotaReceiver::new(socket_eq_filter(200, 35), None)),
    );
    let best = w.spawn(
        b,
        Box::new(QuotaReceiver::new(
            socket_eq_filter(10, 99),
            Some(AdmissionQuota {
                rate_pps: 0,
                burst: 2,
            }),
        )),
    );

    // 100 frames to each port, interleaved at a sustainable arrival rate
    // (this test isolates shedding, not livelock).
    for i in 0..100u64 {
        w.inject_frame(b, pup_to_bob(35), SimTime((1_000 + i * 3_000) * 1_000));
        w.inject_frame(b, pup_to_bob(99), SimTime((2_500 + i * 3_000) * 1_000));
    }
    w.run();

    let hi_app = w.app_ref::<QuotaReceiver>(b, hi).unwrap();
    let best_app = w.app_ref::<QuotaReceiver>(b, best).unwrap();
    assert_eq!(hi_app.got.len(), 100, "protected port kept its throughput");
    assert_eq!(best_app.got.len(), 2, "best effort got its burst, no more");

    let c = w.counters(b);
    assert_eq!(c.drops_admission, 98, "{c}");
    assert_eq!(c.drops_queue_full, 0, "shed at the NIC, not after demux");
    assert_eq!(c.drops_no_match, 0, "{c}");
    assert_eq!(c.packets_delivered, 102, "{c}");

    // Per-port accounting reconciles with the injected totals.
    let hs = hi_app.stats.expect("stats snapshot");
    assert_eq!(hs.admission_drops, 0);
    assert_eq!(hs.accepts, 100);
    let bs = best_app.stats.expect("stats snapshot");
    assert_eq!(bs.admission_drops, 98);
    assert_eq!(bs.accepts, 2);
    assert_eq!(
        bs.accepts + bs.admission_drops,
        100,
        "admitted + shed = offered"
    );
}

/// The admission probe is charged even for shed frames, but it is far
/// cheaper than running the filter ladder: shedding 98% of a port's load
/// must cut the host's demux CPU time, not grow it.
#[test]
fn shedding_costs_less_than_filtering() {
    let run = |gate: bool| {
        let (mut w, b) = one_host_world();
        if gate {
            w.set_admission_control(b, Some(AdmissionConfig::default()));
        }
        w.spawn(
            b,
            Box::new(QuotaReceiver::new(
                socket_eq_filter(10, 99),
                gate.then_some(AdmissionQuota {
                    rate_pps: 0,
                    burst: 2,
                }),
            )),
        );
        for i in 0..100u64 {
            w.inject_frame(b, pup_to_bob(99), SimTime((1_000 + i * 3_000) * 1_000));
        }
        w.run();
        w.profiler(b).time_with_prefix("pf:").as_nanos()
    };
    let ungated = run(false);
    let gated = run(true);
    assert!(
        gated < ungated,
        "gated {gated} ns vs ungated {ungated} ns of pf: CPU time"
    );
}
