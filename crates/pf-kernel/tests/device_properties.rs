// Property suites need the external `proptest` crate; the default build is
// hermetic (offline), so this whole file is gated behind a feature. See the
// crate manifest for how to restore the dev-dependency.
#![cfg(feature = "proptest-tests")]

//! Property tests for the packet-filter device: the figure 4-1 demux loop
//! is equivalent to the §7 decision-table engine on arbitrary filter
//! populations, and queue bounds hold under arbitrary churn.

use pf_filter::dtree::FilterSet;
use pf_filter::program::FilterProgram;
use pf_filter::samples;
use pf_kernel::device::{DemuxEngine, PfDevice};
use pf_kernel::types::{Fd, ProcId, RecvPacket};
use proptest::prelude::*;

/// A population of socket/type/garbage filters.
fn filters() -> impl Strategy<Value = Vec<FilterProgram>> {
    prop::collection::vec(
        prop_oneof![
            (0u16..4, 20u16..40, 0u8..30)
                .prop_map(|(hi, lo, p)| samples::pup_socket_filter(p, hi, lo)),
            (0u16..6, 0u8..30).prop_map(|(et, p)| samples::ethertype_filter(p, et)),
            (0u8..30).prop_map(samples::accept_all),
            (0u8..30).prop_map(samples::reject_all),
            prop::collection::vec(any::<u16>(), 0..12)
                .prop_map(|w| FilterProgram::from_words(7, w)),
        ],
        0..10,
    )
}

proptest! {
    /// The device's first-match demultiplexing agrees with the decision
    /// table (modulo adaptive reordering, which is only allowed to permute
    /// *equal-priority* filters; we disable it to pin insertion order).
    #[test]
    fn demux_agrees_with_decision_table(
        fs in filters(),
        pkt_et in 0u16..6,
        pkt_sock in 18u16..42,
        pkt_type in 0u8..120,
    ) {
        let mut dev = PfDevice::new();
        dev.set_adaptive_reorder(false);
        let mut set = FilterSet::new();
        for (i, f) in fs.iter().enumerate() {
            let idx = dev.open((ProcId(i), Fd(0)));
            dev.set_filter(idx, f.clone());
            set.insert(i as u32, f.clone());
        }
        let pkt = samples::pup_packet_3mb(pkt_et, 0, pkt_sock, pkt_type);
        let outcome = dev.demux(&pkt);
        let expected = set.first_match(pf_filter::packet::PacketView::new(&pkt));
        prop_assert_eq!(
            outcome.accepted.first().map(|&i| i as u32),
            expected,
            "device vs decision table"
        );
        // Without deliver-to-lower, at most one port accepts.
        prop_assert!(outcome.accepted.len() <= 1);
    }

    /// Queue bounds hold under arbitrary enqueue sequences, and the drop
    /// count accounts exactly for the overflow.
    #[test]
    fn queue_bound_and_drop_accounting(
        max_queue in 1usize..20,
        arrivals in 0usize..60,
    ) {
        let mut dev = PfDevice::new();
        let idx = dev.open((ProcId(0), Fd(0)));
        dev.set_filter(idx, samples::accept_all(10));
        dev.port_mut(idx).config.max_queue = max_queue;
        for i in 0..arrivals {
            let pkt = RecvPacket {
                bytes: vec![i as u8],
                stamp: None,
                dropped_before: dev.port(idx).drops,
            };
            let _ = dev.port_mut(idx).enqueue(pkt);
        }
        let q = dev.port(idx).queue.len();
        let d = dev.port(idx).drops as usize;
        prop_assert!(q <= max_queue);
        prop_assert_eq!(q + d, arrivals);
        // The dropped_before marks are monotone.
        let marks: Vec<u64> = dev.port(idx).queue.iter().map(|p| p.dropped_before).collect();
        prop_assert!(marks.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Adaptive reordering never changes *what* is accepted when all
    /// filters accept disjoint packet sets (the §3.2 contract: same
    /// priority requires disjoint filters).
    #[test]
    fn adaptive_reordering_preserves_disjoint_semantics(
        socks in prop::collection::hash_set(20u16..60, 1..8),
        traffic in prop::collection::vec(20u16..60, 0..400),
    ) {
        let socks: Vec<u16> = socks.into_iter().collect();
        let build = |adaptive: bool| {
            let mut dev = PfDevice::new();
            dev.set_adaptive_reorder(adaptive);
            for (i, &s) in socks.iter().enumerate() {
                let idx = dev.open((ProcId(i), Fd(0)));
                dev.set_filter(idx, samples::pup_socket_filter(10, 0, s));
            }
            dev
        };
        let mut with = build(true);
        let mut without = build(false);
        for &s in &traffic {
            let pkt = samples::pup_packet_3mb(2, 0, s, 1);
            let a = with.demux(&pkt).accepted;
            let b = without.demux(&pkt).accepted;
            prop_assert_eq!(a, b, "same destination regardless of ordering");
        }
    }
}

proptest! {
    /// The §7 decision-table engine and the figure 4-1 sequential loop
    /// deliver to exactly the same ports, including under the §3.2
    /// deliver-to-lower option, on arbitrary filter populations.
    #[test]
    fn table_engine_equivalent_to_sequential(
        fs in filters(),
        copy_all in prop::collection::vec(any::<bool>(), 10),
        traffic in prop::collection::vec((0u16..6, 18u16..42, 0u8..120), 0..60),
    ) {
        let build = |engine: DemuxEngine| {
            let mut dev = PfDevice::new();
            dev.set_adaptive_reorder(false);
            dev.set_engine(engine);
            for (i, f) in fs.iter().enumerate() {
                let idx = dev.open((ProcId(i), Fd(0)));
                dev.set_filter(idx, f.clone());
                dev.port_mut(idx).config.deliver_to_lower = copy_all[i % copy_all.len()];
            }
            dev
        };
        let mut seq = build(DemuxEngine::Sequential);
        let mut tab = build(DemuxEngine::DecisionTable);
        let mut ir = build(DemuxEngine::Ir);
        let mut sharded = build(DemuxEngine::Sharded);
        let mut geom = build(DemuxEngine::Geom);
        let mut jit = build(DemuxEngine::Jit);
        for (et, sock, ptype) in traffic {
            let pkt = samples::pup_packet_3mb(et, 0, sock, ptype);
            let expect = seq.demux(&pkt).accepted;
            prop_assert_eq!(
                tab.demux(&pkt).accepted,
                expect.clone(),
                "table: et={} sock={} type={}", et, sock, ptype
            );
            prop_assert_eq!(
                ir.demux(&pkt).accepted,
                expect.clone(),
                "ir: et={} sock={} type={}", et, sock, ptype
            );
            prop_assert_eq!(
                sharded.demux(&pkt).accepted,
                expect.clone(),
                "sharded: et={} sock={} type={}", et, sock, ptype
            );
            prop_assert_eq!(
                geom.demux(&pkt).accepted,
                expect.clone(),
                "geom: et={} sock={} type={}", et, sock, ptype
            );
            prop_assert_eq!(
                jit.demux(&pkt).accepted,
                expect,
                "jit: et={} sock={} type={}", et, sock, ptype
            );
        }
    }
}
