// Structured fuzzing for the pre-demux admission gate: arbitrary
// filter sets, gate configurations, reconfiguration churn, and packet
// soup must never panic, and the gate's verdicts must stay conservation-
// accurate (every shed charged to exactly one port counter) and
// bit-reproducible from the seed. Each target runs >= 10,000 seeded
// iterations, so the suite is gated behind a feature and runs in its
// own CI lane:
//
//   cargo test -p pf-kernel --release --features fuzz-tests
//
// All randomness comes from the in-tree `pf_sim::rng::SplitMix64`, so a
// failure reproduces from the constant seed with no external crates.
#![cfg(feature = "fuzz-tests")]

use pf_filter::samples;
use pf_kernel::device::{AdmissionConfig, AdmissionQuota, AdmissionVerdict, PfDevice};
use pf_kernel::types::{Fd, ProcId};
use pf_sim::rng::SplitMix64;
use pf_sim::time::SimTime;

const ITERS: u32 = 10_000;

/// A random filter drawn from every admission-signature class the gate
/// distinguishes: leading-equality, range, ethertype, signatureless
/// accept-all, and reject-all.
fn fuzz_filter(rng: &mut SplitMix64) -> pf_filter::program::FilterProgram {
    let prio = rng.next_u64() as u8;
    match rng.below(5) {
        0 => samples::pup_socket_filter(prio, rng.next_u64() as u16, rng.next_u64() as u16),
        1 => {
            let a = rng.next_u64() as u16;
            let b = rng.next_u64() as u16;
            samples::socket_range_filter(prio, a.min(b), a.max(b))
        }
        2 => samples::ethertype_filter(prio, rng.next_u64() as u16),
        3 => samples::accept_all(prio),
        _ => samples::reject_all(prio),
    }
}

/// Packet soup biased toward PUP shapes (so gate signatures actually
/// cover a good fraction) with raw byte noise mixed in.
fn fuzz_packet(rng: &mut SplitMix64) -> Vec<u8> {
    if rng.chance(0.6) {
        samples::pup_packet_3mb(
            rng.next_u64() as u16,
            rng.next_u64() as u16,
            rng.next_u64() as u16,
            rng.next_u64() as u8,
        )
    } else {
        (0..rng.below(64)).map(|_| rng.next_u64() as u8).collect()
    }
}

fn fuzz_config(rng: &mut SplitMix64) -> AdmissionConfig {
    AdmissionConfig {
        protected_priority: rng.next_u64() as u8,
        default_quota: AdmissionQuota {
            rate_pps: 1 + rng.below(10_000),
            burst: 1 + rng.below(128),
        },
        mimicry_threshold: rng.chance(0.4).then(|| 1 + rng.below(16) as u32),
        refill_jitter_key: rng.chance(0.4).then(|| rng.next_u64()),
    }
}

/// One fuzzed episode: a device with a random port set and gate
/// config, a stream of packets through `admit`/`note_unmatched_admit`,
/// and occasional mid-stream reconfiguration. Returns a digest of every
/// verdict for the determinism cross-check.
fn gate_episode(seed: u64, iters: u32) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    let mut d = PfDevice::new();
    let mut ports = Vec::new();
    for i in 0..(2 + rng.below(6)) {
        let idx = d.open((ProcId(i as usize), Fd(0)));
        if rng.chance(0.85) {
            d.set_filter(idx, fuzz_filter(&mut rng));
        }
        ports.push(idx);
    }
    d.set_admission_control(Some(fuzz_config(&mut rng)));
    for &p in &ports {
        if rng.chance(0.2) {
            d.set_port_quota(
                p,
                Some(AdmissionQuota {
                    rate_pps: 1 + rng.below(100),
                    burst: 1 + rng.below(8),
                }),
            );
        }
    }

    let mut digest = Vec::new();
    let mut now = SimTime(0);
    let mut admitted = 0u64;
    let mut shed = 0u64;
    let mut mimic_shed = 0u64;
    for i in 0..iters {
        now = SimTime(now.0 + rng.below(2_000_000));
        let pkt = fuzz_packet(&mut rng);
        let drops_before: Vec<u64> = ports.iter().map(|&p| d.port(p).admission_drops).collect();
        match d.admit(&pkt, now) {
            AdmissionVerdict::Admit => {
                admitted += 1;
                digest.push(u64::MAX);
                // The demux feedback loop: some admitted frames match
                // no filter, which is the mimicry-pressure signal.
                if rng.chance(0.3) {
                    d.note_unmatched_admit(&pkt);
                }
            }
            AdmissionVerdict::Shed { port } => {
                shed += 1;
                digest.push(port as u64);
                let after: Vec<u64> = ports.iter().map(|&p| d.port(p).admission_drops).collect();
                for (j, &p) in ports.iter().enumerate() {
                    let expect = drops_before[j] + u64::from(p == port);
                    assert_eq!(
                        after[j], expect,
                        "a shed charges exactly its own port's counter"
                    );
                }
            }
            AdmissionVerdict::ShedMimic { port } => {
                mimic_shed += 1;
                digest.push(port as u64 | (1 << 32));
                assert!(
                    d.admission_control()
                        .expect("gate is on")
                        .mimicry_threshold
                        .is_some(),
                    "mimic sheds require the mimicry defense"
                );
            }
        }
        // Mid-stream churn: retune quotas, swap filters, toggle the
        // whole gate. The rebuilt gate must keep absorbing traffic.
        if i % 997 == 0 && rng.chance(0.5) {
            let p = ports[rng.below(ports.len() as u64) as usize];
            match rng.below(3) {
                0 => d.set_port_quota(p, None),
                1 => {
                    d.set_filter(p, fuzz_filter(&mut rng));
                }
                _ => d.set_admission_control(Some(fuzz_config(&mut rng))),
            }
        }
    }
    assert_eq!(
        admitted + shed + mimic_shed,
        u64::from(iters),
        "every offered frame gets exactly one verdict"
    );
    let counter_sheds: u64 = ports.iter().map(|&p| d.port(p).admission_drops).sum();
    assert!(
        counter_sheds >= shed,
        "port counters never lose quota sheds (reconfigs only add)"
    );
    digest
}

/// The gate is total and conservation-accurate over arbitrary filter
/// sets, configs, packets, clocks, and live reconfiguration.
#[test]
fn admission_gate_totality_and_conservation() {
    for round in 0..4u64 {
        gate_episode(0x6A7E_0000 + round, ITERS / 4);
    }
}

/// With the gate off, every frame is admitted and no admission drop is
/// ever charged.
#[test]
fn disabled_gate_admits_everything() {
    let mut rng = SplitMix64::new(0x6A7E_0FF0);
    let mut d = PfDevice::new();
    let a = d.open((ProcId(1), Fd(0)));
    d.set_filter(a, samples::pup_socket_filter(10, 0, 35));
    let mut now = SimTime(0);
    for _ in 0..ITERS {
        now = SimTime(now.0 + rng.below(1_000));
        let pkt = fuzz_packet(&mut rng);
        assert_eq!(d.admit(&pkt, now), AdmissionVerdict::Admit);
        assert!(!d.note_unmatched_admit(&pkt));
    }
    assert_eq!(d.port(a).admission_drops, 0);
}

/// The verdict stream is a pure function of the seed: two identically
/// seeded episodes (including jittered refills and mimicry
/// re-selection) produce identical verdicts.
#[test]
fn admission_gate_is_deterministic() {
    for round in 0..3u64 {
        let seed = 0x6A7E_DE7E + round;
        assert_eq!(
            gate_episode(seed, ITERS / 2),
            gate_episode(seed, ITERS / 2),
            "seed {seed:#x} must replay bit-identically"
        );
    }
}
