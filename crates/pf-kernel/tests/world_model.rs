//! Behavioral tests for the simulated host: packet delivery end-to-end,
//! blocking semantics, batching, priorities, signals, pipes, kernel
//! protocols, fault handling, and determinism.

use pf_filter::program::FilterProgram;
use pf_filter::samples;
use pf_kernel::app::App;
use pf_kernel::kproto::KernelProtocol;
use pf_kernel::types::{
    BlockPolicy, Fd, PipeId, PortConfig, ProcId, ReadError, ReadMode, RecvPacket, SockId,
};
use pf_kernel::world::{KernelCtx, ProcCtx, World};
use pf_net::frame;
use pf_net::medium::Medium;
use pf_net::segment::FaultModel;
use pf_sim::cost::CostModel;
use pf_sim::time::{SimDuration, SimTime};
use pf_sim::SimClock;

/// A process that opens a port, binds a filter, and keeps reading.
struct Receiver {
    filter: FilterProgram,
    config: PortConfig,
    fd: Option<Fd>,
    got: Vec<RecvPacket>,
    errors: Vec<ReadError>,
    signals: u64,
    rearm: bool,
}

impl Receiver {
    fn new(filter: FilterProgram) -> Self {
        Receiver {
            filter,
            config: PortConfig::default(),
            fd: None,
            got: Vec::new(),
            errors: Vec::new(),
            signals: 0,
            rearm: true,
        }
    }

    fn with_config(mut self, config: PortConfig) -> Self {
        self.config = config;
        self
    }

    /// Do not arm a read at start (used by the signal test).
    fn without_initial_read(mut self) -> Self {
        self.rearm = false;
        self
    }
}

impl App for Receiver {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        let fd = k.pf_open();
        k.pf_set_filter(fd, self.filter.clone());
        k.pf_configure(fd, self.config);
        self.fd = Some(fd);
        if self.rearm {
            k.pf_read(fd);
        }
    }

    fn on_packets(&mut self, fd: Fd, packets: Vec<RecvPacket>, k: &mut ProcCtx<'_>) {
        self.got.extend(packets);
        if self.rearm {
            k.pf_read(fd);
        }
    }

    fn on_read_error(&mut self, _fd: Fd, err: ReadError, _k: &mut ProcCtx<'_>) {
        self.errors.push(err);
    }

    fn on_signal(&mut self, fd: Fd, k: &mut ProcCtx<'_>) {
        self.signals += 1;
        k.pf_read(fd);
    }
}

/// A process that transmits a burst of Pup packets at start.
struct Blaster {
    packets: Vec<Vec<u8>>,
}

impl App for Blaster {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        let fd = k.pf_open();
        for p in &self.packets {
            k.pf_write(fd, p).expect("frame fits");
        }
    }
}

fn two_host_world() -> (World, pf_kernel::types::HostId, pf_kernel::types::HostId) {
    let mut w = World::new(42);
    let seg = w.add_segment(Medium::experimental_3mb(), FaultModel::default());
    let a = w.add_host("alice", seg, 0x0A, CostModel::microvax_ii());
    let b = w.add_host("bob", seg, 0x0B, CostModel::microvax_ii());
    (w, a, b)
}

/// A Pup frame addressed (at the link layer) to host 0x0B, dst socket
/// `sock`.
fn pup_to_bob(sock: u16) -> Vec<u8> {
    let mut f = samples::pup_packet_3mb(2, 0, sock, 1);
    f[0] = 0x0B; // EtherDst
    f[1] = 0x0A; // EtherSrc
    f
}

#[test]
fn end_to_end_delivery() {
    let (mut w, a, b) = two_host_world();
    let rx = w.spawn(
        b,
        Box::new(Receiver::new(samples::pup_socket_filter(10, 0, 35))),
    );
    w.spawn(
        a,
        Box::new(Blaster {
            packets: vec![pup_to_bob(35)],
        }),
    );
    let end = w.run();
    let app = w.app_ref::<Receiver>(b, rx).unwrap();
    assert_eq!(app.got.len(), 1);
    assert_eq!(app.got[0].bytes, pup_to_bob(35));
    assert!(end > SimTime::ZERO);
    // The receive took on the order of the paper's per-packet costs
    // (driver + filter + bookkeeping + wakeup + switch + copy ≈ 2 ms),
    // plus the wire time.
    assert!(end.as_millis_f64() < 20.0, "end = {end}");
    assert_eq!(w.counters(b).packets_delivered, 1);
    assert_eq!(w.counters(a).packets_sent, 1);
    assert_eq!(w.counters(b).drops_no_match, 0);
}

#[test]
fn unmatched_packets_are_dropped() {
    let (mut w, a, b) = two_host_world();
    let rx = w.spawn(
        b,
        Box::new(Receiver::new(samples::pup_socket_filter(10, 0, 35))),
    );
    w.spawn(
        a,
        Box::new(Blaster {
            packets: vec![pup_to_bob(99)],
        }),
    );
    w.run();
    assert!(w.app_ref::<Receiver>(b, rx).unwrap().got.is_empty());
    assert_eq!(w.counters(b).drops_no_match, 1);
    assert_eq!(w.counters(b).packets_delivered, 0);
}

#[test]
fn read_timeout_reports_error() {
    let (mut w, _a, b) = two_host_world();
    let cfg = PortConfig {
        block: BlockPolicy::Timeout(SimDuration::from_millis(50)),
        ..Default::default()
    };
    let rx = w.spawn(
        b,
        Box::new(Receiver::new(samples::accept_all(10)).with_config(cfg)),
    );
    let end = w.run_until(SimTime(60_000_000));
    let app = w.app_ref::<Receiver>(b, rx).unwrap();
    assert_eq!(app.errors, vec![ReadError::TimedOut]);
    assert!(end >= SimTime(50_000_000));
}

#[test]
fn nonblocking_read_would_block() {
    let (mut w, _a, b) = two_host_world();
    let cfg = PortConfig {
        block: BlockPolicy::NonBlocking,
        ..Default::default()
    };
    // rearm=false via errors: Receiver re-arms only from on_packets.
    let rx = w.spawn(
        b,
        Box::new(Receiver::new(samples::accept_all(10)).with_config(cfg)),
    );
    w.run();
    let app = w.app_ref::<Receiver>(b, rx).unwrap();
    assert_eq!(app.errors, vec![ReadError::WouldBlock]);
}

#[test]
fn batch_read_returns_all_queued() {
    let (mut w, a, b) = two_host_world();
    // Receiver reads only after a delay, so packets queue up; batch mode
    // then drains them in one read.
    struct LazyBatch {
        fd: Option<Fd>,
        batches: Vec<usize>,
    }
    impl App for LazyBatch {
        fn start(&mut self, k: &mut ProcCtx<'_>) {
            let fd = k.pf_open();
            k.pf_set_filter(fd, samples::accept_all(10));
            k.pf_configure(
                fd,
                PortConfig {
                    read_mode: ReadMode::Batch,
                    ..Default::default()
                },
            );
            self.fd = Some(fd);
            k.set_timer(SimDuration::from_millis(100), 1);
        }
        fn on_timer(&mut self, _token: u64, k: &mut ProcCtx<'_>) {
            k.pf_read(self.fd.unwrap());
        }
        fn on_packets(&mut self, _fd: Fd, packets: Vec<RecvPacket>, _k: &mut ProcCtx<'_>) {
            self.batches.push(packets.len());
        }
    }
    let rx = w.spawn(
        b,
        Box::new(LazyBatch {
            fd: None,
            batches: Vec::new(),
        }),
    );
    w.spawn(
        a,
        Box::new(Blaster {
            packets: (0..5).map(|_| pup_to_bob(35)).collect(),
        }),
    );
    w.run();
    let app = w.app_ref::<LazyBatch>(b, rx).unwrap();
    assert_eq!(app.batches, vec![5], "all five packets in one batch");
}

#[test]
fn priority_chooses_destination() {
    let (mut w, a, b) = two_host_world();
    let low = w.spawn(b, Box::new(Receiver::new(samples::accept_all(5))));
    let high = w.spawn(
        b,
        Box::new(Receiver::new(samples::pup_socket_filter(20, 0, 35))),
    );
    w.spawn(
        a,
        Box::new(Blaster {
            packets: vec![pup_to_bob(35), pup_to_bob(99)],
        }),
    );
    w.run();
    let high_app = w.app_ref::<Receiver>(b, high).unwrap();
    let low_app = w.app_ref::<Receiver>(b, low).unwrap();
    assert_eq!(
        high_app.got.len(),
        1,
        "socket 35 went to the high-priority port"
    );
    assert_eq!(
        low_app.got.len(),
        1,
        "socket 99 fell through to the catch-all"
    );
}

#[test]
fn deliver_to_lower_duplicates_to_monitor() {
    let (mut w, a, b) = two_host_world();
    let monitor_cfg = PortConfig {
        deliver_to_lower: true,
        ..Default::default()
    };
    let monitor = w.spawn(
        b,
        Box::new(Receiver::new(samples::accept_all(30)).with_config(monitor_cfg)),
    );
    let consumer = w.spawn(
        b,
        Box::new(Receiver::new(samples::pup_socket_filter(10, 0, 35))),
    );
    w.spawn(
        a,
        Box::new(Blaster {
            packets: vec![pup_to_bob(35)],
        }),
    );
    w.run();
    assert_eq!(w.app_ref::<Receiver>(b, monitor).unwrap().got.len(), 1);
    assert_eq!(w.app_ref::<Receiver>(b, consumer).unwrap().got.len(), 1);
    assert_eq!(w.counters(b).packets_delivered, 2, "two copies delivered");
}

#[test]
fn queue_overflow_drops_and_reports() {
    let (mut w, a, b) = two_host_world();
    // Tiny queue, no read armed until a timer fires late.
    struct SlowReader {
        fd: Option<Fd>,
        got: Vec<RecvPacket>,
    }
    impl App for SlowReader {
        fn start(&mut self, k: &mut ProcCtx<'_>) {
            let fd = k.pf_open();
            k.pf_set_filter(fd, samples::accept_all(10));
            k.pf_configure(
                fd,
                PortConfig {
                    max_queue: 2,
                    ..Default::default()
                },
            );
            self.fd = Some(fd);
            k.set_timer(SimDuration::from_millis(200), 1);
        }
        fn on_timer(&mut self, _t: u64, k: &mut ProcCtx<'_>) {
            k.pf_read(self.fd.unwrap());
        }
        fn on_packets(&mut self, _fd: Fd, packets: Vec<RecvPacket>, _k: &mut ProcCtx<'_>) {
            self.got.extend(packets);
        }
    }
    let rx = w.spawn(
        b,
        Box::new(SlowReader {
            fd: None,
            got: Vec::new(),
        }),
    );
    w.spawn(
        a,
        Box::new(Blaster {
            packets: (0..6).map(|_| pup_to_bob(35)).collect(),
        }),
    );
    w.run();
    assert_eq!(w.counters(b).drops_queue_full, 4, "queue of 2, six packets");
    let app = w.app_ref::<SlowReader>(b, rx).unwrap();
    assert_eq!(app.got.len(), 1, "single-packet read mode");
    assert_eq!(
        app.got[0].dropped_before, 0,
        "first queued packet predates drops"
    );
}

#[test]
fn signal_on_input_fires() {
    let (mut w, a, b) = two_host_world();
    let cfg = PortConfig {
        signal_on_input: true,
        ..Default::default()
    };
    let rx = w.spawn(
        b,
        Box::new(
            Receiver::new(samples::accept_all(10))
                .with_config(cfg)
                .without_initial_read(),
        ),
    );
    w.spawn(
        a,
        Box::new(Blaster {
            packets: vec![pup_to_bob(35)],
        }),
    );
    w.run();
    let app = w.app_ref::<Receiver>(b, rx).unwrap();
    assert_eq!(app.signals, 1);
    assert_eq!(app.got.len(), 1, "signal handler's read drained the packet");
    assert_eq!(w.counters(b).signals_delivered, 1);
}

#[test]
fn timestamping_marks_packets_and_costs() {
    let (mut w, a, b) = two_host_world();
    let cfg = PortConfig {
        timestamp: true,
        ..Default::default()
    };
    let rx = w.spawn(
        b,
        Box::new(Receiver::new(samples::accept_all(10)).with_config(cfg)),
    );
    w.spawn(
        a,
        Box::new(Blaster {
            packets: vec![pup_to_bob(35)],
        }),
    );
    w.run();
    let app = w.app_ref::<Receiver>(b, rx).unwrap();
    assert!(app.got[0].stamp.is_some());
    assert_eq!(w.counters(b).timestamps, 1);
    assert!(w.profiler(b).stats("kern:microtime").calls == 1);
}

#[test]
fn pipe_relay_demultiplexing() {
    // The §6.5 user-level demultiplexing shape: a demux process receives
    // from the packet filter and relays via a pipe.
    let (mut w, a, b) = two_host_world();

    struct FinalReceiver {
        data: Vec<Vec<u8>>,
    }
    impl App for FinalReceiver {
        fn start(&mut self, _k: &mut ProcCtx<'_>) {}
        fn on_pipe_data(&mut self, _p: PipeId, data: Vec<u8>, _k: &mut ProcCtx<'_>) {
            self.data.push(data);
        }
    }

    struct Demux {
        fd: Option<Fd>,
        pipe: Option<PipeId>,
        target: ProcId,
    }
    impl App for Demux {
        fn start(&mut self, k: &mut ProcCtx<'_>) {
            let fd = k.pf_open();
            k.pf_set_filter(fd, samples::accept_all(10));
            self.fd = Some(fd);
            self.pipe = Some(k.pipe_to(self.target));
            k.pf_read(fd);
        }
        fn on_packets(&mut self, fd: Fd, packets: Vec<RecvPacket>, k: &mut ProcCtx<'_>) {
            for p in packets {
                k.pipe_write(self.pipe.unwrap(), p.bytes);
            }
            k.pf_read(fd);
        }
    }

    let fin = w.spawn(b, Box::new(FinalReceiver { data: Vec::new() }));
    w.spawn(
        b,
        Box::new(Demux {
            fd: None,
            pipe: None,
            target: fin,
        }),
    );
    w.spawn(
        a,
        Box::new(Blaster {
            packets: vec![pup_to_bob(35), pup_to_bob(36)],
        }),
    );
    w.run();
    let app = w.app_ref::<FinalReceiver>(b, fin).unwrap();
    assert_eq!(app.data.len(), 2);
    // The relay added copies and context switches over direct delivery.
    assert!(w.counters(b).copies >= 4, "pipe in+out per packet");
    assert!(w.counters(b).context_switches >= 2);
}

#[test]
fn nic_overflow_drops_frames() {
    // A sending host is CPU-limited to about one frame every 2 ms, which a
    // 32-slot ring absorbs easily — so overflow is exercised by injecting a
    // wire-rate burst directly (50 µs spacing; the driver alone needs
    // ~310 µs per frame, and a 2-slot ring must overflow).
    let (mut w, _a, b) = two_host_world();
    w.set_nic_capacity(b, 2);
    let rx = w.spawn(b, Box::new(Receiver::new(samples::accept_all(10))));
    for i in 0..20u64 {
        w.inject_frame(b, pup_to_bob(35), SimTime(i * 50_000));
    }
    w.run();
    assert!(w.counters(b).drops_interface > 0, "{}", w.counters(b));
    let app = w.app_ref::<Receiver>(b, rx).unwrap();
    assert!(app.got.len() < 20);
    assert_eq!(
        w.counters(b).packets_received as usize,
        20,
        "arrivals counted before the ring"
    );
}

/// A toy kernel protocol: claims Ethernet type 0x900, counts inputs, and
/// echoes user requests back as completions.
struct ToyProto {
    inputs: u64,
}

impl KernelProtocol for ToyProto {
    fn name(&self) -> &'static str {
        "toy"
    }
    fn claims(&self, ethertype: u16) -> bool {
        ethertype == 0x900
    }
    fn input(&mut self, _frame: Vec<u8>, k: &mut KernelCtx<'_>) {
        self.inputs += 1;
        let c = k.costs().ip_input;
        k.charge("toy:input", c);
    }
    fn user_request(
        &mut self,
        _proc: ProcId,
        sock: SockId,
        op: u32,
        data: Vec<u8>,
        meta: [u64; 4],
        k: &mut KernelCtx<'_>,
    ) {
        k.complete(sock, op + 1, data, meta);
    }
}

#[test]
fn kernel_protocol_claims_frames_before_the_packet_filter() {
    let (mut w, a, b) = two_host_world();
    w.register_protocol(b, Box::new(ToyProto { inputs: 0 }));
    let rx = w.spawn(b, Box::new(Receiver::new(samples::accept_all(10))));
    // Ethertype 0x900 → kernel protocol; ethertype 2 → packet filter.
    let mut claimed = pup_to_bob(35);
    claimed[2] = 0x09;
    claimed[3] = 0x00;
    w.spawn(
        a,
        Box::new(Blaster {
            packets: vec![claimed, pup_to_bob(35)],
        }),
    );
    w.run();
    assert_eq!(w.protocol_ref::<ToyProto>(b).unwrap().inputs, 1);
    assert_eq!(w.app_ref::<Receiver>(b, rx).unwrap().got.len(), 1);
}

#[test]
fn kernel_socket_round_trip() {
    let (mut w, _a, b) = two_host_world();
    w.register_protocol(b, Box::new(ToyProto { inputs: 0 }));

    struct SockUser {
        reply: Option<(u32, Vec<u8>, [u64; 4])>,
    }
    impl App for SockUser {
        fn start(&mut self, k: &mut ProcCtx<'_>) {
            let s = k.ksock_open("toy").expect("toy registered");
            k.ksock_request(s, 7, vec![1, 2, 3], [9, 8, 7, 6]);
        }
        fn on_socket(
            &mut self,
            _s: SockId,
            op: u32,
            data: Vec<u8>,
            meta: [u64; 4],
            _k: &mut ProcCtx<'_>,
        ) {
            self.reply = Some((op, data, meta));
        }
    }
    let p = w.spawn(b, Box::new(SockUser { reply: None }));
    w.run();
    let app = w.app_ref::<SockUser>(b, p).unwrap();
    assert_eq!(app.reply, Some((8, vec![1, 2, 3], [9, 8, 7, 6])));
}

#[test]
fn timer_cancellation() {
    let (mut w, _a, b) = two_host_world();
    struct T {
        fired: Vec<u64>,
    }
    impl App for T {
        fn start(&mut self, k: &mut ProcCtx<'_>) {
            let t1 = k.set_timer(SimDuration::from_millis(10), 1);
            k.set_timer(SimDuration::from_millis(20), 2);
            assert!(k.cancel_timer(t1));
            assert!(!k.cancel_timer(t1), "double cancel");
        }
        fn on_timer(&mut self, token: u64, _k: &mut ProcCtx<'_>) {
            self.fired.push(token);
        }
    }
    let p = w.spawn(b, Box::new(T { fired: Vec::new() }));
    w.run();
    assert_eq!(w.app_ref::<T>(b, p).unwrap().fired, vec![2]);
}

#[test]
fn send_errors_on_bad_frames() {
    let (mut w, a, _b) = two_host_world();
    struct BadSender {
        results: Vec<Result<(), pf_kernel::world::SendError>>,
    }
    impl App for BadSender {
        fn start(&mut self, k: &mut ProcCtx<'_>) {
            let fd = k.pf_open();
            self.results.push(k.pf_write(fd, &[1, 2])); // < 4-byte header
            self.results.push(k.pf_write(fd, &vec![0; 2000])); // > 600 max
            self.results.push(k.pf_write(fd, &pup_to_bob(1)));
        }
    }
    let p = w.spawn(
        a,
        Box::new(BadSender {
            results: Vec::new(),
        }),
    );
    w.run();
    let app = w.app_ref::<BadSender>(a, p).unwrap();
    assert_eq!(
        app.results,
        vec![
            Err(pf_kernel::world::SendError::FrameTooShort),
            Err(pf_kernel::world::SendError::FrameTooLong),
            Ok(())
        ]
    );
}

#[test]
fn counters_track_syscalls_and_crossings() {
    let (mut w, a, b) = two_host_world();
    w.spawn(b, Box::new(Receiver::new(samples::accept_all(10))));
    w.spawn(
        a,
        Box::new(Blaster {
            packets: vec![pup_to_bob(35)],
        }),
    );
    w.run();
    let cb = w.counters(b);
    // open + ioctl(filter) + ioctl(config) + 2 reads (initial + re-arm).
    assert_eq!(cb.syscalls, 5, "{cb}");
    assert_eq!(cb.domain_crossings, 10);
    let ca = w.counters(a);
    // open + write.
    assert_eq!(ca.syscalls, 2, "{ca}");
}

#[test]
fn runs_are_deterministic() {
    let run = || {
        let (mut w, a, b) = two_host_world();
        let rx = w.spawn(b, Box::new(Receiver::new(samples::accept_all(10))));
        w.spawn(
            a,
            Box::new(Blaster {
                packets: (0..10).map(|i| pup_to_bob(30 + i)).collect(),
            }),
        );
        let end = w.run();
        (
            end,
            *w.counters(b),
            w.app_ref::<Receiver>(b, rx).unwrap().got.len(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn link_info_reports_medium() {
    let (mut w, a, _b) = two_host_world();
    struct Q {
        info: Option<(usize, usize, u64)>,
    }
    impl App for Q {
        fn start(&mut self, k: &mut ProcCtx<'_>) {
            let (m, addr) = k.link_info();
            self.info = Some((m.header_len, m.max_packet, addr));
        }
    }
    let p = w.spawn(a, Box::new(Q { info: None }));
    w.run();
    assert_eq!(w.app_ref::<Q>(a, p).unwrap().info, Some((4, 600, 0x0A)));
}

#[test]
fn frames_parse_on_the_receive_side() {
    // Sanity: the frame that arrives is byte-identical and parses.
    let (mut w, a, b) = two_host_world();
    let rx = w.spawn(b, Box::new(Receiver::new(samples::accept_all(10))));
    let sent = pup_to_bob(44);
    w.spawn(
        a,
        Box::new(Blaster {
            packets: vec![sent.clone()],
        }),
    );
    w.run();
    let got = &w.app_ref::<Receiver>(b, rx).unwrap().got[0].bytes;
    assert_eq!(got, &sent);
    let h = frame::parse(&Medium::experimental_3mb(), got).unwrap();
    assert_eq!(h.dst, 0x0B);
    assert_eq!(h.ethertype, 2);
}

/// A program the validator rejects (reserved encoding after a
/// short-circuit) but the checked interpreter accepts for packets whose
/// `DstSocketLo` differs from `sock`.
fn garbage_after_shortcircuit(priority: u8, sock: u16) -> FilterProgram {
    let mut words = pf_filter::program::Assembler::new(priority)
        .pushword(samples::WORD_DSTSOCKET_LO)
        .pushlit_op(pf_filter::word::BinaryOp::Cnand, sock)
        .finish()
        .words()
        .to_vec();
    words.push(15 << 6);
    FilterProgram::from_words(priority, words)
}

/// Graceful degradation end to end through the world: a
/// validation-rejected filter is quarantined at bind yet keeps
/// receiving via the checked fallback, a drop-oldest queue sheds the
/// oldest packets, and `pf_port_stats` plus the host counters surface
/// all of it.
#[test]
fn quarantine_and_overflow_surface_through_world() {
    let (mut w, a, b) = two_host_world();
    struct DegradedReader {
        fd: Option<Fd>,
        got: Vec<RecvPacket>,
        stats: Option<pf_kernel::types::PortStats>,
    }
    impl App for DegradedReader {
        fn start(&mut self, k: &mut ProcCtx<'_>) {
            let fd = k.pf_open();
            // Accepts every socket but 99; quarantined (fails validation).
            assert!(!k.pf_set_filter(fd, garbage_after_shortcircuit(10, 99)));
            k.pf_configure(
                fd,
                PortConfig {
                    max_queue: 2,
                    overflow: pf_kernel::types::OverflowPolicy::DropOldest,
                    ..Default::default()
                },
            );
            self.fd = Some(fd);
            k.set_timer(SimDuration::from_millis(200), 1);
        }
        fn on_timer(&mut self, _t: u64, k: &mut ProcCtx<'_>) {
            let fd = self.fd.unwrap();
            self.stats = k.pf_port_stats(fd);
            k.pf_read(fd);
        }
        fn on_packets(&mut self, _fd: Fd, packets: Vec<RecvPacket>, _k: &mut ProcCtx<'_>) {
            self.got.extend(packets);
        }
    }
    let rx = w.spawn(
        b,
        Box::new(DegradedReader {
            fd: None,
            got: Vec::new(),
            stats: None,
        }),
    );
    w.spawn(
        a,
        Box::new(Blaster {
            packets: (0..6).map(|_| pup_to_bob(35)).collect(),
        }),
    );
    w.run();
    assert_eq!(w.counters(b).filters_quarantined, 1);
    assert_eq!(w.counters(b).packets_delivered, 6, "fallback still accepts");
    assert_eq!(w.counters(b).drops_queue_full, 4, "queue of 2, six packets");
    let app = w.app_ref::<DegradedReader>(b, rx).unwrap();
    let stats = app.stats.expect("port stats snapshot");
    assert!(stats.quarantined);
    assert_eq!(stats.accepts, 6);
    assert_eq!(stats.drops, 4);
    assert_eq!(stats.queued, 2, "drop-oldest kept the newest two");
    // The first surviving packet is the fifth sent: when it was queued,
    // packets 3 and 4 had already evicted the two before them.
    assert_eq!(
        app.got.first().map(|p| p.dropped_before),
        Some(2),
        "reader learns how many packets overflow had cost it so far"
    );
}

/// An instruction budget set through the world quarantines overlong
/// filters; a validation-rejected filter that also exceeds the budget at
/// run time is cut off, and the overruns land in the host counters.
#[test]
fn budget_overruns_surface_through_world() {
    let (mut w, a, b) = two_host_world();
    w.set_filter_budget(b, Some(8));
    struct Hog {
        fd: Option<Fd>,
    }
    impl App for Hog {
        fn start(&mut self, k: &mut ProcCtx<'_>) {
            let fd = k.pf_open();
            // Ten decodable instructions before a garbage word: fails
            // validation (quarantine), then every checked evaluation
            // exceeds the 8-instruction budget and rejects.
            let mut words = samples::fig_3_8_pup_type_range().words().to_vec();
            words.push(15 << 6);
            assert!(!k.pf_set_filter(fd, FilterProgram::from_words(10, words)));
            self.fd = Some(fd);
        }
    }
    w.spawn(b, Box::new(Hog { fd: None }));
    w.spawn(
        a,
        Box::new(Blaster {
            packets: (0..3).map(|_| pup_to_bob(35)).collect(),
        }),
    );
    w.run();
    assert_eq!(w.counters(b).filters_quarantined, 1);
    assert_eq!(w.counters(b).filter_budget_overruns, 3, "one per packet");
    assert_eq!(w.counters(b).drops_no_match, 3, "over-budget rejects");
    assert_eq!(w.counters(b).packets_delivered, 0);
}
