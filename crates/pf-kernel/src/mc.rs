//! The multi-core data plane: RSS multi-queue receive, per-core demux
//! workers, and batched filter execution.
//!
//! The paper's demultiplexer runs one frame at a time on one CPU. Every
//! modern fast path scales past that the same way: the NIC hashes each
//! arriving frame's headers and steers it to one of N receive queues
//! (receive-side scaling), one worker core owns each queue, and workers
//! push packets through the classifier in batches so fixed dispatch work
//! amortizes. This module models that pipeline on the `pf-sim` substrate:
//!
//! * [`RssConfig`] — a Toeplitz-like hash over configurable header words.
//!   The default single-queue configuration steers every frame to queue 0
//!   without hashing, keeping today's behavior bit-identical.
//! * [`McPipeline`] — per-core demux workers, each owning one receive
//!   queue, one [`PfDevice`] holding its shard of the filter population,
//!   its own [`pf_sim::Counters`], and its own interrupt→polling overload
//!   armor state (the PR-5 armor, per core). Costs are charged to a
//!   [`CpuPool`]; cross-core handoffs and work stealing pay explicit
//!   `mc_wakeup`/`queue_steal` costs.
//! * Batched execution — workers drain their queue in runs of at most
//!   `batch` frames and demultiplex each run through
//!   [`PfDevice::demux_batch`], paying the fixed `batch_dispatch` cost
//!   once per run instead of a per-frame setup.
//!
//! # Filter sharding soundness
//!
//! A filter is *pinned* to one core only when every RSS-hashed word is
//! provably pinned to a single value by the filter: the syntactic
//! admission signature (`crate::device::admission_signature`) supplies
//! `packet[word] == literal` for leading equality tests, and the compiled
//! code's required-interval analysis (`pf_ir::geom::required_constraints`)
//! supplies the same witness for equality guards buried in multi-word or
//! range programs (a required interval with `lo == hi`). When each hashed
//! word carries such a witness, every accepting packet hashes identically
//! and steers to the one queue whose core holds the filter. Packets too
//! short to carry a required word cannot match the filter either (an
//! out-of-packet load rejects), so short frames are safe wherever they
//! land. A *range* constraint on a hashed word never pins (different
//! in-range values hash to different queues), and any filter that fails
//! the test is *replicated* to every core instead: correctness never
//! depends on the hash, only the pinning optimization does.

use crate::device::{admission_signature, AdmissionVerdict, DemuxEngine, PfDevice, PortIdx};
use crate::types::{Fd, ProcId};
use crate::world::OverloadConfig;
use crate::AdmissionConfig;
use pf_filter::packet::PacketView;
use pf_filter::program::FilterProgram;
use pf_ir::geom::required_constraints;
use pf_sim::clock::SimClock;
use pf_sim::cost::CostModel;
use pf_sim::counters::Counters;
use pf_sim::cpu::CpuPool;
use pf_sim::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Default RSS hash key (an arbitrary odd 64-bit constant; reproducible
/// runs want a fixed default, and any key gives the same steering
/// invariants).
pub const DEFAULT_RSS_KEY: u64 = 0x6d5a_6d5a_6d5a_6d5a;

/// Receive-side-scaling configuration: which header words the NIC hashes
/// and how many receive queues it steers across.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RssConfig {
    /// Number of receive queues (= worker cores). Must be at least 1.
    pub queues: usize,
    /// The 16-bit packet words hashed (e.g. the destination-socket word).
    /// Words past the end of a short frame are skipped, never faulted.
    pub hash_words: Vec<u16>,
    /// Hash key; two NICs with the same key steer identically.
    pub key: u64,
}

impl RssConfig {
    /// The default front end: one queue, no hashing — behavior identical
    /// to the single-core receive path.
    pub fn single_queue() -> Self {
        RssConfig {
            queues: 1,
            hash_words: Vec::new(),
            key: DEFAULT_RSS_KEY,
        }
    }

    /// A multi-queue front end hashing the given header words.
    pub fn multi_queue(queues: usize, hash_words: Vec<u16>) -> Self {
        assert!(queues >= 1, "need at least one receive queue");
        RssConfig {
            queues,
            hash_words,
            key: DEFAULT_RSS_KEY,
        }
    }

    /// A multi-queue front end whose hash key is derived from a per-boot
    /// seed (forced odd, like the default key). With the well-known
    /// default key an adversary can precompute flows that all steer to
    /// one queue and pile a whole flood onto one core; a keyed boot seed
    /// makes the queue assignment unpredictable from outside the host.
    /// Single-queue steering ([`RssConfig::steer`]) never consults the
    /// key, so `queues == 1` stays bit-identical to the classic path
    /// under any seed.
    pub fn keyed(queues: usize, hash_words: Vec<u16>, boot_seed: u64) -> Self {
        let mut cfg = Self::multi_queue(queues, hash_words);
        cfg.key = pf_sim::rng::SplitMix64::new(boot_seed).next_u64() | 1;
        cfg
    }

    /// The Toeplitz-like hash over the configured words of `frame`.
    ///
    /// Each present word is mixed with a key schedule derived by rotating
    /// the key per position; a final avalanche spreads the result so
    /// `hash % queues` is well distributed even for small word values.
    /// Missing words (short/truncated frames) are skipped — the hash is
    /// total over arbitrary byte strings and never faults.
    pub fn hash(&self, frame: &[u8]) -> u64 {
        let view = PacketView::new(frame);
        let mut h: u64 = self.key;
        for (i, &w) in self.hash_words.iter().enumerate() {
            let Some(v) = view.word(usize::from(w)) else {
                continue;
            };
            let k = self.key.rotate_left(((i * 17) % 64) as u32) | 1;
            h ^= (u64::from(v).wrapping_add(0x9E37_79B9_7F4A_7C15)).wrapping_mul(k);
            h = h.rotate_left(29);
        }
        // splitmix64 avalanche.
        h ^= h >> 30;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^ (h >> 31)
    }

    /// The receive queue `frame` steers to. Single-queue configurations
    /// return 0 without hashing.
    pub fn steer(&self, frame: &[u8]) -> usize {
        if self.queues == 1 {
            return 0;
        }
        (self.hash(frame) % self.queues as u64) as usize
    }
}

/// Configuration of one multi-core receive pipeline.
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Worker cores (one per receive queue). Must equal `rss.queues`.
    pub cores: usize,
    /// Frames demultiplexed per batched engine dispatch. Must be ≥ 1.
    pub batch: usize,
    /// The demultiplexing engine every core's device runs.
    pub engine: DemuxEngine,
    /// The NIC front end.
    pub rss: RssConfig,
    /// Per-core receive-ring capacity (arrivals beyond it drop at the
    /// interface, exactly like the single-core NIC ring).
    pub nic_ring: usize,
    /// Per-core interrupt→polling overload armor; `None` leaves every
    /// core on per-packet interrupts.
    pub armor: Option<OverloadConfig>,
    /// Pre-demux admission gate, installed on every core's device.
    pub admission: Option<AdmissionConfig>,
    /// Idle cores steal the back half of the deepest sibling queue when
    /// it holds at least `2 × batch` frames.
    pub steal: bool,
    /// Application cost to consume one delivered packet, charged on the
    /// owning port's home core.
    pub consume: SimDuration,
    /// The cost model all cores share.
    pub costs: CostModel,
}

impl McConfig {
    /// A single-core, batch-1 pipeline — the configuration that mirrors
    /// the classic one-CPU receive path.
    pub fn single_core(engine: DemuxEngine) -> Self {
        McConfig {
            cores: 1,
            batch: 1,
            engine,
            rss: RssConfig::single_queue(),
            nic_ring: 256,
            armor: None,
            admission: None,
            steal: false,
            consume: SimDuration::from_micros(200),
            costs: CostModel::microvax_ii(),
        }
    }
}

/// How one registered filter was placed across the worker cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Sound to pin: lives on exactly one core's device.
    Pinned {
        /// The owning core.
        core: usize,
    },
    /// Replicated to every core's device; deliveries consume on core 0.
    Replicated,
}

/// One registered filter's bookkeeping.
#[derive(Debug)]
struct McPort {
    placement: Placement,
    /// This port's index on each core's device (`None` where absent).
    on_core: Vec<Option<PortIdx>>,
}

/// A frame waiting in a core's receive ring.
#[derive(Debug)]
struct Frame {
    bytes: Vec<u8>,
    arrival: SimTime,
    /// The core whose filter shard must judge this frame (differs from
    /// the holding core only for stolen frames).
    origin: usize,
}

/// Per-core worker state.
#[derive(Debug)]
struct Worker {
    device: PfDevice,
    ring: VecDeque<Frame>,
    /// Pending arrivals for this queue, time-ordered (index into the run's
    /// steered arrival list).
    arrivals: VecDeque<(SimTime, Vec<u8>)>,
    /// Cross-core deliveries awaiting consumption here: `(sent, arrival)`
    /// per packet, in no particular order (senders run on their own
    /// clocks). Deferred rather than charged immediately so a sender
    /// running ahead in virtual time cannot push this core's `free_at`
    /// into the future past its own queued work — the home core consumes
    /// a handoff when its own clock reaches `sent`.
    handoffs: Vec<(SimTime, SimTime)>,
    counters: Counters,
    polling: bool,
    /// Earliest time the next poll tick may fire.
    poll_due: SimTime,
}

/// Results of one [`McPipeline::run`].
#[derive(Debug, Clone)]
pub struct McReport {
    /// Per-core counters.
    pub per_core: Vec<Counters>,
    /// Element-wise sum of `per_core`.
    pub total: Counters,
    /// When the last core went idle (makespan of the run).
    pub finish: SimTime,
    /// Per-core CPU busy time.
    pub busy: Vec<SimDuration>,
    /// Delivery latencies (completion − arrival), one per delivered
    /// packet, in delivery order.
    pub latencies: Vec<SimDuration>,
}

impl McReport {
    /// The `q`-quantile (0.0–1.0) of delivery latency, by nearest-rank.
    pub fn latency_quantile(&self, q: f64) -> SimDuration {
        if self.latencies.is_empty() {
            return SimDuration::ZERO;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[rank]
    }
}

/// The multi-core receive pipeline: N queues, N workers, batched demux.
///
/// Register filters with [`McPipeline::add_filter`], then drive a
/// time-ordered arrival schedule through [`McPipeline::run`]. The
/// pipeline is a deterministic offline model: workers interleave in
/// virtual-time order (ties to the lowest core), so identical inputs give
/// identical reports.
#[derive(Debug)]
pub struct McPipeline {
    config: McConfig,
    pool: CpuPool,
    workers: Vec<Worker>,
    ports: Vec<McPort>,
    /// Home core per (core, device-port): where deliveries consume.
    home: Vec<Vec<usize>>,
    latencies: Vec<SimDuration>,
    /// Latest scheduled arrival (the time-ordering assertion).
    last_arrival: SimTime,
    /// Virtual time of the last serviced step (the pipeline's clock).
    clock: SimTime,
}

impl McPipeline {
    /// Builds the pipeline: one worker, device, and queue per core.
    pub fn new(config: McConfig) -> Self {
        assert!(config.cores >= 1, "need at least one core");
        assert!(config.batch >= 1, "batch must be at least 1");
        assert_eq!(
            config.cores, config.rss.queues,
            "one worker core per receive queue"
        );
        let workers = (0..config.cores)
            .map(|_| {
                let mut b = PfDevice::builder().engine(config.engine);
                if let Some(a) = config.admission {
                    b = b.admission_control(a);
                }
                Worker {
                    device: b.build(),
                    ring: VecDeque::new(),
                    arrivals: VecDeque::new(),
                    handoffs: Vec::new(),
                    counters: Counters::new(),
                    polling: false,
                    poll_due: SimTime::ZERO,
                }
            })
            .collect();
        McPipeline {
            pool: CpuPool::new(config.cores),
            home: vec![Vec::new(); config.cores],
            workers,
            ports: Vec::new(),
            latencies: Vec::new(),
            last_arrival: SimTime::ZERO,
            clock: SimTime::ZERO,
            config,
        }
    }

    /// Registers a filter, pinning it to the core its flow steers to when
    /// that is provably sound (see the module docs) and replicating it to
    /// every core otherwise. Returns the port handle.
    pub fn add_filter(&mut self, program: FilterProgram) -> usize {
        let handle = self.ports.len();
        let placement = self.placement_of(&program);
        let mut on_core = vec![None; self.config.cores];
        match placement {
            Placement::Pinned { core } => {
                let idx = self.open_on(core, handle, &program);
                on_core[core] = Some(idx);
                self.home[core].resize(idx + 1, core);
                self.home[core][idx] = core;
            }
            Placement::Replicated => {
                for (core, slot) in on_core.iter_mut().enumerate() {
                    let idx = self.open_on(core, handle, &program);
                    *slot = Some(idx);
                    self.home[core].resize(idx + 1, 0);
                    self.home[core][idx] = 0;
                }
            }
        }
        self.ports.push(McPort { placement, on_core });
        handle
    }

    /// Where `program` may live: pinned iff every RSS-hashed word is
    /// provably pinned to one value by the filter (see the module docs).
    fn placement_of(&self, program: &FilterProgram) -> Placement {
        if self.config.cores == 1 {
            return Placement::Pinned { core: 0 };
        }
        if self.config.rss.hash_words.is_empty() {
            return Placement::Replicated;
        }
        // Each hashed word needs an equality witness: the syntactic
        // admission signature, or an exact required interval from the
        // compiled code's analysis (which also finds equality guards
        // buried in multi-word and range programs). A *range* constraint
        // never pins — different in-range values hash apart.
        let syntactic = admission_signature(program);
        let required = required_constraints(program);
        let exact_literal = |w: u16| -> Option<u16> {
            if let Some((sw, lit)) = syntactic {
                if u16::from(sw) == w {
                    return Some(lit);
                }
            }
            required
                .iter()
                .find(|iv| iv.word == w && iv.is_exact())
                .map(|iv| iv.lo)
        };
        let mut pins: Vec<(u16, u16)> = Vec::new();
        for &w in &self.config.rss.hash_words {
            match exact_literal(w) {
                Some(lit) => pins.push((w, lit)),
                None => return Placement::Replicated,
            }
        }
        // Steer a synthetic frame carrying every hashed word's pinned
        // literal; all matching packets hash identically (the hash reads
        // only those words, and a matching packet must carry each).
        let max_word = pins.iter().map(|&(w, _)| w).max().expect("non-empty");
        let len = 2 * (usize::from(max_word) + 1);
        let mut synthetic = vec![0u8; len];
        for (w, lit) in pins {
            let off = 2 * usize::from(w);
            synthetic[off] = (lit >> 8) as u8;
            synthetic[off + 1] = (lit & 0xFF) as u8;
        }
        let core = self.config.rss.steer(&synthetic);
        Placement::Pinned { core }
    }

    fn open_on(&mut self, core: usize, handle: usize, program: &FilterProgram) -> PortIdx {
        let d = &mut self.workers[core].device;
        let idx = d.open((ProcId(handle), Fd(core)));
        d.set_filter(idx, program.clone());
        idx
    }

    /// How a registered filter was placed.
    pub fn placement(&self, handle: usize) -> Placement {
        self.ports[handle].placement
    }

    /// The device port a registered filter occupies on `core`, if it
    /// lives there (pinned filters live on exactly one core).
    pub fn port_on_core(&self, handle: usize, core: usize) -> Option<PortIdx> {
        self.ports[handle].on_core[core]
    }

    /// Per-core counters (after a run).
    pub fn counters(&self, core: usize) -> &Counters {
        &self.workers[core].counters
    }

    /// Schedules one frame's arrival at the NIC front end. The hardware
    /// steers it to its receive queue immediately (DMA costs nothing on a
    /// CPU; the hash cost is charged to the owning core at service time).
    /// Arrival times must be non-decreasing across calls.
    pub fn schedule_arrival(&mut self, t: SimTime, frame: Vec<u8>) {
        assert!(t >= self.last_arrival, "arrivals must be time-ordered");
        self.last_arrival = t;
        let q = self.config.rss.steer(&frame);
        if q != 0 {
            self.workers[q].counters.frames_steered += 1;
        }
        self.workers[q].arrivals.push_back((t, frame));
    }

    /// Schedules a time-ordered batch of arrivals.
    pub fn schedule_arrivals(&mut self, arrivals: impl IntoIterator<Item = (SimTime, Vec<u8>)>) {
        for (t, frame) in arrivals {
            self.schedule_arrival(t, frame);
        }
    }

    /// Snapshot of per-core counters, busy time, makespan, and delivery
    /// latencies accumulated so far.
    pub fn report(&self) -> McReport {
        let per_core: Vec<Counters> = self.workers.iter().map(|w| w.counters).collect();
        let mut total = Counters::new();
        for c in &per_core {
            total = add_counters(total, *c);
        }
        let finish = (0..self.config.cores)
            .map(|c| self.pool.core(c).free_at())
            .max()
            .unwrap_or(SimTime::ZERO);
        McReport {
            total,
            finish,
            busy: (0..self.config.cores)
                .map(|c| self.pool.core(c).busy_time())
                .collect(),
            latencies: self.latencies.clone(),
            per_core,
        }
    }

    /// The next `(time, core)` to service: the earliest core with frames
    /// ringed or arriving or handoffs to consume (ties to the lowest
    /// core), or an idle thief when stealing is enabled and a sibling
    /// queue is deep enough.
    fn next_step(&self) -> Option<(SimTime, usize)> {
        let mut best: Option<(SimTime, usize)> = None;
        for c in 0..self.config.cores {
            let w = &self.workers[c];
            let mut base = if !w.ring.is_empty() {
                Some(w.ring.front().map(|f| f.arrival).unwrap_or(SimTime::ZERO))
            } else {
                w.arrivals.front().map(|&(t, _)| t)
            };
            if let Some(&(sent, _)) = w.handoffs.iter().min_by_key(|h| h.0) {
                base = Some(base.map_or(sent, |b| b.min(sent)));
            }
            let t = match base {
                Some(b) => {
                    let mut t = b.max(self.pool.core(c).free_at());
                    if w.polling && !w.ring.is_empty() {
                        t = t.max(w.poll_due);
                    }
                    t
                }
                None => {
                    if !self.config.steal || self.steal_victim(c).is_none() {
                        continue;
                    }
                    let v = self.steal_victim(c).expect("just checked");
                    let newest = self.workers[v]
                        .ring
                        .back()
                        .map(|f| f.arrival)
                        .unwrap_or(SimTime::ZERO);
                    newest.max(self.pool.core(c).free_at())
                }
            };
            if best.map(|(bt, bc)| (t, c) < (bt, bc)).unwrap_or(true) {
                best = Some((t, c));
            }
        }
        best
    }

    /// The deepest sibling ring deep enough to be worth stealing from:
    /// two batches' worth, capped at eight frames so large-batch
    /// configurations still rebalance the tail of a burst instead of
    /// leaving the last core to drain its queue alone.
    fn steal_victim(&self, thief: usize) -> Option<usize> {
        let trigger = (2 * self.config.batch).min(8);
        (0..self.config.cores)
            .filter(|&v| v != thief)
            .filter(|&v| self.workers[v].ring.len() >= trigger)
            .max_by_key(|&v| (self.workers[v].ring.len(), std::cmp::Reverse(v)))
    }

    /// One service step for `core` at time `t`: consume ripe handoffs,
    /// admit arrivals, run armor transitions, drain one batch through the
    /// device, deliver.
    fn service_step(&mut self, core: usize, t: SimTime) {
        self.consume_handoffs(core, t);
        self.admit_arrivals(core, t);
        if self.workers[core].ring.is_empty() {
            if self.config.steal {
                self.steal_into(core, t);
            }
            if self.workers[core].ring.is_empty() {
                return;
            }
        }

        // Drain budget and driver charges, per receive mode.
        let armor = self.config.armor;
        let polling = self.workers[core].polling;
        let take = if polling {
            armor.map(|a| a.poll_batch).unwrap_or(self.config.batch)
        } else {
            self.config.batch
        }
        .min(self.workers[core].ring.len())
        .max(1);
        let mut frames: Vec<Frame> = Vec::with_capacity(take);
        for _ in 0..take {
            frames.push(self.workers[core].ring.pop_front().expect("take <= len"));
        }
        let costs = self.config.costs.clone();
        if polling {
            self.workers[core].counters.poll_batches += 1;
            self.pool.charge(core, "driver:poll", t, costs.poll_batch);
            for _ in &frames {
                self.pool
                    .charge(core, "driver:poll", t, costs.poll_per_packet);
            }
            if let Some(a) = armor {
                self.workers[core].poll_due = t + a.poll_interval;
                if self.workers[core].ring.len() <= a.lo_watermark {
                    self.workers[core].polling = false;
                    self.workers[core].counters.rx_mode_switches += 1;
                }
            }
        } else {
            for f in &frames {
                let c = costs.driver_rx_cost(f.bytes.len());
                self.pool.charge(core, "driver:rx", t, c);
            }
        }
        // RSS hash: charged per frame on multi-queue front ends only.
        if self.config.rss.queues > 1 {
            for _ in &frames {
                self.pool.charge(core, "driver:rss", t, costs.rss_hash);
            }
        }

        // Admission gate, ahead of the filter ladder.
        if self.config.admission.is_some() {
            let mut admitted = Vec::with_capacity(frames.len());
            for f in frames {
                self.pool.charge(core, "pf:admit", t, costs.admission_probe);
                match self.workers[f.origin].device.admit(&f.bytes, t) {
                    AdmissionVerdict::Shed { .. } => {
                        self.workers[core].counters.drops_admission += 1;
                    }
                    AdmissionVerdict::ShedMimic { .. } => {
                        self.workers[core].counters.drops_mimicry_shed += 1;
                    }
                    AdmissionVerdict::Admit => admitted.push(f),
                }
            }
            frames = admitted;
            if frames.is_empty() {
                return;
            }
        }

        // Batched demultiplexing: group the run by origin device (stolen
        // frames are judged by their origin core's shard), one batched
        // dispatch per group. Groups never exceed the engine batch size
        // even when the polling drain takes more frames per tick — the
        // poll batch is a driver drain knob, not an engine one.
        let mut i = 0;
        while i < frames.len() {
            let origin = frames[i].origin;
            let mut j = i + 1;
            while j < frames.len() && j - i < self.config.batch && frames[j].origin == origin {
                j += 1;
            }
            let group = &frames[i..j];
            self.demux_group(core, origin, group, t);
            i = j;
        }
    }

    /// Consumes every cross-core handoff whose `sent` time this core's
    /// clock has reached, charging the application cost here and
    /// recording the arrival → consumption latency.
    fn consume_handoffs(&mut self, core: usize, t: SimTime) {
        let mut ripe: Vec<(SimTime, SimTime)> = Vec::new();
        self.workers[core].handoffs.retain(|&(sent, arrival)| {
            if sent <= t {
                ripe.push((sent, arrival));
                false
            } else {
                true
            }
        });
        ripe.sort();
        for (sent, arrival) in ripe {
            let done = self
                .pool
                .charge(core, "app:consume", sent.max(t), self.config.consume);
            self.latencies.push(done.saturating_since(arrival));
        }
    }

    /// Moves ripe arrivals into the ring, dropping on overflow and
    /// running the armor's hi-watermark transition.
    fn admit_arrivals(&mut self, core: usize, t: SimTime) {
        let nic_ring = self.config.nic_ring;
        let armor = self.config.armor;
        let mut switched = false;
        {
            let w = &mut self.workers[core];
            while let Some(&(at, _)) = w.arrivals.front() {
                if at > t {
                    break;
                }
                let (arrival, bytes) = w.arrivals.pop_front().expect("peeked");
                w.counters.packets_received += 1;
                if w.ring.len() >= nic_ring {
                    w.counters.drops_interface += 1;
                    continue;
                }
                w.ring.push_back(Frame {
                    bytes,
                    arrival,
                    origin: core,
                });
                if let Some(a) = armor {
                    if !w.polling && w.ring.len() >= a.hi_watermark {
                        w.polling = true;
                        w.counters.rx_mode_switches += 1;
                        switched = true;
                    }
                }
            }
        }
        if switched {
            if let Some(a) = armor {
                self.workers[core].poll_due = t + a.poll_interval;
            }
        }
    }

    /// Steals the back half of the deepest eligible sibling queue into
    /// `core`'s ring, tagging frames with their origin.
    fn steal_into(&mut self, core: usize, t: SimTime) {
        let Some(victim) = self.steal_victim(core) else {
            return;
        };
        let n = self.workers[victim].ring.len() / 2;
        if n == 0 {
            return;
        }
        self.pool
            .charge(core, "mc:steal", t, self.config.costs.queue_steal);
        self.workers[core].counters.queue_steals += 1;
        let mut stolen = Vec::with_capacity(n);
        for _ in 0..n {
            let mut f = self.workers[victim].ring.pop_back().expect("n <= len");
            f.origin = victim;
            stolen.push(f);
        }
        // Preserve arrival order within the stolen run.
        stolen.reverse();
        for f in stolen {
            self.workers[core].ring.push_back(f);
        }
    }

    /// Demultiplexes one same-origin group on `core`'s CPU through the
    /// origin shard's device, charging the batched engine costs and
    /// delivering accepts.
    fn demux_group(&mut self, core: usize, origin: usize, group: &[Frame], t: SimTime) {
        let costs = self.config.costs.clone();
        let refs: Vec<&[u8]> = group.iter().map(|f| f.bytes.as_slice()).collect();
        let outs = self.workers[origin].device.demux_batch(&refs);
        self.workers[core].counters.batches_executed += 1;
        let engine = self.config.engine;
        // One dispatch launch per batched group for the compiled engines;
        // the sequential engine applies filters one at a time and gains
        // nothing from batching.
        if engine != DemuxEngine::Sequential {
            self.pool
                .charge(core, "pf:dispatch", t, costs.batch_dispatch);
        }
        let shapes = if engine == DemuxEngine::DecisionTable {
            self.workers[origin].device.engine_stats().table_shapes as u64
        } else {
            0
        };
        for (f, out) in group.iter().zip(&outs) {
            // Marginal per-frame engine cost (no per-frame setup — the
            // dispatch above covers it), mirroring the single-core
            // world's per-engine charging.
            match engine {
                DemuxEngine::Sequential => {
                    for a in &out.applied {
                        self.workers[core].counters.filters_applied += 1;
                        self.workers[core].counters.filter_instructions +=
                            u64::from(a.stats.instructions);
                        let c = costs.filter_cost(a.stats.instructions);
                        self.pool.charge(core, "pf:filter", t, c);
                    }
                }
                DemuxEngine::DecisionTable => {
                    let c = costs.dtree_probe.times(shapes.max(1));
                    self.pool.charge(core, "pf:dtree", t, c);
                }
                DemuxEngine::Ir => {
                    self.workers[core].counters.filter_instructions += u64::from(out.ir_ops);
                    let c = costs.filter_instr.times(u64::from(out.ir_ops));
                    self.pool.charge(core, "pf:ir", t, c);
                }
                DemuxEngine::Sharded => {
                    self.workers[core].counters.filter_instructions += u64::from(out.ir_ops);
                    let c = costs.filter_instr.times(u64::from(out.ir_ops));
                    self.pool.charge(core, "pf:sharded", t, c);
                }
                DemuxEngine::Geom => {
                    let tuples = self.workers[origin].device.engine_stats().geom_tuple_count;
                    let probe = costs.geom_probe.times((tuples as u64).max(1));
                    self.pool.charge(core, "pf:geom", t, probe);
                    self.workers[core].counters.filter_instructions += u64::from(out.ir_ops);
                    let c = costs.filter_instr.times(u64::from(out.ir_ops));
                    self.pool.charge(core, "pf:geom", t, c);
                }
                DemuxEngine::Jit => {
                    let c = costs.jit_eval.times(u64::from(out.jit_filters.max(1)));
                    self.pool.charge(core, "pf:jit", t, c);
                }
            }
            if engine != DemuxEngine::Sequential {
                // Quarantined fallbacks, on the interpreter's curve.
                for a in &out.applied {
                    self.workers[core].counters.filters_applied += 1;
                    self.workers[core].counters.filter_instructions +=
                        u64::from(a.stats.instructions);
                    let c = costs.filter_cost(a.stats.instructions);
                    self.pool.charge(core, "pf:quarantine", t, c);
                }
            }
            self.workers[core].counters.filter_budget_overruns += u64::from(out.budget_overruns);
            self.workers[core].counters.filters_quarantined += u64::from(out.newly_quarantined);
            if out.accepted.is_empty() {
                self.workers[core].counters.drops_no_match += 1;
                // Same mimicry-pressure feedback as the single-core world:
                // an admitted frame no filter wanted.
                if self.config.admission.is_some()
                    && self.workers[origin].device.note_unmatched_admit(&f.bytes)
                {
                    self.workers[core].counters.gate_resignature_events += 1;
                }
                continue;
            }
            for &idx in &out.accepted {
                let done = self.pool.charge(core, "pf:input", t, costs.pf_bookkeeping);
                let home = self.home[origin][idx];
                if home == core {
                    let completion =
                        self.pool
                            .charge(core, "app:consume", done, self.config.consume);
                    self.latencies.push(completion.saturating_since(f.arrival));
                } else {
                    // Hand off to the consumer's core: IPI + cache-line
                    // bounce on the sender now; the home core consumes the
                    // handoff once *its own* clock reaches the send time
                    // (charging it immediately at the sender's clock would
                    // teleport the home core's `free_at` into the future
                    // and starve its own queue).
                    let sent = self.pool.charge(core, "mc:wakeup", done, costs.mc_wakeup);
                    self.workers[core].counters.cross_core_wakeups += 1;
                    self.workers[home].handoffs.push((sent, f.arrival));
                }
                self.workers[core].counters.packets_delivered += 1;
            }
        }
    }
}

/// The unified run-loop: scheduled arrivals drain through worker service
/// steps in virtual-time order (earliest ready core, ties to the lowest),
/// exactly as the old inherent drive loop did. Drive with
/// `SimClock::run(&mut pl)` (or plain `pl.run()` now that the deprecated
/// inherent shim is gone).
impl SimClock for McPipeline {
    fn now(&self) -> SimTime {
        self.clock
    }

    fn next_event_time(&mut self) -> Option<SimTime> {
        self.next_step().map(|(t, _)| t)
    }

    fn step(&mut self) -> bool {
        match self.next_step() {
            Some((t, core)) => {
                self.clock = self.clock.max(t);
                self.service_step(core, t);
                true
            }
            None => false,
        }
    }
}

/// Element-wise sum of two counter sets (the inverse of the `Sub` impl).
fn add_counters(a: Counters, b: Counters) -> Counters {
    // Exploit `b - zero = b`: build the sum field-by-field via Sub's
    // negation trick is uglier than just listing fields; keep it simple.
    let mut s = a;
    s.context_switches += b.context_switches;
    s.syscalls += b.syscalls;
    s.domain_crossings += b.domain_crossings;
    s.copies += b.copies;
    s.bytes_copied += b.bytes_copied;
    s.packets_sent += b.packets_sent;
    s.packets_received += b.packets_received;
    s.packets_delivered += b.packets_delivered;
    s.drops_queue_full += b.drops_queue_full;
    s.drops_no_match += b.drops_no_match;
    s.drops_interface += b.drops_interface;
    s.filters_applied += b.filters_applied;
    s.filter_instructions += b.filter_instructions;
    s.signals_delivered += b.signals_delivered;
    s.timestamps += b.timestamps;
    s.filters_quarantined += b.filters_quarantined;
    s.filter_budget_overruns += b.filter_budget_overruns;
    s.drops_admission += b.drops_admission;
    s.poll_batches += b.poll_batches;
    s.rx_mode_switches += b.rx_mode_switches;
    s.backpressure_signals += b.backpressure_signals;
    s.frames_steered += b.frames_steered;
    s.cross_core_wakeups += b.cross_core_wakeups;
    s.queue_steals += b.queue_steals;
    s.batches_executed += b.batches_executed;
    s.drops_mimicry_shed += b.drops_mimicry_shed;
    s.gate_resignature_events += b.gate_resignature_events;
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_filter::samples;

    /// The destination-socket low word of a 3 Mb PUP frame (what
    /// `samples::pup_socket_filter(_, 0, sock)` tests).
    const SOCK_WORD: u16 = 8;

    fn pkt(sock: u16) -> Vec<u8> {
        samples::pup_packet_3mb(2, 0, sock, 1)
    }

    fn steady_arrivals(n: usize, gap_us: u64, socks: &[u16]) -> Vec<(SimTime, Vec<u8>)> {
        (0..n)
            .map(|i| {
                (
                    SimTime(i as u64 * gap_us * 1_000),
                    pkt(socks[i % socks.len()]),
                )
            })
            .collect()
    }

    #[test]
    fn rss_same_flow_same_queue() {
        let rss = RssConfig::multi_queue(4, vec![SOCK_WORD]);
        for sock in 0..200u16 {
            let a = rss.steer(&pkt(sock));
            // Same socket, different payloads/lengths: identical steering.
            let mut other = pkt(sock);
            other.extend_from_slice(&[0xAA; 37]);
            assert_eq!(a, rss.steer(&other), "sock {sock}");
            assert!(a < 4);
        }
    }

    #[test]
    fn rss_spreads_flows() {
        let rss = RssConfig::multi_queue(4, vec![SOCK_WORD]);
        let mut hit = [false; 4];
        for sock in 0..64u16 {
            hit[rss.steer(&pkt(sock))] = true;
        }
        assert!(hit.iter().all(|&h| h), "64 flows must cover 4 queues");
    }

    #[test]
    fn rss_short_frames_never_panic() {
        let rss = RssConfig::multi_queue(8, vec![0, SOCK_WORD, 300]);
        for len in 0..32usize {
            let frame = vec![0x5Au8; len];
            assert!(rss.steer(&frame) < 8);
        }
        assert!(rss.steer(&[]) < 8);
    }

    #[test]
    fn rss_single_queue_is_identity() {
        let rss = RssConfig::single_queue();
        for sock in 0..50u16 {
            assert_eq!(rss.steer(&pkt(sock)), 0);
        }
        assert_eq!(rss.steer(&[]), 0);
    }

    #[test]
    fn rss_keyed_seeds_change_steering() {
        let a = RssConfig::keyed(4, vec![SOCK_WORD], 0x0A);
        let b = RssConfig::keyed(4, vec![SOCK_WORD], 0x0B);
        assert_ne!(a.key, b.key, "distinct boot seeds derive distinct keys");
        let flows: Vec<Vec<u8>> = (0..64u16).map(|s| pkt(100 + s)).collect();
        let steer_a: Vec<usize> = flows.iter().map(|f| a.steer(f)).collect();
        let steer_b: Vec<usize> = flows.iter().map(|f| b.steer(f)).collect();
        assert_ne!(steer_a, steer_b, "same flow set, two seeds: new steering");
        // Each seed is still a valid, flow-stable front end.
        for (f, &q) in flows.iter().zip(&steer_a) {
            assert!(q < 4);
            assert_eq!(a.steer(f), q);
        }
    }

    #[test]
    fn rss_keyed_single_queue_is_bit_identical_to_classic() {
        // The key is never consulted at queues == 1: steering matches the
        // classic single-queue path for every frame, any seed.
        let classic = RssConfig::single_queue();
        for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let keyed = RssConfig::keyed(1, vec![SOCK_WORD], seed);
            for sock in 0..50u16 {
                assert_eq!(keyed.steer(&pkt(sock)), classic.steer(&pkt(sock)));
            }
            assert_eq!(keyed.steer(&[]), 0);
        }
    }

    #[test]
    fn signature_filters_pin_to_their_flow_queue() {
        let mut cfg = McConfig::single_core(DemuxEngine::Sharded);
        cfg.cores = 4;
        cfg.rss = RssConfig::multi_queue(4, vec![SOCK_WORD]);
        let mut pl = McPipeline::new(cfg.clone());
        for sock in 100..120u16 {
            let h = pl.add_filter(samples::pup_socket_filter(10, 0, sock));
            let Placement::Pinned { core } = pl.placement(h) else {
                panic!("socket filter must pin");
            };
            assert_eq!(core, cfg.rss.steer(&pkt(sock)), "sock {sock}");
        }
        // A filter without a signature on the hashed word replicates.
        let h = pl.add_filter(samples::accept_all(1));
        assert_eq!(pl.placement(h), Placement::Replicated);
    }

    #[test]
    fn interval_analysis_pins_multi_word_and_guarded_filters() {
        // Hash *both* socket words: the syntactic signature covers only
        // the low word, but the high word's `PUSHZERO CAND` is an exact
        // required constraint, so the compiled analysis pins the pair —
        // the old single-word rule had to replicate this.
        let mut cfg = McConfig::single_core(DemuxEngine::Geom);
        cfg.cores = 4;
        cfg.rss = RssConfig::multi_queue(4, vec![u16::from(samples::WORD_DSTSOCKET_HI), SOCK_WORD]);
        let mut pl = McPipeline::new(cfg.clone());
        let h = pl.add_filter(samples::pup_socket_filter(10, 0, 35));
        let Placement::Pinned { core } = pl.placement(h) else {
            panic!("multi-word equality filter must pin");
        };
        assert_eq!(core, cfg.rss.steer(&pkt(35)));

        // A range filter pins when the hash reads its equality *guard*
        // (every accepted packet carries ethertype == 2)…
        let mut cfg = McConfig::single_core(DemuxEngine::Geom);
        cfg.cores = 4;
        cfg.rss = RssConfig::multi_queue(4, vec![u16::from(samples::WORD_ETHERTYPE)]);
        let mut pl = McPipeline::new(cfg.clone());
        let h = pl.add_filter(samples::socket_range_filter(10, 100, 200));
        let Placement::Pinned { core } = pl.placement(h) else {
            panic!("ethertype guard is an exact required constraint");
        };
        assert_eq!(core, cfg.rss.steer(&pkt(150)));

        // …but never when the hash reads the *ranged* word: different
        // in-range values hash to different queues.
        let mut cfg = McConfig::single_core(DemuxEngine::Geom);
        cfg.cores = 4;
        cfg.rss = RssConfig::multi_queue(4, vec![SOCK_WORD]);
        let mut pl = McPipeline::new(cfg);
        let h = pl.add_filter(samples::socket_range_filter(10, 100, 200));
        assert_eq!(pl.placement(h), Placement::Replicated);
    }

    #[test]
    fn geom_engine_delivers_range_flows_across_cores() {
        // Port-range filters replicate under a socket-word hash; the geom
        // engine's delivery totals must match the single-core run anyway.
        let ranges: [(u16, u16); 4] = [(100, 120), (200, 260), (300, 310), (400, 480)];
        let socks: Vec<u16> = vec![105, 115, 210, 250, 305, 410, 470, 999];
        let arrivals = steady_arrivals(240, 3_000, &socks);
        let mut totals = Vec::new();
        for cores in [1usize, 4] {
            let mut cfg = McConfig::single_core(DemuxEngine::Geom);
            cfg.cores = cores;
            cfg.rss = if cores == 1 {
                RssConfig::single_queue()
            } else {
                RssConfig::multi_queue(cores, vec![SOCK_WORD])
            };
            let mut pl = McPipeline::new(cfg);
            for &(lo, hi) in &ranges {
                pl.add_filter(samples::socket_range_filter(10, lo, hi));
            }
            pl.schedule_arrivals(arrivals.clone());
            SimClock::run(&mut pl);
            let report = pl.report();
            totals.push(report.total);
        }
        assert_eq!(totals[0].packets_delivered, totals[1].packets_delivered);
        assert_eq!(totals[0].drops_no_match, totals[1].drops_no_match);
        assert!(totals[0].drops_no_match > 0, "sock 999 matches nothing");
    }

    #[test]
    fn four_cores_deliver_what_one_core_delivers() {
        // Satellite invariant: per-core counters sum to the single-core
        // totals at a rate every configuration keeps up with.
        let socks: Vec<u16> = (100..116).collect();
        let arrivals = steady_arrivals(400, 3_000, &socks);
        let mut totals = Vec::new();
        for cores in [1usize, 4] {
            let mut cfg = McConfig::single_core(DemuxEngine::Sharded);
            cfg.cores = cores;
            cfg.rss = if cores == 1 {
                RssConfig::single_queue()
            } else {
                RssConfig::multi_queue(cores, vec![SOCK_WORD])
            };
            let mut pl = McPipeline::new(cfg);
            for &s in &socks {
                pl.add_filter(samples::pup_socket_filter(10, 0, s));
            }
            pl.schedule_arrivals(arrivals.clone());
            SimClock::run(&mut pl);
            let report = pl.report();
            totals.push(report.total);
        }
        assert_eq!(totals[0].packets_received, 400);
        assert_eq!(totals[1].packets_received, 400);
        assert_eq!(totals[0].packets_delivered, totals[1].packets_delivered);
        assert_eq!(totals[0].drops_no_match, totals[1].drops_no_match);
        assert_eq!(totals[0].drops_interface, 0);
        assert_eq!(totals[1].drops_interface, 0);
        assert!(totals[1].frames_steered > 0, "multi-queue must steer");
    }

    #[test]
    fn batch_one_sharded_cost_matches_legacy_curve() {
        // dispatch(= filter_setup) + instr × filter_instr must equal the
        // classic filter_cost(ops) charge: batching is an amortization,
        // not a discount, so batch=1 reproduces single-frame costs.
        let cfg = McConfig::single_core(DemuxEngine::Sharded);
        let costs = cfg.costs.clone();
        let mut pl = McPipeline::new(cfg);
        pl.add_filter(samples::pup_socket_filter(10, 0, 35));
        pl.schedule_arrival(SimTime::ZERO, pkt(35));
        SimClock::run(&mut pl);
        let report = pl.report();
        assert_eq!(report.total.packets_delivered, 1);
        let p = pl.pool.core(0).profiler();
        let ops = report.total.filter_instructions;
        let charged = p.stats("pf:dispatch").time + p.stats("pf:sharded").time;
        assert_eq!(charged, costs.filter_cost(ops as u32));
    }

    #[test]
    fn batching_amortizes_dispatch() {
        // 64 frames at batch 32 must charge far fewer dispatch launches
        // than at batch 1 (2 vs 64), with identical delivery counts.
        let socks: Vec<u16> = (100..108).collect();
        let mut results = Vec::new();
        for batch in [1usize, 32] {
            let mut cfg = McConfig::single_core(DemuxEngine::Sharded);
            cfg.batch = batch;
            let mut pl = McPipeline::new(cfg);
            for &s in &socks {
                pl.add_filter(samples::pup_socket_filter(10, 0, s));
            }
            // Burst arrival: everything at t=0, so full batches form.
            let arrivals: Vec<(SimTime, Vec<u8>)> = (0..64)
                .map(|i| (SimTime::ZERO, pkt(socks[i % 8])))
                .collect();
            pl.schedule_arrivals(arrivals);
            SimClock::run(&mut pl);
            let report = pl.report();
            let dispatches = pl.pool.core(0).profiler().stats("pf:dispatch").calls;
            results.push((report.total.packets_delivered, dispatches, report.finish));
        }
        assert_eq!(results[0].0, 64);
        assert_eq!(results[1].0, 64);
        assert_eq!(results[0].1, 64, "batch=1: one dispatch per frame");
        assert_eq!(results[1].1, 2, "batch=32: two dispatches for 64");
        assert!(results[1].2 < results[0].2, "batching must finish sooner");
    }

    #[test]
    fn per_core_armor_engages_under_flood() {
        let mut cfg = McConfig::single_core(DemuxEngine::Sharded);
        cfg.cores = 2;
        cfg.rss = RssConfig::multi_queue(2, vec![SOCK_WORD]);
        cfg.armor = Some(OverloadConfig::default());
        let mut pl = McPipeline::new(cfg);
        for sock in 100..104u16 {
            pl.add_filter(samples::pup_socket_filter(10, 0, sock));
        }
        // Flood: 2000 frames back-to-back (1 µs apart — far beyond
        // capacity), all four flows.
        let socks: Vec<u16> = (100..104).collect();
        let arrivals = steady_arrivals(2000, 1, &socks);
        pl.schedule_arrivals(arrivals);
        SimClock::run(&mut pl);
        let report = pl.report();
        assert!(report.total.rx_mode_switches >= 2, "both cores switch");
        assert!(report.total.poll_batches > 0);
        assert_eq!(
            report.total.packets_received, 2000,
            "every arrival accounted"
        );
        // Flood is absorbed: delivered + dropped = received.
        let accounted = report.total.packets_delivered
            + report.total.drops_interface
            + report.total.drops_no_match;
        assert_eq!(accounted, 2000);
    }

    #[test]
    fn cross_core_wakeups_charged_for_replicated_consumers() {
        // A replicated wildcard is homed on core 0; junk frames steered
        // to core 1 must pay a cross-core wakeup to deliver.
        let mut cfg = McConfig::single_core(DemuxEngine::Sharded);
        cfg.cores = 2;
        cfg.rss = RssConfig::multi_queue(2, vec![SOCK_WORD]);
        let mut pl = McPipeline::new(cfg.clone());
        pl.add_filter(samples::accept_all(1));
        let mut arrivals = Vec::new();
        let mut t = 0u64;
        let mut off_core0 = 0;
        for sock in 0..32u16 {
            if cfg.rss.steer(&pkt(sock)) != 0 {
                off_core0 += 1;
            }
            arrivals.push((SimTime(t), pkt(sock)));
            t += 5_000_000;
        }
        assert!(off_core0 > 0, "some flows must steer off core 0");
        pl.schedule_arrivals(arrivals);
        SimClock::run(&mut pl);
        let report = pl.report();
        assert_eq!(report.total.packets_delivered, 32);
        assert_eq!(report.total.cross_core_wakeups, off_core0);
    }

    #[test]
    fn idle_core_steals_from_a_deep_sibling() {
        // All flows chosen to steer to one queue, their filters pinned
        // there too — the other core is fully idle and must steal.
        let mut cfg = McConfig::single_core(DemuxEngine::Sharded);
        cfg.cores = 2;
        cfg.batch = 4;
        cfg.steal = true;
        cfg.rss = RssConfig::multi_queue(2, vec![SOCK_WORD]);
        let socks: Vec<u16> = (100..300)
            .filter(|&s| cfg.rss.steer(&pkt(s)) == 1)
            .take(4)
            .collect();
        assert_eq!(socks.len(), 4, "need four flows steering to queue 1");
        let mut pl = McPipeline::new(cfg);
        for &s in &socks {
            pl.add_filter(samples::pup_socket_filter(10, 0, s));
        }
        let arrivals = steady_arrivals(64, 1, &socks);
        pl.schedule_arrivals(arrivals);
        SimClock::run(&mut pl);
        let report = pl.report();
        assert!(report.total.queue_steals > 0, "idle core must steal");
        assert_eq!(report.total.packets_delivered, 64, "no frame lost");
        // Both cores did real demux work.
        assert!(report.busy[0] > SimDuration::ZERO);
        assert!(report.busy[1] > SimDuration::ZERO);
        // Stolen frames were judged by the origin shard, so every frame
        // still found its pinned filter.
        assert_eq!(report.total.drops_no_match, 0);
    }

    #[test]
    fn latency_quantiles_are_ordered() {
        let mut cfg = McConfig::single_core(DemuxEngine::Sharded);
        cfg.batch = 8;
        let mut pl = McPipeline::new(cfg);
        pl.add_filter(samples::pup_socket_filter(10, 0, 35));
        let arrivals = steady_arrivals(100, 100, &[35]);
        pl.schedule_arrivals(arrivals);
        SimClock::run(&mut pl);
        let report = pl.report();
        assert_eq!(report.latencies.len(), 100);
        let p50 = report.latency_quantile(0.5);
        let p99 = report.latency_quantile(0.99);
        assert!(p50 <= p99);
        assert!(p99 > SimDuration::ZERO);
    }

    /// Migrated from the removed `McPipeline::run` shim's pinning test:
    /// the schedule/run/report triple is deterministic — two identical
    /// pipelines driven through `SimClock::run` produce identical
    /// reports (what the shim equivalence used to witness).
    #[test]
    fn schedule_then_clock_run_is_deterministic() {
        let arrivals = steady_arrivals(50, 10, &[35]);
        let drive = |arrivals: Vec<(SimTime, Vec<u8>)>| {
            let mut pl = McPipeline::new(McConfig::single_core(DemuxEngine::Sharded));
            pl.add_filter(samples::pup_socket_filter(10, 0, 35));
            pl.schedule_arrivals(arrivals);
            SimClock::run(&mut pl);
            pl.report()
        };
        let a = drive(arrivals.clone());
        let b = drive(arrivals);
        assert_eq!(a.total, b.total);
        assert_eq!(a.finish, b.finish);
        assert_eq!(a.latencies, b.latencies);
        assert_eq!(a.latencies.len(), 50, "every arrival was delivered");
    }
}
