//! The packet-filter pseudo-device: ports, filters, and the
//! priority-ordered demultiplexing loop of figure 4-1.
//!
//! ```text
//! Accepted := false;
//! for priority := MaxPriority downto MinPriority do
//!     for i := FirstFilter[priority] to LastFilter[priority] do
//!         if Apply(Filter[i], rcvd-pkt) = MATCH then
//!             Deliver(Port[i], rcvd-pkt);
//!             Accepted := true;
//!         end;
//!     end;
//! end;
//! if not Accepted then Drop(rcvd-pkt);
//! ```
//!
//! (The published loop keeps testing after a match; §3.2 narrows this: a
//! packet accepted by a port is *not* submitted to further filters unless
//! the accepting port set the deliver-to-lower option. This module
//! implements the §3.2 semantics.)
//!
//! Within one priority level the order is unspecified, and "the interpreter
//! may occasionally reorder such filters to place the busier ones first" —
//! implemented here as a periodic stable re-sort by acceptance count.
//!
//! This module is independent of the event loop: it decides *which* ports
//! accept a packet and reports the interpretation work done, and the world
//! model (`crate::world`) turns that into virtual time and queue activity.

use crate::types::{Fd, PortConfig, ProcId, RecvPacket};
use pf_filter::dtree::FilterSet;
use pf_filter::interp::{CheckedInterpreter, EvalStats};
use pf_filter::packet::PacketView;
use pf_filter::program::FilterProgram;
use pf_ir::set::{IrFilterSet, ShardedVnSet};
use std::collections::VecDeque;

/// How the device matches received packets against the active filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DemuxEngine {
    /// The paper's production loop (figure 4-1): interpret each filter in
    /// priority order until one accepts.
    #[default]
    Sequential,
    /// §7's proposal: "compile the set of active filters into a decision
    /// table, which should provide the best possible performance" — one
    /// hash probe per filter *shape*, with interpreted fallback for
    /// filters the analyzer cannot convert.
    DecisionTable,
    /// Filters compiled through the `pf-ir` CFG pipeline to threaded code,
    /// with guard-prefix tests shared (and memoized) across the set. Unlike
    /// the decision table this accepts *every* filter program.
    Ir,
    /// The IR pipeline plus set-level value numbering and a guard-keyed
    /// shard index: *every* word-equality test is shared (memoized once
    /// per packet) and a packet walks only the members its discriminating
    /// word selects. Accepts every filter program, like `Ir`.
    Sharded,
}

/// How many demultiplex operations between adaptive re-sorts of
/// equal-priority filters ("occasionally").
pub const REORDER_INTERVAL: u64 = 256;

/// Index of a port within the device.
pub type PortIdx = usize;

/// A pending blocked read on a port.
#[derive(Debug)]
pub struct PendingRead {
    /// Monotonic generation, so a stale timeout cannot complete a newer
    /// read.
    pub generation: u64,
    /// Handle of the scheduled timeout event, if any.
    pub timeout: Option<pf_sim::queue::EventHandle>,
}

/// One packet-filter port (a minor device a process opened).
#[derive(Debug)]
pub struct Port {
    /// The owning process and its descriptor for this port.
    pub owner: (ProcId, Fd),
    /// The bound filter; a port with no filter accepts nothing.
    pub filter: Option<FilterProgram>,
    /// Port configuration (§3.3).
    pub config: PortConfig,
    /// Queued packets awaiting a read.
    pub queue: VecDeque<RecvPacket>,
    /// The blocked read, if the owner is waiting.
    pub pending: Option<PendingRead>,
    /// Packets dropped because the queue was full (reported to readers).
    pub drops: u64,
    /// Packets this port's filter accepted (the adaptive-reorder "busyness").
    pub accepts: u64,
    /// Insertion sequence (stable tie-break within a priority).
    pub insertion: u64,
    /// Whether the port is open.
    pub open: bool,
    /// Read-generation counter.
    pub next_generation: u64,
}

impl Port {
    /// The filter's priority (ports with no filter sort last).
    pub fn priority(&self) -> u8 {
        self.filter.as_ref().map_or(0, |f| f.priority())
    }

    /// Tries to enqueue a packet; `false` (and a drop count) if full.
    pub fn enqueue(&mut self, pkt: RecvPacket) -> bool {
        if self.queue.len() >= self.config.max_queue {
            self.drops += 1;
            false
        } else {
            self.queue.push_back(pkt);
            true
        }
    }
}

/// One filter application during a demultiplex.
#[derive(Debug, Clone, Copy)]
pub struct Application {
    /// The port whose filter was applied.
    pub port: PortIdx,
    /// Whether the filter accepted the packet.
    pub accepted: bool,
    /// Interpreter counters for cost accounting.
    pub stats: EvalStats,
}

/// The outcome of demultiplexing one received packet.
#[derive(Debug, Clone, Default)]
pub struct DemuxOutcome {
    /// Ports that accepted the packet, in delivery order.
    pub accepted: Vec<PortIdx>,
    /// Every filter application performed, in order. Empty under the
    /// decision-table and IR engines, which do not apply filters one at a
    /// time.
    pub applied: Vec<Application>,
    /// Threaded-code operations executed, when the IR engine handled the
    /// packet (the cost-accounting analogue of `applied`'s instruction
    /// counters).
    pub ir_ops: u32,
}

/// The packet-filter device of one host.
#[derive(Debug)]
pub struct PfDevice {
    ports: Vec<Port>,
    /// Demultiplex order: indices into `ports`, sorted by priority
    /// descending, then (periodically) busyness, then insertion.
    order: Vec<PortIdx>,
    demux_ops: u64,
    insertions: u64,
    adaptive: bool,
    engine: DemuxEngine,
    /// The compiled filter set, maintained when the decision-table engine
    /// is selected (keyed by port index).
    table: Option<FilterSet>,
    /// The IR-compiled filter set, maintained when the IR engine is
    /// selected (keyed by port index).
    ir_set: Option<IrFilterSet>,
    /// The sharded value-numbered set, maintained when the sharded engine
    /// is selected (keyed by port index).
    sharded: Option<ShardedVnSet>,
    interp: CheckedInterpreter,
}

impl Default for PfDevice {
    fn default() -> Self {
        Self::new()
    }
}

impl PfDevice {
    /// A device with no open ports; adaptive reordering on, sequential
    /// engine (the paper's production configuration).
    pub fn new() -> Self {
        PfDevice {
            ports: Vec::new(),
            order: Vec::new(),
            demux_ops: 0,
            insertions: 0,
            adaptive: true,
            engine: DemuxEngine::Sequential,
            table: None,
            ir_set: None,
            sharded: None,
            interp: CheckedInterpreter::default(),
        }
    }

    /// Selects the demultiplexing engine (§4's interpreter loop, §7's
    /// decision table, or the pf-ir threaded-code compiler).
    pub fn set_engine(&mut self, engine: DemuxEngine) {
        self.engine = engine;
        self.table = None;
        self.ir_set = None;
        self.sharded = None;
        self.rebuild_engine_state();
    }

    /// The active demultiplexing engine.
    pub fn engine(&self) -> DemuxEngine {
        self.engine
    }

    /// Number of decision-table shapes (hash probes per packet), when the
    /// decision-table engine is active.
    pub fn table_shapes(&self) -> usize {
        self.table.as_ref().map_or(0, |t| t.shape_count())
    }

    fn rebuild_table(&mut self) {
        let mut set = FilterSet::new();
        // Insert in demux order so same-priority insertion ties match the
        // sequential loop's stable order.
        for &idx in &self.order {
            if let Some(f) = &self.ports[idx].filter {
                set.insert(idx as u32, f.clone());
            }
        }
        self.table = Some(set);
    }

    /// Number of guard-prefix tests the IR engine shares between filters,
    /// when the IR engine is active.
    pub fn ir_shared_tests(&self) -> usize {
        self.ir_set.as_ref().map_or(0, |s| s.shared_tests())
    }

    fn rebuild_ir_set(&mut self) {
        let mut set = IrFilterSet::new();
        // Same demux-order insertion as `rebuild_table`.
        for &idx in &self.order {
            if let Some(f) = &self.ports[idx].filter {
                set.insert(idx as u32, f.clone());
            }
        }
        self.ir_set = Some(set);
    }

    /// Number of shards in the sharded engine's index (distinct literals
    /// of the discriminating word), when the sharded engine is active.
    pub fn sharded_shard_count(&self) -> usize {
        self.sharded.as_ref().map_or(0, |s| s.shard_count())
    }

    /// Number of tests the sharded engine shares between filters, when the
    /// sharded engine is active.
    pub fn sharded_shared_tests(&self) -> usize {
        self.sharded.as_ref().map_or(0, |s| s.shared_tests())
    }

    fn rebuild_sharded(&mut self) {
        let mut set = ShardedVnSet::new();
        // Same demux-order insertion as `rebuild_table`.
        for &idx in &self.order {
            if let Some(f) = &self.ports[idx].filter {
                set.insert(idx as u32, f.clone());
            }
        }
        self.sharded = Some(set);
    }

    /// Rebuilds whichever compiled set the active engine maintains.
    fn rebuild_engine_state(&mut self) {
        match self.engine {
            DemuxEngine::Sequential => {}
            DemuxEngine::DecisionTable => self.rebuild_table(),
            DemuxEngine::Ir => self.rebuild_ir_set(),
            DemuxEngine::Sharded => self.rebuild_sharded(),
        }
    }

    /// Enables or disables adaptive same-priority reordering (§3.2).
    pub fn set_adaptive_reorder(&mut self, on: bool) {
        self.adaptive = on;
        if !on {
            // Restore pure (priority, insertion) order.
            let ports = &self.ports;
            self.order.sort_by(|&a, &b| {
                let (pa, pb) = (&ports[a], &ports[b]);
                pb.priority()
                    .cmp(&pa.priority())
                    .then(pa.insertion.cmp(&pb.insertion))
            });
        }
    }

    /// Opens a new port owned by `(proc, fd)` and returns its index.
    pub fn open(&mut self, owner: (ProcId, Fd)) -> PortIdx {
        let idx = self.ports.len();
        self.ports.push(Port {
            owner,
            filter: None,
            config: PortConfig::default(),
            queue: VecDeque::new(),
            pending: None,
            drops: 0,
            accepts: 0,
            insertion: self.insertions,
            open: true,
            next_generation: 0,
        });
        self.insertions += 1;
        self.order.push(idx);
        self.resort();
        self.rebuild_engine_state();
        idx
    }

    /// Closes a port; its queue is discarded.
    pub fn close(&mut self, idx: PortIdx) {
        if let Some(p) = self.ports.get_mut(idx) {
            p.open = false;
            p.queue.clear();
            p.pending = None;
            p.filter = None;
        }
        self.order.retain(|&o| o != idx);
        self.rebuild_engine_state();
    }

    /// Binds (replaces) the filter on a port. "A new filter can be bound at
    /// any time" (§3.1).
    pub fn set_filter(&mut self, idx: PortIdx, filter: FilterProgram) {
        if let Some(p) = self.ports.get_mut(idx) {
            p.filter = Some(filter);
            p.accepts = 0;
        }
        self.resort();
        self.rebuild_engine_state();
    }

    /// Access a port.
    ///
    /// # Panics
    ///
    /// Panics on an unknown index.
    pub fn port(&self, idx: PortIdx) -> &Port {
        &self.ports[idx]
    }

    /// Mutable access to a port.
    ///
    /// # Panics
    ///
    /// Panics on an unknown index.
    pub fn port_mut(&mut self, idx: PortIdx) -> &mut Port {
        &mut self.ports[idx]
    }

    /// The port owned by `(proc, fd)`, if any.
    pub fn port_of(&self, owner: (ProcId, Fd)) -> Option<PortIdx> {
        self.ports.iter().position(|p| p.open && p.owner == owner)
    }

    /// Number of open ports.
    pub fn open_ports(&self) -> usize {
        self.order.len()
    }

    /// The current demultiplex order (for tests and introspection).
    pub fn order(&self) -> &[PortIdx] {
        &self.order
    }

    /// Demultiplexes one received packet: applies filters in priority order
    /// until one accepts (continuing past accepting ports that set
    /// `deliver_to_lower`), recording every application.
    ///
    /// Queueing is *not* performed here — the world model enqueues to the
    /// accepted ports so it can charge bookkeeping costs and handle wakeups.
    pub fn demux(&mut self, packet: &[u8]) -> DemuxOutcome {
        self.demux_ops += 1;
        match self.engine {
            DemuxEngine::Sequential => {}
            DemuxEngine::DecisionTable => return self.demux_table(packet),
            DemuxEngine::Ir => return self.demux_ir(packet),
            DemuxEngine::Sharded => return self.demux_sharded(packet),
        }
        if self.adaptive && self.demux_ops.is_multiple_of(REORDER_INTERVAL) {
            self.resort();
        }
        let view = PacketView::new(packet);
        let mut out = DemuxOutcome::default();
        for &idx in &self.order {
            let port = &self.ports[idx];
            let Some(filter) = port.filter.as_ref() else {
                continue;
            };
            let (accepted, stats) = self.interp.eval_with_stats(filter, view);
            out.applied.push(Application {
                port: idx,
                accepted,
                stats,
            });
            if accepted {
                out.accepted.push(idx);
                if !port.config.deliver_to_lower {
                    break;
                }
            }
        }
        for &idx in &out.accepted {
            self.ports[idx].accepts += 1;
        }
        out
    }

    /// Decision-table demultiplexing: probe the compiled set, then walk the
    /// priority-ordered matches applying the §3.2 deliver-to-lower rule.
    fn demux_table(&mut self, packet: &[u8]) -> DemuxOutcome {
        let table = self.table.as_ref().expect("table engine selected");
        let matches = table.matches(PacketView::new(packet));
        let mut out = DemuxOutcome::default();
        for id in matches {
            let idx = id as PortIdx;
            out.accepted.push(idx);
            if !self.ports[idx].config.deliver_to_lower {
                break;
            }
        }
        for &idx in &out.accepted {
            self.ports[idx].accepts += 1;
        }
        out
    }

    /// IR demultiplexing: evaluate the threaded-code set (sharing guard
    /// prefixes between members), then walk the priority-ordered matches
    /// applying the §3.2 deliver-to-lower rule.
    fn demux_ir(&mut self, packet: &[u8]) -> DemuxOutcome {
        let set = self.ir_set.as_mut().expect("IR engine selected");
        let (matches, stats) = set.matches_with_stats(PacketView::new(packet));
        let mut out = DemuxOutcome {
            ir_ops: stats.ops_executed,
            ..Default::default()
        };
        for &id in matches {
            let idx = id as PortIdx;
            out.accepted.push(idx);
            if !self.ports[idx].config.deliver_to_lower {
                break;
            }
        }
        for &idx in &out.accepted {
            self.ports[idx].accepts += 1;
        }
        out
    }

    /// Sharded demultiplexing: evaluate the value-numbered set (walking
    /// only the shard the packet's discriminating word selects), then walk
    /// the priority-ordered matches applying the §3.2 deliver-to-lower
    /// rule.
    fn demux_sharded(&mut self, packet: &[u8]) -> DemuxOutcome {
        let set = self.sharded.as_mut().expect("sharded engine selected");
        let (matches, stats) = set.matches_with_stats(PacketView::new(packet));
        let mut out = DemuxOutcome {
            ir_ops: stats.ops_executed,
            ..Default::default()
        };
        for &id in matches {
            let idx = id as PortIdx;
            out.accepted.push(idx);
            if !self.ports[idx].config.deliver_to_lower {
                break;
            }
        }
        for &idx in &out.accepted {
            self.ports[idx].accepts += 1;
        }
        out
    }

    /// Re-sorts the demultiplex order: priority descending; within a
    /// priority, busier filters first (when adaptive), then insertion
    /// order.
    fn resort(&mut self) {
        let ports = &self.ports;
        let adaptive = self.adaptive;
        self.order.sort_by(|&a, &b| {
            let (pa, pb) = (&ports[a], &ports[b]);
            let busy = if adaptive {
                pb.accepts.cmp(&pa.accepts)
            } else {
                core::cmp::Ordering::Equal
            };
            pb.priority()
                .cmp(&pa.priority())
                .then(busy)
                .then(pa.insertion.cmp(&pb.insertion))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_filter::samples;
    use pf_sim::time::SimTime;

    fn pkt(sock: u16) -> Vec<u8> {
        samples::pup_packet_3mb(2, 0, sock, 1)
    }

    fn recv(bytes: &[u8]) -> RecvPacket {
        RecvPacket {
            bytes: bytes.to_vec(),
            stamp: None,
            dropped_before: 0,
        }
    }

    fn dev_with(filters: Vec<FilterProgram>) -> PfDevice {
        let mut d = PfDevice::new();
        for (i, f) in filters.into_iter().enumerate() {
            let idx = d.open((ProcId(i), Fd(0)));
            d.set_filter(idx, f);
        }
        d
    }

    #[test]
    fn first_match_stops_by_default() {
        let mut d = dev_with(vec![
            samples::pup_socket_filter(10, 0, 35),
            samples::accept_all(5),
        ]);
        let out = d.demux(&pkt(35));
        assert_eq!(
            out.accepted,
            vec![0],
            "higher priority wins, no fall-through"
        );
        assert_eq!(out.applied.len(), 1, "stopped at first match");
    }

    #[test]
    fn falls_through_to_lower_priority_on_reject() {
        let mut d = dev_with(vec![
            samples::pup_socket_filter(10, 0, 35),
            samples::accept_all(5),
        ]);
        let out = d.demux(&pkt(99));
        assert_eq!(out.accepted, vec![1]);
        assert_eq!(out.applied.len(), 2);
    }

    #[test]
    fn priority_decides_between_overlapping_filters() {
        let mut d = dev_with(vec![
            samples::accept_all(5),
            samples::accept_all(20), // inserted later but higher priority
        ]);
        let out = d.demux(&pkt(1));
        assert_eq!(out.accepted, vec![1]);
    }

    #[test]
    fn equal_priority_insertion_order() {
        let mut d = dev_with(vec![samples::accept_all(10), samples::accept_all(10)]);
        let out = d.demux(&pkt(1));
        assert_eq!(out.accepted, vec![0]);
    }

    #[test]
    fn deliver_to_lower_produces_copies() {
        let mut d = PfDevice::new();
        let monitor = d.open((ProcId(0), Fd(0)));
        d.set_filter(monitor, samples::accept_all(30));
        d.port_mut(monitor).config.deliver_to_lower = true;
        let consumer = d.open((ProcId(1), Fd(0)));
        d.set_filter(consumer, samples::pup_socket_filter(10, 0, 35));
        let out = d.demux(&pkt(35));
        assert_eq!(out.accepted, vec![monitor, consumer], "both get a copy");
    }

    #[test]
    fn no_match_accepts_nobody() {
        let mut d = dev_with(vec![samples::pup_socket_filter(10, 0, 35)]);
        let out = d.demux(&pkt(36));
        assert!(out.accepted.is_empty());
        assert_eq!(out.applied.len(), 1);
        assert!(!out.applied[0].accepted);
    }

    #[test]
    fn port_without_filter_accepts_nothing() {
        let mut d = PfDevice::new();
        d.open((ProcId(0), Fd(0)));
        let out = d.demux(&pkt(1));
        assert!(out.accepted.is_empty());
        assert!(out.applied.is_empty(), "no filter, no interpretation work");
    }

    #[test]
    fn closed_port_is_skipped() {
        let mut d = dev_with(vec![samples::accept_all(10)]);
        d.close(0);
        assert_eq!(d.open_ports(), 0);
        let out = d.demux(&pkt(1));
        assert!(out.accepted.is_empty());
    }

    #[test]
    fn queue_limit_drops_and_counts() {
        let mut d = dev_with(vec![samples::accept_all(10)]);
        d.port_mut(0).config.max_queue = 2;
        assert!(d.port_mut(0).enqueue(recv(&pkt(1))));
        assert!(d.port_mut(0).enqueue(recv(&pkt(2))));
        assert!(!d.port_mut(0).enqueue(recv(&pkt(3))));
        assert_eq!(d.port(0).drops, 1);
        assert_eq!(d.port(0).queue.len(), 2);
    }

    #[test]
    fn adaptive_reorder_moves_busy_filter_first() {
        // Two equal-priority filters; the second one matches everything we
        // send. After REORDER_INTERVAL demuxes it must be tested first.
        let mut d = dev_with(vec![
            samples::pup_socket_filter(10, 0, 1),  // never matches below
            samples::pup_socket_filter(10, 0, 35), // always matches
        ]);
        assert_eq!(d.order(), &[0, 1]);
        for _ in 0..=REORDER_INTERVAL {
            let _ = d.demux(&pkt(35));
        }
        assert_eq!(d.order(), &[1, 0], "busier filter reordered to front");
        // And now the busy filter is applied first: one application only.
        let out = d.demux(&pkt(35));
        assert_eq!(out.applied.len(), 1);
        assert_eq!(out.applied[0].port, 1);
    }

    #[test]
    fn reorder_never_crosses_priority_levels() {
        let mut d = dev_with(vec![
            samples::pup_socket_filter(20, 0, 1), // high priority, never busy
            samples::accept_all(10),              // low priority, always busy
        ]);
        for _ in 0..=REORDER_INTERVAL {
            let _ = d.demux(&pkt(35));
        }
        assert_eq!(d.order(), &[0, 1], "priority dominates busyness");
    }

    #[test]
    fn rebinding_a_filter_is_allowed_any_time() {
        let mut d = dev_with(vec![samples::pup_socket_filter(10, 0, 35)]);
        assert_eq!(d.demux(&pkt(44)).accepted.len(), 0);
        d.set_filter(0, samples::pup_socket_filter(10, 0, 44));
        assert_eq!(d.demux(&pkt(44)).accepted, vec![0]);
    }

    #[test]
    fn port_lookup_by_owner() {
        let mut d = PfDevice::new();
        let a = d.open((ProcId(3), Fd(7)));
        assert_eq!(d.port_of((ProcId(3), Fd(7))), Some(a));
        assert_eq!(d.port_of((ProcId(3), Fd(8))), None);
        d.close(a);
        assert_eq!(d.port_of((ProcId(3), Fd(7))), None);
    }

    #[test]
    fn ir_engine_agrees_with_sequential() {
        let filters = vec![
            samples::pup_socket_filter(10, 0, 35),
            samples::pup_socket_filter(10, 0, 44),
            samples::accept_all(5),
            samples::fig_3_8_pup_type_range(),
        ];
        for sock in [35u16, 44, 99] {
            let mut seq = dev_with(filters.clone());
            seq.set_adaptive_reorder(false);
            let mut ir = dev_with(filters.clone());
            ir.set_adaptive_reorder(false);
            ir.set_engine(DemuxEngine::Ir);
            let p = pkt(sock);
            assert_eq!(seq.demux(&p).accepted, ir.demux(&p).accepted, "sock={sock}");
        }
    }

    #[test]
    fn ir_engine_reports_ops_and_shares_guards() {
        let mut d = dev_with(vec![
            samples::pup_socket_filter(10, 0, 35),
            samples::pup_socket_filter(10, 0, 44),
        ]);
        d.set_engine(DemuxEngine::Ir);
        assert_eq!(d.ir_shared_tests(), 1, "DstSocketHi == 0 guard shared");
        let out = d.demux(&pkt(35));
        assert_eq!(out.accepted, vec![0]);
        assert!(
            out.applied.is_empty(),
            "IR engine does not itemize applications"
        );
        assert!(out.ir_ops > 0, "threaded-code work is accounted");
    }

    #[test]
    fn ir_engine_tracks_filter_rebinding_and_close() {
        let mut d = dev_with(vec![samples::pup_socket_filter(10, 0, 35)]);
        d.set_engine(DemuxEngine::Ir);
        assert!(d.demux(&pkt(44)).accepted.is_empty());
        d.set_filter(0, samples::pup_socket_filter(10, 0, 44));
        assert_eq!(d.demux(&pkt(44)).accepted, vec![0]);
        d.close(0);
        assert!(d.demux(&pkt(44)).accepted.is_empty());
    }

    #[test]
    fn ir_engine_respects_deliver_to_lower() {
        let mut d = PfDevice::new();
        let monitor = d.open((ProcId(0), Fd(0)));
        d.set_filter(monitor, samples::accept_all(30));
        d.port_mut(monitor).config.deliver_to_lower = true;
        let consumer = d.open((ProcId(1), Fd(0)));
        d.set_filter(consumer, samples::pup_socket_filter(10, 0, 35));
        d.set_engine(DemuxEngine::Ir);
        let out = d.demux(&pkt(35));
        assert_eq!(out.accepted, vec![monitor, consumer]);
    }

    #[test]
    fn sharded_engine_agrees_with_sequential() {
        let filters = vec![
            samples::pup_socket_filter(10, 0, 35),
            samples::pup_socket_filter(10, 0, 44),
            samples::accept_all(5),
            samples::fig_3_8_pup_type_range(),
        ];
        for sock in [35u16, 44, 99] {
            let mut seq = dev_with(filters.clone());
            seq.set_adaptive_reorder(false);
            let mut sh = dev_with(filters.clone());
            sh.set_adaptive_reorder(false);
            sh.set_engine(DemuxEngine::Sharded);
            let p = pkt(sock);
            assert_eq!(seq.demux(&p).accepted, sh.demux(&p).accepted, "sock={sock}");
        }
    }

    #[test]
    fn sharded_engine_reports_ops_and_shards() {
        let mut d = dev_with(vec![
            samples::pup_socket_filter(10, 0, 35),
            samples::pup_socket_filter(10, 0, 44),
        ]);
        d.set_engine(DemuxEngine::Sharded);
        // Socket word discriminates: one shard per port; the hi-word and
        // ethertype tests are shared between both members.
        assert_eq!(d.sharded_shard_count(), 2);
        assert_eq!(d.sharded_shared_tests(), 2);
        let out = d.demux(&pkt(35));
        assert_eq!(out.accepted, vec![0]);
        assert!(
            out.applied.is_empty(),
            "sharded engine does not itemize applications"
        );
        assert!(out.ir_ops > 0, "value-numbered work is accounted");
    }

    #[test]
    fn sharded_engine_tracks_filter_rebinding_and_close() {
        let mut d = dev_with(vec![samples::pup_socket_filter(10, 0, 35)]);
        d.set_engine(DemuxEngine::Sharded);
        assert!(d.demux(&pkt(44)).accepted.is_empty());
        d.set_filter(0, samples::pup_socket_filter(10, 0, 44));
        assert_eq!(d.demux(&pkt(44)).accepted, vec![0]);
        d.close(0);
        assert!(d.demux(&pkt(44)).accepted.is_empty());
    }

    #[test]
    fn sharded_engine_respects_deliver_to_lower() {
        let mut d = PfDevice::new();
        let monitor = d.open((ProcId(0), Fd(0)));
        d.set_filter(monitor, samples::accept_all(30));
        d.port_mut(monitor).config.deliver_to_lower = true;
        let consumer = d.open((ProcId(1), Fd(0)));
        d.set_filter(consumer, samples::pup_socket_filter(10, 0, 35));
        d.set_engine(DemuxEngine::Sharded);
        let out = d.demux(&pkt(35));
        assert_eq!(out.accepted, vec![monitor, consumer]);
    }

    #[test]
    fn recv_packet_metadata_fields() {
        let p = RecvPacket {
            bytes: vec![1, 2],
            stamp: Some(SimTime(5)),
            dropped_before: 3,
        };
        assert_eq!(p.stamp, Some(SimTime(5)));
        assert_eq!(p.dropped_before, 3);
    }
}
