//! The packet-filter pseudo-device: ports, filters, and the
//! priority-ordered demultiplexing loop of figure 4-1.
//!
//! ```text
//! Accepted := false;
//! for priority := MaxPriority downto MinPriority do
//!     for i := FirstFilter[priority] to LastFilter[priority] do
//!         if Apply(Filter[i], rcvd-pkt) = MATCH then
//!             Deliver(Port[i], rcvd-pkt);
//!             Accepted := true;
//!         end;
//!     end;
//! end;
//! if not Accepted then Drop(rcvd-pkt);
//! ```
//!
//! (The published loop keeps testing after a match; §3.2 narrows this: a
//! packet accepted by a port is *not* submitted to further filters unless
//! the accepting port set the deliver-to-lower option. This module
//! implements the §3.2 semantics.)
//!
//! Within one priority level the order is unspecified, and "the interpreter
//! may occasionally reorder such filters to place the busier ones first" —
//! implemented here as a periodic stable re-sort by acceptance count.
//!
//! This module is independent of the event loop: it decides *which* ports
//! accept a packet and reports the interpretation work done, and the world
//! model (`crate::world`) turns that into virtual time and queue activity.

use crate::types::{Fd, OverflowPolicy, PortConfig, PortStats, ProcId, RecvPacket};
use pf_filter::dtree::FilterSet;
use pf_filter::error::{RuntimeError, ValidateError};
use pf_filter::interp::{CheckedInterpreter, EvalStats};
use pf_filter::packet::PacketView;
use pf_filter::program::FilterProgram;
use pf_filter::validate::ValidatedProgram;
use pf_filter::word::{BinaryOp, Instr, StackAction};
use pf_ir::geom::{required_constraints, GeomSet};
use pf_ir::set::{IrFilterSet, ShardedVnSet};
use pf_sim::rng::SplitMix64;
use pf_sim::time::SimTime;
use std::collections::{HashMap, HashSet, VecDeque};

/// The per-port member the [`DemuxEngine::Jit`] engine maintains. With the
/// `jit` feature it is pf-ir's template JIT (native code where the emitter
/// supports the target, threaded code otherwise); without the feature the
/// variant still exists and every member is plain threaded code, so
/// selecting the engine is always safe.
#[cfg(feature = "jit")]
type JitMember = pf_ir::JitFilter;
#[cfg(not(feature = "jit"))]
type JitMember = pf_ir::IrFilter;

/// Whether a JIT-engine member actually runs native code (always false
/// without the `jit` feature: the member is threaded code).
#[cfg(feature = "jit")]
fn member_is_jitted(m: &JitMember) -> bool {
    m.is_jitted()
}
#[cfg(not(feature = "jit"))]
fn member_is_jitted(_m: &JitMember) -> bool {
    false
}

/// How the device matches received packets against the active filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DemuxEngine {
    /// The paper's production loop (figure 4-1): interpret each filter in
    /// priority order until one accepts.
    #[default]
    Sequential,
    /// §7's proposal: "compile the set of active filters into a decision
    /// table, which should provide the best possible performance" — one
    /// hash probe per filter *shape*, with interpreted fallback for
    /// filters the analyzer cannot convert.
    DecisionTable,
    /// Filters compiled through the `pf-ir` CFG pipeline to threaded code,
    /// with guard-prefix tests shared (and memoized) across the set. Unlike
    /// the decision table this accepts *every* filter program.
    Ir,
    /// The IR pipeline plus set-level value numbering and a guard-keyed
    /// shard index: *every* word-equality test is shared (memoized once
    /// per packet) and a packet walks only the members its discriminating
    /// word selects. Accepts every filter program, like `Ir`.
    Sharded,
    /// The geometric (tuple-space) classifier: members indexed by the
    /// interval constraints their compiled code provably requires
    /// (`packet[word] ∈ [lo, hi]`; equality is the degenerate case),
    /// partitioned into `(word, range-class)` tuples with a sparse
    /// segment tree per range tuple. Port-*range* rules — which have no
    /// equality literal to shard on — still demultiplex in
    /// O(#tuples · log U) index work. Accepts every filter program,
    /// like `Ir` and `Sharded`.
    Geom,
    /// Each filter compiled to straight-line native code by pf-ir's
    /// template JIT (cargo feature `jit`), walked in priority order like
    /// the sequential loop. Members the emitter refuses — and the whole
    /// set when the feature is off or the target unsupported — degrade to
    /// per-member threaded code; verdicts never change, only speed.
    Jit,
}

/// How many demultiplex operations between adaptive re-sorts of
/// equal-priority filters ("occasionally").
pub const REORDER_INTERVAL: u64 = 256;

/// Index of a port within the device.
pub type PortIdx = usize;

/// Why a port's filter is quarantined (served by the checked interpreter
/// instead of being handed to the compiled demultiplexing engines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineReason {
    /// Bind-time validation rejected the program; the checked interpreter
    /// still evaluates it (short-circuit operators can accept a packet
    /// before reaching the defect), but the compiled engines never see it.
    Validation(ValidateError),
    /// An evaluation exceeded the device's instruction budget.
    BudgetExceeded,
}

/// What happened when a packet was offered to a port's input queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// The packet was queued; nothing was lost.
    Stored,
    /// The packet was queued after evicting the oldest queued packet
    /// ([`OverflowPolicy::DropOldest`]).
    StoredDroppingOldest,
    /// The queue was full and the arriving packet was dropped
    /// ([`OverflowPolicy::DropTail`]).
    Rejected,
}

/// A token-bucket admission quota: `rate_pps` packets per second
/// sustained, with bursts of up to `burst` packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionQuota {
    /// Sustained admission rate, packets per second.
    pub rate_pps: u64,
    /// Burst capacity, packets (also the bucket's initial fill).
    pub burst: u64,
}

/// Configuration of the pre-demux admission gate.
///
/// The gate is the cheap first line of overload defense: it classifies an
/// arriving frame with at most one packet-word probe (no filter runs) and
/// sheds best-effort traffic at the NIC when its port's token bucket is
/// empty. Classification uses each filter's *admission signature* — a
/// packet word the filter provably requires to fall in an interval
/// (`packet[word] ∈ [lo, hi]`): syntactically, a leading
/// `packet[word] == literal` `CAND` test (or single-test `EQ` program),
/// and for range filters the compiled code's required-interval analysis.
/// Filters without a signature, and packets matching no signature, are
/// never shed at the gate; the filter ladder remains the arbiter for
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Ports whose filter priority is at or above this are *protected*:
    /// the gate admits their traffic unconditionally.
    pub protected_priority: u8,
    /// Token bucket applied to every unprotected (best-effort) port that
    /// has no per-port override ([`PfDevice::set_port_quota`]).
    pub default_quota: AdmissionQuota,
    /// Mimicry defense: after this many gate-admitted frames attributed
    /// to a protected entry matched *no* filter
    /// ([`PfDevice::note_unmatched_admit`]), the entry re-selects its
    /// signature — it starts verifying every other word the protected
    /// filter provably requires, and sheds covered frames that fail the
    /// verification ([`AdmissionVerdict::ShedMimic`]). `None` (the
    /// default) disables re-selection; the gate behaves classically.
    pub mimicry_threshold: Option<u32>,
    /// Quota-gaming defense: a per-boot key that jitters every token
    /// bucket's *accumulation cap* per refill epoch (the cap walks
    /// pseudorandomly in `[burst/8, burst/2]`, keyed by this value, the
    /// port, and the epoch). Steady traffic at or under `rate_pps` is
    /// unaffected; on/off bursts tuned to the full-refill period lose
    /// most of their burst. `None` (the default) keeps the classic
    /// fixed-burst bucket.
    pub refill_jitter_key: Option<u64>,
}

impl Default for AdmissionConfig {
    /// Protect the top quarter of the priority space; give best-effort
    /// ports a generous default quota (shedding should require real
    /// overload, not a burst). Both adversary defenses start disabled.
    fn default() -> Self {
        AdmissionConfig {
            protected_priority: 192,
            default_quota: AdmissionQuota {
                rate_pps: 2_000,
                burst: 64,
            },
            mimicry_threshold: None,
            refill_jitter_key: None,
        }
    }
}

/// The admission gate's verdict on one arriving frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// Deliver the frame to the demultiplexer.
    Admit,
    /// Shed the frame at the NIC, charged to the named port's quota.
    Shed {
        /// The best-effort port whose empty bucket shed the frame.
        port: PortIdx,
    },
    /// Shed the frame at the NIC as a signature mimic: it wore a
    /// protected port's (re-selected) admission signature but failed a
    /// word the protected filter provably requires, and no other gate
    /// entry claimed it. Only possible after
    /// [`AdmissionConfig::mimicry_threshold`] triggered a re-selection.
    ShedMimic {
        /// The protected port whose signature the frame mimicked.
        port: PortIdx,
    },
}

/// Micro-tokens per token (integer token-bucket arithmetic stays exact
/// for any rate expressible in packets per second).
const MICRO_TOKENS: u64 = 1_000_000;

#[derive(Debug, Clone, Copy)]
struct TokenBucket {
    quota: AdmissionQuota,
    micro_tokens: u64,
    last_refill: SimTime,
    /// Refill jitter `(boot key, port salt)`
    /// ([`AdmissionConfig::refill_jitter_key`]); `None` keeps the classic
    /// fixed-burst cap.
    jitter: Option<(u64, u64)>,
}

impl TokenBucket {
    fn new(quota: AdmissionQuota) -> Self {
        TokenBucket {
            quota,
            micro_tokens: quota.burst * MICRO_TOKENS,
            last_refill: SimTime::ZERO,
            jitter: None,
        }
    }

    /// The accumulation cap in effect at `now`: the full burst, or — with
    /// jitter on — a keyed pseudorandom walk over `[burst/8, burst/2]`,
    /// re-sampled once per full-refill period. An attacker who knows the
    /// quota but not the boot key cannot predict how much burst any
    /// silent period banks.
    fn burst_cap(&self, now: SimTime) -> u64 {
        let Some((key, salt)) = self.jitter else {
            return self.quota.burst;
        };
        let period_ns = (self
            .quota
            .burst
            .saturating_mul(1_000_000_000)
            .checked_div(self.quota.rate_pps.max(1)))
        .unwrap_or(u64::MAX)
        .max(1);
        let epoch = now.as_nanos() / period_ns;
        let lo = (self.quota.burst / 8).max(1);
        let hi = (self.quota.burst / 2).max(lo);
        lo + SplitMix64::new(key ^ salt.rotate_left(32) ^ epoch).next_u64() % (hi - lo + 1)
    }

    /// Refills for the time since the last call and takes one token if
    /// available.
    fn admit(&mut self, now: SimTime) -> bool {
        let elapsed_ns = now.saturating_since(self.last_refill).as_nanos();
        self.last_refill = now;
        let gained = (u128::from(self.quota.rate_pps) * u128::from(elapsed_ns) / 1_000) as u64;
        self.micro_tokens = (self.micro_tokens.saturating_add(gained))
            .min(self.burst_cap(now).saturating_mul(MICRO_TOKENS));
        if self.micro_tokens >= MICRO_TOKENS {
            self.micro_tokens -= MICRO_TOKENS;
            true
        } else {
            false
        }
    }
}

#[derive(Debug)]
struct GateEntry {
    port: PortIdx,
    word: u8,
    /// Inclusive admitted interval for `packet[word]`; an exact-literal
    /// signature is the degenerate `lo == hi` case.
    lo: u16,
    hi: u16,
    protected: bool,
    bucket: TokenBucket,
    /// Re-selected signature: further `(word, lo, hi)` constraints the
    /// protected filter provably requires, verified before this entry
    /// admits. Empty until mimicry pressure triggers re-selection.
    verify: Vec<(u8, u16, u16)>,
    /// Gate-admitted frames attributed to this entry that matched no
    /// filter — the mimicry-pressure statistic driving re-selection.
    mimicry_misses: u32,
}

#[derive(Debug)]
struct AdmissionState {
    config: AdmissionConfig,
    /// Gate entries in demux (priority) order, one per open port whose
    /// filter has an extractable signature.
    entries: Vec<GateEntry>,
    /// Frames shed as signature mimics, cumulative.
    mimicry_sheds: u64,
    /// Gate-signature re-selections performed, cumulative.
    gate_resignatures: u64,
}

/// Extracts a filter's admission signature: the leading
/// `packet[word] == literal` test whose failure rejects the packet.
/// Also the soundness witness for RSS flow pinning (`crate::mc`): a
/// matching packet *must* carry `packet[word] == literal`.
pub(crate) fn admission_signature(f: &FilterProgram) -> Option<(u8, u16)> {
    let words = f.words();
    let first = Instr::decode(*words.first()?)?;
    let StackAction::PushWord(word) = first.action else {
        return None;
    };
    if first.op != BinaryOp::Nop {
        return None;
    }
    let second = Instr::decode(*words.get(1)?)?;
    let (literal, len) = match second.action {
        StackAction::PushLit => (*words.get(2)?, 3),
        StackAction::PushZero => (0, 2),
        _ => return None,
    };
    match second.op {
        // CAND: a mismatch terminates FALSE immediately, wherever the
        // test sits in the program.
        BinaryOp::Cand => Some((word, literal)),
        // EQ only rejects on mismatch when it is the whole program.
        BinaryOp::Eq if words.len() == len => Some((word, literal)),
        _ => None,
    }
}

/// A filter's candidate *interval* admission signatures: every packet
/// word its compiled code provably constrains to `[lo, hi]` (inclusive)
/// in order to accept. Each is a sound shedding witness — a packet the
/// filter accepts must satisfy it — so port-*range* filters, which have
/// no leading equality literal for [`admission_signature`], still get
/// gate entries. Trivial (full-domain) intervals and words outside the
/// gate's one-byte index are dropped.
pub(crate) fn admission_candidates(f: &FilterProgram) -> Vec<(u8, u16, u16)> {
    required_constraints(f)
        .into_iter()
        .filter(|iv| iv.word <= u16::from(u8::MAX) && (iv.lo, iv.hi) != (0, u16::MAX))
        .map(|iv| (iv.word as u8, iv.lo, iv.hi))
        .collect()
}

/// One port's gate-key candidates while the admission gate rebuilds: the
/// syntactic exact signature widened to a `(word, lo, hi)` interval (if
/// any), plus every provably required interval from
/// [`admission_candidates`].
type GateCandidate = (PortIdx, Option<(u8, u16, u16)>, Vec<(u8, u16, u16)>);

/// A pending blocked read on a port.
#[derive(Debug)]
pub struct PendingRead {
    /// Monotonic generation, so a stale timeout cannot complete a newer
    /// read.
    pub generation: u64,
    /// Handle of the scheduled timeout event, if any.
    pub timeout: Option<pf_sim::queue::EventHandle>,
}

/// One packet-filter port (a minor device a process opened).
#[derive(Debug)]
pub struct Port {
    /// The owning process and its descriptor for this port.
    pub owner: (ProcId, Fd),
    /// The bound filter; a port with no filter accepts nothing.
    pub filter: Option<FilterProgram>,
    /// Port configuration (§3.3).
    pub config: PortConfig,
    /// Queued packets awaiting a read.
    pub queue: VecDeque<RecvPacket>,
    /// The blocked read, if the owner is waiting.
    pub pending: Option<PendingRead>,
    /// Packets dropped because the queue was full (reported to readers).
    pub drops: u64,
    /// Packets this port's filter accepted (the adaptive-reorder "busyness").
    pub accepts: u64,
    /// Insertion sequence (stable tie-break within a priority).
    pub insertion: u64,
    /// Whether the port is open.
    pub open: bool,
    /// Read-generation counter.
    pub next_generation: u64,
    /// Why the filter is quarantined, if it is.
    pub quarantined: Option<QuarantineReason>,
    /// Evaluations of this port's filter terminated by the instruction
    /// budget.
    pub budget_overruns: u64,
    /// Per-port admission-quota override (`None`: the gate's default).
    pub quota: Option<AdmissionQuota>,
    /// Packets classified to this port but shed by the admission gate.
    pub admission_drops: u64,
    /// Whether a backpressure notification is outstanding (set when the
    /// queue crosses `config.backpressure_mark`, re-armed when it drains
    /// below the mark). Maintained by the world model.
    pub backpressured: bool,
}

impl Port {
    /// The filter's priority (ports with no filter sort last).
    pub fn priority(&self) -> u8 {
        self.filter.as_ref().map_or(0, |f| f.priority())
    }

    /// Offers a packet to the input queue, applying the port's
    /// [`OverflowPolicy`] when full. Every overflow increments `drops`,
    /// whichever packet loses.
    pub fn enqueue(&mut self, pkt: RecvPacket) -> EnqueueOutcome {
        if self.queue.len() < self.config.max_queue {
            self.queue.push_back(pkt);
            return EnqueueOutcome::Stored;
        }
        self.drops += 1;
        match self.config.overflow {
            OverflowPolicy::DropTail => EnqueueOutcome::Rejected,
            OverflowPolicy::DropOldest => {
                if self.queue.pop_front().is_none() {
                    // max_queue of zero: nothing to evict, nothing to keep.
                    return EnqueueOutcome::Rejected;
                }
                self.queue.push_back(pkt);
                EnqueueOutcome::StoredDroppingOldest
            }
        }
    }

    /// A status snapshot of this port (§3.3, plus degradation counters).
    pub fn stats(&self) -> PortStats {
        PortStats {
            drops: self.drops,
            accepts: self.accepts,
            queued: self.queue.len(),
            quarantined: self.quarantined.is_some(),
            budget_overruns: self.budget_overruns,
            admission_drops: self.admission_drops,
        }
    }
}

/// One filter application during a demultiplex.
#[derive(Debug, Clone, Copy)]
pub struct Application {
    /// The port whose filter was applied.
    pub port: PortIdx,
    /// Whether the filter accepted the packet.
    pub accepted: bool,
    /// Interpreter counters for cost accounting.
    pub stats: EvalStats,
}

/// One snapshot of the active engine's compiled state, replacing the
/// per-engine accessors (`table_shapes`, `ir_shared_tests`, …) with a
/// single struct so callers do not need to know which engine maintains
/// which counter. Counters an engine does not maintain read zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// The engine the snapshot describes.
    pub engine: DemuxEngine,
    /// Decision-table shapes (hash probes per packet); decision-table
    /// engine only.
    pub table_shapes: usize,
    /// Guard-prefix tests shared between members; IR engine only.
    pub ir_shared_tests: usize,
    /// Shards in the guard-keyed index (distinct discriminating-word
    /// literals); sharded engine only.
    pub sharded_shard_count: usize,
    /// Value-numbered tests shared between members; sharded engine only.
    pub sharded_shared_tests: usize,
    /// `(word, range-class)` tuples in the geometric index; geom engine
    /// only.
    pub geom_tuple_count: usize,
    /// Members with no provable interval constraint, walked on every
    /// packet; geom engine only.
    pub geom_residue: usize,
    /// Same-word interval overlaps detected across insertions (two
    /// members whose required intervals on the indexed word intersect);
    /// geom engine only.
    pub geom_overlaps: u64,
    /// Shadowing conflicts detected across insertions (a member whose
    /// indexed interval is contained in an equal-or-higher-priority
    /// member's); geom engine only.
    pub geom_shadows: u64,
    /// Open ports whose filters are quarantined (served by the checked
    /// interpreter under every engine).
    pub quarantined_ports: usize,
    /// JIT-engine members running native code (always zero without the
    /// `jit` feature or on targets the emitter does not support).
    pub jit_compiled: usize,
    /// JIT-engine members serving the threaded-code fallback.
    pub jit_fallback: usize,
    /// Frames shed at the gate as signature mimics (adversarial-drop
    /// attribution; never folded into `drops_admission`).
    pub drops_mimicry_shed: u64,
    /// Gate-signature re-selections performed under mimicry pressure.
    pub gate_resignature_events: u64,
    /// Geom candidates pruned by the per-packet candidate cap
    /// ([`PfDevice::set_geom_candidate_cap`]); geom engine only.
    pub geom_candidates_capped: u64,
}

/// The outcome of demultiplexing one received packet.
#[derive(Debug, Clone, Default)]
pub struct DemuxOutcome {
    /// Ports that accepted the packet, in delivery order.
    pub accepted: Vec<PortIdx>,
    /// Every filter application performed, in order. Empty under the
    /// decision-table and IR engines, which do not apply filters one at a
    /// time.
    pub applied: Vec<Application>,
    /// Threaded-code operations executed, when the IR engine handled the
    /// packet (the cost-accounting analogue of `applied`'s instruction
    /// counters).
    pub ir_ops: u32,
    /// Filters walked by the JIT engine (each a flat-cost native or
    /// threaded-code evaluation; quarantined fallbacks appear in `applied`
    /// instead).
    pub jit_filters: u32,
    /// Evaluations terminated by the instruction budget during this demux.
    pub budget_overruns: u32,
    /// Ports quarantined by this demux (first budget overrun).
    pub newly_quarantined: u32,
}

/// The packet-filter device of one host.
#[derive(Debug)]
pub struct PfDevice {
    ports: Vec<Port>,
    /// Demultiplex order: indices into `ports`, sorted by priority
    /// descending, then (periodically) busyness, then insertion.
    order: Vec<PortIdx>,
    demux_ops: u64,
    insertions: u64,
    adaptive: bool,
    engine: DemuxEngine,
    /// The compiled filter set, maintained when the decision-table engine
    /// is selected (keyed by port index).
    table: Option<FilterSet>,
    /// The IR-compiled filter set, maintained when the IR engine is
    /// selected (keyed by port index).
    ir_set: Option<IrFilterSet>,
    /// The sharded value-numbered set, maintained when the sharded engine
    /// is selected (keyed by port index).
    sharded: Option<ShardedVnSet>,
    /// The geometric tuple-space classifier, maintained when the geom
    /// engine is selected (keyed by port index).
    geom: Option<GeomSet>,
    /// The JIT-compiled members in demux order, maintained when the JIT
    /// engine is selected.
    jit_members: Option<Vec<(PortIdx, JitMember)>>,
    /// Test hook: refuse native emission so every JIT member takes the
    /// threaded-code fallback (inert without the `jit` feature, where
    /// members are threaded code anyway).
    jit_force_fallback: bool,
    interp: CheckedInterpreter,
    /// Per-evaluation instruction budget; `None` means unbounded. Enforced
    /// by the sequential engine on every filter and by every engine on
    /// quarantined (checked-fallback) filters.
    budget: Option<u32>,
    /// Overflow policy newly opened ports start with (a device-level
    /// default; each port's [`PortConfig`] can still override it).
    default_overflow: OverflowPolicy,
    /// The pre-demux admission gate, when enabled.
    admission: Option<AdmissionState>,
    /// Per-packet candidate bound applied to the geom engine
    /// ([`GeomSet::set_candidate_cap`]); survives engine rebuilds.
    geom_candidate_cap: Option<usize>,
}

impl Default for PfDevice {
    fn default() -> Self {
        Self::new()
    }
}

impl PfDevice {
    /// A device with no open ports; adaptive reordering on, sequential
    /// engine (the paper's production configuration).
    pub fn new() -> Self {
        PfDevice {
            ports: Vec::new(),
            order: Vec::new(),
            demux_ops: 0,
            insertions: 0,
            adaptive: true,
            engine: DemuxEngine::Sequential,
            table: None,
            ir_set: None,
            sharded: None,
            geom: None,
            jit_members: None,
            jit_force_fallback: false,
            interp: CheckedInterpreter::default(),
            budget: None,
            default_overflow: OverflowPolicy::default(),
            admission: None,
            geom_candidate_cap: None,
        }
    }

    /// A builder configuring the device up front (engine, instruction
    /// budget, adaptive reordering, default overflow policy) instead of
    /// mutating a fresh device with the individual setters.
    pub fn builder() -> PfDeviceBuilder {
        PfDeviceBuilder::default()
    }

    /// Sets (or clears) the per-evaluation instruction budget. A filter
    /// whose evaluation exceeds the budget rejects the packet and is
    /// quarantined: excluded from the compiled engines and served by the
    /// budgeted checked interpreter from then on.
    ///
    /// The filter language has no branches, so a program's static
    /// instruction count is its exact worst case; ports whose bound filter
    /// *could* exceed the new budget are quarantined immediately (their
    /// verdicts are unchanged — the budgeted fallback only faults on
    /// evaluations that actually run over). Returns how many ports this
    /// call quarantined.
    pub fn set_instruction_budget(&mut self, budget: Option<u32>) -> u32 {
        self.budget = budget;
        let mut newly = 0;
        if let Some(b) = budget {
            for p in &mut self.ports {
                if !p.open || p.quarantined.is_some() {
                    continue;
                }
                let Some(f) = &p.filter else { continue };
                let overlong =
                    ValidatedProgram::new(f.clone()).is_ok_and(|v| v.instructions() > b as usize);
                if overlong {
                    p.quarantined = Some(QuarantineReason::BudgetExceeded);
                    newly += 1;
                }
            }
        }
        if newly > 0 {
            self.rebuild_engine_state();
        }
        newly
    }

    /// The per-evaluation instruction budget, if one is set.
    pub fn instruction_budget(&self) -> Option<u32> {
        self.budget
    }

    /// Enables (or, with `None`, disables) the pre-demux admission gate.
    pub fn set_admission_control(&mut self, config: Option<AdmissionConfig>) {
        self.admission = config.map(|config| AdmissionState {
            config,
            entries: Vec::new(),
            mimicry_sheds: 0,
            gate_resignatures: 0,
        });
        self.rebuild_gate();
    }

    /// The admission gate's configuration, when enabled.
    pub fn admission_control(&self) -> Option<AdmissionConfig> {
        self.admission.as_ref().map(|s| s.config)
    }

    /// Overrides (or, with `None`, restores the default for) one port's
    /// admission quota.
    pub fn set_port_quota(&mut self, idx: PortIdx, quota: Option<AdmissionQuota>) {
        if let Some(p) = self.ports.get_mut(idx) {
            p.quota = quota;
        }
        self.rebuild_gate();
    }

    /// Offers one arriving frame to the admission gate ahead of demux.
    ///
    /// With the gate disabled every frame is admitted. Otherwise the frame
    /// is classified by the first admission signature it matches, in demux
    /// order: protected ports admit unconditionally, best-effort ports
    /// charge their token bucket and shed the frame (drop-at-NIC) when it
    /// is empty. Unclassifiable frames are always admitted — the gate only
    /// ever sheds traffic it can attribute to a port.
    pub fn admit(&mut self, packet: &[u8], now: SimTime) -> AdmissionVerdict {
        let Some(state) = &mut self.admission else {
            return AdmissionVerdict::Admit;
        };
        let view = PacketView::new(packet);
        let mut mimic: Option<PortIdx> = None;
        for e in &mut state.entries {
            let covered = view
                .word(usize::from(e.word))
                .is_some_and(|w| e.lo <= w && w <= e.hi);
            if !covered {
                continue;
            }
            if e.protected && !e.verify.is_empty() {
                let verified = e.verify.iter().all(|&(w, lo, hi)| {
                    view.word(usize::from(w))
                        .is_some_and(|v| lo <= v && v <= hi)
                });
                if !verified {
                    // Wears this protected entry's primary signature but
                    // fails a word the protected filter provably requires:
                    // a suspected mimic. Let a later entry claim the frame;
                    // shed it only if none does.
                    mimic.get_or_insert(e.port);
                    continue;
                }
            }
            if e.protected || e.bucket.admit(now) {
                return AdmissionVerdict::Admit;
            }
            self.ports[e.port].admission_drops += 1;
            return AdmissionVerdict::Shed { port: e.port };
        }
        if let Some(port) = mimic {
            state.mimicry_sheds += 1;
            return AdmissionVerdict::ShedMimic { port };
        }
        AdmissionVerdict::Admit
    }

    /// Reports that a gate-admitted frame went on to match *no* filter —
    /// the feedback signal behind gate-signature re-selection. The first
    /// protected entry whose primary signature covers the frame takes a
    /// mimicry-pressure mark; once the marks reach
    /// [`AdmissionConfig::mimicry_threshold`], the entry re-selects its
    /// signature to also verify every other word the protected filter
    /// provably requires. Returns whether this call performed a
    /// re-selection. No-op (and `false`) when the gate is off, the
    /// threshold is `None`, no protected entry covers the frame, or the
    /// protected filter requires no other word (a single-word signature
    /// cannot be strengthened — an honest residual weakness).
    pub fn note_unmatched_admit(&mut self, packet: &[u8]) -> bool {
        let Some(state) = &mut self.admission else {
            return false;
        };
        let Some(threshold) = state.config.mimicry_threshold else {
            return false;
        };
        let view = PacketView::new(packet);
        for i in 0..state.entries.len() {
            let e = &state.entries[i];
            if !e.protected {
                continue;
            }
            let covered = view
                .word(usize::from(e.word))
                .is_some_and(|w| e.lo <= w && w <= e.hi);
            if !covered {
                continue;
            }
            let (port, word) = (e.port, e.word);
            state.entries[i].mimicry_misses += 1;
            if state.entries[i].mimicry_misses >= threshold && state.entries[i].verify.is_empty() {
                let Some(f) = &self.ports[port].filter else {
                    return false;
                };
                let verify: Vec<(u8, u16, u16)> = admission_candidates(f)
                    .into_iter()
                    .filter(|&(w, _, _)| w != word)
                    .collect();
                if !verify.is_empty() {
                    state.entries[i].verify = verify;
                    state.gate_resignatures += 1;
                    return true;
                }
            }
            return false;
        }
        false
    }

    /// Rebuilds the gate's per-port entries (after open/close/bind/quota
    /// changes), carrying over bucket fill for ports whose quota is
    /// unchanged so a rebind cannot mint free burst capacity.
    ///
    /// (See [`GateCandidate`] for the per-port intermediate shape.)
    ///
    /// Each port contributes one entry. The syntactic equality signature
    /// is preferred when present (it is the leading test the program
    /// itself sheds on); a filter without one — a port-range filter —
    /// falls back to its provably required intervals, choosing the word
    /// with the most distinct intervals across the whole gate (the
    /// geometric classifier's diversity score: a word that distinguishes
    /// ports classifies better than a narrow guard they all share), then
    /// the narrowest interval, then the lowest word.
    fn rebuild_gate(&mut self) {
        let Some(AdmissionState {
            config,
            entries,
            mimicry_sheds,
            gate_resignatures,
        }) = self.admission.take()
        else {
            return;
        };
        let mut cands: Vec<GateCandidate> = Vec::new();
        for &idx in &self.order {
            let Some(f) = &self.ports[idx].filter else {
                continue;
            };
            let exact = admission_signature(f).map(|(w, l)| (w, l, l));
            let ranged = admission_candidates(f);
            if exact.is_some() || !ranged.is_empty() {
                cands.push((idx, exact, ranged));
            }
        }
        let mut diversity: HashMap<u8, HashSet<(u16, u16)>> = HashMap::new();
        for (_, exact, ranged) in &cands {
            for &(w, lo, hi) in exact.iter().chain(ranged) {
                diversity.entry(w).or_default().insert((lo, hi));
            }
        }
        let mut rebuilt = Vec::new();
        for (idx, exact, ranged) in cands {
            let chosen = exact.or_else(|| {
                ranged.into_iter().max_by_key(|&(w, lo, hi)| {
                    (
                        diversity.get(&w).map_or(0, HashSet::len),
                        core::cmp::Reverse(hi - lo),
                        core::cmp::Reverse(w),
                    )
                })
            });
            let Some((word, lo, hi)) = chosen else {
                continue;
            };
            let p = &self.ports[idx];
            let quota = p.quota.unwrap_or(config.default_quota);
            let prior = entries.iter().find(|e| e.port == idx);
            let mut bucket = prior
                .filter(|e| e.bucket.quota == quota)
                .map_or_else(|| TokenBucket::new(quota), |e| e.bucket);
            bucket.jitter = config.refill_jitter_key.map(|key| (key, idx as u64));
            // A re-selected signature is only meaningful relative to the
            // primary word it strengthens: carry it (and the pressure
            // marks) over iff the chosen word is unchanged.
            let (verify, mimicry_misses) = prior
                .filter(|e| e.word == word)
                .map_or((Vec::new(), 0), |e| (e.verify.clone(), e.mimicry_misses));
            rebuilt.push(GateEntry {
                port: idx,
                word,
                lo,
                hi,
                protected: p.priority() >= config.protected_priority,
                bucket,
                verify,
                mimicry_misses,
            });
        }
        self.admission = Some(AdmissionState {
            config,
            entries: rebuilt,
            mimicry_sheds,
            gate_resignatures,
        });
    }

    /// A snapshot of the active engine's compiled state: every per-engine
    /// counter lives in one struct, and counters the active engine does
    /// not maintain read zero.
    pub fn engine_stats(&self) -> EngineStats {
        let (jit_compiled, jit_fallback) = self.jit_members.as_ref().map_or((0, 0), |ms| {
            let compiled = ms.iter().filter(|(_, m)| member_is_jitted(m)).count();
            (compiled, ms.len() - compiled)
        });
        EngineStats {
            engine: self.engine,
            table_shapes: self.table.as_ref().map_or(0, |t| t.shape_count()),
            ir_shared_tests: self.ir_set.as_ref().map_or(0, |s| s.shared_tests()),
            sharded_shard_count: self.sharded.as_ref().map_or(0, |s| s.shard_count()),
            sharded_shared_tests: self.sharded.as_ref().map_or(0, |s| s.shared_tests()),
            geom_tuple_count: self.geom.as_ref().map_or(0, |g| g.tuple_count()),
            geom_residue: self.geom.as_ref().map_or(0, |g| g.residue_len()),
            geom_overlaps: self.geom.as_ref().map_or(0, |g| g.overlap_count()),
            geom_shadows: self.geom.as_ref().map_or(0, |g| g.shadow_count()),
            quarantined_ports: self
                .order
                .iter()
                .filter(|&&i| self.ports[i].quarantined.is_some())
                .count(),
            jit_compiled,
            jit_fallback,
            drops_mimicry_shed: self.admission.as_ref().map_or(0, |s| s.mimicry_sheds),
            gate_resignature_events: self.admission.as_ref().map_or(0, |s| s.gate_resignatures),
            geom_candidates_capped: self.geom.as_ref().map_or(0, |g| g.candidates_capped()),
        }
    }

    /// Selects the demultiplexing engine (§4's interpreter loop, §7's
    /// decision table, or the pf-ir threaded-code compiler).
    pub fn set_engine(&mut self, engine: DemuxEngine) {
        self.engine = engine;
        self.table = None;
        self.ir_set = None;
        self.sharded = None;
        self.geom = None;
        self.jit_members = None;
        self.rebuild_engine_state();
    }

    /// The active demultiplexing engine.
    pub fn engine(&self) -> DemuxEngine {
        self.engine
    }

    fn rebuild_table(&mut self) {
        let mut set = FilterSet::new();
        // Insert in demux order so same-priority insertion ties match the
        // sequential loop's stable order. Quarantined ports never reach the
        // compiled set; `demux` serves them through the checked interpreter.
        for &idx in &self.order {
            if self.ports[idx].quarantined.is_some() {
                continue;
            }
            if let Some(f) = &self.ports[idx].filter {
                set.insert(idx as u32, f.clone());
            }
        }
        self.table = Some(set);
    }

    fn rebuild_ir_set(&mut self) {
        let mut set = IrFilterSet::new();
        // Same demux-order insertion (and quarantine exclusion) as
        // `rebuild_table`.
        for &idx in &self.order {
            if self.ports[idx].quarantined.is_some() {
                continue;
            }
            if let Some(f) = &self.ports[idx].filter {
                set.insert(idx as u32, f.clone());
            }
        }
        self.ir_set = Some(set);
    }

    fn rebuild_sharded(&mut self) {
        let mut set = ShardedVnSet::new();
        // Same demux-order insertion (and quarantine exclusion) as
        // `rebuild_table`.
        for &idx in &self.order {
            if self.ports[idx].quarantined.is_some() {
                continue;
            }
            if let Some(f) = &self.ports[idx].filter {
                set.insert(idx as u32, f.clone());
            }
        }
        self.sharded = Some(set);
    }

    fn rebuild_geom(&mut self) {
        let mut set = GeomSet::new();
        set.set_candidate_cap(self.geom_candidate_cap);
        // Same demux-order insertion (and quarantine exclusion) as
        // `rebuild_table`.
        for &idx in &self.order {
            if self.ports[idx].quarantined.is_some() {
                continue;
            }
            if let Some(f) = &self.ports[idx].filter {
                set.insert(idx as u32, f.clone());
            }
        }
        self.geom = Some(set);
    }

    /// Bounds candidates evaluated per packet under the geom engine
    /// (`None` removes the bound — the default). The cap prunes the
    /// priority-sorted candidate list, so only the lowest-priority
    /// candidates are shed; the overlap-bomb mitigation for hostile
    /// wide-overlap filter populations. Inert under every other engine.
    pub fn set_geom_candidate_cap(&mut self, cap: Option<usize>) {
        self.geom_candidate_cap = cap;
        if let Some(g) = &mut self.geom {
            g.set_candidate_cap(cap);
        }
    }

    /// The configured geom per-packet candidate bound, if any.
    pub fn geom_candidate_cap(&self) -> Option<usize> {
        self.geom_candidate_cap
    }

    /// Compiles one port's validated filter into a JIT-engine member,
    /// honoring the forced-fallback test hook.
    #[cfg(feature = "jit")]
    fn compile_jit_member(&self, v: &ValidatedProgram) -> JitMember {
        if self.jit_force_fallback {
            JitMember::from_validated_forced_fallback(v)
        } else {
            JitMember::from_validated(v)
        }
    }

    #[cfg(not(feature = "jit"))]
    fn compile_jit_member(&self, v: &ValidatedProgram) -> JitMember {
        // Without the feature the knob is inert: every member is already
        // the threaded-code fallback.
        let _ = self.jit_force_fallback;
        JitMember::from_validated(v)
    }

    fn rebuild_jit(&mut self) {
        // Same demux-order insertion (and quarantine exclusion) as
        // `rebuild_table`. Non-quarantined filters validated at bind time,
        // so re-validation here only fails for programs quarantined since;
        // those are skipped (the merged walk serves them).
        let mut members = Vec::new();
        for &idx in &self.order {
            if self.ports[idx].quarantined.is_some() {
                continue;
            }
            let Some(f) = &self.ports[idx].filter else {
                continue;
            };
            if let Ok(v) = ValidatedProgram::new(f.clone()) {
                members.push((idx, self.compile_jit_member(&v)));
            }
        }
        self.jit_members = Some(members);
    }

    /// Rebuilds whichever compiled set the active engine maintains.
    fn rebuild_engine_state(&mut self) {
        match self.engine {
            DemuxEngine::Sequential => {}
            DemuxEngine::DecisionTable => self.rebuild_table(),
            DemuxEngine::Ir => self.rebuild_ir_set(),
            DemuxEngine::Sharded => self.rebuild_sharded(),
            DemuxEngine::Geom => self.rebuild_geom(),
            DemuxEngine::Jit => self.rebuild_jit(),
        }
    }

    /// Enables or disables adaptive same-priority reordering (§3.2).
    pub fn set_adaptive_reorder(&mut self, on: bool) {
        self.adaptive = on;
        if !on {
            // Restore pure (priority, insertion) order.
            let ports = &self.ports;
            self.order.sort_by(|&a, &b| {
                let (pa, pb) = (&ports[a], &ports[b]);
                pb.priority()
                    .cmp(&pa.priority())
                    .then(pa.insertion.cmp(&pb.insertion))
            });
        }
    }

    /// Opens a new port owned by `(proc, fd)` and returns its index.
    pub fn open(&mut self, owner: (ProcId, Fd)) -> PortIdx {
        let idx = self.ports.len();
        self.ports.push(Port {
            owner,
            filter: None,
            config: PortConfig {
                overflow: self.default_overflow,
                ..PortConfig::default()
            },
            queue: VecDeque::new(),
            pending: None,
            drops: 0,
            accepts: 0,
            insertion: self.insertions,
            open: true,
            next_generation: 0,
            quarantined: None,
            budget_overruns: 0,
            quota: None,
            admission_drops: 0,
            backpressured: false,
        });
        self.insertions += 1;
        self.order.push(idx);
        self.resort();
        self.rebuild_engine_state();
        self.rebuild_gate();
        idx
    }

    /// Closes a port; its queue is discarded.
    pub fn close(&mut self, idx: PortIdx) {
        if let Some(p) = self.ports.get_mut(idx) {
            p.open = false;
            p.queue.clear();
            p.pending = None;
            p.filter = None;
            p.quarantined = None;
        }
        self.order.retain(|&o| o != idx);
        self.rebuild_engine_state();
        self.rebuild_gate();
    }

    /// Binds (replaces) the filter on a port. "A new filter can be bound at
    /// any time" (§3.1).
    ///
    /// The program is validated at bind time; one that fails validation is
    /// still bound but *quarantined* — the compiled engines never see it,
    /// and the checked interpreter serves it in priority position (a defect
    /// degrades that one port's cost, never the demultiplexer). Returns
    /// `false` when the bind quarantined the filter. Rebinding clears a
    /// previous quarantine, including one earned by exceeding the
    /// instruction budget.
    pub fn set_filter(&mut self, idx: PortIdx, filter: FilterProgram) -> bool {
        let mut clean = true;
        let budget = self.budget;
        if let Some(p) = self.ports.get_mut(idx) {
            p.quarantined = match ValidatedProgram::new(filter.clone()) {
                Ok(v) => {
                    // Branch-free programs have a static worst case; one
                    // that could exceed the budget never reaches the
                    // compiled engines.
                    if budget.is_some_and(|b| v.instructions() > b as usize) {
                        clean = false;
                        Some(QuarantineReason::BudgetExceeded)
                    } else {
                        None
                    }
                }
                Err(e) => {
                    clean = false;
                    Some(QuarantineReason::Validation(e))
                }
            };
            p.filter = Some(filter);
            p.accepts = 0;
            p.budget_overruns = 0;
        }
        self.resort();
        self.rebuild_engine_state();
        self.rebuild_gate();
        clean
    }

    /// Access a port.
    ///
    /// # Panics
    ///
    /// Panics on an unknown index.
    pub fn port(&self, idx: PortIdx) -> &Port {
        &self.ports[idx]
    }

    /// Mutable access to a port.
    ///
    /// # Panics
    ///
    /// Panics on an unknown index.
    pub fn port_mut(&mut self, idx: PortIdx) -> &mut Port {
        &mut self.ports[idx]
    }

    /// The port owned by `(proc, fd)`, if any.
    pub fn port_of(&self, owner: (ProcId, Fd)) -> Option<PortIdx> {
        self.ports.iter().position(|p| p.open && p.owner == owner)
    }

    /// Number of open ports.
    pub fn open_ports(&self) -> usize {
        self.order.len()
    }

    /// The current demultiplex order (for tests and introspection).
    pub fn order(&self) -> &[PortIdx] {
        &self.order
    }

    /// Demultiplexes one received packet: applies filters in priority order
    /// until one accepts (continuing past accepting ports that set
    /// `deliver_to_lower`), recording every application.
    ///
    /// Queueing is *not* performed here — the world model enqueues to the
    /// accepted ports so it can charge bookkeeping costs and handle wakeups.
    pub fn demux(&mut self, packet: &[u8]) -> DemuxOutcome {
        self.demux_ops += 1;
        match self.engine {
            DemuxEngine::Sequential => {}
            DemuxEngine::DecisionTable => return self.demux_table(packet),
            DemuxEngine::Ir => return self.demux_ir(packet),
            DemuxEngine::Sharded => return self.demux_sharded(packet),
            DemuxEngine::Geom => return self.demux_geom(packet),
            DemuxEngine::Jit => return self.demux_jit(packet),
        }
        if self.adaptive && self.demux_ops.is_multiple_of(REORDER_INTERVAL) {
            self.resort();
        }
        let mut out = DemuxOutcome::default();
        let mut i = 0;
        while i < self.order.len() {
            let idx = self.order[i];
            i += 1;
            let Some((accepted, stats)) = self.eval_checked(idx, packet, &mut out) else {
                continue;
            };
            out.applied.push(Application {
                port: idx,
                accepted,
                stats,
            });
            if accepted {
                out.accepted.push(idx);
                if !self.ports[idx].config.deliver_to_lower {
                    break;
                }
            }
        }
        for &idx in &out.accepted {
            self.ports[idx].accepts += 1;
        }
        out
    }

    /// Demultiplexes a batch of received packets, element `i` of the
    /// result identical to what `demux(packets[i])` would return (same
    /// outcomes, same `demux_ops`/per-port `accepts` bookkeeping).
    ///
    /// The compiled engines (decision-table, sharded, JIT) evaluate the
    /// whole batch through their set's batch walk, amortizing dispatch
    /// and shard-lookup work. The sequential engine and any configuration
    /// with quarantined ports fall back to per-frame demultiplexing: the
    /// sequential path's adaptive resort and the quarantine merge are
    /// stateful per frame, and splitting them across a batch would change
    /// observable behavior.
    pub fn demux_batch(&mut self, packets: &[&[u8]]) -> Vec<DemuxOutcome> {
        if packets.len() <= 1
            || self.any_quarantined()
            || matches!(self.engine, DemuxEngine::Sequential | DemuxEngine::Ir)
        {
            return packets.iter().map(|p| self.demux(p)).collect();
        }
        self.demux_ops += packets.len() as u64;
        match self.engine {
            DemuxEngine::DecisionTable => {
                let table = self.table.as_ref().expect("table engine selected");
                let views: Vec<PacketView<'_>> =
                    packets.iter().map(|p| PacketView::new(p)).collect();
                let all = table.matches_batch(&views);
                all.into_iter()
                    .map(|matches| {
                        let mut out = DemuxOutcome::default();
                        self.deliver_matches(matches.into_iter().map(|id| id as PortIdx), &mut out);
                        out
                    })
                    .collect()
            }
            DemuxEngine::Sharded => {
                let set = self.sharded.as_mut().expect("sharded engine selected");
                let views: Vec<PacketView<'_>> =
                    packets.iter().map(|p| PacketView::new(p)).collect();
                let (all, stats) = set.matches_batch_with_stats(&views);
                all.into_iter()
                    .zip(stats)
                    .map(|(matches, s)| {
                        let mut out = DemuxOutcome {
                            ir_ops: s.ops_executed,
                            ..Default::default()
                        };
                        self.deliver_matches(matches.into_iter().map(|id| id as PortIdx), &mut out);
                        out
                    })
                    .collect()
            }
            DemuxEngine::Geom => {
                let set = self.geom.as_mut().expect("geom engine selected");
                let views: Vec<PacketView<'_>> =
                    packets.iter().map(|p| PacketView::new(p)).collect();
                let (all, stats) = set.matches_batch_with_stats(&views);
                all.into_iter()
                    .zip(stats)
                    .map(|(matches, s)| {
                        let mut out = DemuxOutcome {
                            ir_ops: s.ops_executed,
                            ..Default::default()
                        };
                        self.deliver_matches(matches.into_iter().map(|id| id as PortIdx), &mut out);
                        out
                    })
                    .collect()
            }
            DemuxEngine::Jit => {
                let members = self.jit_members.take().expect("JIT engine selected");
                let outs = packets
                    .iter()
                    .map(|p| {
                        let mut out = DemuxOutcome {
                            jit_filters: members.len() as u32,
                            ..Default::default()
                        };
                        let matched = members
                            .iter()
                            .filter(|(_, m)| m.eval(PacketView::new(p)))
                            .map(|&(idx, _)| idx);
                        self.deliver_matches(matched, &mut out);
                        out
                    })
                    .collect();
                self.jit_members = Some(members);
                outs
            }
            DemuxEngine::Sequential | DemuxEngine::Ir => unreachable!("handled above"),
        }
    }

    /// Applies the §3.2 deliver-to-lower rule to a priority-ordered match
    /// list and records the per-port accept bookkeeping — the common tail
    /// of every unquarantined compiled-engine demux.
    fn deliver_matches(&mut self, matches: impl Iterator<Item = PortIdx>, out: &mut DemuxOutcome) {
        for idx in matches {
            out.accepted.push(idx);
            if !self.ports[idx].config.deliver_to_lower {
                break;
            }
        }
        for &idx in &out.accepted {
            self.ports[idx].accepts += 1;
        }
    }

    /// Evaluates one port's filter with the (budgeted) checked interpreter,
    /// handling budget exhaustion: the overrun is counted and the port is
    /// quarantined on its first overrun. `None` if the port has no filter.
    fn eval_checked(
        &mut self,
        idx: PortIdx,
        packet: &[u8],
        out: &mut DemuxOutcome,
    ) -> Option<(bool, EvalStats)> {
        let filter = self.ports[idx].filter.as_ref()?;
        let view = PacketView::new(packet);
        let (accepted, stats) = match self.budget {
            Some(b) => self.interp.eval_budgeted(filter, view, b),
            None => self.interp.eval_with_stats(filter, view),
        };
        if matches!(stats.error, Some(RuntimeError::BudgetExceeded { .. })) {
            out.budget_overruns += 1;
            let p = &mut self.ports[idx];
            p.budget_overruns += 1;
            if p.quarantined.is_none() {
                p.quarantined = Some(QuarantineReason::BudgetExceeded);
                out.newly_quarantined += 1;
                // Evict the offender from whichever compiled set the
                // active engine maintains.
                self.rebuild_engine_state();
            }
        }
        Some((accepted, stats))
    }

    /// Walks the demux order merging compiled-set verdicts with checked
    /// evaluations of quarantined ports (which the compiled sets exclude),
    /// preserving priority order and the §3.2 deliver-to-lower rule.
    fn merge_quarantined(&mut self, matched: &[PortIdx], packet: &[u8], out: &mut DemuxOutcome) {
        let mut i = 0;
        while i < self.order.len() {
            let idx = self.order[i];
            i += 1;
            let accepted = if self.ports[idx].quarantined.is_some() {
                let Some((accepted, stats)) = self.eval_checked(idx, packet, out) else {
                    continue;
                };
                out.applied.push(Application {
                    port: idx,
                    accepted,
                    stats,
                });
                accepted
            } else {
                matched.contains(&idx)
            };
            if accepted {
                out.accepted.push(idx);
                if !self.ports[idx].config.deliver_to_lower {
                    break;
                }
            }
        }
        for &idx in &out.accepted {
            self.ports[idx].accepts += 1;
        }
    }

    /// Whether any open port is quarantined (the compiled engines then need
    /// the merged walk).
    fn any_quarantined(&self) -> bool {
        self.order
            .iter()
            .any(|&i| self.ports[i].quarantined.is_some())
    }

    /// Decision-table demultiplexing: probe the compiled set, then walk the
    /// priority-ordered matches applying the §3.2 deliver-to-lower rule.
    fn demux_table(&mut self, packet: &[u8]) -> DemuxOutcome {
        let table = self.table.as_ref().expect("table engine selected");
        let matches = table.matches(PacketView::new(packet));
        let mut out = DemuxOutcome::default();
        if self.any_quarantined() {
            let matched: Vec<PortIdx> = matches.iter().map(|&id| id as PortIdx).collect();
            self.merge_quarantined(&matched, packet, &mut out);
            return out;
        }
        for id in matches {
            let idx = id as PortIdx;
            out.accepted.push(idx);
            if !self.ports[idx].config.deliver_to_lower {
                break;
            }
        }
        for &idx in &out.accepted {
            self.ports[idx].accepts += 1;
        }
        out
    }

    /// IR demultiplexing: evaluate the threaded-code set (sharing guard
    /// prefixes between members), then walk the priority-ordered matches
    /// applying the §3.2 deliver-to-lower rule.
    fn demux_ir(&mut self, packet: &[u8]) -> DemuxOutcome {
        let quarantined = self.any_quarantined();
        let set = self.ir_set.as_mut().expect("IR engine selected");
        let (matches, stats) = set.matches_with_stats(PacketView::new(packet));
        let mut out = DemuxOutcome {
            ir_ops: stats.ops_executed,
            ..Default::default()
        };
        if quarantined {
            let matched: Vec<PortIdx> = matches.iter().map(|&id| id as PortIdx).collect();
            self.merge_quarantined(&matched, packet, &mut out);
            return out;
        }
        for &id in matches {
            let idx = id as PortIdx;
            out.accepted.push(idx);
            if !self.ports[idx].config.deliver_to_lower {
                break;
            }
        }
        for &idx in &out.accepted {
            self.ports[idx].accepts += 1;
        }
        out
    }

    /// Sharded demultiplexing: evaluate the value-numbered set (walking
    /// only the shard the packet's discriminating word selects), then walk
    /// the priority-ordered matches applying the §3.2 deliver-to-lower
    /// rule.
    fn demux_sharded(&mut self, packet: &[u8]) -> DemuxOutcome {
        let quarantined = self.any_quarantined();
        let set = self.sharded.as_mut().expect("sharded engine selected");
        let (matches, stats) = set.matches_with_stats(PacketView::new(packet));
        let mut out = DemuxOutcome {
            ir_ops: stats.ops_executed,
            ..Default::default()
        };
        if quarantined {
            let matched: Vec<PortIdx> = matches.iter().map(|&id| id as PortIdx).collect();
            self.merge_quarantined(&matched, packet, &mut out);
            return out;
        }
        for &id in matches {
            let idx = id as PortIdx;
            out.accepted.push(idx);
            if !self.ports[idx].config.deliver_to_lower {
                break;
            }
        }
        for &idx in &out.accepted {
            self.ports[idx].accepts += 1;
        }
        out
    }

    /// Geometric demultiplexing: probe the tuple-space index (walking only
    /// the members whose required intervals cover the packet's words), then
    /// walk the priority-ordered matches applying the §3.2 deliver-to-lower
    /// rule.
    fn demux_geom(&mut self, packet: &[u8]) -> DemuxOutcome {
        let quarantined = self.any_quarantined();
        let set = self.geom.as_mut().expect("geom engine selected");
        let (matches, stats) = set.matches_with_stats(PacketView::new(packet));
        let matched: Vec<PortIdx> = matches.iter().map(|&id| id as PortIdx).collect();
        let mut out = DemuxOutcome {
            ir_ops: stats.ops_executed,
            ..Default::default()
        };
        if quarantined {
            self.merge_quarantined(&matched, packet, &mut out);
            return out;
        }
        for &idx in &matched {
            out.accepted.push(idx);
            if !self.ports[idx].config.deliver_to_lower {
                break;
            }
        }
        for &idx in &out.accepted {
            self.ports[idx].accepts += 1;
        }
        out
    }

    /// JIT demultiplexing: evaluate every native (or fallback threaded)
    /// member, then walk the priority-ordered matches applying the §3.2
    /// deliver-to-lower rule. Members are kept in demux order, so the
    /// matched list is already priority-sorted.
    fn demux_jit(&mut self, packet: &[u8]) -> DemuxOutcome {
        let quarantined = self.any_quarantined();
        let members = self.jit_members.as_ref().expect("JIT engine selected");
        let mut matched: Vec<PortIdx> = Vec::new();
        for (idx, m) in members {
            if m.eval(PacketView::new(packet)) {
                matched.push(*idx);
            }
        }
        let mut out = DemuxOutcome {
            jit_filters: members.len() as u32,
            ..Default::default()
        };
        if quarantined {
            self.merge_quarantined(&matched, packet, &mut out);
            return out;
        }
        for &idx in &matched {
            out.accepted.push(idx);
            if !self.ports[idx].config.deliver_to_lower {
                break;
            }
        }
        for &idx in &out.accepted {
            self.ports[idx].accepts += 1;
        }
        out
    }

    /// Re-sorts the demultiplex order: priority descending; within a
    /// priority, busier filters first (when adaptive), then insertion
    /// order.
    fn resort(&mut self) {
        let ports = &self.ports;
        let adaptive = self.adaptive;
        self.order.sort_by(|&a, &b| {
            let (pa, pb) = (&ports[a], &ports[b]);
            let busy = if adaptive {
                pb.accepts.cmp(&pa.accepts)
            } else {
                core::cmp::Ordering::Equal
            };
            pb.priority()
                .cmp(&pa.priority())
                .then(busy)
                .then(pa.insertion.cmp(&pb.insertion))
        });
    }
}

/// Builds a [`PfDevice`] with its construction-time configuration applied
/// up front, replacing the post-hoc `set_engine`/`set_instruction_budget`
/// mutation dance. Obtained from [`PfDevice::builder`].
///
/// ```
/// use pf_kernel::device::{DemuxEngine, PfDevice};
///
/// let d = PfDevice::builder()
///     .engine(DemuxEngine::Sharded)
///     .instruction_budget(Some(64))
///     .adaptive_reorder(false)
///     .build();
/// assert_eq!(d.engine(), DemuxEngine::Sharded);
/// ```
#[derive(Debug, Clone)]
pub struct PfDeviceBuilder {
    engine: DemuxEngine,
    budget: Option<u32>,
    adaptive: bool,
    overflow: OverflowPolicy,
    jit_force_fallback: bool,
    admission: Option<AdmissionConfig>,
    geom_candidate_cap: Option<usize>,
}

impl Default for PfDeviceBuilder {
    /// The paper's production configuration: sequential engine, unbounded
    /// budget, adaptive reordering on, drop-tail overflow.
    fn default() -> Self {
        PfDeviceBuilder {
            engine: DemuxEngine::Sequential,
            budget: None,
            adaptive: true,
            overflow: OverflowPolicy::default(),
            jit_force_fallback: false,
            admission: None,
            geom_candidate_cap: None,
        }
    }
}

impl PfDeviceBuilder {
    /// Selects the demultiplexing engine.
    pub fn engine(mut self, engine: DemuxEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the per-evaluation instruction budget (`None` = unbounded).
    pub fn instruction_budget(mut self, budget: Option<u32>) -> Self {
        self.budget = budget;
        self
    }

    /// Enables or disables adaptive same-priority reordering (§3.2).
    pub fn adaptive_reorder(mut self, on: bool) -> Self {
        self.adaptive = on;
        self
    }

    /// Overflow policy newly opened ports start with (each port's
    /// [`PortConfig`] can still override it afterwards).
    pub fn overflow_policy(mut self, policy: OverflowPolicy) -> Self {
        self.overflow = policy;
        self
    }

    /// Test hook: refuse native emission under [`DemuxEngine::Jit`], so
    /// every member exercises the threaded-code fallback. Inert without
    /// the `jit` feature (members are threaded code anyway).
    pub fn jit_force_fallback(mut self, on: bool) -> Self {
        self.jit_force_fallback = on;
        self
    }

    /// Enables the pre-demux admission gate.
    pub fn admission_control(mut self, config: AdmissionConfig) -> Self {
        self.admission = Some(config);
        self
    }

    /// Bounds candidates evaluated per packet under the geom engine
    /// ([`PfDevice::set_geom_candidate_cap`]).
    pub fn geom_candidate_cap(mut self, cap: Option<usize>) -> Self {
        self.geom_candidate_cap = cap;
        self
    }

    /// Builds the device.
    pub fn build(self) -> PfDevice {
        let mut d = PfDevice::new();
        d.adaptive = self.adaptive;
        d.budget = self.budget;
        d.default_overflow = self.overflow;
        d.jit_force_fallback = self.jit_force_fallback;
        d.geom_candidate_cap = self.geom_candidate_cap;
        d.set_engine(self.engine);
        d.set_admission_control(self.admission);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_filter::samples;
    use pf_sim::time::SimTime;

    fn pkt(sock: u16) -> Vec<u8> {
        samples::pup_packet_3mb(2, 0, sock, 1)
    }

    fn recv(bytes: &[u8]) -> RecvPacket {
        RecvPacket {
            bytes: bytes.to_vec(),
            stamp: None,
            dropped_before: 0,
        }
    }

    fn dev_with(filters: Vec<FilterProgram>) -> PfDevice {
        let mut d = PfDevice::new();
        for (i, f) in filters.into_iter().enumerate() {
            let idx = d.open((ProcId(i), Fd(0)));
            d.set_filter(idx, f);
        }
        d
    }

    #[test]
    fn first_match_stops_by_default() {
        let mut d = dev_with(vec![
            samples::pup_socket_filter(10, 0, 35),
            samples::accept_all(5),
        ]);
        let out = d.demux(&pkt(35));
        assert_eq!(
            out.accepted,
            vec![0],
            "higher priority wins, no fall-through"
        );
        assert_eq!(out.applied.len(), 1, "stopped at first match");
    }

    #[test]
    fn falls_through_to_lower_priority_on_reject() {
        let mut d = dev_with(vec![
            samples::pup_socket_filter(10, 0, 35),
            samples::accept_all(5),
        ]);
        let out = d.demux(&pkt(99));
        assert_eq!(out.accepted, vec![1]);
        assert_eq!(out.applied.len(), 2);
    }

    #[test]
    fn priority_decides_between_overlapping_filters() {
        let mut d = dev_with(vec![
            samples::accept_all(5),
            samples::accept_all(20), // inserted later but higher priority
        ]);
        let out = d.demux(&pkt(1));
        assert_eq!(out.accepted, vec![1]);
    }

    #[test]
    fn equal_priority_insertion_order() {
        let mut d = dev_with(vec![samples::accept_all(10), samples::accept_all(10)]);
        let out = d.demux(&pkt(1));
        assert_eq!(out.accepted, vec![0]);
    }

    #[test]
    fn deliver_to_lower_produces_copies() {
        let mut d = PfDevice::new();
        let monitor = d.open((ProcId(0), Fd(0)));
        d.set_filter(monitor, samples::accept_all(30));
        d.port_mut(monitor).config.deliver_to_lower = true;
        let consumer = d.open((ProcId(1), Fd(0)));
        d.set_filter(consumer, samples::pup_socket_filter(10, 0, 35));
        let out = d.demux(&pkt(35));
        assert_eq!(out.accepted, vec![monitor, consumer], "both get a copy");
    }

    #[test]
    fn no_match_accepts_nobody() {
        let mut d = dev_with(vec![samples::pup_socket_filter(10, 0, 35)]);
        let out = d.demux(&pkt(36));
        assert!(out.accepted.is_empty());
        assert_eq!(out.applied.len(), 1);
        assert!(!out.applied[0].accepted);
    }

    fn assert_outcomes_eq(a: &DemuxOutcome, b: &DemuxOutcome, ctx: &str) {
        assert_eq!(a.accepted, b.accepted, "{ctx}: accepted");
        assert_eq!(a.ir_ops, b.ir_ops, "{ctx}: ir_ops");
        assert_eq!(a.jit_filters, b.jit_filters, "{ctx}: jit_filters");
        assert_eq!(a.budget_overruns, b.budget_overruns, "{ctx}: overruns");
        assert_eq!(a.applied.len(), b.applied.len(), "{ctx}: applied");
    }

    #[test]
    fn demux_batch_equals_per_frame_demux_on_every_engine() {
        let frames: Vec<Vec<u8>> = vec![
            pkt(35),
            pkt(44),
            pkt(44),
            pkt(99),
            pkt(35)[..6].to_vec(), // truncated
            Vec::new(),            // empty frame
        ];
        let frame_refs: Vec<&[u8]> = frames.iter().map(Vec::as_slice).collect();
        for engine in [
            DemuxEngine::Sequential,
            DemuxEngine::DecisionTable,
            DemuxEngine::Ir,
            DemuxEngine::Sharded,
            DemuxEngine::Geom,
            DemuxEngine::Jit,
        ] {
            let build = || {
                let mut d = PfDevice::builder().engine(engine).build();
                for (i, f) in [
                    samples::pup_socket_filter(10, 0, 35),
                    samples::pup_socket_filter(10, 0, 44),
                    samples::accept_all(1),
                ]
                .into_iter()
                .enumerate()
                {
                    let idx = d.open((ProcId(i), Fd(0)));
                    d.set_filter(idx, f);
                }
                d
            };
            let mut batched = build();
            let mut scalar = build();
            let outs = batched.demux_batch(&frame_refs);
            assert_eq!(outs.len(), frames.len());
            for (i, out) in outs.iter().enumerate() {
                let expect = scalar.demux(&frames[i]);
                assert_outcomes_eq(out, &expect, &format!("{engine:?} frame {i}"));
            }
            assert_eq!(batched.demux_ops, scalar.demux_ops, "{engine:?}");
            for idx in 0..3 {
                assert_eq!(
                    batched.port(idx).accepts,
                    scalar.port(idx).accepts,
                    "{engine:?} port {idx} accepts"
                );
            }
        }
    }

    #[test]
    fn demux_batch_with_quarantined_port_takes_merged_walk() {
        // A quarantined port forces the per-frame fallback; verdicts must
        // still match scalar demux exactly.
        let build = || {
            let mut d = PfDevice::builder()
                .engine(DemuxEngine::Sharded)
                .instruction_budget(Some(4))
                .build();
            let a = d.open((ProcId(0), Fd(0)));
            d.set_filter(a, samples::pup_socket_filter(10, 0, 35));
            let b = d.open((ProcId(1), Fd(0)));
            d.set_filter(b, samples::fig_3_8_pup_type_range()); // > 4 instrs
            d
        };
        let mut batched = build();
        let mut scalar = build();
        assert!(
            batched.any_quarantined(),
            "range filter must be over budget"
        );
        let frames: Vec<Vec<u8>> = vec![pkt(35), pkt(99)];
        let frame_refs: Vec<&[u8]> = frames.iter().map(Vec::as_slice).collect();
        let outs = batched.demux_batch(&frame_refs);
        for (i, out) in outs.iter().enumerate() {
            let expect = scalar.demux(&frames[i]);
            assert_outcomes_eq(out, &expect, &format!("frame {i}"));
        }
    }

    #[test]
    fn port_without_filter_accepts_nothing() {
        let mut d = PfDevice::new();
        d.open((ProcId(0), Fd(0)));
        let out = d.demux(&pkt(1));
        assert!(out.accepted.is_empty());
        assert!(out.applied.is_empty(), "no filter, no interpretation work");
    }

    #[test]
    fn closed_port_is_skipped() {
        let mut d = dev_with(vec![samples::accept_all(10)]);
        d.close(0);
        assert_eq!(d.open_ports(), 0);
        let out = d.demux(&pkt(1));
        assert!(out.accepted.is_empty());
    }

    #[test]
    fn queue_limit_drops_and_counts() {
        let mut d = dev_with(vec![samples::accept_all(10)]);
        d.port_mut(0).config.max_queue = 2;
        assert_eq!(d.port_mut(0).enqueue(recv(&pkt(1))), EnqueueOutcome::Stored);
        assert_eq!(d.port_mut(0).enqueue(recv(&pkt(2))), EnqueueOutcome::Stored);
        assert_eq!(
            d.port_mut(0).enqueue(recv(&pkt(3))),
            EnqueueOutcome::Rejected
        );
        assert_eq!(d.port(0).drops, 1);
        assert_eq!(d.port(0).queue.len(), 2);
    }

    #[test]
    fn drop_oldest_keeps_the_newest_packets() {
        let mut d = dev_with(vec![samples::accept_all(10)]);
        d.port_mut(0).config.max_queue = 2;
        d.port_mut(0).config.overflow = OverflowPolicy::DropOldest;
        assert_eq!(d.port_mut(0).enqueue(recv(&pkt(1))), EnqueueOutcome::Stored);
        assert_eq!(d.port_mut(0).enqueue(recv(&pkt(2))), EnqueueOutcome::Stored);
        assert_eq!(
            d.port_mut(0).enqueue(recv(&pkt(3))),
            EnqueueOutcome::StoredDroppingOldest
        );
        assert_eq!(d.port(0).drops, 1, "the evicted packet is still counted");
        let queued: Vec<Vec<u8>> = d.port(0).queue.iter().map(|p| p.bytes.clone()).collect();
        assert_eq!(queued, vec![pkt(2), pkt(3)], "oldest was evicted");
    }

    #[test]
    fn drop_oldest_with_zero_capacity_rejects() {
        let mut d = dev_with(vec![samples::accept_all(10)]);
        d.port_mut(0).config.max_queue = 0;
        d.port_mut(0).config.overflow = OverflowPolicy::DropOldest;
        assert_eq!(
            d.port_mut(0).enqueue(recv(&pkt(1))),
            EnqueueOutcome::Rejected
        );
        assert!(d.port(0).queue.is_empty());
    }

    /// A program the validator rejects (garbage after a short-circuit) but
    /// the checked interpreter accepts for `sock`-addressed Pup packets:
    /// the CAND terminates *true* before reaching the undecodable word.
    fn shortcircuit_then_garbage(priority: u8, sock: u16) -> FilterProgram {
        use pf_filter::word::BinaryOp;
        let mut words = pf_filter::program::Assembler::new(priority)
            .pushword(8) // DstSocketLo on the 3Mb medium
            .pushlit_op(BinaryOp::Cnand, sock)
            .finish()
            .words()
            .to_vec();
        words.push(15 << 6); // reserved encoding: fails validation
        FilterProgram::from_words(priority, words)
    }

    #[test]
    fn invalid_filter_is_quarantined_but_still_served() {
        let mut d = PfDevice::new();
        let p = d.open((ProcId(0), Fd(0)));
        assert!(!d.set_filter(p, shortcircuit_then_garbage(10, 35)));
        assert!(matches!(
            d.port(p).quarantined,
            Some(QuarantineReason::Validation(_))
        ));
        assert_eq!(d.engine_stats().quarantined_ports, 1);
        // Wrong socket: CNAND terminates true before the garbage word.
        assert_eq!(d.demux(&pkt(44)).accepted, vec![p]);
        // Right socket: evaluation reaches the garbage word and rejects.
        assert!(d.demux(&pkt(35)).accepted.is_empty());
    }

    #[test]
    fn quarantined_filter_served_under_every_engine() {
        for engine in [
            DemuxEngine::Sequential,
            DemuxEngine::DecisionTable,
            DemuxEngine::Ir,
            DemuxEngine::Sharded,
            DemuxEngine::Geom,
            DemuxEngine::Jit,
        ] {
            let mut d = PfDevice::new();
            let clean = d.open((ProcId(0), Fd(0)));
            d.set_filter(clean, samples::pup_socket_filter(10, 0, 35));
            let bad = d.open((ProcId(1), Fd(0)));
            assert!(!d.set_filter(bad, shortcircuit_then_garbage(20, 35)));
            d.set_engine(engine);
            // The quarantined (higher-priority) filter accepts mismatched
            // sockets; the compiled member accepts socket 35.
            assert_eq!(d.demux(&pkt(44)).accepted, vec![bad], "{engine:?}");
            assert_eq!(d.demux(&pkt(35)).accepted, vec![clean], "{engine:?}");
        }
    }

    #[test]
    fn budget_quarantines_overlong_filters_eagerly() {
        let mut d = dev_with(vec![
            samples::fig_3_8_pup_type_range(), // 10 instructions
            samples::accept_all(5),            // 1 instruction
        ]);
        // The branch-free worst case is the static count, so the long
        // filter is quarantined the moment the budget drops below it.
        assert_eq!(d.set_instruction_budget(Some(6)), 1);
        assert_eq!(
            d.port(0).quarantined,
            Some(QuarantineReason::BudgetExceeded)
        );
        let out = d.demux(&pkt(35));
        // The budgeted fallback faults at instruction 7 (rejecting); the
        // short filter catches the packet.
        assert_eq!(out.budget_overruns, 1);
        assert_eq!(out.accepted, vec![1]);
        assert_eq!(d.port(0).budget_overruns, 1);
        // Clearing the budget and rebinding restores full service.
        assert_eq!(d.set_instruction_budget(None), 0);
        assert!(d.set_filter(0, samples::fig_3_8_pup_type_range()));
        assert_eq!(d.port(0).quarantined, None);
        assert_eq!(d.demux(&pkt(35)).accepted, vec![0]);
    }

    #[test]
    fn binding_an_overlong_filter_under_a_budget_quarantines() {
        let mut d = PfDevice::new();
        let p = d.open((ProcId(0), Fd(0)));
        d.set_instruction_budget(Some(6));
        assert!(!d.set_filter(p, samples::fig_3_8_pup_type_range()));
        assert_eq!(
            d.port(p).quarantined,
            Some(QuarantineReason::BudgetExceeded)
        );
        // A filter that fits the budget binds cleanly (6 instructions).
        assert!(d.set_filter(p, samples::pup_socket_filter(10, 0, 35)));
        assert_eq!(d.port(p).quarantined, None);
    }

    #[test]
    fn budget_quarantine_excludes_port_from_compiled_sets() {
        let mut d = dev_with(vec![
            samples::fig_3_8_pup_type_range(),    // priority 10, 10 instrs
            samples::pup_socket_filter(5, 0, 35), // priority 5, 6 instrs
        ]);
        d.set_engine(DemuxEngine::Ir);
        assert_eq!(d.set_instruction_budget(Some(6)), 1);
        assert_eq!(d.engine_stats().quarantined_ports, 1);
        // The quarantined member no longer contributes threaded code; the
        // merged walk still consults it (as a budgeted checked eval), and
        // the compiled member catches the packet.
        let out = d.demux(&pkt(35));
        assert_eq!(out.accepted, vec![1], "budget rejects the long filter");
        assert_eq!(out.applied.len(), 1, "one checked fallback application");
        assert!(out.applied[0].stats.error.is_some());
    }

    #[test]
    fn port_stats_snapshot() {
        let mut d = dev_with(vec![samples::accept_all(10)]);
        d.port_mut(0).config.max_queue = 1;
        let _ = d.demux(&pkt(1));
        let _ = d.port_mut(0).enqueue(recv(&pkt(1)));
        let _ = d.port_mut(0).enqueue(recv(&pkt(2)));
        let s = d.port(0).stats();
        assert_eq!(s.accepts, 1);
        assert_eq!(s.queued, 1);
        assert_eq!(s.drops, 1);
        assert!(!s.quarantined);
        assert_eq!(s.budget_overruns, 0);
    }

    #[test]
    fn adaptive_reorder_moves_busy_filter_first() {
        // Two equal-priority filters; the second one matches everything we
        // send. After REORDER_INTERVAL demuxes it must be tested first.
        let mut d = dev_with(vec![
            samples::pup_socket_filter(10, 0, 1),  // never matches below
            samples::pup_socket_filter(10, 0, 35), // always matches
        ]);
        assert_eq!(d.order(), &[0, 1]);
        for _ in 0..=REORDER_INTERVAL {
            let _ = d.demux(&pkt(35));
        }
        assert_eq!(d.order(), &[1, 0], "busier filter reordered to front");
        // And now the busy filter is applied first: one application only.
        let out = d.demux(&pkt(35));
        assert_eq!(out.applied.len(), 1);
        assert_eq!(out.applied[0].port, 1);
    }

    #[test]
    fn reorder_never_crosses_priority_levels() {
        let mut d = dev_with(vec![
            samples::pup_socket_filter(20, 0, 1), // high priority, never busy
            samples::accept_all(10),              // low priority, always busy
        ]);
        for _ in 0..=REORDER_INTERVAL {
            let _ = d.demux(&pkt(35));
        }
        assert_eq!(d.order(), &[0, 1], "priority dominates busyness");
    }

    #[test]
    fn rebinding_a_filter_is_allowed_any_time() {
        let mut d = dev_with(vec![samples::pup_socket_filter(10, 0, 35)]);
        assert_eq!(d.demux(&pkt(44)).accepted.len(), 0);
        d.set_filter(0, samples::pup_socket_filter(10, 0, 44));
        assert_eq!(d.demux(&pkt(44)).accepted, vec![0]);
    }

    #[test]
    fn port_lookup_by_owner() {
        let mut d = PfDevice::new();
        let a = d.open((ProcId(3), Fd(7)));
        assert_eq!(d.port_of((ProcId(3), Fd(7))), Some(a));
        assert_eq!(d.port_of((ProcId(3), Fd(8))), None);
        d.close(a);
        assert_eq!(d.port_of((ProcId(3), Fd(7))), None);
    }

    #[test]
    fn ir_engine_agrees_with_sequential() {
        let filters = vec![
            samples::pup_socket_filter(10, 0, 35),
            samples::pup_socket_filter(10, 0, 44),
            samples::accept_all(5),
            samples::fig_3_8_pup_type_range(),
        ];
        for sock in [35u16, 44, 99] {
            let mut seq = dev_with(filters.clone());
            seq.set_adaptive_reorder(false);
            let mut ir = dev_with(filters.clone());
            ir.set_adaptive_reorder(false);
            ir.set_engine(DemuxEngine::Ir);
            let p = pkt(sock);
            assert_eq!(seq.demux(&p).accepted, ir.demux(&p).accepted, "sock={sock}");
        }
    }

    #[test]
    fn ir_engine_reports_ops_and_shares_guards() {
        let mut d = dev_with(vec![
            samples::pup_socket_filter(10, 0, 35),
            samples::pup_socket_filter(10, 0, 44),
        ]);
        d.set_engine(DemuxEngine::Ir);
        assert_eq!(
            d.engine_stats().ir_shared_tests,
            1,
            "DstSocketHi == 0 guard shared"
        );
        let out = d.demux(&pkt(35));
        assert_eq!(out.accepted, vec![0]);
        assert!(
            out.applied.is_empty(),
            "IR engine does not itemize applications"
        );
        assert!(out.ir_ops > 0, "threaded-code work is accounted");
    }

    #[test]
    fn ir_engine_tracks_filter_rebinding_and_close() {
        let mut d = dev_with(vec![samples::pup_socket_filter(10, 0, 35)]);
        d.set_engine(DemuxEngine::Ir);
        assert!(d.demux(&pkt(44)).accepted.is_empty());
        d.set_filter(0, samples::pup_socket_filter(10, 0, 44));
        assert_eq!(d.demux(&pkt(44)).accepted, vec![0]);
        d.close(0);
        assert!(d.demux(&pkt(44)).accepted.is_empty());
    }

    #[test]
    fn ir_engine_respects_deliver_to_lower() {
        let mut d = PfDevice::new();
        let monitor = d.open((ProcId(0), Fd(0)));
        d.set_filter(monitor, samples::accept_all(30));
        d.port_mut(monitor).config.deliver_to_lower = true;
        let consumer = d.open((ProcId(1), Fd(0)));
        d.set_filter(consumer, samples::pup_socket_filter(10, 0, 35));
        d.set_engine(DemuxEngine::Ir);
        let out = d.demux(&pkt(35));
        assert_eq!(out.accepted, vec![monitor, consumer]);
    }

    #[test]
    fn sharded_engine_agrees_with_sequential() {
        let filters = vec![
            samples::pup_socket_filter(10, 0, 35),
            samples::pup_socket_filter(10, 0, 44),
            samples::accept_all(5),
            samples::fig_3_8_pup_type_range(),
        ];
        for sock in [35u16, 44, 99] {
            let mut seq = dev_with(filters.clone());
            seq.set_adaptive_reorder(false);
            let mut sh = dev_with(filters.clone());
            sh.set_adaptive_reorder(false);
            sh.set_engine(DemuxEngine::Sharded);
            let p = pkt(sock);
            assert_eq!(seq.demux(&p).accepted, sh.demux(&p).accepted, "sock={sock}");
        }
    }

    #[test]
    fn sharded_engine_reports_ops_and_shards() {
        let mut d = dev_with(vec![
            samples::pup_socket_filter(10, 0, 35),
            samples::pup_socket_filter(10, 0, 44),
        ]);
        d.set_engine(DemuxEngine::Sharded);
        // Socket word discriminates: one shard per port; the hi-word and
        // ethertype tests are shared between both members.
        let stats = d.engine_stats();
        assert_eq!(stats.sharded_shard_count, 2);
        assert_eq!(stats.sharded_shared_tests, 2);
        let out = d.demux(&pkt(35));
        assert_eq!(out.accepted, vec![0]);
        assert!(
            out.applied.is_empty(),
            "sharded engine does not itemize applications"
        );
        assert!(out.ir_ops > 0, "value-numbered work is accounted");
    }

    #[test]
    fn sharded_engine_tracks_filter_rebinding_and_close() {
        let mut d = dev_with(vec![samples::pup_socket_filter(10, 0, 35)]);
        d.set_engine(DemuxEngine::Sharded);
        assert!(d.demux(&pkt(44)).accepted.is_empty());
        d.set_filter(0, samples::pup_socket_filter(10, 0, 44));
        assert_eq!(d.demux(&pkt(44)).accepted, vec![0]);
        d.close(0);
        assert!(d.demux(&pkt(44)).accepted.is_empty());
    }

    #[test]
    fn sharded_engine_respects_deliver_to_lower() {
        let mut d = PfDevice::new();
        let monitor = d.open((ProcId(0), Fd(0)));
        d.set_filter(monitor, samples::accept_all(30));
        d.port_mut(monitor).config.deliver_to_lower = true;
        let consumer = d.open((ProcId(1), Fd(0)));
        d.set_filter(consumer, samples::pup_socket_filter(10, 0, 35));
        d.set_engine(DemuxEngine::Sharded);
        let out = d.demux(&pkt(35));
        assert_eq!(out.accepted, vec![monitor, consumer]);
    }

    #[test]
    fn geom_engine_agrees_with_sequential() {
        let filters = vec![
            samples::pup_socket_filter(10, 0, 35),
            samples::socket_range_filter(10, 100, 200),
            samples::accept_all(5),
            samples::fig_3_8_pup_type_range(),
        ];
        for sock in [35u16, 44, 99, 100, 150, 200, 201] {
            let mut seq = dev_with(filters.clone());
            seq.set_adaptive_reorder(false);
            let mut geo = dev_with(filters.clone());
            geo.set_adaptive_reorder(false);
            geo.set_engine(DemuxEngine::Geom);
            let p = pkt(sock);
            assert_eq!(
                seq.demux(&p).accepted,
                geo.demux(&p).accepted,
                "sock={sock}"
            );
        }
    }

    #[test]
    fn geom_engine_reports_tuples_and_conflicts() {
        let mut d = dev_with(vec![
            samples::socket_range_filter(10, 100, 200),
            samples::socket_range_filter(5, 150, 250),
        ]);
        d.set_engine(DemuxEngine::Geom);
        let stats = d.engine_stats();
        assert_eq!(stats.engine, DemuxEngine::Geom);
        assert!(stats.geom_tuple_count >= 1, "socket word indexed");
        assert_eq!(stats.geom_residue, 0, "both members have constraints");
        assert_eq!(stats.geom_overlaps, 1, "[100,200] meets [150,250]");
        assert_eq!(stats.geom_shadows, 0);
        let out = d.demux(&pkt(150));
        assert_eq!(out.accepted, vec![0], "higher priority wins the overlap");
        assert!(
            out.applied.is_empty(),
            "geom engine does not itemize applications"
        );
        assert!(out.ir_ops > 0, "threaded-code work is accounted");
    }

    #[test]
    fn geom_engine_tracks_filter_rebinding_and_close() {
        let mut d = dev_with(vec![samples::socket_range_filter(10, 100, 200)]);
        d.set_engine(DemuxEngine::Geom);
        assert!(d.demux(&pkt(250)).accepted.is_empty());
        d.set_filter(0, samples::socket_range_filter(10, 240, 260));
        assert_eq!(d.demux(&pkt(250)).accepted, vec![0]);
        d.close(0);
        assert!(d.demux(&pkt(250)).accepted.is_empty());
    }

    #[test]
    fn geom_engine_respects_deliver_to_lower() {
        let mut d = PfDevice::new();
        let monitor = d.open((ProcId(0), Fd(0)));
        d.set_filter(monitor, samples::accept_all(30));
        d.port_mut(monitor).config.deliver_to_lower = true;
        let consumer = d.open((ProcId(1), Fd(0)));
        d.set_filter(consumer, samples::socket_range_filter(10, 30, 40));
        d.set_engine(DemuxEngine::Geom);
        let out = d.demux(&pkt(35));
        assert_eq!(out.accepted, vec![monitor, consumer]);
    }

    #[test]
    fn jit_engine_agrees_with_sequential() {
        let filters = vec![
            samples::pup_socket_filter(10, 0, 35),
            samples::pup_socket_filter(10, 0, 44),
            samples::accept_all(5),
            samples::fig_3_8_pup_type_range(),
        ];
        for sock in [35u16, 44, 99] {
            let mut seq = dev_with(filters.clone());
            seq.set_adaptive_reorder(false);
            let mut jit = PfDevice::builder()
                .engine(DemuxEngine::Jit)
                .adaptive_reorder(false)
                .build();
            for (i, f) in filters.iter().enumerate() {
                let idx = jit.open((ProcId(i), Fd(0)));
                jit.set_filter(idx, f.clone());
            }
            let p = pkt(sock);
            assert_eq!(
                seq.demux(&p).accepted,
                jit.demux(&p).accepted,
                "sock={sock}"
            );
        }
    }

    #[test]
    fn jit_engine_reports_members_and_flat_cost() {
        let mut d = dev_with(vec![
            samples::pup_socket_filter(10, 0, 35),
            samples::pup_socket_filter(10, 0, 44),
        ]);
        d.set_engine(DemuxEngine::Jit);
        let stats = d.engine_stats();
        assert_eq!(stats.engine, DemuxEngine::Jit);
        assert_eq!(
            stats.jit_compiled + stats.jit_fallback,
            2,
            "every member is either native or threaded fallback"
        );
        // Where the emitter supports this target, simple guard programs
        // always compile.
        #[cfg(all(
            feature = "jit",
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        assert_eq!(stats.jit_compiled, 2);
        let out = d.demux(&pkt(35));
        assert_eq!(out.accepted, vec![0]);
        assert_eq!(out.jit_filters, 2, "both members walked at flat cost");
        assert!(
            out.applied.is_empty(),
            "JIT engine does not itemize applications"
        );
    }

    #[test]
    fn jit_engine_tracks_filter_rebinding_and_close() {
        let mut d = dev_with(vec![samples::pup_socket_filter(10, 0, 35)]);
        d.set_engine(DemuxEngine::Jit);
        assert!(d.demux(&pkt(44)).accepted.is_empty());
        d.set_filter(0, samples::pup_socket_filter(10, 0, 44));
        assert_eq!(d.demux(&pkt(44)).accepted, vec![0]);
        d.close(0);
        assert!(d.demux(&pkt(44)).accepted.is_empty());
    }

    #[test]
    fn jit_engine_respects_deliver_to_lower() {
        let mut d = PfDevice::new();
        let monitor = d.open((ProcId(0), Fd(0)));
        d.set_filter(monitor, samples::accept_all(30));
        d.port_mut(monitor).config.deliver_to_lower = true;
        let consumer = d.open((ProcId(1), Fd(0)));
        d.set_filter(consumer, samples::pup_socket_filter(10, 0, 35));
        d.set_engine(DemuxEngine::Jit);
        let out = d.demux(&pkt(35));
        assert_eq!(out.accepted, vec![monitor, consumer]);
    }

    /// Satellite: with emission artificially refused, the JIT engine must
    /// report every member as fallback and keep verdicts identical.
    #[cfg(feature = "jit")]
    #[test]
    fn forced_fallback_keeps_verdicts_and_reports_stats() {
        let filters = [
            samples::pup_socket_filter(10, 0, 35),
            samples::fig_3_8_pup_type_range(),
            samples::accept_all(2),
        ];
        let mut forced = PfDevice::builder()
            .engine(DemuxEngine::Jit)
            .jit_force_fallback(true)
            .build();
        let mut native = PfDevice::builder().engine(DemuxEngine::Jit).build();
        for (i, f) in filters.iter().enumerate() {
            let idx = forced.open((ProcId(i), Fd(0)));
            forced.set_filter(idx, f.clone());
            let idx = native.open((ProcId(i), Fd(0)));
            native.set_filter(idx, f.clone());
        }
        let stats = forced.engine_stats();
        assert_eq!(stats.jit_compiled, 0, "emission refused everywhere");
        assert_eq!(stats.jit_fallback, 3);
        for sock in [35u16, 44, 99] {
            let p = pkt(sock);
            assert_eq!(
                forced.demux(&p).accepted,
                native.demux(&p).accepted,
                "sock={sock}"
            );
        }
    }

    /// Satellite: the default build must still offer `DemuxEngine::Jit`,
    /// degraded to threaded code — the `jit` gate never leaks out.
    #[cfg(not(feature = "jit"))]
    #[test]
    fn jit_engine_without_the_feature_is_threaded_fallback() {
        let mut d = PfDevice::builder().engine(DemuxEngine::Jit).build();
        let p0 = d.open((ProcId(0), Fd(0)));
        d.set_filter(p0, samples::pup_socket_filter(10, 0, 35));
        let stats = d.engine_stats();
        assert_eq!(stats.jit_compiled, 0, "no native code without the feature");
        assert_eq!(stats.jit_fallback, 1);
        assert_eq!(d.demux(&pkt(35)).accepted, vec![p0]);
        assert!(d.demux(&pkt(44)).accepted.is_empty());
    }

    #[test]
    fn builder_applies_construction_time_configuration() {
        let d = PfDevice::builder()
            .engine(DemuxEngine::Sharded)
            .instruction_budget(Some(64))
            .adaptive_reorder(false)
            .overflow_policy(OverflowPolicy::DropOldest)
            .build();
        assert_eq!(d.engine(), DemuxEngine::Sharded);
        assert_eq!(d.instruction_budget(), Some(64));
        let mut d = d;
        let p = d.open((ProcId(0), Fd(0)));
        assert_eq!(
            d.port(p).config.overflow,
            OverflowPolicy::DropOldest,
            "device-level default applied at open()"
        );
    }

    #[test]
    fn builder_budget_quarantines_overlong_binds() {
        let mut d = PfDevice::builder().instruction_budget(Some(6)).build();
        let p = d.open((ProcId(0), Fd(0)));
        assert!(!d.set_filter(p, samples::fig_3_8_pup_type_range()));
        assert_eq!(
            d.port(p).quarantined,
            Some(QuarantineReason::BudgetExceeded)
        );
    }

    fn tight_quota() -> AdmissionQuota {
        AdmissionQuota {
            rate_pps: 0,
            burst: 2,
        }
    }

    #[test]
    fn admission_gate_protects_high_priority_and_sheds_best_effort() {
        let mut d = PfDevice::builder()
            .admission_control(AdmissionConfig {
                protected_priority: 100,
                default_quota: tight_quota(),
                ..Default::default()
            })
            .build();
        let vip = d.open((ProcId(0), Fd(0)));
        d.set_filter(vip, samples::pup_socket_filter(200, 0, 35));
        let be = d.open((ProcId(1), Fd(0)));
        d.set_filter(be, samples::pup_socket_filter(10, 0, 44));
        let now = SimTime::ZERO;
        for _ in 0..8 {
            assert_eq!(d.admit(&pkt(35), now), AdmissionVerdict::Admit, "vip");
        }
        assert_eq!(d.admit(&pkt(44), now), AdmissionVerdict::Admit);
        assert_eq!(d.admit(&pkt(44), now), AdmissionVerdict::Admit);
        assert_eq!(
            d.admit(&pkt(44), now),
            AdmissionVerdict::Shed { port: be },
            "burst exhausted, zero refill"
        );
        assert_eq!(d.port(be).admission_drops, 1);
        assert_eq!(d.port(vip).admission_drops, 0);
        assert_eq!(d.port(be).drops, 0, "drop-at-NIC is not a queue drop");
    }

    #[test]
    fn admission_gate_refills_with_time() {
        let mut d = PfDevice::builder()
            .admission_control(AdmissionConfig {
                protected_priority: 255,
                default_quota: AdmissionQuota {
                    rate_pps: 1_000,
                    burst: 1,
                },
                ..Default::default()
            })
            .build();
        let p = d.open((ProcId(0), Fd(0)));
        d.set_filter(p, samples::pup_socket_filter(10, 0, 35));
        assert_eq!(d.admit(&pkt(35), SimTime(0)), AdmissionVerdict::Admit);
        assert_eq!(
            d.admit(&pkt(35), SimTime(0)),
            AdmissionVerdict::Shed { port: p }
        );
        // 1000 pps = one token per millisecond.
        assert_eq!(
            d.admit(&pkt(35), SimTime(1_000_000)),
            AdmissionVerdict::Admit
        );
        assert_eq!(d.port(p).admission_drops, 1);
    }

    #[test]
    fn admission_gate_never_sheds_unclassifiable_traffic() {
        let mut d = PfDevice::builder()
            .admission_control(AdmissionConfig {
                protected_priority: 255,
                default_quota: AdmissionQuota {
                    rate_pps: 0,
                    burst: 0,
                },
                ..Default::default()
            })
            .build();
        // accept_all has no admission signature: the gate cannot attribute
        // its traffic, so it never sheds it.
        let p = d.open((ProcId(0), Fd(0)));
        d.set_filter(p, samples::accept_all(10));
        for _ in 0..16 {
            assert_eq!(d.admit(&pkt(1), SimTime::ZERO), AdmissionVerdict::Admit);
        }
        assert_eq!(d.port(p).admission_drops, 0);
    }

    #[test]
    fn per_port_quota_overrides_the_default() {
        let mut d = PfDevice::builder()
            .admission_control(AdmissionConfig {
                protected_priority: 255,
                default_quota: tight_quota(),
                ..Default::default()
            })
            .build();
        let p = d.open((ProcId(0), Fd(0)));
        d.set_filter(p, samples::pup_socket_filter(10, 0, 35));
        d.set_port_quota(
            p,
            Some(AdmissionQuota {
                rate_pps: 0,
                burst: 5,
            }),
        );
        let mut admitted = 0;
        for _ in 0..10 {
            if d.admit(&pkt(35), SimTime::ZERO) == AdmissionVerdict::Admit {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 5, "override burst, not the default's 2");
    }

    #[test]
    fn rebinding_does_not_mint_burst_capacity() {
        let mut d = PfDevice::builder()
            .admission_control(AdmissionConfig {
                protected_priority: 255,
                default_quota: tight_quota(),
                ..Default::default()
            })
            .build();
        let p = d.open((ProcId(0), Fd(0)));
        d.set_filter(p, samples::pup_socket_filter(10, 0, 35));
        assert_eq!(d.admit(&pkt(35), SimTime::ZERO), AdmissionVerdict::Admit);
        assert_eq!(d.admit(&pkt(35), SimTime::ZERO), AdmissionVerdict::Admit);
        // Rebinding the same-quota filter must keep the drained bucket.
        d.set_filter(p, samples::pup_socket_filter(10, 0, 35));
        assert_eq!(
            d.admit(&pkt(35), SimTime::ZERO),
            AdmissionVerdict::Shed { port: p }
        );
    }

    #[test]
    fn admission_signatures_cover_the_sample_shapes() {
        let sig = |f: &FilterProgram| admission_signature(f);
        assert_eq!(
            sig(&samples::pup_socket_filter(10, 0, 35)),
            Some((8, 35)),
            "leading CAND socket test"
        );
        assert_eq!(
            sig(&samples::ethertype_filter(10, 2)),
            Some((1, 2)),
            "single-test EQ program"
        );
        assert_eq!(sig(&samples::accept_all(10)), None);
        assert_eq!(sig(&samples::reject_all(10)), None);
    }

    #[test]
    fn admission_candidates_cover_range_filters() {
        // No leading equality literal, so the syntactic signature fails…
        let f = samples::socket_range_filter(10, 100, 200);
        assert_eq!(admission_signature(&f), None);
        // …but the required-interval analysis still yields sound
        // witnesses: the socket range and the ethertype guard.
        let cands = admission_candidates(&f);
        assert!(cands.contains(&(8, 100, 200)), "socket interval: {cands:?}");
        assert!(cands.contains(&(1, 2, 2)), "ethertype guard: {cands:?}");
        assert!(admission_candidates(&samples::accept_all(10)).is_empty());
    }

    #[test]
    fn admission_gate_sheds_range_filter_traffic_to_the_right_port() {
        let mut d = PfDevice::builder()
            .admission_control(AdmissionConfig {
                protected_priority: 255,
                default_quota: AdmissionQuota {
                    rate_pps: 0,
                    burst: 1,
                },
                ..Default::default()
            })
            .build();
        // Two port-range filters share the ethertype guard; the gate must
        // classify on the socket word (two distinct intervals) so each
        // port's overload is charged to that port, not the first entry.
        let low = d.open((ProcId(0), Fd(0)));
        d.set_filter(low, samples::socket_range_filter(10, 100, 200));
        let high = d.open((ProcId(1), Fd(0)));
        d.set_filter(high, samples::socket_range_filter(10, 300, 400));
        let now = SimTime::ZERO;
        assert_eq!(d.admit(&pkt(150), now), AdmissionVerdict::Admit);
        assert_eq!(
            d.admit(&pkt(150), now),
            AdmissionVerdict::Shed { port: low },
            "burst spent, attributed to the low-range port"
        );
        assert_eq!(
            d.admit(&pkt(350), now),
            AdmissionVerdict::Admit,
            "the high-range port still has its own burst"
        );
        assert_eq!(
            d.admit(&pkt(350), now),
            AdmissionVerdict::Shed { port: high }
        );
        // A socket outside both ranges matches no signature: never shed.
        assert_eq!(d.admit(&pkt(250), now), AdmissionVerdict::Admit);
        assert_eq!(d.port(low).admission_drops, 1);
        assert_eq!(d.port(high).admission_drops, 1);
    }

    #[test]
    fn mimicry_pressure_resignatures_the_gate_and_sheds_mimics() {
        let mut d = PfDevice::builder()
            .admission_control(AdmissionConfig {
                protected_priority: 192,
                default_quota: tight_quota(),
                mimicry_threshold: Some(3),
                ..Default::default()
            })
            .build();
        let vip = d.open((ProcId(0), Fd(0)));
        d.set_filter(vip, samples::pup_socket_filter(200, 0, 35));
        // A mimic wears the protected signature word (socket-lo == 35)
        // under the wrong ethertype: the gate's one-word probe admits it,
        // the filter rejects it.
        let mimic = samples::pup_packet_3mb(9, 0, 35, 1);
        let now = SimTime::ZERO;
        for i in 0..3 {
            assert_eq!(d.admit(&mimic, now), AdmissionVerdict::Admit);
            assert!(d.demux(&mimic).accepted.is_empty());
            let resigned = d.note_unmatched_admit(&mimic);
            assert_eq!(resigned, i == 2, "re-selects exactly at the threshold");
        }
        assert_eq!(d.engine_stats().gate_resignature_events, 1);
        // Hardened: the mimic now fails the verified ethertype word and
        // is shed at the NIC, attributed as a mimicry drop…
        assert_eq!(
            d.admit(&mimic, now),
            AdmissionVerdict::ShedMimic { port: vip }
        );
        assert_eq!(d.engine_stats().drops_mimicry_shed, 1);
        // …while genuine protected traffic still admits unconditionally,
        // and the port's quota counters never saw the mimics.
        assert_eq!(d.admit(&pkt(35), now), AdmissionVerdict::Admit);
        assert!(!d.demux(&pkt(35)).accepted.is_empty());
        assert_eq!(d.port(vip).admission_drops, 0);
    }

    #[test]
    fn mimicry_threshold_off_keeps_the_classic_gate() {
        let mut d = PfDevice::builder()
            .admission_control(AdmissionConfig {
                protected_priority: 192,
                default_quota: tight_quota(),
                ..Default::default()
            })
            .build();
        let vip = d.open((ProcId(0), Fd(0)));
        d.set_filter(vip, samples::pup_socket_filter(200, 0, 35));
        let mimic = samples::pup_packet_3mb(9, 0, 35, 1);
        for _ in 0..32 {
            assert_eq!(d.admit(&mimic, SimTime::ZERO), AdmissionVerdict::Admit);
            assert!(!d.note_unmatched_admit(&mimic), "defense disarmed");
        }
        assert_eq!(d.engine_stats().gate_resignature_events, 0);
        assert_eq!(d.engine_stats().drops_mimicry_shed, 0);
    }

    #[test]
    fn refill_jitter_caps_banked_burst_unpredictably() {
        let burst_after_idle = |jitter: Option<u64>| {
            let mut d = PfDevice::builder()
                .admission_control(AdmissionConfig {
                    protected_priority: 255,
                    default_quota: AdmissionQuota {
                        rate_pps: 1_000,
                        burst: 64,
                    },
                    refill_jitter_key: jitter,
                    ..Default::default()
                })
                .build();
            let p = d.open((ProcId(0), Fd(0)));
            d.set_filter(p, samples::pup_socket_filter(10, 0, 35));
            // A long silence banks the full burst; then fire back-to-back
            // (no refill between probes: rate × 0 elapsed).
            let now = SimTime(10_000_000_000);
            (0..128)
                .filter(|_| d.admit(&pkt(35), now) == AdmissionVerdict::Admit)
                .count()
        };
        assert_eq!(burst_after_idle(None), 64, "classic bucket banks it all");
        let jittered = burst_after_idle(Some(0xB007_5EED));
        assert!(
            (8..=32).contains(&jittered),
            "jittered cap stays in [burst/8, burst/2], got {jittered}"
        );
    }

    /// Satellite: DropOldest on a quarantined-filter port must evict from
    /// the budgeted-fallback path too, and the port's drop counters must
    /// reconcile with the injected totals.
    #[test]
    fn drop_oldest_evicts_on_the_budgeted_fallback_path() {
        let mut d = PfDevice::builder().instruction_budget(Some(16)).build();
        let p = d.open((ProcId(0), Fd(0)));
        // Quarantined by validation; the CNAND accepts any socket != 35
        // through the budgeted checked interpreter.
        assert!(!d.set_filter(p, shortcircuit_then_garbage(10, 35)));
        assert!(d.port(p).quarantined.is_some());
        d.port_mut(p).config.max_queue = 2;
        d.port_mut(p).config.overflow = OverflowPolicy::DropOldest;
        let injected = 10u64;
        let mut accepted = 0u64;
        let mut evictions = 0u64;
        for i in 0..injected {
            let frame = pkt(100 + i as u16);
            let out = d.demux(&frame);
            assert_eq!(out.accepted, vec![p], "fallback path accepts");
            accepted += 1;
            match d.port_mut(p).enqueue(recv(&frame)) {
                EnqueueOutcome::Stored => {}
                EnqueueOutcome::StoredDroppingOldest => evictions += 1,
                EnqueueOutcome::Rejected => panic!("DropOldest never rejects here"),
            }
        }
        let s = d.port(p).stats();
        assert!(s.quarantined);
        assert_eq!(s.accepts, accepted);
        assert_eq!(evictions, injected - 2, "all but max_queue evicted");
        assert_eq!(s.drops, evictions, "every eviction counted");
        assert_eq!(
            s.drops + s.queued as u64 + s.admission_drops,
            injected,
            "drop counters reconcile with the injected total"
        );
        // The newest packets survived (DropOldest keeps recency).
        let queued: Vec<Vec<u8>> = d.port(p).queue.iter().map(|q| q.bytes.clone()).collect();
        assert_eq!(queued, vec![pkt(108), pkt(109)]);
    }

    #[test]
    fn recv_packet_metadata_fields() {
        let p = RecvPacket {
            bytes: vec![1, 2],
            stamp: Some(SimTime(5)),
            dropped_before: 3,
        };
        assert_eq!(p.stamp, Some(SimTime(5)));
        assert_eq!(p.dropped_before, 3);
    }
}
