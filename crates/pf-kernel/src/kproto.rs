//! Kernel-resident protocol plumbing.
//!
//! Figure 3-3 of the paper shows the packet filter *coexisting* with
//! kernel-resident protocols: the network-interface driver hands each
//! received packet to a kernel protocol if one claims its Ethernet type,
//! and to the packet filter otherwise. This module defines the hook a
//! kernel-resident protocol implements ([`KernelProtocol`]) and the
//! facilities the kernel gives it ([`crate::world::KernelCtx`]).
//!
//! The protocol implementations themselves (IP/UDP/TCP-lite, kernel VMTP,
//! ARP) live in the `pf-proto` crate — the packet-filter kernel module
//! stays protocol-independent, exactly as the paper insists.

use crate::types::{ProcId, SockId};
use crate::world::KernelCtx;
use std::any::Any;

/// A kernel-resident protocol module.
///
/// User processes talk to a kernel protocol through *kernel sockets*: the
/// process opens one with [`crate::world::ProcCtx::ksock_open`] and issues
/// requests with [`crate::world::ProcCtx::ksock_request`]; the protocol
/// answers by calling [`KernelCtx::complete`]. Request and completion
/// `op`/`meta` codes are protocol-defined (the style of `ioctl`).
pub trait KernelProtocol: Any {
    /// Protocol name, used by processes to open sockets against it.
    fn name(&self) -> &'static str;

    /// Whether this protocol consumes frames of the given Ethernet type.
    fn claims(&self, ethertype: u16) -> bool;

    /// A received frame of a claimed Ethernet type. The protocol charges
    /// its own processing costs through `k`.
    fn input(&mut self, frame: Vec<u8>, k: &mut KernelCtx<'_>);

    /// A user request on a socket bound to this protocol.
    fn user_request(
        &mut self,
        proc: ProcId,
        sock: SockId,
        op: u32,
        data: Vec<u8>,
        meta: [u64; 4],
        k: &mut KernelCtx<'_>,
    );

    /// A kernel timer set with [`KernelCtx::set_timer`] fired.
    fn on_timer(&mut self, token: u64, k: &mut KernelCtx<'_>) {
        let _ = (token, k);
    }

    /// A socket bound to this protocol was closed by its owner.
    fn sock_closed(&mut self, sock: SockId, k: &mut KernelCtx<'_>) {
        let _ = (sock, k);
    }
}
