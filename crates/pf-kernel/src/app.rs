//! The user-process programming model.
//!
//! Simulated user processes are event-driven: the kernel invokes [`App`]
//! callbacks (read completions, timeouts, signals, timers, pipe data,
//! kernel-socket completions), and the app issues system calls through the
//! [`crate::world::ProcCtx`] it is handed. Every system call and every
//! delivery charges virtual CPU time and bumps the host's counters, so the
//! "write; read with timeout; retry if necessary" programs of §3 cost what
//! they cost on the paper's MicroVAX-II.
//!
//! Blocking calls are modeled by *arming* an operation and receiving its
//! completion as a callback — the process is considered blocked in between,
//! and waking it charges the scheduler and context-switch costs.

use crate::types::{Fd, PipeId, ReadError, RecvPacket, SockId};
use crate::world::ProcCtx;
use std::any::Any;

/// A simulated user process.
///
/// All callbacks except [`App::start`] have no-op defaults; implement the
/// ones the process uses. Implementors must be `'static` so experiment
/// harnesses can downcast and harvest results after a run.
pub trait App: Any {
    /// Invoked once when the process is scheduled for the first time.
    fn start(&mut self, k: &mut ProcCtx<'_>);

    /// A previously armed packet-filter read completed with packets.
    fn on_packets(&mut self, fd: Fd, packets: Vec<RecvPacket>, k: &mut ProcCtx<'_>) {
        let _ = (fd, packets, k);
    }

    /// A previously armed read failed (timeout or would-block).
    fn on_read_error(&mut self, fd: Fd, err: ReadError, k: &mut ProcCtx<'_>) {
        let _ = (fd, err, k);
    }

    /// A signal arrived for a port configured with `signal_on_input`.
    fn on_signal(&mut self, fd: Fd, k: &mut ProcCtx<'_>) {
        let _ = (fd, k);
    }

    /// A timer set with [`ProcCtx::set_timer`] fired.
    fn on_timer(&mut self, token: u64, k: &mut ProcCtx<'_>) {
        let _ = (token, k);
    }

    /// The port behind `fd` crossed its configured backpressure mark
    /// (`PortConfig::backpressure_mark`): the kernel is asking this process
    /// to slow its producers before the queue overflows. Delivered once per
    /// crossing; re-armed when a read drains the queue below the mark.
    fn on_backpressure(&mut self, fd: Fd, depth: usize, k: &mut ProcCtx<'_>) {
        let _ = (fd, depth, k);
    }

    /// Data arrived on a pipe this process reads.
    fn on_pipe_data(&mut self, pipe: PipeId, data: Vec<u8>, k: &mut ProcCtx<'_>) {
        let _ = (pipe, data, k);
    }

    /// A kernel-protocol socket completed an operation (§ kernel-resident
    /// baselines: UDP/TCP-lite/VMTP deliver results this way).
    fn on_socket(
        &mut self,
        sock: SockId,
        op: u32,
        data: Vec<u8>,
        meta: [u64; 4],
        k: &mut ProcCtx<'_>,
    ) {
        let _ = (sock, op, data, meta, k);
    }
}
