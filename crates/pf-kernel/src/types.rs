//! Identifiers and small value types shared across the simulated kernel.

use pf_sim::time::{SimDuration, SimTime};

/// A simulated host (one machine on the network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub usize);

/// A simulated router node (a kernel-resident packet switch with no user
/// processes, forwarding between its attached segments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RouterId(pub usize);

/// A simulated user process on some host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub usize);

/// A file descriptor naming an open packet-filter port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fd(pub usize);

/// A kernel-protocol socket descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SockId(pub usize);

/// A pipe descriptor (the user-level demultiplexing experiments' IPC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PipeId(pub usize);

/// A pending-timer handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(pub u64);

/// How a `read` on a packet-filter port behaves when packets are queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadMode {
    /// Return the first queued packet only.
    #[default]
    Single,
    /// Return all queued packets in one system call (§3: "this is useful
    /// for high-volume communications because it can amortize the overhead
    /// of performing a system call over several packets").
    Batch,
}

/// How a `read` behaves when *no* packets are queued (§3.3: "the timeout
/// duration for blocking reads (or optionally, immediate return or
/// indefinite blocking)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockPolicy {
    /// Block until a packet arrives.
    #[default]
    Blocking,
    /// Block, but fail with a timeout error after this long.
    Timeout(SimDuration),
    /// Return a would-block error immediately.
    NonBlocking,
}

/// What to do when a packet arrives at a full per-port input queue.
///
/// §3.3 only specifies *that* overflows drop and are counted; which end of
/// the queue loses is a policy choice. Drop-tail keeps the oldest packets
/// (a reader catching up sees history); drop-oldest keeps the newest (a
/// monitor sampling current traffic prefers recency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Reject the arriving packet; the queue is unchanged.
    #[default]
    DropTail,
    /// Evict the oldest queued packet to make room for the arrival.
    DropOldest,
}

/// Per-port status snapshot (§3.3's status information, extended with the
/// degradation counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PortStats {
    /// Packets dropped at this port's queue (overflow, either policy).
    pub drops: u64,
    /// Packets this port's filter accepted.
    pub accepts: u64,
    /// Packets currently queued awaiting a read.
    pub queued: usize,
    /// Whether the port's filter is quarantined (served by the checked
    /// interpreter instead of the compiled engines).
    pub quarantined: bool,
    /// Filter evaluations terminated by the instruction budget.
    pub budget_overruns: u64,
    /// Packets classified to this port but shed by the admission gate
    /// before demultiplexing (drop-at-NIC; `drops` counts drop-after-demux
    /// queue overflows).
    pub admission_drops: u64,
}

/// Per-port configuration (§3.3's control information).
#[derive(Debug, Clone, Copy)]
pub struct PortConfig {
    /// Read batching mode.
    pub read_mode: ReadMode,
    /// Behavior of reads on an empty queue.
    pub block: BlockPolicy,
    /// Maximum length of the per-port input queue.
    pub max_queue: usize,
    /// Which packet loses when the queue is full.
    pub overflow: OverflowPolicy,
    /// Deliver packets accepted by this port's filter to lower-priority
    /// filters as well (§3.2's monitoring/multicast option).
    pub deliver_to_lower: bool,
    /// Deliver a signal to the owning process upon packet reception.
    pub signal_on_input: bool,
    /// Mark each received packet with a timestamp (costs `microtime`).
    pub timestamp: bool,
    /// Queue depth at which the kernel notifies the owning process of
    /// backpressure (once per crossing; re-armed when the queue drains
    /// below the mark). `None` disables the notification.
    pub backpressure_mark: Option<usize>,
}

impl Default for PortConfig {
    fn default() -> Self {
        PortConfig {
            read_mode: ReadMode::Single,
            block: BlockPolicy::Blocking,
            max_queue: 32,
            overflow: OverflowPolicy::DropTail,
            deliver_to_lower: false,
            signal_on_input: false,
            timestamp: false,
            backpressure_mark: None,
        }
    }
}

/// A packet as delivered to a user process (§3.3: optionally marked with a
/// timestamp and a count of packets lost to queue overflows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecvPacket {
    /// The complete packet, including the data-link header.
    pub bytes: Vec<u8>,
    /// Arrival timestamp, if the port requested stamping.
    pub stamp: Option<SimTime>,
    /// Packets this port had dropped (queue overflow) before this one.
    pub dropped_before: u64,
}

/// Why a read completed without data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadError {
    /// The configured timeout expired with no packet.
    TimedOut,
    /// The port is non-blocking and the queue was empty.
    WouldBlock,
}

impl core::fmt::Display for ReadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ReadError::TimedOut => write!(f, "read timed out"),
            ReadError::WouldBlock => write!(f, "would block"),
        }
    }
}

impl std::error::Error for ReadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_defaults() {
        let c = PortConfig::default();
        assert_eq!(c.read_mode, ReadMode::Single);
        assert_eq!(c.block, BlockPolicy::Blocking);
        assert_eq!(c.overflow, OverflowPolicy::DropTail);
        assert!(!c.deliver_to_lower);
        assert!(!c.timestamp);
        assert!(c.max_queue > 0);
    }

    #[test]
    fn read_error_display() {
        assert_eq!(ReadError::TimedOut.to_string(), "read timed out");
        assert_eq!(ReadError::WouldBlock.to_string(), "would block");
    }
}
