//! The simulated 4.3BSD-like host and its packet-filter pseudo-device.
//!
//! This crate is the paper's §4 ("Implementation") plus the operating
//! system around it, rebuilt on the `pf-sim` substrate:
//!
//! * [`device`] — the packet-filter character-special device: ports,
//!   per-filter priorities, the figure 4-1 demultiplexing loop, adaptive
//!   same-priority reordering, bounded per-port input queues, the
//!   deliver-to-lower-priority option;
//! * [`world`] — hosts, user processes, the event loop, and the system
//!   call surface (open/close/read/write/ioctl on packet-filter ports,
//!   pipes, timers, signals, kernel sockets), all charged against the
//!   calibrated cost model;
//! * [`app`] — the event-driven user-process trait;
//! * [`kproto`] — the hook kernel-resident protocols (in `pf-proto`)
//!   implement, so both networking models coexist as in figure 3-3.

pub mod app;
pub mod device;
pub mod kproto;
pub mod mc;
pub mod types;
pub mod world;

pub use app::App;
pub use device::{
    AdmissionConfig, AdmissionQuota, AdmissionVerdict, DemuxEngine, EngineStats, PfDevice,
    PfDeviceBuilder, PortIdx,
};
pub use kproto::KernelProtocol;
pub use mc::{McConfig, McPipeline, McReport, Placement, RssConfig};
pub use pf_sim::SimClock;
pub use types::{
    BlockPolicy, Fd, HostId, PipeId, PortConfig, ProcId, ReadError, ReadMode, RecvPacket, RouterId,
    SockId, TimerId,
};
pub use world::{
    KernelCtx, OverloadConfig, ProcCtx, RouterCounters, SendError, World, DEFAULT_NIC_CAPACITY,
};
