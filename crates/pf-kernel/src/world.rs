//! The simulated world: hosts, processes, the event loop, and the system
//! call surface.
//!
//! A [`World`] owns the network, a set of hosts (each a single-CPU machine
//! with a packet-filter device, optional kernel-resident protocols, user
//! processes, pipes, and timers), and one deterministic event queue. All
//! virtual time comes from two places: the network's transmission delays
//! and each host's [`pf_sim::cpu::Cpu`] charged through its
//! [`pf_sim::cost::CostModel`].
//!
//! User processes implement [`crate::app::App`] and talk to their kernel
//! through [`ProcCtx`]; kernel-resident protocols implement
//! [`crate::kproto::KernelProtocol`] and use [`KernelCtx`].

use crate::app::App;
use crate::device::{
    AdmissionConfig, AdmissionQuota, AdmissionVerdict, DemuxEngine, EnqueueOutcome, PendingRead,
    PfDevice, PortIdx,
};
use crate::kproto::KernelProtocol;
use crate::types::{
    BlockPolicy, Fd, HostId, PipeId, PortConfig, PortStats, ProcId, ReadError, ReadMode,
    RecvPacket, RouterId, SockId, TimerId,
};
use pf_filter::program::FilterProgram;
use pf_net::frame;
use pf_net::medium::Medium;
use pf_net::segment::{Delivery, FaultModel, Network, SegmentId, StationId};
use pf_net::topology::{Forwarder, ForwarderStats, Route};
use pf_sim::clock::SimClock;
use pf_sim::cost::CostModel;
use pf_sim::counters::Counters;
use pf_sim::cpu::Cpu;
use pf_sim::profile::Profiler;
use pf_sim::queue::{EventHandle, EventQueue, QueueBackend};
use pf_sim::time::{SimDuration, SimTime};
use std::any::Any;
use std::collections::{HashMap, VecDeque};

/// Default NIC receive-ring capacity (frames buffered ahead of the driver).
pub const DEFAULT_NIC_CAPACITY: usize = 32;

/// The receive-livelock armor: interrupt→polling switchover parameters.
///
/// Under per-packet interrupts an arrival rate beyond the demux capacity
/// lets driver work consume the whole CPU — every frame is charged at
/// arrival, and user processes starve behind the backlog (receive
/// livelock). With armor enabled, once the NIC ring occupancy reaches
/// `hi_watermark` the host stops taking per-packet interrupts: frames are
/// buffered by the device for free (DMA) and a periodic poll tick drains at
/// most `poll_batch` of them, bounding kernel receive work to roughly
/// `poll_batch`-frames-worth per `poll_interval` and guaranteeing the
/// remainder of each interval to user processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadConfig {
    /// NIC ring occupancy that switches the receive path to polling.
    pub hi_watermark: usize,
    /// Backlog depth at (or below) which a poll tick finishes the backlog
    /// off and drops back to per-packet interrupts.
    pub lo_watermark: usize,
    /// Maximum frames demultiplexed per poll tick (the bounded per-tick
    /// demux work budget).
    pub poll_batch: usize,
    /// Interval between poll ticks.
    pub poll_interval: SimDuration,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            hi_watermark: 16,
            lo_watermark: 4,
            poll_batch: 8,
            poll_interval: SimDuration::from_micros(20_000),
        }
    }
}

/// Errors from the transmit path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The frame is shorter than the medium's data-link header.
    FrameTooShort,
    /// The frame exceeds the medium's maximum packet size.
    FrameTooLong,
    /// The descriptor does not name an open port.
    BadDescriptor,
}

impl core::fmt::Display for SendError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SendError::FrameTooShort => write!(f, "frame shorter than data-link header"),
            SendError::FrameTooLong => write!(f, "frame exceeds maximum packet size"),
            SendError::BadDescriptor => write!(f, "bad descriptor"),
        }
    }
}

impl std::error::Error for SendError {}

/// Simulation events.
enum Event {
    /// First scheduling of a process.
    Start { host: HostId, proc: ProcId },
    /// A frame has fully arrived at a host's network interface.
    FrameArrival { host: HostId, frame: Vec<u8> },
    /// The driver finished receive processing for one frame (frees a NIC
    /// ring slot).
    DriverDone { host: HostId },
    /// Completion of a packet-filter read.
    DeliverPackets {
        host: HostId,
        proc: ProcId,
        fd: Fd,
        packets: Vec<RecvPacket>,
    },
    /// A read failed: timeout (validated by generation) or would-block.
    ReadFail {
        host: HostId,
        proc: ProcId,
        fd: Fd,
        err: ReadError,
        port: PortIdx,
        generation: Option<u64>,
    },
    /// Signal delivery for a `signal_on_input` port.
    Signal { host: HostId, proc: ProcId, fd: Fd },
    /// A user timer fired.
    Timer {
        host: HostId,
        proc: ProcId,
        token: u64,
        timer: u64,
    },
    /// Pipe data reaching its reader.
    PipeDeliver {
        host: HostId,
        proc: ProcId,
        pipe: PipeId,
        data: Vec<u8>,
    },
    /// A kernel-socket completion reaching its owner.
    SocketDeliver {
        host: HostId,
        proc: ProcId,
        sock: SockId,
        op: u32,
        data: Vec<u8>,
        meta: [u64; 4],
    },
    /// A kernel-protocol timer fired.
    KTimer {
        host: HostId,
        proto: usize,
        token: u64,
    },
    /// A polled drain pass on a host whose receive path is in polling mode.
    PollTick { host: HostId },
    /// A frame injected for transmission from a host's NIC at a scheduled
    /// time (the flow-generator entry point).
    Transmit { host: HostId, frame: Vec<u8> },
    /// A frame has fully arrived at one of a router's interfaces and
    /// awaits the forwarding decision.
    RouterForward {
        router: RouterId,
        iface: usize,
        frame: Vec<u8>,
    },
    /// A scheduled router crash or recovery takes effect (routing-plane
    /// fault injection).
    RouterState { router: RouterId, up: bool },
    /// A scheduled link outage or restoration takes effect.
    LinkState { segment: SegmentId, up: bool },
    /// A router's periodic forwarder tick (liveness probing, protocol
    /// timers); rescheduled every `Forwarder::tick_interval`.
    RouterTick { router: RouterId },
    /// A backpressure notification reaching the owner of a port whose
    /// queue crossed its high-water mark.
    Backpressure {
        host: HostId,
        proc: ProcId,
        fd: Fd,
        depth: usize,
    },
}

struct ProcSlot {
    app: Option<Box<dyn App>>,
    next_fd: usize,
}

struct Sock {
    owner: ProcId,
    proto: usize,
    open: bool,
}

struct Pipe {
    reader: ProcId,
    open: bool,
}

/// One simulated machine.
pub(crate) struct Host {
    pub(crate) name: String,
    pub(crate) station: StationId,
    pub(crate) costs: CostModel,
    pub(crate) cpu: Cpu,
    pub(crate) counters: Counters,
    pub(crate) device: PfDevice,
    procs: Vec<ProcSlot>,
    /// The process the CPU last ran (context-switch accounting).
    current: Option<ProcId>,
    protocols: Vec<Option<Box<dyn KernelProtocol>>>,
    socks: Vec<Sock>,
    pipes: Vec<Pipe>,
    nic_inflight: usize,
    pub(crate) nic_capacity: usize,
    /// Receive-livelock armor parameters; `None` leaves the paper's pure
    /// interrupt-driven receive path.
    overload: Option<OverloadConfig>,
    /// Whether the receive path is currently in polling mode.
    polling: bool,
    /// Whether a `PollTick` is already scheduled (at most one outstanding).
    poll_scheduled: bool,
    /// Frames buffered by the device while in polling mode, awaiting a
    /// poll tick (the NIC ring, repurposed: no CPU is charged to park a
    /// frame here).
    rx_backlog: VecDeque<Vec<u8>>,
    /// Model "other active processes" (§6.5.1): every wakeup of a blocked
    /// process costs two context switches (in, and later out) instead of
    /// depending on which process last ran.
    contended: bool,
    tx_free_at: SimTime,
    next_timer: u64,
    timer_events: HashMap<u64, EventHandle>,
}

impl Host {
    /// Charges the context-switch cost of waking `proc` from a blocked
    /// state at `now`; returns the completion time of the charged work.
    ///
    /// On a contended host (other active processes, §6.5.1) a wakeup costs
    /// two switches — one to the woken process and one away when it blocks
    /// again; otherwise a switch is charged only when another process held
    /// the CPU.
    fn charge_wakeup_switch(&mut self, now: SimTime, proc: ProcId) -> SimTime {
        let switches = if self.contended {
            2
        } else {
            usize::from(self.current != Some(proc))
        };
        let mut t = now;
        for _ in 0..switches {
            self.counters.context_switches += 1;
            let cs = self.costs.context_switch;
            t = self.cpu.charge("kern:swtch", now, cs);
        }
        self.current = Some(proc);
        t
    }
}

/// Who owns a network station: a host's NIC or one router interface.
#[derive(Debug, Clone, Copy)]
enum StationOwner {
    Host(usize),
    Router { router: usize, iface: usize },
}

/// One simulated router: a kernel-resident packet switch whose forwarding
/// plane is supplied through [`pf_net::topology::Forwarder`]. A router has
/// a CPU (forwarding decisions cost `CostModel::ip_forward`) and one
/// station per attached segment, each serialized independently for
/// transmission — store-and-forward latency falls out of the event loop.
struct Router {
    name: String,
    stations: Vec<StationId>,
    forwarder: Box<dyn Forwarder>,
    cpu: Cpu,
    costs: CostModel,
    counters: RouterCounters,
    /// Per-interface NIC availability (transmit serialization).
    tx_free_at: Vec<SimTime>,
    /// Fail-stop state: while down the router forwards nothing, emits
    /// nothing, and its forwarder sees no ticks. Forwarder state
    /// survives the outage (fail-stop with stable storage).
    up: bool,
    /// Cached `Forwarder::tick_interval` (the tick keeps rescheduling
    /// itself through outages so recovery needs no re-arming).
    tick_interval: Option<SimDuration>,
}

/// Event-loop-level counters for one router (the forwarding plane keeps
/// its own [`ForwarderStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterCounters {
    /// Frames that arrived at any of the router's interfaces.
    pub frames_in: u64,
    /// Frames transmitted out of any interface.
    pub frames_out: u64,
    /// Frames that arrived while the router was crashed and were
    /// silently dropped (a dead router blackholes, it does not NAK).
    pub frames_dropped_down: u64,
}

/// The simulation: network, hosts, routers, processes, and the event loop.
pub struct World {
    events: EventQueue<Event>,
    net: Network,
    hosts: Vec<Host>,
    routers: Vec<Router>,
    /// `StationId.0` → owning host or router interface.
    station_owner: Vec<StationOwner>,
}

impl World {
    /// Creates an empty world with a deterministic network seed.
    pub fn new(seed: u64) -> Self {
        Self::with_queue_backend(seed, QueueBackend::default())
    }

    /// Creates an empty world with an explicit event-queue backend.
    ///
    /// Every backend pops events in the identical (time, scheduling
    /// sequence) order, so simulation results do not depend on this
    /// choice — only wall-clock performance does.
    pub fn with_queue_backend(seed: u64, backend: QueueBackend) -> Self {
        World {
            events: EventQueue::with_backend(backend),
            net: Network::new(seed),
            hosts: Vec::new(),
            routers: Vec::new(),
            station_owner: Vec::new(),
        }
    }

    /// Adds a network segment.
    pub fn add_segment(&mut self, medium: Medium, faults: FaultModel) -> SegmentId {
        self.net.add_segment(medium, faults)
    }

    /// Adds a host attached to `segment` with link address `addr`.
    pub fn add_host(
        &mut self,
        name: impl Into<String>,
        segment: SegmentId,
        addr: u64,
        costs: CostModel,
    ) -> HostId {
        let station = self.net.add_station(segment, addr);
        debug_assert_eq!(station.0, self.station_owner.len());
        let id = HostId(self.hosts.len());
        self.station_owner.push(StationOwner::Host(id.0));
        self.hosts.push(Host {
            name: name.into(),
            station,
            costs,
            cpu: Cpu::new(),
            counters: Counters::new(),
            device: PfDevice::new(),
            procs: Vec::new(),
            current: None,
            protocols: Vec::new(),
            socks: Vec::new(),
            pipes: Vec::new(),
            nic_inflight: 0,
            nic_capacity: DEFAULT_NIC_CAPACITY,
            overload: None,
            polling: false,
            poll_scheduled: false,
            rx_backlog: VecDeque::new(),
            contended: false,
            tx_free_at: SimTime::ZERO,
            next_timer: 0,
            timer_events: HashMap::new(),
        });
        id
    }

    /// Adds a router with one station per `(segment, link address)` pair,
    /// running `forwarder` as its kernel-resident forwarding plane. Each
    /// forwarding decision costs `costs.ip_forward` on the router's CPU;
    /// each interface transmits serially like a host NIC.
    pub fn add_router(
        &mut self,
        name: impl Into<String>,
        ifaces: Vec<(SegmentId, u64)>,
        forwarder: Box<dyn Forwarder>,
        costs: CostModel,
    ) -> RouterId {
        assert!(!ifaces.is_empty(), "a router needs at least one interface");
        let id = RouterId(self.routers.len());
        let mut stations = Vec::with_capacity(ifaces.len());
        for (iface, (segment, addr)) in ifaces.into_iter().enumerate() {
            let station = self.net.add_station(segment, addr);
            debug_assert_eq!(station.0, self.station_owner.len());
            self.station_owner.push(StationOwner::Router {
                router: id.0,
                iface,
            });
            stations.push(station);
        }
        let tx_free_at = vec![SimTime::ZERO; stations.len()];
        let tick_interval = forwarder.tick_interval();
        self.routers.push(Router {
            name: name.into(),
            stations,
            forwarder,
            cpu: Cpu::new(),
            costs,
            counters: RouterCounters::default(),
            tx_free_at,
            up: true,
            tick_interval,
        });
        if let Some(interval) = tick_interval {
            let now = self.events.now();
            self.events
                .schedule(now + interval, Event::RouterTick { router: id });
        }
        id
    }

    /// Spawns a process on a host; its [`App::start`] runs at the current
    /// virtual time.
    pub fn spawn(&mut self, host: HostId, app: Box<dyn App>) -> ProcId {
        let h = &mut self.hosts[host.0];
        let proc = ProcId(h.procs.len());
        h.procs.push(ProcSlot {
            app: Some(app),
            next_fd: 3,
        });
        let now = self.events.now();
        self.events.schedule(now, Event::Start { host, proc });
        proc
    }

    /// Registers a kernel-resident protocol on a host (figure 3-3's
    /// coexistence model).
    pub fn register_protocol(&mut self, host: HostId, proto: Box<dyn KernelProtocol>) {
        self.hosts[host.0].protocols.push(Some(proto));
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// A host's event counters.
    pub fn counters(&self, host: HostId) -> &Counters {
        &self.hosts[host.0].counters
    }

    /// A host's gprof-style profiler.
    pub fn profiler(&self, host: HostId) -> &Profiler {
        self.hosts[host.0].cpu.profiler()
    }

    /// A host's CPU (for utilization queries).
    pub fn cpu(&self, host: HostId) -> &Cpu {
        &self.hosts[host.0].cpu
    }

    /// A host's packet-filter device (introspection for tests/monitors).
    pub fn device(&self, host: HostId) -> &PfDevice {
        &self.hosts[host.0].device
    }

    /// A host's configured name.
    pub fn host_name(&self, host: HostId) -> &str {
        &self.hosts[host.0].name
    }

    /// A router's configured name.
    pub fn router_name(&self, router: RouterId) -> &str {
        &self.routers[router.0].name
    }

    /// A router's event-loop counters.
    pub fn router_counters(&self, router: RouterId) -> RouterCounters {
        self.routers[router.0].counters
    }

    /// A router's forwarding-plane statistics.
    pub fn router_stats(&self, router: RouterId) -> ForwarderStats {
        self.routers[router.0].forwarder.stats()
    }

    /// A router's CPU (for utilization queries).
    pub fn router_cpu(&self, router: RouterId) -> &Cpu {
        &self.routers[router.0].cpu
    }

    /// Installs or replaces one route in a router's forwarding plane
    /// (routing churn, from the control plane's point of view). Returns
    /// whether the forwarder accepted the update.
    pub fn update_route(&mut self, router: RouterId, route: Route) -> bool {
        self.routers[router.0].forwarder.update_route(route)
    }

    /// Crashes (`up = false`) or recovers (`up = true`) a router
    /// immediately. A crashed router silently drops every arriving frame
    /// and its forwarder receives no ticks; forwarder state survives the
    /// outage.
    pub fn set_router_up(&mut self, router: RouterId, up: bool) {
        self.routers[router.0].up = up;
    }

    /// Whether a router is currently up.
    pub fn router_up(&self, router: RouterId) -> bool {
        self.routers[router.0].up
    }

    /// Sets a segment's administrative link state immediately (see
    /// [`Network::set_link_state`]).
    pub fn set_link_state(&mut self, segment: SegmentId, up: bool) {
        self.net.set_link_state(segment, up);
    }

    /// Schedules a router crash or recovery at virtual time `at`
    /// (routing-plane fault injection).
    pub fn schedule_router_state(&mut self, router: RouterId, up: bool, at: SimTime) {
        self.events.schedule(at, Event::RouterState { router, up });
    }

    /// Schedules a link outage or restoration at virtual time `at`.
    pub fn schedule_link_state(&mut self, segment: SegmentId, up: bool, at: SimTime) {
        self.events.schedule(at, Event::LinkState { segment, up });
    }

    /// A segment's fault-injection tally (losses, duplicates,
    /// corruptions, partition and link-down drops).
    pub fn segment_faults(&self, segment: SegmentId) -> pf_net::segment::FaultCounters {
        self.net.faults_on(segment)
    }

    /// Sets a host's NIC receive-ring capacity.
    pub fn set_nic_capacity(&mut self, host: HostId, frames: usize) {
        self.hosts[host.0].nic_capacity = frames;
    }

    /// Models other active processes on the host (§6.5.1): every wakeup of
    /// a blocked process then costs two context switches.
    pub fn set_contended(&mut self, host: HostId, on: bool) {
        self.hosts[host.0].contended = on;
    }

    /// Arms (or disarms) the receive-livelock armor on a host: once the
    /// NIC ring occupancy reaches the high-water mark the receive path
    /// stops taking per-packet interrupts and drains bounded batches from
    /// a periodic poll tick instead. Disarming drains any buffered backlog
    /// immediately and returns to per-packet interrupts.
    pub fn set_overload_armor(&mut self, host: HostId, config: Option<OverloadConfig>) {
        self.hosts[host.0].overload = config;
        if config.is_none() {
            let rest: Vec<Vec<u8>> = self.hosts[host.0].rx_backlog.drain(..).collect();
            let h = &mut self.hosts[host.0];
            if h.polling {
                h.polling = false;
                h.counters.rx_mode_switches += 1;
            }
            let now = self.events.now();
            for frame in rest {
                self.receive_upcall(host, frame, now);
            }
        }
    }

    /// A host's overload-armor parameters, if armed.
    pub fn overload_armor(&self, host: HostId) -> Option<OverloadConfig> {
        self.hosts[host.0].overload
    }

    /// Whether a host's receive path is currently in polling mode.
    pub fn rx_polling(&self, host: HostId) -> bool {
        self.hosts[host.0].polling
    }

    /// Arms (or disarms) the admission gate on a host's packet-filter
    /// device: a cheap pre-demux probe that classifies each arriving frame
    /// by the bound filters' leading literal test and sheds best-effort
    /// traffic against per-port token buckets before any filter runs.
    pub fn set_admission_control(&mut self, host: HostId, config: Option<AdmissionConfig>) {
        self.hosts[host.0].device.set_admission_control(config);
    }

    /// Bounds candidates evaluated per packet under a host's geom engine
    /// ([`PfDevice::set_geom_candidate_cap`]): the overlap-bomb
    /// mitigation. Inert under every other engine.
    pub fn set_geom_candidate_cap(&mut self, host: HostId, cap: Option<usize>) {
        self.hosts[host.0].device.set_geom_candidate_cap(cap);
    }

    /// Enables or disables the §3.2 adaptive reordering of equal-priority
    /// filters on a host's packet-filter device (an ablation knob; on by
    /// default).
    pub fn set_adaptive_reorder(&mut self, host: HostId, on: bool) {
        self.hosts[host.0].device.set_adaptive_reorder(on);
    }

    /// Selects a host's demultiplexing engine: the paper's sequential
    /// interpreter loop (the default) or §7's compiled decision table.
    pub fn set_demux_engine(&mut self, host: HostId, engine: DemuxEngine) {
        self.hosts[host.0].device.set_engine(engine);
    }

    /// Sets (or clears) the per-evaluation filter instruction budget on a
    /// host's packet-filter device. Filters that could exceed the budget
    /// are quarantined: excluded from the compiled engines and served by
    /// the budgeted checked interpreter (graceful degradation instead of a
    /// runaway demultiplexer).
    pub fn set_filter_budget(&mut self, host: HostId, budget: Option<u32>) {
        let h = &mut self.hosts[host.0];
        let newly = h.device.set_instruction_budget(budget);
        h.counters.filters_quarantined += u64::from(newly);
    }

    /// The network (e.g. for segment statistics).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Downcasts a process's [`App`] to its concrete type, for harvesting
    /// results after a run.
    pub fn app_ref<T: App>(&self, host: HostId, proc: ProcId) -> Option<&T> {
        let app = self.hosts[host.0].procs[proc.0].app.as_deref()?;
        (app as &dyn Any).downcast_ref::<T>()
    }

    /// Downcasts a host's registered kernel protocol by concrete type.
    pub fn protocol_ref<T: KernelProtocol>(&self, host: HostId) -> Option<&T> {
        self.hosts[host.0]
            .protocols
            .iter()
            .filter_map(|p| p.as_deref())
            .find_map(|p| (p as &dyn Any).downcast_ref::<T>())
    }

    /// Injects a frame as if it arrived from the wire at time `at` (test
    /// and trace-replay hook).
    pub fn inject_frame(&mut self, host: HostId, frame: Vec<u8>, at: SimTime) {
        self.events
            .schedule(at, Event::FrameArrival { host, frame });
    }

    /// Schedules `frame` for transmission from `host`'s NIC at time `at`:
    /// the flow-generator entry point. The driver transmit cost is charged
    /// at `at`; the NIC serializes with any concurrent sends.
    pub fn send_frame_at(&mut self, host: HostId, frame: Vec<u8>, at: SimTime) {
        self.events.schedule(at, Event::Transmit { host, frame });
    }

    fn dispatch(&mut self, now: SimTime, event: Event) {
        match event {
            Event::Start { host, proc } => {
                self.invoke_app(host, proc, |app, k| app.start(k));
            }
            Event::FrameArrival { host, frame } => self.frame_arrival(host, frame, now),
            Event::DriverDone { host } => {
                let h = &mut self.hosts[host.0];
                h.nic_inflight = h.nic_inflight.saturating_sub(1);
            }
            Event::DeliverPackets {
                host,
                proc,
                fd,
                packets,
            } => {
                self.invoke_app(host, proc, |app, k| app.on_packets(fd, packets, k));
            }
            Event::ReadFail {
                host,
                proc,
                fd,
                err,
                port,
                generation,
            } => {
                if let Some(generation) = generation {
                    // A timeout: only valid if that exact read is still
                    // pending (completions cancel the event, but be safe).
                    let p = self.hosts[host.0].device.port_mut(port);
                    match &p.pending {
                        Some(pr) if pr.generation == generation => {
                            p.pending = None;
                        }
                        _ => return,
                    }
                }
                self.invoke_app(host, proc, |app, k| app.on_read_error(fd, err, k));
            }
            Event::Signal { host, proc, fd } => {
                self.invoke_app(host, proc, |app, k| app.on_signal(fd, k));
            }
            Event::Timer {
                host,
                proc,
                token,
                timer,
            } => {
                self.hosts[host.0].timer_events.remove(&timer);
                self.invoke_app(host, proc, |app, k| app.on_timer(token, k));
            }
            Event::PipeDeliver {
                host,
                proc,
                pipe,
                data,
            } => {
                self.invoke_app(host, proc, |app, k| app.on_pipe_data(pipe, data, k));
            }
            Event::SocketDeliver {
                host,
                proc,
                sock,
                op,
                data,
                meta,
            } => {
                self.invoke_app(host, proc, |app, k| app.on_socket(sock, op, data, meta, k));
            }
            Event::KTimer { host, proto, token } => {
                self.invoke_proto(host, proto, |p, k| p.on_timer(token, k));
            }
            Event::PollTick { host } => self.poll_tick(host, now),
            Event::Transmit { host, frame } => {
                let h = &mut self.hosts[host.0];
                let cost = h.costs.driver_tx_cost(frame.len());
                let done = h.cpu.charge("kern:if-output", now, cost);
                self.transmit_frame(host, &frame, done);
            }
            Event::RouterForward {
                router,
                iface,
                frame,
            } => self.router_forward(router, iface, frame, now),
            Event::RouterState { router, up } => {
                self.routers[router.0].up = up;
            }
            Event::LinkState { segment, up } => {
                self.net.set_link_state(segment, up);
            }
            Event::RouterTick { router } => self.router_tick(router, now),
            Event::Backpressure {
                host,
                proc,
                fd,
                depth,
            } => {
                self.invoke_app(host, proc, |app, k| app.on_backpressure(fd, depth, k));
            }
        }
    }

    /// Runs an app callback with the syscall context, using the take/put
    /// pattern so the app and the world can be borrowed simultaneously.
    fn invoke_app(
        &mut self,
        host: HostId,
        proc: ProcId,
        f: impl FnOnce(&mut dyn App, &mut ProcCtx<'_>),
    ) {
        let Some(mut app) = self.hosts[host.0].procs[proc.0].app.take() else {
            return;
        };
        {
            let mut ctx = ProcCtx {
                world: self,
                host,
                proc,
            };
            f(app.as_mut(), &mut ctx);
        }
        self.hosts[host.0].procs[proc.0].app = Some(app);
    }

    /// Runs a kernel-protocol callback with the kernel context.
    fn invoke_proto(
        &mut self,
        host: HostId,
        proto: usize,
        f: impl FnOnce(&mut dyn KernelProtocol, &mut KernelCtx<'_>),
    ) {
        let Some(mut p) = self.hosts[host.0].protocols[proto].take() else {
            return;
        };
        {
            let mut ctx = KernelCtx {
                world: self,
                host,
                proto,
            };
            f(p.as_mut(), &mut ctx);
        }
        self.hosts[host.0].protocols[proto] = Some(p);
    }

    /// The receive path: driver → kernel protocol or packet filter.
    ///
    /// In polling mode (overload armor engaged) the frame is parked in the
    /// device's backlog for free — the poll tick pays the driver cost in
    /// batches; under per-packet interrupts the full driver receive cost is
    /// charged here, and sustained ring occupancy at the high-water mark
    /// flips the host into polling mode.
    fn frame_arrival(&mut self, host: HostId, frame: Vec<u8>, now: SimTime) {
        {
            let h = &mut self.hosts[host.0];
            h.counters.packets_received += 1;
            if h.polling {
                if h.rx_backlog.len() >= h.nic_capacity {
                    h.counters.drops_interface += 1;
                    return;
                }
                h.rx_backlog.push_back(frame);
                if !h.poll_scheduled {
                    h.poll_scheduled = true;
                    let interval = h.overload.map(|c| c.poll_interval).unwrap_or_default();
                    self.events
                        .schedule(now + interval, Event::PollTick { host });
                }
                return;
            }
            if h.nic_inflight >= h.nic_capacity {
                h.counters.drops_interface += 1;
                return;
            }
            h.nic_inflight += 1;
            let cost = h.costs.driver_rx_cost(frame.len());
            let done = h.cpu.charge("driver:rx", now, cost);
            self.events.schedule(done, Event::DriverDone { host });
            if let Some(cfg) = h.overload {
                if h.nic_inflight >= cfg.hi_watermark {
                    // The driver can no longer keep up with per-packet
                    // interrupts: switch to polling. Frames already charged
                    // keep their scheduled processing; new arrivals park in
                    // the backlog until the first poll tick.
                    h.polling = true;
                    h.counters.rx_mode_switches += 1;
                    if !h.poll_scheduled {
                        h.poll_scheduled = true;
                        self.events
                            .schedule(now + cfg.poll_interval, Event::PollTick { host });
                    }
                }
            }
        }
        self.receive_upcall(host, frame, now);
    }

    /// Hands one received frame up the stack: kernel-resident protocols get
    /// first claim on the Ethernet type (figure 3-3); everything else runs
    /// the admission gate (when armed) and then the packet filter.
    ///
    /// Returns whether the frame consumed demultiplexing work (claimed by
    /// a kernel protocol or passed into the filter ladder). A gate-shed
    /// frame returns `false`: it cost one probe and nothing else, which is
    /// what lets the poll tick shed a flood without spending its bounded
    /// demux batch on frames that were never going to be delivered.
    fn receive_upcall(&mut self, host: HostId, frame: Vec<u8>, now: SimTime) -> bool {
        let medium = *self.net.medium_of(self.hosts[host.0].station);
        if let Ok(h) = frame::parse(&medium, &frame) {
            let claimed = self.hosts[host.0]
                .protocols
                .iter()
                .position(|p| p.as_deref().is_some_and(|p| p.claims(h.ethertype)));
            if let Some(pi) = claimed {
                self.invoke_proto(host, pi, |p, k| p.input(frame, k));
                return true;
            }
        }

        {
            // The admission gate: one cheap probe ahead of the filter
            // ladder; shed frames never reach a filter (drop-at-NIC).
            let h = &mut self.hosts[host.0];
            if h.device.admission_control().is_some() {
                let c = h.costs.admission_probe;
                h.cpu.charge("pf:admit", now, c);
                match h.device.admit(&frame, now) {
                    AdmissionVerdict::Shed { .. } => {
                        h.counters.drops_admission += 1;
                        return false;
                    }
                    AdmissionVerdict::ShedMimic { .. } => {
                        // Attributed separately: an adversarial drop, not
                        // quota exhaustion.
                        h.counters.drops_mimicry_shed += 1;
                        return false;
                    }
                    AdmissionVerdict::Admit => {}
                }
            }
        }

        self.pf_demux(host, frame, now);
        true
    }

    /// One polled drain pass: charges the fixed batch cost, hands frames
    /// up the stack until `poll_batch` of them have consumed real demux
    /// work (each at the cheap per-packet polling cost), and either
    /// re-arms the tick or — when the backlog has fallen to the low-water
    /// mark — finishes it off and returns to per-packet interrupts.
    ///
    /// Frames the admission gate sheds cost only the probe and do *not*
    /// count against the batch: the gate runs at line rate, so a flood of
    /// doomed best-effort frames cannot starve admitted traffic of the
    /// tick's bounded demultiplexing budget.
    fn poll_tick(&mut self, host: HostId, now: SimTime) {
        let Some(cfg) = ({
            let h = &mut self.hosts[host.0];
            h.poll_scheduled = false;
            if h.polling {
                h.overload
            } else {
                None
            }
        }) else {
            return;
        };
        {
            let h = &mut self.hosts[host.0];
            h.counters.poll_batches += 1;
            let c = h.costs.poll_batch;
            h.cpu.charge("driver:poll", now, c);
        }
        let mut demuxed = 0usize;
        while demuxed < cfg.poll_batch {
            let Some(frame) = self.hosts[host.0].rx_backlog.pop_front() else {
                break;
            };
            if self.receive_upcall(host, frame, now) {
                demuxed += 1;
                let h = &mut self.hosts[host.0];
                let c = h.costs.poll_per_packet;
                h.cpu.charge("driver:poll", now, c);
            }
        }
        let finish: Option<Vec<Vec<u8>>> = {
            let h = &mut self.hosts[host.0];
            if h.rx_backlog.len() <= cfg.lo_watermark {
                h.polling = false;
                h.counters.rx_mode_switches += 1;
                Some(h.rx_backlog.drain(..).collect())
            } else {
                h.poll_scheduled = true;
                self.events
                    .schedule(now + cfg.poll_interval, Event::PollTick { host });
                None
            }
        };
        if let Some(rest) = finish {
            for frame in rest {
                let h = &mut self.hosts[host.0];
                let c = h.costs.poll_per_packet;
                h.cpu.charge("driver:poll", now, c);
                self.receive_upcall(host, frame, now);
            }
        }
    }

    /// The packet-filter demultiplexing path (figure 4-1 + §3.2).
    fn pf_demux(&mut self, host: HostId, frame: Vec<u8>, now: SimTime) {
        let outcome = self.hosts[host.0].device.demux(&frame);
        {
            let h = &mut self.hosts[host.0];
            match h.device.engine() {
                DemuxEngine::Sequential => {
                    for a in &outcome.applied {
                        h.counters.filters_applied += 1;
                        h.counters.filter_instructions += u64::from(a.stats.instructions);
                        let cost = h.costs.filter_cost(a.stats.instructions);
                        h.cpu.charge("pf:filter", now, cost);
                    }
                }
                DemuxEngine::DecisionTable => {
                    // One hash probe per shape, independent of population.
                    let shapes = h.device.engine_stats().table_shapes as u32;
                    let cost = h.costs.dtree_probe.times(u64::from(shapes.max(1)));
                    h.cpu.charge("pf:dtree", now, cost);
                }
                DemuxEngine::Ir => {
                    // Threaded-code operations are comparable to interpreter
                    // instructions; charge them on the same cost curve.
                    h.counters.filter_instructions += u64::from(outcome.ir_ops);
                    let cost = h.costs.filter_cost(outcome.ir_ops);
                    h.cpu.charge("pf:ir", now, cost);
                }
                DemuxEngine::Sharded => {
                    // Same instruction-cost curve as the IR engine: the
                    // sharded set reports value-numbered threaded-code ops
                    // (memoized tests are free, skipped members cost
                    // nothing).
                    h.counters.filter_instructions += u64::from(outcome.ir_ops);
                    let cost = h.costs.filter_cost(outcome.ir_ops);
                    h.cpu.charge("pf:sharded", now, cost);
                }
                DemuxEngine::Geom => {
                    // One index probe per `(word, range-class)` tuple —
                    // O(log U) segment-tree work, independent of member
                    // count — plus the threaded-code ops of the members
                    // the index could not rule out.
                    let tuples = h.device.engine_stats().geom_tuple_count as u64;
                    let probe = h.costs.geom_probe.times(tuples.max(1));
                    h.cpu.charge("pf:geom", now, probe);
                    h.counters.filter_instructions += u64::from(outcome.ir_ops);
                    let cost = h.costs.filter_cost(outcome.ir_ops);
                    h.cpu.charge("pf:geom", now, cost);
                }
                DemuxEngine::Jit => {
                    // Native straight-line code has no per-instruction
                    // dispatch; each member walked is one flat evaluation.
                    let cost = h
                        .costs
                        .jit_eval
                        .times(u64::from(outcome.jit_filters.max(1)));
                    h.cpu.charge("pf:jit", now, cost);
                }
            }
            // Under the compiled engines, `applied` holds the checked
            // fallback evaluations of quarantined filters — degradation
            // work, charged on the interpreter's cost curve.
            if h.device.engine() != DemuxEngine::Sequential {
                for a in &outcome.applied {
                    h.counters.filters_applied += 1;
                    h.counters.filter_instructions += u64::from(a.stats.instructions);
                    let cost = h.costs.filter_cost(a.stats.instructions);
                    h.cpu.charge("pf:quarantine", now, cost);
                }
            }
            h.counters.filter_budget_overruns += u64::from(outcome.budget_overruns);
            h.counters.filters_quarantined += u64::from(outcome.newly_quarantined);
        }
        if outcome.accepted.is_empty() {
            let h = &mut self.hosts[host.0];
            h.counters.drops_no_match += 1;
            // Feed the gate's mimicry-pressure statistic: this frame was
            // admitted (possibly on a protected signature) yet matched no
            // filter. Drives gate-signature re-selection when armed.
            if h.device.admission_control().is_some() && h.device.note_unmatched_admit(&frame) {
                h.counters.gate_resignature_events += 1;
            }
            return;
        }
        for idx in outcome.accepted {
            let (stamp, enqueued) = {
                let h = &mut self.hosts[host.0];
                let cost = h.costs.pf_bookkeeping;
                h.cpu.charge("pf:input", now, cost);
                let stamp = if h.device.port(idx).config.timestamp {
                    let c = h.costs.microtime;
                    h.cpu.charge("kern:microtime", now, c);
                    h.counters.timestamps += 1;
                    Some(now)
                } else {
                    None
                };
                let dropped_before = h.device.port(idx).drops;
                let pkt = RecvPacket {
                    bytes: frame.clone(),
                    stamp,
                    dropped_before,
                };
                let outcome = h.device.port_mut(idx).enqueue(pkt);
                let ok = outcome != EnqueueOutcome::Rejected;
                if ok {
                    h.counters.packets_delivered += 1;
                }
                if outcome != EnqueueOutcome::Stored {
                    h.counters.drops_queue_full += 1;
                }
                // Backpressure: the first enqueue at or above the mark
                // notifies the owner; re-armed when a read drains the
                // queue back below it.
                let p = h.device.port_mut(idx);
                if let Some(mark) = p.config.backpressure_mark {
                    if p.queue.len() >= mark && !p.backpressured {
                        p.backpressured = true;
                        let (proc, fd) = p.owner;
                        let depth = p.queue.len();
                        h.counters.backpressure_signals += 1;
                        h.counters.domain_crossings += 1;
                        let cost = h.costs.wakeup;
                        let t = h.cpu.charge("kern:backpressure", now, cost);
                        self.events.schedule(
                            t,
                            Event::Backpressure {
                                host,
                                proc,
                                fd,
                                depth,
                            },
                        );
                    }
                }
                (stamp, ok)
            };
            let _ = stamp;
            if !enqueued {
                continue;
            }
            let port = self.hosts[host.0].device.port(idx);
            if port.pending.is_some() {
                self.complete_read(host, idx, true);
            } else if port.config.signal_on_input {
                let (proc, fd) = port.owner;
                let h = &mut self.hosts[host.0];
                h.counters.signals_delivered += 1;
                h.counters.domain_crossings += 1;
                let cost = h.costs.wakeup + h.costs.context_switch;
                h.counters.context_switches += 1;
                h.current = Some(proc);
                let t = h.cpu.charge("kern:psignal", now, cost);
                self.events.schedule(t, Event::Signal { host, proc, fd });
            }
        }
    }

    /// Completes a read on `port`: drains packets per the read mode,
    /// charges wakeup/switch/copy costs, and schedules the delivery.
    ///
    /// `was_blocked` selects whether wakeup and context-switch costs apply
    /// (they do not when a read finds data already queued).
    fn complete_read(&mut self, host: HostId, idx: PortIdx, was_blocked: bool) {
        let now = self.events.now();
        let h = &mut self.hosts[host.0];
        let port = h.device.port_mut(idx);
        if let Some(pending) = port.pending.take() {
            if let Some(t) = pending.timeout {
                self.events.cancel(t);
            }
        }
        let (proc, fd) = port.owner;
        let n = match port.config.read_mode {
            ReadMode::Single => 1,
            ReadMode::Batch => port.queue.len().max(1),
        };
        let packets: Vec<RecvPacket> = port.queue.drain(..n.min(port.queue.len())).collect();
        debug_assert!(!packets.is_empty(), "complete_read requires queued data");
        if let Some(mark) = port.config.backpressure_mark {
            if port.queue.len() < mark {
                port.backpressured = false;
            }
        }

        let mut t = now;
        if was_blocked {
            let wake = h.costs.wakeup;
            t = h.cpu.charge("kern:wakeup", now, wake);
        }
        // On a contended host the reader was preempted between packets even
        // if its read found data queued, so dispatch costs apply either way.
        if was_blocked || h.contended {
            t = t.max(h.charge_wakeup_switch(now, proc));
        }
        for p in &packets {
            h.counters.copies += 1;
            h.counters.bytes_copied += p.bytes.len() as u64;
            let c = h.costs.copy(p.bytes.len());
            t = h.cpu.charge("pf:read-copyout", now, c);
        }
        self.events.schedule(
            t,
            Event::DeliverPackets {
                host,
                proc,
                fd,
                packets,
            },
        );
    }

    /// Shared transmit path: serializes on the host's NIC and fans the
    /// frame out as arrival events at the receiving stations.
    fn transmit_frame(&mut self, host: HostId, frame: &[u8], earliest: SimTime) {
        let h = &mut self.hosts[host.0];
        let start = earliest.max(h.tx_free_at);
        let (done, deliveries) = self.net.transmit(h.station, frame, start);
        h.tx_free_at = done;
        h.counters.packets_sent += 1;
        self.fan_out(deliveries);
    }

    /// Schedules each delivery at its owning station: hosts take a
    /// `FrameArrival` (the driver receive path), router interfaces take a
    /// `RouterForward` (the forwarding path).
    fn fan_out(&mut self, deliveries: Vec<Delivery>) {
        for d in deliveries {
            let event = match self.station_owner[d.station.0] {
                StationOwner::Host(h) => Event::FrameArrival {
                    host: HostId(h),
                    frame: d.frame,
                },
                StationOwner::Router { router, iface } => Event::RouterForward {
                    router: RouterId(router),
                    iface,
                    frame: d.frame,
                },
            };
            self.events.schedule(d.arrival, event);
        }
    }

    /// The router receive-and-forward path: charge the forwarding decision
    /// on the router's CPU, ask the forwarding plane where the frame goes,
    /// and transmit each output serialized on its interface. A crashed
    /// router silently drops the frame without charging anything (its CPU
    /// is not executing).
    ///
    /// Resilience work the forwarding plane did while handling the frame
    /// is priced by diffing its [`ForwarderStats`] around the call:
    /// control-frame processing costs `lsu_process` each and a triggered
    /// route recomputation costs `route_recompute`, on top of the
    /// unconditional `ip_forward` decision.
    fn router_forward(&mut self, router: RouterId, iface: usize, frame: Vec<u8>, now: SimTime) {
        let r = &mut self.routers[router.0];
        if !r.up {
            r.counters.frames_dropped_down += 1;
            return;
        }
        r.counters.frames_in += 1;
        let cost = r.costs.ip_forward;
        let mut decided = r.cpu.charge("ip:forward", now, cost);
        let before = r.forwarder.stats();
        let outs = r.forwarder.forward(iface, &frame);
        let after = r.forwarder.stats();
        let control = after.control_in - before.control_in;
        if control > 0 {
            let c = r.costs.lsu_process.times(control);
            decided = r.cpu.charge("ip:control", now, c);
        }
        let recomputes = after.reconvergences - before.reconvergences;
        if recomputes > 0 {
            let c = r.costs.route_recompute.times(recomputes);
            decided = r.cpu.charge("ip:reconverge", now, c);
        }
        self.router_transmit(router, decided, outs);
    }

    /// One periodic forwarder tick: reschedules itself unconditionally
    /// (so outages need no re-arming), then — if the router is up — runs
    /// the forwarding plane's timer work, charges the probing and
    /// recomputation it did (stats diff, as in `router_forward`), and
    /// transmits whatever control frames it emitted.
    fn router_tick(&mut self, router: RouterId, now: SimTime) {
        let Some(interval) = self.routers[router.0].tick_interval else {
            return;
        };
        self.events
            .schedule(now + interval, Event::RouterTick { router });
        let r = &mut self.routers[router.0];
        if !r.up {
            return;
        }
        let before = r.forwarder.stats();
        let outs = r.forwarder.tick(now);
        let after = r.forwarder.stats();
        let mut decided = now;
        let hellos = after.hellos_sent - before.hellos_sent;
        if hellos > 0 {
            let c = r.costs.hello_emit.times(hellos);
            decided = r.cpu.charge("ip:hello", now, c);
        }
        let recomputes = after.reconvergences - before.reconvergences;
        if recomputes > 0 {
            let c = r.costs.route_recompute.times(recomputes);
            decided = r.cpu.charge("ip:reconverge", now, c);
        }
        self.router_transmit(router, decided, outs);
    }

    /// Transmits forwarder outputs, each serialized on its interface.
    fn router_transmit(&mut self, router: RouterId, decided: SimTime, outs: Vec<(usize, Vec<u8>)>) {
        for (out_iface, out_frame) in outs {
            let r = &mut self.routers[router.0];
            let start = decided.max(r.tx_free_at[out_iface]);
            let station = r.stations[out_iface];
            let (done, deliveries) = self.net.transmit(station, &out_frame, start);
            let r = &mut self.routers[router.0];
            r.tx_free_at[out_iface] = done;
            r.counters.frames_out += 1;
            self.fan_out(deliveries);
        }
    }
}

/// The unified run-loop: [`SimClock::run`] and [`SimClock::run_until`]
/// drive the world exactly as the old inherent methods did.
impl SimClock for World {
    fn now(&self) -> SimTime {
        self.events.now()
    }

    fn next_event_time(&mut self) -> Option<SimTime> {
        self.events.peek_time()
    }

    fn step(&mut self) -> bool {
        match self.events.pop() {
            Some((t, ev)) => {
                self.dispatch(t, ev);
                true
            }
            None => false,
        }
    }
}

/// The system-call surface handed to a user process during a callback.
///
/// Every method charges the costs a 4.3BSD kernel would: system-call
/// overhead, kernel↔user copies, context switches on wakeups, and the
/// packet-filter device's own bookkeeping — all per the host's
/// [`CostModel`].
pub struct ProcCtx<'a> {
    world: &'a mut World,
    host: HostId,
    proc: ProcId,
}

impl ProcCtx<'_> {
    fn h(&mut self) -> &mut Host {
        &mut self.world.hosts[self.host.0]
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.world.events.now()
    }

    /// This process's id.
    pub fn proc_id(&self) -> ProcId {
        self.proc
    }

    /// This host's id.
    pub fn host_id(&self) -> HostId {
        self.host
    }

    /// The data-link description and this host's link address (§3.3's
    /// status information).
    pub fn link_info(&self) -> (Medium, u64) {
        let station = self.world.hosts[self.host.0].station;
        (
            *self.world.net.medium_of(station),
            self.world.net.addr_of(station),
        )
    }

    /// Charges one system call's entry/exit overhead.
    fn charge_syscall(&mut self, routine: &'static str) -> SimTime {
        let now = self.world.events.now();
        let h = self.h();
        h.counters.syscalls += 1;
        h.counters.domain_crossings += 2;
        let c = h.costs.syscall;
        h.cpu.charge(routine, now, c)
    }

    /// Charges user-level computation (protocol processing in the process,
    /// display work, etc.) against this host's CPU; returns the completion
    /// time. No domain crossing is involved.
    pub fn compute(&mut self, routine: &'static str, cost: SimDuration) -> SimTime {
        let now = self.world.events.now();
        self.h().cpu.charge(routine, now, cost)
    }

    /// The host's cost model (so user-level protocol code can scale its
    /// own processing costs to the machine it runs on).
    pub fn costs(&self) -> &CostModel {
        &self.world.hosts[self.host.0].costs
    }

    /// Opens a packet-filter port; returns its descriptor.
    pub fn pf_open(&mut self) -> Fd {
        self.charge_syscall("pf:open");
        let proc = self.proc;
        let h = self.h();
        let fd = Fd(h.procs[proc.0].next_fd);
        h.procs[proc.0].next_fd += 1;
        h.device.open((proc, fd));
        fd
    }

    /// Closes a packet-filter port.
    pub fn pf_close(&mut self, fd: Fd) {
        self.charge_syscall("pf:close");
        let proc = self.proc;
        let h = self.h();
        if let Some(idx) = h.device.port_of((proc, fd)) {
            h.device.close(idx);
        }
    }

    /// Binds a filter to a port — "at a cost comparable to that of
    /// receiving a packet" (§3.1).
    ///
    /// Returns `false` when the filter was quarantined at bind time (it
    /// failed validation or could exceed the host's instruction budget);
    /// the port still works, served by the checked interpreter.
    pub fn pf_set_filter(&mut self, fd: Fd, filter: FilterProgram) -> bool {
        self.charge_syscall("pf:ioctl");
        let now = self.world.events.now();
        let proc = self.proc;
        let h = self.h();
        let cost = h.costs.pf_bookkeeping;
        h.cpu.charge("pf:ioctl", now, cost);
        if let Some(idx) = h.device.port_of((proc, fd)) {
            let clean = h.device.set_filter(idx, filter);
            if !clean {
                h.counters.filters_quarantined += 1;
            }
            clean
        } else {
            false
        }
    }

    /// Updates a port's configuration (§3.3's `ioctl` controls).
    pub fn pf_configure(&mut self, fd: Fd, config: PortConfig) {
        self.charge_syscall("pf:ioctl");
        let proc = self.proc;
        let h = self.h();
        if let Some(idx) = h.device.port_of((proc, fd)) {
            h.device.port_mut(idx).config = config;
        }
    }

    /// Overrides the admission gate's quota for this port (`None` returns
    /// the port to the gate's default quota). Takes effect only while the
    /// host has admission control armed.
    pub fn pf_set_quota(&mut self, fd: Fd, quota: Option<AdmissionQuota>) {
        self.charge_syscall("pf:ioctl");
        let proc = self.proc;
        let h = self.h();
        if let Some(idx) = h.device.port_of((proc, fd)) {
            h.device.set_port_quota(idx, quota);
        }
    }

    /// Dropped-packet count for a port (§3.3 status information).
    pub fn pf_drops(&mut self, fd: Fd) -> u64 {
        let proc = self.proc;
        let h = self.h();
        h.device
            .port_of((proc, fd))
            .map_or(0, |idx| h.device.port(idx).drops)
    }

    /// Full status snapshot for a port (§3.3 status information plus the
    /// degradation counters: quarantine state and budget overruns).
    pub fn pf_port_stats(&mut self, fd: Fd) -> Option<PortStats> {
        let proc = self.proc;
        let h = self.h();
        let idx = h.device.port_of((proc, fd))?;
        Some(h.device.port(idx).stats())
    }

    /// Transmits a complete frame (data-link header included) — §3's
    /// packet transmission: "control returns to the user once the packet is
    /// queued for transmission"; delivery is unreliable.
    ///
    /// # Errors
    ///
    /// Returns a [`SendError`] if the frame violates the medium's size
    /// limits.
    pub fn pf_write(&mut self, _fd: Fd, frame_bytes: &[u8]) -> Result<(), SendError> {
        let (medium, _) = self.link_info();
        if frame_bytes.len() < medium.header_len {
            return Err(SendError::FrameTooShort);
        }
        if frame_bytes.len() > medium.max_packet {
            return Err(SendError::FrameTooLong);
        }
        self.charge_syscall("pf:write");
        let now = self.world.events.now();
        let h = self.h();
        h.counters.copies += 1;
        h.counters.bytes_copied += frame_bytes.len() as u64;
        let c_copy = h.costs.copy(frame_bytes.len());
        h.cpu.charge("pf:write-copyin", now, c_copy);
        let c_out = h.costs.pf_send_fixed;
        h.cpu.charge("pf:output", now, c_out);
        let c_tx = h.costs.driver_tx_cost(frame_bytes.len());
        let done = h.cpu.charge("driver:tx", now, c_tx);
        let host = self.host;
        self.world.transmit_frame(host, frame_bytes, done);
        Ok(())
    }

    /// Transmits several complete frames in one system call — §7's
    /// proposed *write-batching* option ("a write-batching option (to send
    /// several packets in one system call) might also improve
    /// performance"). One syscall's entry/exit overhead covers the whole
    /// batch; per-frame copy, output, and driver costs still apply.
    ///
    /// # Errors
    ///
    /// Returns the first frame's size violation, if any; frames before it
    /// are already queued (matching `writev` semantics).
    pub fn pf_write_batch(&mut self, _fd: Fd, frames: &[Vec<u8>]) -> Result<(), SendError> {
        let (medium, _) = self.link_info();
        self.charge_syscall("pf:writev");
        for frame_bytes in frames {
            if frame_bytes.len() < medium.header_len {
                return Err(SendError::FrameTooShort);
            }
            if frame_bytes.len() > medium.max_packet {
                return Err(SendError::FrameTooLong);
            }
            let now = self.world.events.now();
            let h = self.h();
            h.counters.copies += 1;
            h.counters.bytes_copied += frame_bytes.len() as u64;
            let c_copy = h.costs.copy(frame_bytes.len());
            h.cpu.charge("pf:write-copyin", now, c_copy);
            let c_out = h.costs.pf_send_fixed;
            h.cpu.charge("pf:output", now, c_out);
            let c_tx = h.costs.driver_tx_cost(frame_bytes.len());
            let done = h.cpu.charge("driver:tx", now, c_tx);
            let host = self.host;
            self.world.transmit_frame(host, frame_bytes, done);
        }
        Ok(())
    }

    /// Arms a read on a packet-filter port. Completion arrives as
    /// [`App::on_packets`] (or [`App::on_read_error`] on timeout /
    /// would-block), per the port's configuration.
    pub fn pf_read(&mut self, fd: Fd) {
        self.charge_syscall("pf:read");
        let proc = self.proc;
        let host = self.host;
        let Some(idx) = self.world.hosts[host.0].device.port_of((proc, fd)) else {
            return;
        };
        let has_data = !self.world.hosts[host.0].device.port(idx).queue.is_empty();
        if has_data {
            self.world.complete_read(host, idx, false);
            return;
        }
        let block = self.world.hosts[host.0].device.port(idx).config.block;
        match block {
            BlockPolicy::NonBlocking => {
                let now = self.world.events.now();
                self.world.events.schedule(
                    now,
                    Event::ReadFail {
                        host,
                        proc,
                        fd,
                        err: ReadError::WouldBlock,
                        port: idx,
                        generation: None,
                    },
                );
            }
            BlockPolicy::Blocking | BlockPolicy::Timeout(_) => {
                let generation = {
                    let port = self.world.hosts[host.0].device.port_mut(idx);
                    let g = port.next_generation;
                    port.next_generation += 1;
                    g
                };
                let timeout = if let BlockPolicy::Timeout(d) = block {
                    let at = self.world.events.now() + d;
                    Some(self.world.events.schedule(
                        at,
                        Event::ReadFail {
                            host,
                            proc,
                            fd,
                            err: ReadError::TimedOut,
                            port: idx,
                            generation: Some(generation),
                        },
                    ))
                } else {
                    None
                };
                self.world.hosts[host.0].device.port_mut(idx).pending = Some(PendingRead {
                    generation,
                    timeout,
                });
            }
        }
    }

    /// Puts this host's interface in promiscuous mode (network monitors).
    pub fn set_promiscuous(&mut self, on: bool) {
        let station = self.world.hosts[self.host.0].station;
        self.world.net.station(station).set_promiscuous(on);
    }

    /// Joins an Ethernet multicast group (the V-system's group IPC).
    pub fn join_multicast(&mut self, group: u64) {
        let station = self.world.hosts[self.host.0].station;
        self.world.net.station(station).join_multicast(group);
    }

    /// Sets a one-shot timer; [`App::on_timer`] fires with `token`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) -> TimerId {
        let host = self.host;
        let proc = self.proc;
        let at = self.world.events.now() + delay;
        let h = &mut self.world.hosts[host.0];
        let timer = h.next_timer;
        h.next_timer += 1;
        let handle = self.world.events.schedule(
            at,
            Event::Timer {
                host,
                proc,
                token,
                timer,
            },
        );
        self.world.hosts[host.0].timer_events.insert(timer, handle);
        TimerId(timer)
    }

    /// Cancels a pending timer; `false` if it already fired.
    pub fn cancel_timer(&mut self, id: TimerId) -> bool {
        let h = &mut self.world.hosts[self.host.0];
        match h.timer_events.remove(&id.0) {
            Some(handle) => self.world.events.cancel(handle),
            None => false,
        }
    }

    /// Creates a pipe whose read end belongs to `reader`.
    pub fn pipe_to(&mut self, reader: ProcId) -> PipeId {
        let h = self.h();
        let id = PipeId(h.pipes.len());
        h.pipes.push(Pipe { reader, open: true });
        id
    }

    /// Writes `data` into a pipe. Unix has no shared memory here (§6.5.1):
    /// the data is copied in on write and out on the reader's read, with a
    /// wakeup and context switch in between. Both ends' system calls are
    /// charged.
    pub fn pipe_write(&mut self, pipe: PipeId, data: Vec<u8>) {
        let host = self.host;
        self.charge_syscall("pipe:write");
        let now = self.world.events.now();
        let h = self.h();
        if !h.pipes.get(pipe.0).is_some_and(|p| p.open) {
            return;
        }
        let reader = h.pipes[pipe.0].reader;
        h.counters.copies += 2;
        h.counters.bytes_copied += 2 * data.len() as u64;
        let c_in = h.costs.copy(data.len());
        h.cpu.charge("pipe:copyin", now, c_in);
        let c_ovh = h.costs.pipe_overhead + h.costs.wakeup;
        h.cpu.charge("pipe:overhead", now, c_ovh);
        h.charge_wakeup_switch(now, reader);
        // The reader's read(2): syscall + copy out.
        h.counters.syscalls += 1;
        h.counters.domain_crossings += 2;
        let c_sys = h.costs.syscall;
        h.cpu.charge("pipe:read", now, c_sys);
        let c_out = h.costs.copy(data.len());
        let t = h.cpu.charge("pipe:copyout", now, c_out);
        self.world.events.schedule(
            t,
            Event::PipeDeliver {
                host,
                proc: reader,
                pipe,
                data,
            },
        );
    }

    /// Opens a kernel-protocol socket by protocol name; `None` if no such
    /// protocol is registered on this host.
    pub fn ksock_open(&mut self, proto_name: &str) -> Option<SockId> {
        self.charge_syscall("sock:open");
        let proc = self.proc;
        let h = self.h();
        let proto = h
            .protocols
            .iter()
            .position(|p| p.as_deref().is_some_and(|p| p.name() == proto_name))?;
        let id = SockId(h.socks.len());
        h.socks.push(Sock {
            owner: proc,
            proto,
            open: true,
        });
        Some(id)
    }

    /// Closes a kernel socket.
    pub fn ksock_close(&mut self, sock: SockId) {
        self.charge_syscall("sock:close");
        let host = self.host;
        let Some(s) = self.world.hosts[host.0].socks.get_mut(sock.0) else {
            return;
        };
        if !s.open {
            return;
        }
        s.open = false;
        let proto = s.proto;
        self.world
            .invoke_proto(host, proto, |p, k| p.sock_closed(sock, k));
    }

    /// Issues a protocol-defined request on a kernel socket, transferring
    /// `data` into the kernel. Completions arrive via [`App::on_socket`].
    pub fn ksock_request(&mut self, sock: SockId, op: u32, data: Vec<u8>, meta: [u64; 4]) {
        self.charge_syscall("sock:request");
        let host = self.host;
        let proc = self.proc;
        let now = self.world.events.now();
        let Some(s) = self.world.hosts[host.0].socks.get(sock.0) else {
            return;
        };
        if !s.open {
            return;
        }
        let proto = s.proto;
        if !data.is_empty() {
            let h = &mut self.world.hosts[host.0];
            h.counters.copies += 1;
            h.counters.bytes_copied += data.len() as u64;
            let c = h.costs.copy(data.len());
            h.cpu.charge("sock:copyin", now, c);
        }
        self.world.invoke_proto(host, proto, |p, k| {
            p.user_request(proc, sock, op, data, meta, k)
        });
    }
}

/// The facilities the kernel gives a kernel-resident protocol.
pub struct KernelCtx<'a> {
    world: &'a mut World,
    host: HostId,
    proto: usize,
}

impl KernelCtx<'_> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.world.events.now()
    }

    /// This host's id.
    pub fn host_id(&self) -> HostId {
        self.host
    }

    /// The host's cost model.
    pub fn costs(&self) -> &CostModel {
        &self.world.hosts[self.host.0].costs
    }

    /// The data-link description and this host's link address.
    pub fn link_info(&self) -> (Medium, u64) {
        let station = self.world.hosts[self.host.0].station;
        (
            *self.world.net.medium_of(station),
            self.world.net.addr_of(station),
        )
    }

    /// Charges protocol processing time under `routine`; returns the
    /// completion time.
    pub fn charge(&mut self, routine: &'static str, cost: SimDuration) -> SimTime {
        let now = self.world.events.now();
        let h = &mut self.world.hosts[self.host.0];
        h.cpu.charge(routine, now, cost)
    }

    /// Mutable access to the host's counters.
    pub fn counters_mut(&mut self) -> &mut Counters {
        &mut self.world.hosts[self.host.0].counters
    }

    /// Transmits a frame from kernel context (charges driver costs).
    pub fn transmit(&mut self, frame_bytes: &[u8]) {
        let now = self.world.events.now();
        let host = self.host;
        let h = &mut self.world.hosts[host.0];
        let c = h.costs.driver_tx_cost(frame_bytes.len());
        let done = h.cpu.charge("driver:tx", now, c);
        self.world.transmit_frame(host, frame_bytes, done);
    }

    /// Sets a kernel timer; [`KernelProtocol::on_timer`] fires with `token`.
    ///
    /// [`KernelProtocol::on_timer`]: crate::kproto::KernelProtocol::on_timer
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) -> EventHandle {
        let at = self.world.events.now() + delay;
        let host = self.host;
        let proto = self.proto;
        self.world
            .events
            .schedule(at, Event::KTimer { host, proto, token })
    }

    /// Cancels a kernel timer scheduled with [`KernelCtx::set_timer`].
    pub fn cancel_timer(&mut self, handle: EventHandle) -> bool {
        self.world.events.cancel(handle)
    }

    /// Completes a user operation on `sock`: wakes the owner (context
    /// switch), copies `data` out, and delivers [`App::on_socket`].
    ///
    /// [`App::on_socket`]: crate::app::App::on_socket
    pub fn complete(&mut self, sock: SockId, op: u32, data: Vec<u8>, meta: [u64; 4]) {
        let now = self.world.events.now();
        let host = self.host;
        let Some(s) = self.world.hosts[host.0].socks.get(sock.0) else {
            return;
        };
        if !s.open {
            return;
        }
        let proc = s.owner;
        let h = &mut self.world.hosts[host.0];
        let wake = h.costs.wakeup;
        let mut t = h.cpu.charge("kern:wakeup", now, wake);
        t = t.max(h.charge_wakeup_switch(now, proc));
        h.counters.domain_crossings += 1;
        if !data.is_empty() {
            h.counters.copies += 1;
            h.counters.bytes_copied += data.len() as u64;
            let c = h.costs.copy(data.len());
            t = h.cpu.charge("sock:copyout", now, c);
        }
        self.world.events.schedule(
            t,
            Event::SocketDeliver {
                host,
                proc,
                sock,
                op,
                data,
                meta,
            },
        );
    }

    /// The owner of a socket.
    pub fn sock_owner(&self, sock: SockId) -> Option<ProcId> {
        self.world.hosts[self.host.0]
            .socks
            .get(sock.0)
            .filter(|s| s.open)
            .map(|s| s.owner)
    }
}
