//! Real wall-clock measurement of the §7 execution-engine ladder.
//!
//! The simulation charges *virtual* time for filter interpretation; this
//! bench measures the *actual* Rust implementations, verifying the §7
//! improvement claims with real numbers: hoisting per-instruction checks
//! to bind time speeds evaluation, and pre-compiling filters speeds it
//! further. Filter lengths mirror table 6-10 (0/1/9/21 instructions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pf_filter::compile::CompiledFilter;
use pf_filter::interp::CheckedInterpreter;
use pf_filter::packet::PacketView;
use pf_filter::samples;
use pf_filter::validate::ValidatedProgram;
use std::hint::black_box;

fn engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter_exec");
    let packet = samples::pup_packet_3mb(2, 0, 35, 50);
    let interp = CheckedInterpreter::default();

    for len in [0usize, 1, 9, 21] {
        let program = samples::padded_accept_filter(10, len);
        let validated = ValidatedProgram::new(program.clone()).unwrap();
        let compiled = CompiledFilter::compile(program.clone()).unwrap();

        group.bench_with_input(BenchmarkId::new("checked", len), &len, |b, _| {
            b.iter(|| interp.eval(black_box(&program), PacketView::new(black_box(&packet))))
        });
        group.bench_with_input(BenchmarkId::new("validated", len), &len, |b, _| {
            b.iter(|| validated.eval(PacketView::new(black_box(&packet))))
        });
        group.bench_with_input(BenchmarkId::new("compiled", len), &len, |b, _| {
            b.iter(|| compiled.eval(PacketView::new(black_box(&packet))))
        });
    }

    // The paper's own workhorse filters.
    for (name, program) in [
        ("fig_3_8", samples::fig_3_8_pup_type_range()),
        ("fig_3_9", samples::fig_3_9_pup_socket_35()),
    ] {
        let validated = ValidatedProgram::new(program.clone()).unwrap();
        let compiled = CompiledFilter::compile(program.clone()).unwrap();
        group.bench_function(BenchmarkId::new("checked", name), |b| {
            b.iter(|| interp.eval(black_box(&program), PacketView::new(black_box(&packet))))
        });
        group.bench_function(BenchmarkId::new("validated", name), |b| {
            b.iter(|| validated.eval(PacketView::new(black_box(&packet))))
        });
        group.bench_function(BenchmarkId::new("compiled", name), |b| {
            b.iter(|| compiled.eval(PacketView::new(black_box(&packet))))
        });
    }
    group.finish();
}

criterion_group!(benches, engines);
criterion_main!(benches);
