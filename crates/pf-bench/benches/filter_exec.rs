//! Real wall-clock measurement of the §7 execution-engine ladder.
//!
//! The simulation charges *virtual* time for filter interpretation; this
//! bench measures the *actual* Rust implementations, verifying the §7
//! improvement claims with real numbers: hoisting per-instruction checks
//! to bind time speeds evaluation, pre-compiling filters speeds it
//! further, and the pf-ir CFG pipeline compiles the short-circuit chains
//! down to straight-line guards. Filter lengths mirror table 6-10
//! (0/1/9/21 instructions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pf_filter::compile::CompiledFilter;
use pf_filter::interp::CheckedInterpreter;
use pf_filter::packet::PacketView;
use pf_filter::samples;
use pf_filter::validate::ValidatedProgram;
use pf_ir::{IrFilter, IrFilterSet};
use std::hint::black_box;

fn engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter_exec");
    let packet = samples::pup_packet_3mb(2, 0, 35, 50);
    let interp = CheckedInterpreter::default();

    let shapes: Vec<(String, pf_filter::program::FilterProgram)> = [0usize, 1, 9, 21]
        .iter()
        .map(|&len| (len.to_string(), samples::padded_accept_filter(10, len)))
        .chain([
            ("fig_3_8".to_string(), samples::fig_3_8_pup_type_range()),
            ("fig_3_9".to_string(), samples::fig_3_9_pup_socket_35()),
        ])
        .collect();

    for (name, program) in &shapes {
        let validated = ValidatedProgram::new(program.clone()).unwrap();
        let compiled = CompiledFilter::from_validated(validated.clone());
        let ir = IrFilter::from_validated(&validated);

        group.bench_function(BenchmarkId::new("checked", name), |b| {
            b.iter(|| interp.eval(black_box(program), PacketView::new(black_box(&packet))))
        });
        group.bench_function(BenchmarkId::new("validated", name), |b| {
            b.iter(|| validated.eval(PacketView::new(black_box(&packet))))
        });
        group.bench_function(BenchmarkId::new("compiled", name), |b| {
            b.iter(|| compiled.eval(PacketView::new(black_box(&packet))))
        });
        group.bench_function(BenchmarkId::new("ir", name), |b| {
            b.iter(|| ir.eval(PacketView::new(black_box(&packet))))
        });
    }
    group.finish();

    // Set-level: 16 socket filters sharing their guard prefixes, against
    // evaluating the same 16 IR filters independently.
    let mut group = c.benchmark_group("filter_exec_set");
    let filters: Vec<IrFilter> = (0..16)
        .map(|i| IrFilter::compile(samples::pup_socket_filter(10, 0, i)).unwrap())
        .collect();
    let mut set = IrFilterSet::new();
    for (i, _) in filters.iter().enumerate() {
        set.insert(i as u32, samples::pup_socket_filter(10, 0, i as u16));
    }
    group.bench_function("independent_16", |b| {
        b.iter(|| {
            filters
                .iter()
                .filter(|f| f.eval(PacketView::new(black_box(&packet))))
                .count()
        })
    });
    group.bench_function("shared_prefix_16", |b| {
        b.iter(|| set.matches(PacketView::new(black_box(&packet))).len())
    });
    group.finish();
}

criterion_group!(benches, engines);
criterion_main!(benches);
