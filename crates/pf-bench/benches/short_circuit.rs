//! The short-circuit payoff (§3.1): figure 3-9's `CAND` filter exits after
//! two instructions on the common mismatch, where a figure-3-8-style plain
//! conjunction evaluates everything. "On a busy system several dozen
//! filters may be applied to an incoming packet before it is accepted",
//! so the mismatch path is the hot one.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pf_filter::builder::{CompileOptions, Expr};
use pf_filter::interp::CheckedInterpreter;
use pf_filter::packet::PacketView;
use pf_filter::samples;
use std::hint::black_box;

fn socket_expr() -> Expr {
    Expr::word(8)
        .eq(35)
        .and(Expr::word(7).eq(0))
        .and(Expr::word(1).eq(2))
}

fn short_circuit(c: &mut Criterion) {
    let mut group = c.benchmark_group("short_circuit");
    let interp = CheckedInterpreter::default();
    let with_sc = socket_expr().compile(10).unwrap();
    let without_sc = socket_expr()
        .compile_with(
            10,
            &CompileOptions {
                no_short_circuit: true,
                ..Default::default()
            },
        )
        .unwrap();

    // The common case on a busy wire: the packet is for someone else.
    let mismatch = samples::pup_packet_3mb(2, 0, 99, 1);
    // The rare case: it is ours.
    let matching = samples::pup_packet_3mb(2, 0, 35, 1);

    for (case, pkt) in [("mismatch", &mismatch), ("match", &matching)] {
        group.bench_with_input(BenchmarkId::new("cand_chain", case), pkt, |b, pkt| {
            b.iter(|| interp.eval(black_box(&with_sc), PacketView::new(black_box(pkt))))
        });
        group.bench_with_input(BenchmarkId::new("plain_and", case), pkt, |b, pkt| {
            b.iter(|| interp.eval(black_box(&without_sc), PacketView::new(black_box(pkt))))
        });
    }

    // Paper vs historical continuation semantics (an ablation; verdicts
    // are identical, only stack traffic differs).
    use pf_filter::interp::{InterpConfig, ShortCircuitStyle};
    let historical = CheckedInterpreter::new(InterpConfig {
        short_circuit: ShortCircuitStyle::Historical,
        ..Default::default()
    });
    group.bench_function("style/paper", |b| {
        b.iter(|| interp.eval(black_box(&with_sc), PacketView::new(black_box(&mismatch))))
    });
    group.bench_function("style/historical", |b| {
        b.iter(|| historical.eval(black_box(&with_sc), PacketView::new(black_box(&mismatch))))
    });
    group.finish();
}

criterion_group!(benches, short_circuit);
criterion_main!(benches);
