//! Filter construction and binding cost.
//!
//! §3.1: filters are "compiled at run time by a library procedure", and a
//! new filter can be bound "at a cost comparable to that of receiving a
//! packet; in practice, filters are not replaced very often" — so compile
//! and validation cost only has to be reasonable, not fast. These benches
//! put numbers on the expression-DSL compile, bind-time validation, and
//! micro-op lowering.

use criterion::{criterion_group, criterion_main, Criterion};
use pf_filter::builder::Expr;
use pf_filter::compile::CompiledFilter;
use pf_filter::samples;
use pf_filter::validate::ValidatedProgram;
use std::hint::black_box;

fn socket_expr() -> Expr {
    Expr::word(8)
        .eq(35)
        .and(Expr::word(7).eq(0))
        .and(Expr::word(1).eq(2))
}

fn builder_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("builder_compile");

    group.bench_function("expr_to_program", |b| {
        let e = socket_expr();
        b.iter(|| black_box(&e).compile(10).unwrap())
    });

    let program = samples::fig_3_9_pup_socket_35();
    group.bench_function("validate", |b| {
        b.iter(|| ValidatedProgram::new(black_box(program.clone())).unwrap())
    });
    group.bench_function("compile_micro_ops", |b| {
        b.iter(|| CompiledFilter::compile(black_box(program.clone())).unwrap())
    });

    // Inserting into / removing from a live decision table (a bind).
    group.bench_function("filter_set_insert_remove", |b| {
        let mut set = pf_filter::dtree::FilterSet::new();
        for i in 0..64u32 {
            set.insert(i, samples::pup_socket_filter(10, 0, i as u16));
        }
        b.iter(|| {
            set.insert(999, samples::pup_socket_filter(10, 0, 999));
            set.remove(999);
        })
    });
    group.finish();
}

criterion_group!(benches, builder_compile);
criterion_main!(benches);
