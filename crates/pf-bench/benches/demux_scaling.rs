//! Demultiplexing a packet against N active filters: the sequential
//! priority-ordered loop of figure 4-1 versus §7's proposed decision
//! table ([`pf_filter::dtree::FilterSet`]), the flat IR set
//! ([`pf_ir::set::IrFilterSet`]), and the sharded value-numbered set
//! ([`pf_ir::set::ShardedVnSet`]).
//!
//! The sequential loop is O(N) filter applications per packet (the §6.5
//! break-even analysis); the decision table is one hash probe per filter
//! *shape*; the flat IR set is O(N) memoized guard probes; the sharded
//! set touches only the shard the packet's discriminating word selects.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pf_filter::dtree::FilterSet;
use pf_filter::interp::CheckedInterpreter;
use pf_filter::packet::PacketView;
use pf_filter::program::FilterProgram;
use pf_filter::samples;
use pf_ir::set::{IrFilterSet, ShardedVnSet};
use std::hint::black_box;

/// Sequential reference: first match in priority order.
fn sequential_first_match(
    interp: &CheckedInterpreter,
    filters: &[(u32, FilterProgram)],
    packet: PacketView<'_>,
) -> Option<u32> {
    filters
        .iter()
        .find(|(_, f)| interp.eval(f, packet))
        .map(|(id, _)| *id)
}

fn demux_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("demux_scaling");
    let interp = CheckedInterpreter::default();

    for n in [1usize, 4, 16, 64, 256] {
        // n socket filters; the packet matches the *last* one (worst case
        // for the sequential loop, median for a hash table).
        let filters: Vec<(u32, FilterProgram)> = (0..n)
            .map(|i| (i as u32, samples::pup_socket_filter(10, 0, i as u16)))
            .collect();
        let mut set = FilterSet::new();
        for (id, f) in &filters {
            set.insert(*id, f.clone());
        }
        let packet = samples::pup_packet_3mb(2, 0, (n - 1) as u16, 1);

        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
            b.iter(|| {
                sequential_first_match(
                    &interp,
                    black_box(&filters),
                    PacketView::new(black_box(&packet)),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("decision_table", n), &n, |b, _| {
            b.iter(|| set.first_match(PacketView::new(black_box(&packet))))
        });
        let mut ir = IrFilterSet::new();
        let mut sharded = ShardedVnSet::new();
        for (id, f) in &filters {
            ir.insert(*id, f.clone());
            sharded.insert(*id, f.clone());
        }
        group.bench_with_input(BenchmarkId::new("ir_set", n), &n, |b, _| {
            b.iter(|| ir.first_match(PacketView::new(black_box(&packet))))
        });
        group.bench_with_input(BenchmarkId::new("sharded_vn", n), &n, |b, _| {
            b.iter(|| sharded.first_match(PacketView::new(black_box(&packet))))
        });
    }
    group.finish();
}

criterion_group!(benches, demux_scaling);
criterion_main!(benches);
