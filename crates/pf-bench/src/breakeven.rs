//! §6.5's break-even analysis: how many active filters before kernel
//! demultiplexing loses its advantage?
//!
//! "Even with rather long filters (21 instructions) the additional cost
//! for filter interpretation is less than the cost of user-level
//! demultiplexing if no more than three such long filters are applied …
//! For filters using short-circuit conditionals, the break-even point is
//! closer to an average of about ten filters before acceptance, which
//! should occur when more than twenty filters are active. This means that
//! even if one assumes zero cost for decision-making in a user-level
//! demultiplexer, the break-even point comes with twenty different
//! processes using the network."

use crate::recvcost::{self, DemuxMode, RecvConfig};
use crate::report::Report;
use pf_kernel::device::DemuxEngine;

/// Per-packet cost with `filters` active short-circuit socket filters and
/// kernel demultiplexing (traffic spread uniformly, so the average packet
/// is tested against about half of them).
pub fn kernel_cost_ms(filters: usize) -> f64 {
    recvcost::run(&RecvConfig {
        mode: DemuxMode::Kernel,
        active_filters: filters,
        count: 240,
        spacing_us: 900 + 140 * filters as u64, // stay saturated but lossless
        ..Default::default()
    })
    .per_packet_ms
}

/// The same sweep point under an alternative demux engine (decision
/// table, flat IR set, or the sharded value-numbered set): per-packet
/// cost should be (nearly) independent of the filter population.
pub fn kernel_engine_cost_ms(filters: usize, engine: DemuxEngine) -> f64 {
    recvcost::run(&RecvConfig {
        mode: DemuxMode::Kernel,
        active_filters: filters,
        count: 240,
        spacing_us: 900,
        engine,
        ..Default::default()
    })
    .per_packet_ms
}

/// The sweep point with §7's decision-table engine.
pub fn kernel_table_cost_ms(filters: usize) -> f64 {
    kernel_engine_cost_ms(filters, DemuxEngine::DecisionTable)
}

/// Per-packet cost of the user-level demultiplexer (independent of the
/// process count — the paper generously assumes zero decision cost).
pub fn user_cost_ms() -> f64 {
    recvcost::run(&RecvConfig {
        mode: DemuxMode::UserProcess,
        count: 240,
        spacing_us: 1_900,
        ..Default::default()
    })
    .per_packet_ms
}

/// The sweep: (filters, kernel ms/packet) pairs plus the flat user cost.
pub fn sweep() -> (Vec<(usize, f64)>, f64) {
    let filters = [1usize, 2, 4, 8, 16, 24, 32, 48];
    let kernel: Vec<(usize, f64)> = filters.iter().map(|&f| (f, kernel_cost_ms(f))).collect();
    (kernel, user_cost_ms())
}

/// First filter count at which kernel demultiplexing costs more than the
/// user-level demultiplexer, by linear interpolation over the sweep.
pub fn break_even(kernel: &[(usize, f64)], user: f64) -> Option<f64> {
    for pair in kernel.windows(2) {
        let (f0, c0) = pair[0];
        let (f1, c1) = pair[1];
        if c0 <= user && c1 > user {
            let t = (user - c0) / (c1 - c0);
            return Some(f0 as f64 + t * (f1 - f0) as f64);
        }
    }
    None
}

/// Builds the break-even report.
pub fn report_break_even() -> Report {
    let (kernel, user) = sweep();
    let mut r = Report::new(
        "Section 6.5",
        "Break-even: filter interpretation vs user-level demultiplexing",
    )
    .headers(&[
        "active filters",
        "kernel demux (ms/pkt)",
        "kernel, §7 decision table",
        "kernel, IR set",
        "kernel, sharded VN",
        "kernel, JIT",
        "user demux (ms/pkt)",
    ]);
    for (f, c) in &kernel {
        let table = kernel_engine_cost_ms(*f, DemuxEngine::DecisionTable);
        let ir = kernel_engine_cost_ms(*f, DemuxEngine::Ir);
        let sharded = kernel_engine_cost_ms(*f, DemuxEngine::Sharded);
        let jit = kernel_engine_cost_ms(*f, DemuxEngine::Jit);
        r.row(&[
            f.to_string(),
            format!("{c:.2}"),
            format!("{table:.2}"),
            format!("{ir:.2}"),
            format!("{sharded:.2}"),
            format!("{jit:.2}"),
            format!("{user:.2}"),
        ]);
    }
    match break_even(&kernel, user) {
        Some(be) => r.note(format!(
            "break-even at ~{be:.0} active filters (paper: more than twenty)"
        )),
        None => r.note("kernel demultiplexing cheaper across the whole sweep"),
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn break_even_lands_past_a_dozen_filters() {
        let (kernel, user) = sweep();
        // Kernel cost grows with the filter count…
        assert!(kernel.last().unwrap().1 > kernel.first().unwrap().1 + 0.5);
        // …and stays cheaper than user demux well into the teens.
        let at_8 = kernel.iter().find(|(f, _)| *f == 8).unwrap().1;
        assert!(at_8 < user, "8 filters: kernel {at_8:.2} vs user {user:.2}");
        let be = break_even(&kernel, user).expect("the sweep must cross the user-demux cost");
        assert!(
            (10.0..45.0).contains(&be),
            "break-even at {be:.0} filters (paper: >20)"
        );
    }

    #[test]
    fn decision_table_engine_is_population_independent() {
        // §7's "best possible performance": the compiled demultiplexer
        // never crosses the user-demux cost — its per-packet time is flat
        // in the number of active filters.
        let at_1 = kernel_table_cost_ms(1);
        let at_48 = kernel_table_cost_ms(48);
        assert!(
            (at_48 - at_1).abs() < 0.3,
            "table engine flat: {at_1:.2} vs {at_48:.2} ms/pkt"
        );
        let sequential_at_48 = kernel_cost_ms(48);
        assert!(
            at_48 < sequential_at_48 - 1.0,
            "table {at_48:.2} well under sequential {sequential_at_48:.2} at 48 filters"
        );
    }

    #[test]
    fn sharded_engine_is_population_independent() {
        // The shard index touches one member per packet on a socket-filter
        // population, so per-packet cost stays flat as the population grows
        // and lands well under the sequential loop.
        let at_1 = kernel_engine_cost_ms(1, DemuxEngine::Sharded);
        let at_48 = kernel_engine_cost_ms(48, DemuxEngine::Sharded);
        assert!(
            (at_48 - at_1).abs() < 0.3,
            "sharded engine flat: {at_1:.2} vs {at_48:.2} ms/pkt"
        );
        let sequential_at_48 = kernel_cost_ms(48);
        assert!(
            at_48 < sequential_at_48 - 1.0,
            "sharded {at_48:.2} well under sequential {sequential_at_48:.2} at 48 filters"
        );
        // And it never exceeds the flat IR set, which walks every member.
        let ir_at_48 = kernel_engine_cost_ms(48, DemuxEngine::Ir);
        assert!(
            at_48 <= ir_at_48,
            "sharded {at_48:.2} <= flat IR {ir_at_48:.2} at 48 filters"
        );
    }

    #[test]
    fn jit_engine_scales_gently_and_beats_sequential() {
        // Each JIT member costs a flat 10 µs of native execution, so the
        // per-packet bill grows only mildly with the population (48 members
        // is still under half a millisecond of filter work) and stays far
        // below the sequential interpreter at the sweep's high end.
        let at_1 = kernel_engine_cost_ms(1, DemuxEngine::Jit);
        let at_48 = kernel_engine_cost_ms(48, DemuxEngine::Jit);
        assert!(
            (at_48 - at_1).abs() < 1.0,
            "jit engine scales gently: {at_1:.2} vs {at_48:.2} ms/pkt"
        );
        let sequential_at_48 = kernel_cost_ms(48);
        assert!(
            at_48 < sequential_at_48 - 1.0,
            "jit {at_48:.2} well under sequential {sequential_at_48:.2} at 48 filters"
        );
    }
}
