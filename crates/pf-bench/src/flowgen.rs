//! The flow-level workload generator: declarative specs → deterministic
//! packet schedules.
//!
//! Topology-scale experiments need traffic that looks like an internet,
//! not like a loop: thousands to millions of concurrent flows with
//! realistic arrival processes (Poisson for aggregate background load,
//! Pareto for the bursty heavy tail), elephant/mice size mixes, incast
//! fan-in hot spots, and scheduled routing-churn events. A [`FlowSpec`]
//! declares all of that; [`generate`] expands it into a time-ordered
//! packet schedule, driven entirely by one [`SplitMix64`] stream so the
//! same `(spec, endpoints, seed)` triple is byte-reproducible — the
//! property every BENCH artifact's `seed` field promises.
//!
//! The generator is transport-flavored but payload-agnostic: it emits
//! *who sends how much to whom when* ([`FlowPacket`]); the campaign maps
//! packets onto wire frames for whatever topology it deployed.

use pf_sim::rng::SplitMix64;
use pf_sim::time::SimTime;

/// Flow inter-arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Poisson flow arrivals at `rate_fps` flows/second (exponential
    /// gaps, memoryless — aggregate background traffic).
    Poisson {
        /// Mean flow-arrival rate, flows per second.
        rate_fps: f64,
    },
    /// Pareto (heavy-tailed) gaps with shape `alpha` and the same mean
    /// rate — bursty arrivals where a few long silences separate packed
    /// trains. `alpha` must exceed 1 for the mean to exist; 1.5–2.5 is
    /// the classic self-similar-traffic range.
    Pareto {
        /// Mean flow-arrival rate, flows per second.
        rate_fps: f64,
        /// Tail shape; smaller is burstier. Must be > 1.
        alpha: f64,
    },
}

/// Flow size mix, in packets per flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeMix {
    /// Every flow carries exactly this many packets.
    Fixed(usize),
    /// The classic bimodal internet mix: most flows are mice, a small
    /// fraction are elephants carrying most of the bytes.
    ElephantsAndMice {
        /// Packets in a mouse flow.
        mice: usize,
        /// Packets in an elephant flow.
        elephants: usize,
        /// Fraction of flows that are elephants (0.0–1.0).
        elephant_fraction: f64,
    },
}

/// Who talks to whom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Source and destination drawn uniformly (and distinctly) across
    /// all endpoints.
    Uniform,
    /// Incast: `fraction` of flows converge on endpoint 0 (the fan-in
    /// hot spot); the rest are uniform.
    Incast {
        /// Fraction of flows whose destination is endpoint 0.
        fraction: f64,
    },
}

/// Transport flavor, for campaigns that frame packets differently per
/// protocol (maps onto the workspace's BSP / VMTP / kernel-UDP stacks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Kernel-resident UDP datagrams.
    Udp,
    /// The user-level byte-stream protocol (§5.1).
    Bsp,
    /// The request/response transaction protocol (§5.2).
    Vmtp,
}

impl Transport {
    /// A short lowercase label for artifacts.
    pub fn label(self) -> &'static str {
        match self {
            Transport::Udp => "udp",
            Transport::Bsp => "bsp",
            Transport::Vmtp => "vmtp",
        }
    }
}

/// A declarative workload: how many flows, arriving how, sized how,
/// patterned how, over which transports.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Number of flows to synthesize.
    pub flows: usize,
    /// Flow arrival process.
    pub arrival: Arrival,
    /// Packets per flow.
    pub sizes: SizeMix,
    /// Endpoint selection pattern.
    pub pattern: Pattern,
    /// Transport mix, cycled per flow (`[Udp]` for single-protocol
    /// runs; `[Udp, Bsp, Vmtp]` interleaves all three).
    pub transports: Vec<Transport>,
    /// Payload bytes per packet (before any headers the campaign adds).
    pub payload: usize,
    /// Gap between a flow's consecutive packets, nanoseconds.
    pub packet_gap_ns: u64,
    /// Scheduled routing-churn events: route flips injected at evenly
    /// spaced times across the workload's span ([`churn_times`]).
    pub churn_events: usize,
    /// First flow's earliest start.
    pub start: SimTime,
}

impl FlowSpec {
    /// A small uniform UDP background: `flows` Poisson flows of 4
    /// packets each — the default skeleton campaigns tweak.
    pub fn background(flows: usize, rate_fps: f64) -> Self {
        FlowSpec {
            flows,
            arrival: Arrival::Poisson { rate_fps },
            sizes: SizeMix::Fixed(4),
            pattern: Pattern::Uniform,
            transports: vec![Transport::Udp],
            payload: 64,
            packet_gap_ns: 200_000,
            churn_events: 0,
            start: SimTime(1_000),
        }
    }
}

/// One synthesized packet: who sends how much to whom, when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowPacket {
    /// Scheduled hand-to-NIC time.
    pub at: SimTime,
    /// Sending endpoint index (into the campaign's endpoint list).
    pub src: usize,
    /// Receiving endpoint index.
    pub dst: usize,
    /// Payload bytes.
    pub payload: usize,
    /// Transport flavor.
    pub transport: Transport,
    /// The flow this packet belongs to (0-based synthesis order).
    pub flow: usize,
}

/// Draws the next inter-arrival gap in nanoseconds.
fn gap_ns(arrival: Arrival, rng: &mut SplitMix64) -> u64 {
    match arrival {
        Arrival::Poisson { rate_fps } => {
            assert!(rate_fps > 0.0, "Poisson rate must be positive");
            let u = rng.next_f64();
            // Exponential via inversion; 1 - u avoids ln(0).
            let secs = -(1.0 - u).ln() / rate_fps;
            (secs * 1e9) as u64
        }
        Arrival::Pareto { rate_fps, alpha } => {
            assert!(rate_fps > 0.0, "Pareto rate must be positive");
            assert!(alpha > 1.0, "Pareto alpha must exceed 1 for a finite mean");
            // Scale chosen so the mean gap is 1/rate: mean = xm·α/(α−1).
            let mean = 1.0 / rate_fps;
            let xm = mean * (alpha - 1.0) / alpha;
            let u = rng.next_f64();
            let secs = xm / (1.0 - u).powf(1.0 / alpha);
            (secs * 1e9) as u64
        }
    }
}

/// Expands `spec` into a time-ordered packet schedule over `endpoints`
/// endpoints (indices `0..endpoints`), deterministically from `seed`.
///
/// Flows start at cumulative inter-arrival gaps from `spec.start`; each
/// flow's packets follow at `packet_gap_ns` spacing. Sources and
/// destinations are always distinct. The result is sorted by `(at, flow)`
/// — stable across runs, platforms, and queue backends.
pub fn generate(spec: &FlowSpec, endpoints: usize, seed: u64) -> Vec<FlowPacket> {
    assert!(endpoints >= 2, "need at least two endpoints");
    assert!(!spec.transports.is_empty(), "need at least one transport");
    let mut rng = SplitMix64::new(seed);
    let mut packets = Vec::new();
    let mut flow_start = spec.start;
    for flow in 0..spec.flows {
        flow_start = SimTime(flow_start.0 + gap_ns(spec.arrival, &mut rng));
        let count = match spec.sizes {
            SizeMix::Fixed(n) => n,
            SizeMix::ElephantsAndMice {
                mice,
                elephants,
                elephant_fraction,
            } => {
                if rng.chance(elephant_fraction) {
                    elephants
                } else {
                    mice
                }
            }
        };
        let src = rng.below(endpoints as u64) as usize;
        let dst = match spec.pattern {
            Pattern::Incast { fraction } if rng.chance(fraction) => {
                if src == 0 {
                    // The hot spot cannot talk to itself; bounce to 1.
                    1
                } else {
                    0
                }
            }
            _ => {
                // Uniform over everyone but the source.
                let d = rng.below(endpoints as u64 - 1) as usize;
                if d >= src {
                    d + 1
                } else {
                    d
                }
            }
        };
        let transport = spec.transports[flow % spec.transports.len()];
        for k in 0..count {
            packets.push(FlowPacket {
                at: SimTime(flow_start.0 + k as u64 * spec.packet_gap_ns),
                src,
                dst,
                payload: spec.payload,
                transport,
                flow,
            });
        }
    }
    packets.sort_by_key(|p| (p.at, p.flow));
    packets
}

/// The routing-churn schedule for a generated workload: `churn_events`
/// instants evenly spaced across the packet span (between the first and
/// last scheduled packet, exclusive of both ends). Empty when the spec
/// asks for no churn or the schedule is empty.
pub fn churn_times(spec: &FlowSpec, packets: &[FlowPacket]) -> Vec<SimTime> {
    if spec.churn_events == 0 || packets.is_empty() {
        return Vec::new();
    }
    let first = packets.first().expect("non-empty").at.0;
    let last = packets.last().expect("non-empty").at.0.max(first + 1);
    let step = (last - first) / (spec.churn_events as u64 + 1);
    (1..=spec.churn_events as u64)
        .map(|k| SimTime(first + k * step.max(1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(flows: usize) -> FlowSpec {
        FlowSpec::background(flows, 50_000.0)
    }

    #[test]
    fn byte_reproducible_under_a_seed() {
        let s = spec(500);
        let a = generate(&s, 16, 0xFEED);
        let b = generate(&s, 16, 0xFEED);
        assert_eq!(a, b, "same seed, same schedule");
        let c = generate(&s, 16, 0xBEEF);
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn schedule_is_time_ordered_with_distinct_endpoints() {
        let s = spec(1_000);
        let pkts = generate(&s, 8, 1);
        assert_eq!(pkts.len(), 4_000, "4 packets per flow");
        for w in pkts.windows(2) {
            assert!(w[0].at <= w[1].at, "time-ordered");
        }
        for p in &pkts {
            assert_ne!(p.src, p.dst, "no self-traffic");
            assert!(p.src < 8 && p.dst < 8);
        }
    }

    #[test]
    fn poisson_mean_rate_is_roughly_honored() {
        let s = spec(20_000);
        let pkts = generate(&s, 4, 7);
        let starts: Vec<u64> = pkts.iter().filter(|p| p.at.0 > 0).map(|p| p.at.0).collect();
        let span_s = (starts.iter().max().unwrap() - starts.iter().min().unwrap()) as f64 / 1e9;
        let rate = 20_000.0 / span_s;
        assert!(
            (25_000.0..100_000.0).contains(&rate),
            "empirical flow rate {rate} fps (asked 50k)"
        );
    }

    #[test]
    fn pareto_is_burstier_than_poisson() {
        let mut s = spec(20_000);
        let poisson = generate(&s, 4, 11);
        s.arrival = Arrival::Pareto {
            rate_fps: 50_000.0,
            alpha: 1.5,
        };
        let pareto = generate(&s, 4, 11);
        let max_gap = |pkts: &[FlowPacket]| {
            // One start time per flow (its earliest packet).
            let mut start_of = std::collections::HashMap::new();
            for p in pkts {
                let e = start_of.entry(p.flow).or_insert(p.at.0);
                *e = (*e).min(p.at.0);
            }
            let mut starts: Vec<u64> = start_of.into_values().collect();
            starts.sort_unstable();
            starts.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0)
        };
        assert!(
            max_gap(&pareto) > max_gap(&poisson),
            "the heavy tail must show up as longer silences"
        );
    }

    #[test]
    fn elephants_and_mice_split_the_population() {
        let mut s = spec(4_000);
        s.sizes = SizeMix::ElephantsAndMice {
            mice: 2,
            elephants: 64,
            elephant_fraction: 0.1,
        };
        let pkts = generate(&s, 8, 3);
        let mut per_flow = std::collections::HashMap::new();
        for p in &pkts {
            *per_flow.entry(p.flow).or_insert(0usize) += 1;
        }
        let elephants = per_flow.values().filter(|&&n| n == 64).count();
        let mice = per_flow.values().filter(|&&n| n == 2).count();
        assert_eq!(elephants + mice, 4_000, "every flow is one or the other");
        assert!((200..=600).contains(&elephants), "{elephants} elephants");
        // Elephants dominate the bytes even as a small minority.
        assert!(elephants * 64 > mice * 2);
    }

    #[test]
    fn incast_converges_on_the_victim() {
        let mut s = spec(2_000);
        s.pattern = Pattern::Incast { fraction: 0.8 };
        let pkts = generate(&s, 32, 5);
        let to_victim = pkts.iter().filter(|p| p.dst == 0).count();
        assert!(
            to_victim * 10 > pkts.len() * 7,
            "≈80% of packets must fan into endpoint 0, got {to_victim}/{}",
            pkts.len()
        );
        assert!(pkts.iter().all(|p| p.src != p.dst));
    }

    #[test]
    fn transports_cycle_per_flow() {
        let mut s = spec(9);
        s.transports = vec![Transport::Udp, Transport::Bsp, Transport::Vmtp];
        let pkts = generate(&s, 4, 2);
        for p in &pkts {
            assert_eq!(p.transport, s.transports[p.flow % 3]);
        }
    }

    #[test]
    fn churn_times_space_across_the_span() {
        let mut s = spec(100);
        s.churn_events = 3;
        let pkts = generate(&s, 4, 9);
        let churn = churn_times(&s, &pkts);
        assert_eq!(churn.len(), 3);
        let first = pkts.first().unwrap().at;
        let last = pkts.last().unwrap().at;
        for w in churn.windows(2) {
            assert!(w[0] < w[1], "strictly increasing");
        }
        assert!(churn[0] > first && churn[2] < last, "inside the span");
        assert!(churn_times(&spec(10), &pkts).is_empty(), "no churn asked");
    }

    #[test]
    fn scales_to_a_million_flows() {
        let mut s = spec(1_000_000);
        s.sizes = SizeMix::Fixed(1);
        let pkts = generate(&s, 256, 0xA5);
        assert_eq!(pkts.len(), 1_000_000);
    }
}
