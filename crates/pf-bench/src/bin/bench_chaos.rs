//! Writes `BENCH_chaos.json`: the fault-injection campaign sweeping
//! loss/corruption/truncation/reorder/duplication mixes over seeded BSP
//! and VMTP scenarios, plus the engine-agreement and kernel-degradation
//! checks. Every invariant violation panics, so a zero exit *is* the
//! campaign's zero-panic, everything-delivered proof.
//!
//! ```text
//! cargo run -p pf-bench --release --bin bench_chaos            # full sweep
//! cargo run -p pf-bench --release --bin bench_chaos -- --smoke # tiny CI sweep
//! cargo run -p pf-bench --release --bin bench_chaos -- --stdout
//! cargo run -p pf-bench --release --bin bench_chaos -- --out /tmp/chaos.json
//! ```

use pf_bench::{chaos, cli};

fn main() {
    let args = cli::parse_or_exit("bench_chaos", true);
    let report = chaos::sweep(args.smoke, args.seed.unwrap_or(chaos::DEFAULT_SEED));
    let json = chaos::to_json(&report);
    let Some(path) = args.out_path(chaos::default_path()) else {
        print!("{json}");
        return;
    };
    std::fs::write(&path, &json).expect("write BENCH_chaos.json");
    println!("wrote {} ({} rows)", path.display(), report.rows.len());
    for p in &report.rows {
        println!(
            "  {:>4} loss={:.2} corr={:.2} trunc={:.2} reord={:.2} dup={:.2}  \
             delivered={} retransmits={} discards={}",
            p.scenario,
            p.faults.loss,
            p.faults.corruption,
            p.faults.truncation,
            p.faults.reorder,
            p.faults.duplication,
            p.run.delivered,
            p.run.retransmits,
            p.run.discards,
        );
    }
    let e = &report.engines;
    println!(
        "  engines: {} programs x {} damaged packets, {} verdicts, {} disagreements",
        e.programs, e.packets, e.verdicts, e.disagreements
    );
    let k = &report.kernel;
    println!(
        "  kernel: {} quarantined ports served {} packets (compiled {}), \
         {} budget overruns, drops tail/oldest {}/{}",
        k.quarantined_ports,
        k.quarantine_accepts,
        k.compiled_accepts,
        k.budget_overruns,
        k.drop_tail_drops,
        k.drop_oldest_drops
    );
}
