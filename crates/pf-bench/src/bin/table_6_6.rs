//! Regenerates table 6-6: stream protocol implementations.
fn main() {
    println!("{}", pf_bench::streams::report_table_6_6());
}
