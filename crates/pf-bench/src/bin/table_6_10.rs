//! Regenerates table 6-10: cost of interpreting packet filters.
fn main() {
    println!("{}", pf_bench::recvcost::report_table_6_10());
}
