//! Regenerates the §6.5 break-even sweep.
fn main() {
    println!("{}", pf_bench::breakeven::report_break_even());
}
