//! Regenerates the §6.5 break-even sweep. Prints to stdout by default;
//! `--out <path>` writes the report to a file instead.
use pf_bench::cli;

fn main() {
    let args = cli::parse_or_exit("break_even", false);
    let report = pf_bench::breakeven::report_break_even().to_string();
    match args.out.filter(|_| !args.stdout) {
        Some(path) => {
            std::fs::write(&path, format!("{report}\n")).expect("write break-even report");
            println!("wrote {}", path.display());
        }
        None => println!("{report}"),
    }
}
