//! Regenerates the design-choice ablations (§3.2 ordering, §7 batching).
fn main() {
    println!("{}", pf_bench::ablations::report_ablations());
}
