//! Regenerates the design-choice ablations (§3.2 ordering, §7 batching,
//! engine ladder). Prints to stdout by default; `--out <path>` writes the
//! report to a file instead.
use pf_bench::cli;

fn main() {
    let args = cli::parse_or_exit("ablations", false);
    let report = pf_bench::ablations::report_ablations().to_string();
    match args.out.filter(|_| !args.stdout) {
        Some(path) => {
            std::fs::write(&path, format!("{report}\n")).expect("write ablations report");
            println!("wrote {}", path.display());
        }
        None => println!("{report}"),
    }
}
