//! Regenerates every table and figure of the paper's evaluation section.
fn main() {
    println!("Reproduction report: The Packet Filter (SOSP 1987)");
    println!("===================================================\n");
    println!("{}", pf_bench::sendcost::report());
    println!("{}", pf_bench::profile61::report_section_6_1());
    println!("{}", pf_bench::vmtp_exp::report_table_6_2());
    println!("{}", pf_bench::vmtp_exp::report_table_6_3());
    println!("{}", pf_bench::vmtp_exp::report_table_6_4());
    println!("{}", pf_bench::vmtp_exp::report_table_6_5());
    println!("{}", pf_bench::streams::report_table_6_6());
    println!("{}", pf_bench::telnet_exp::report_table_6_7());
    println!("{}", pf_bench::recvcost::report_table_6_8());
    println!("{}", pf_bench::recvcost::report_table_6_9());
    println!("{}", pf_bench::recvcost::report_table_6_10());
    println!("{}", pf_bench::figures::report_fig_2_1_2_2());
    println!("{}", pf_bench::figures::report_fig_2_3());
    println!("{}", pf_bench::figures::report_fig_3_4_3_5());
    println!("{}", pf_bench::breakeven::report_break_even());
    println!("{}", pf_bench::ablations::report_ablations());
}
