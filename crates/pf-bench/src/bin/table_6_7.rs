//! Regenerates table 6-7: relative performance of Telnet.
fn main() {
    println!("{}", pf_bench::telnet_exp::report_table_6_7());
}
