//! Regenerates table 6-1: the cost of sending packets.
fn main() {
    println!("{}", pf_bench::sendcost::report());
}
