//! Writes `BENCH_mc.json`: the multi-core scaling campaign sweeping
//! worker cores × engine batch sizes × demux engines under a saturating
//! burst. The signature claims — 4 cores deliver ≥ 3× one core, batch=32
//! beats batch=1 per-packet cost on the sharded engine — are `assert!`s,
//! so a zero exit *is* the campaign's proof.
//!
//! ```text
//! cargo run -p pf-bench --release --bin bench_mc            # full sweep
//! cargo run -p pf-bench --release --bin bench_mc -- --smoke # tiny CI sweep
//! cargo run -p pf-bench --release --bin bench_mc -- --cores 1,4 --batch 1,32
//! cargo run -p pf-bench --release --bin bench_mc -- --out /tmp/mc.json
//! ```

use pf_bench::{cli, mc};

fn main() {
    let args = cli::parse_or_exit("bench_mc", true);
    let report = mc::sweep(
        args.smoke,
        args.cores.as_deref(),
        args.batch.as_deref(),
        args.seed.unwrap_or(0),
    );
    let json = mc::to_json(&report);
    let Some(path) = args.out_path(mc::default_path()) else {
        print!("{json}");
        return;
    };
    std::fs::write(&path, &json).expect("write BENCH_mc.json");
    println!(
        "wrote {} ({} rows, population {}, {} frames per cell)",
        path.display(),
        report.rows.len(),
        report.population,
        report.frames
    );
    for p in &report.rows {
        println!(
            "  {:>7} {:>2} cores batch {:>3}  goodput {:>8.1} pps  cost {:>7.1} us/pkt  \
             p99 {:>8} us  steered/wakeups/steals {:>5}/{:>5}/{:>4}",
            p.engine,
            p.cores,
            p.batch,
            p.goodput_pps,
            p.cost_per_packet_us,
            p.p99_latency_us,
            p.frames_steered,
            p.cross_core_wakeups,
            p.queue_steals
        );
    }
}
