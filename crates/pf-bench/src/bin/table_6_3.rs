//! Regenerates table 6-3: VMTP bulk data transfer.
fn main() {
    println!("{}", pf_bench::vmtp_exp::report_table_6_3());
}
