//! Regenerates the §6.1 kernel per-packet processing profile.
fn main() {
    println!("{}", pf_bench::profile61::report_section_6_1());
}
