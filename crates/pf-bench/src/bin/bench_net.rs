//! Writes `BENCH_net.json`: the internet-scale topology campaign.
//! Ring topologies of {4, 16, 64, 256} nodes carry flow-level workloads
//! of {1k, 10k, 100k} flows under both event-queue backends; a
//! hold-model microbench times the backends head-to-head. Every
//! signature claim — exact routed delivery, bit-identical histories
//! across backends, calendar-beats-heap at dense populations — is an
//! `assert!`, so a zero exit *is* the campaign's proof.
//!
//! ```text
//! cargo run -p pf-bench --release --bin bench_net            # full sweep
//! cargo run -p pf-bench --release --bin bench_net -- --smoke # tiny CI sweep
//! cargo run -p pf-bench --release --bin bench_net -- --stdout
//! cargo run -p pf-bench --release --bin bench_net -- --out /tmp/net.json
//! ```

use pf_bench::{cli, netbench};

fn main() {
    let args = cli::parse_or_exit("bench_net", true);
    // The topology campaign models routed forwarding on single-core
    // nodes; the shared flags are accepted only in their single-core
    // shape so a multi-core invocation fails loudly instead of silently
    // measuring one core.
    if args.cores.as_deref().is_some_and(|c| c != [1]) {
        eprintln!(
            "bench_net: multi-core sweeps live in bench_mc \
             (bench_net models single-core routed nodes; got --cores {:?})",
            args.cores.unwrap()
        );
        std::process::exit(2);
    }
    if args.batch.as_deref().is_some_and(|b| b != [1]) {
        eprintln!(
            "bench_net: batched execution is swept by bench_mc \
             (bench_net forwards per frame; got --batch {:?})",
            args.batch.unwrap()
        );
        std::process::exit(2);
    }
    let report = netbench::sweep(args.smoke, args.seed.unwrap_or(netbench::DEFAULT_SEED));
    let json = netbench::to_json(&report);
    let Some(path) = args.out_path(netbench::default_path()) else {
        print!("{json}");
        return;
    };
    std::fs::write(&path, &json).expect("write BENCH_net.json");
    println!(
        "wrote {} ({} topology rows, {} event-core rows)",
        path.display(),
        report.topology.len(),
        report.event_core.len()
    );
    for p in &report.topology {
        println!(
            "  {:>3} nodes {:>6} flows {:>8}  delivered {:>7}/{:<7} \
             forwarded {:>8}  {:>9.1} ms wall  {:>10.0} pkt/s",
            p.nodes,
            p.flows,
            p.backend,
            p.delivered,
            p.packets,
            p.forwarded,
            p.wall_ms,
            p.pkts_per_sec
        );
    }
    for p in &report.event_core {
        println!(
            "  hold {:>8} {:>7} pending  {:>11.0} ops/s",
            p.backend, p.pending, p.ops_per_sec
        );
    }
}
