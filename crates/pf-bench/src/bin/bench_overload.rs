//! Writes `BENCH_overload.json`: the saturation campaign sweeping
//! offered load from 0.5× to 8× of unarmored receive capacity across the
//! overload-armor tiers {none, polling, shedding, full} and the demux
//! engines {dtree, sharded, jit}. Every signature claim — flat full-armor
//! goodput past saturation, the no-armor livelock cliff, drop-at-NIC vs
//! drop-after-demux accounting — is an `assert!`, so a zero exit *is* the
//! campaign's proof.
//!
//! ```text
//! cargo run -p pf-bench --release --bin bench_overload            # full sweep
//! cargo run -p pf-bench --release --bin bench_overload -- --smoke # tiny CI sweep
//! cargo run -p pf-bench --release --bin bench_overload -- --stdout
//! cargo run -p pf-bench --release --bin bench_overload -- --out /tmp/overload.json
//! ```

use pf_bench::{cli, overload};

fn main() {
    let args = cli::parse_or_exit("bench_overload", true);
    // This campaign models the classic single-core receive path; the
    // shared flags are accepted only in their single-core shape so a
    // multi-core invocation fails loudly instead of silently measuring
    // one core.
    if args.cores.as_deref().is_some_and(|c| c != [1]) {
        eprintln!(
            "bench_overload: multi-core sweeps live in bench_mc \
             (bench_overload models the single-core receive path; got --cores {:?})",
            args.cores.unwrap()
        );
        std::process::exit(2);
    }
    if args.batch.as_deref().is_some_and(|b| b != [1]) {
        eprintln!(
            "bench_overload: batched execution is swept by bench_mc \
             (bench_overload demultiplexes per frame; got --batch {:?})",
            args.batch.unwrap()
        );
        std::process::exit(2);
    }
    let report = overload::sweep(args.smoke, args.seed.unwrap_or(overload::DEFAULT_SEED));
    let json = overload::to_json(&report);
    let Some(path) = args.out_path(overload::default_path()) else {
        print!("{json}");
        return;
    };
    std::fs::write(&path, &json).expect("write BENCH_overload.json");
    println!(
        "wrote {} ({} rows, capacity {} pps, wanted {} pps)",
        path.display(),
        report.rows.len(),
        report.capacity_pps,
        report.wanted_pps
    );
    for p in &report.rows {
        println!(
            "  {:>7} {:>8} {:>4.1}x  goodput {:>7.1} pps  useful {:>5.3}  \
             drops adm/q/ring {:>6}/{:>6}/{:>6}  p99 {:>8} us",
            p.engine,
            p.armor,
            p.offered_x,
            p.goodput_pps,
            p.useful_frac,
            p.drops_admission,
            p.drops_queue_full,
            p.drops_interface,
            p.p99_latency_us
        );
    }
}
