//! Regenerates table 6-8: per-packet cost of user-level demultiplexing.
fn main() {
    println!("{}", pf_bench::recvcost::report_table_6_8());
}
