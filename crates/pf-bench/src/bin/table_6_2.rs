//! Regenerates table 6-2: VMTP minimal round-trip operation.
fn main() {
    println!("{}", pf_bench::vmtp_exp::report_table_6_2());
}
