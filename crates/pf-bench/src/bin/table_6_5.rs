//! Regenerates table 6-5: effect of user-level demultiplexing.
fn main() {
    println!("{}", pf_bench::vmtp_exp::report_table_6_5());
}
