//! Regenerates figures 2-1/2-2, 2-3, and 3-4/3-5 as event-count tables.
fn main() {
    println!("{}", pf_bench::figures::report_fig_2_1_2_2());
    println!("{}", pf_bench::figures::report_fig_2_3());
    println!("{}", pf_bench::figures::report_fig_3_4_3_5());
}
