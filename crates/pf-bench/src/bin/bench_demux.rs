//! Writes `BENCH_demux.json`: the demux-scaling race between the
//! flat-sequential, decision-table, flat-IR, sharded value-numbered, and
//! (with the `jit` feature) template-JIT engines over growing
//! multi-ethertype populations.
//!
//! ```text
//! cargo run -p pf-bench --release --bin bench_demux            # full sweep, 1..512
//! cargo run -p pf-bench --release --bin bench_demux -- --smoke # tiny CI sweep
//! cargo run -p pf-bench --release --bin bench_demux -- --stdout
//! cargo run -p pf-bench --release --bin bench_demux -- --out /tmp/demux.json
//! ```

use pf_bench::{cli, demux_json};

fn main() {
    let args = cli::parse_or_exit("bench_demux", true);
    let points = demux_json::sweep(args.smoke);
    let json = demux_json::to_json(&points);
    let Some(path) = args.out_path(demux_json::default_path()) else {
        print!("{json}");
        return;
    };
    std::fs::write(&path, &json).expect("write BENCH_demux.json");
    println!("wrote {} ({} rows)", path.display(), points.len());
    for p in &points {
        println!(
            "  {:>10} n={:<4} {:>10.1} ns/pkt  tests {:.2} fresh + {:.2} memo, {:.2} members",
            p.engine,
            p.population,
            p.ns_per_packet,
            p.tests_evaluated_per_packet,
            p.tests_memoized_per_packet,
            p.filters_evaluated_per_packet,
        );
    }
}
