//! Writes `BENCH_demux.json`: the demux-scaling race between the
//! flat-sequential, decision-table, flat-IR, sharded value-numbered,
//! geometric tuple-space, and (with the `jit` feature) template-JIT
//! engines over growing multi-ethertype populations, plus the mixed
//! exact/range ladder to 100k filters and the insert/delete churn
//! column for the two incremental engines.
//!
//! ```text
//! cargo run -p pf-bench --release --bin bench_demux            # full sweep, 1..512 + 1k..100k ladder
//! cargo run -p pf-bench --release --bin bench_demux -- --smoke # tiny CI sweep
//! cargo run -p pf-bench --release --bin bench_demux -- --stdout
//! cargo run -p pf-bench --release --bin bench_demux -- --out /tmp/demux.json
//! ```

use pf_bench::{cli, demux_json};

fn main() {
    let args = cli::parse_or_exit("bench_demux", true);
    let points = demux_json::sweep(args.smoke);
    let (ladder, churn) = demux_json::range_sweep(args.smoke);
    let json = demux_json::to_json(&points, &ladder, &churn, args.seed.unwrap_or(0));
    let Some(path) = args.out_path(demux_json::default_path()) else {
        print!("{json}");
        return;
    };
    std::fs::write(&path, &json).expect("write BENCH_demux.json");
    println!(
        "wrote {} ({} rows, {} ladder rows, {} churn rows)",
        path.display(),
        points.len(),
        ladder.len(),
        churn.len()
    );
    for p in &points {
        println!(
            "  {:>10} n={:<4} {:>10.1} ns/pkt  tests {:.2} fresh + {:.2} memo, {:.2} members",
            p.engine,
            p.population,
            p.ns_per_packet,
            p.tests_evaluated_per_packet,
            p.tests_memoized_per_packet,
            p.filters_evaluated_per_packet,
        );
    }
    println!("mixed exact/range ladder:");
    for p in &ladder {
        println!(
            "  {:>10} n={:<6} {:>10.1} ns/pkt  {:.2} members, {:.2} ops, {:.2} probe nodes",
            p.engine,
            p.population,
            p.ns_per_packet,
            p.filters_evaluated_per_packet,
            p.ops_executed_per_packet,
            p.nodes_visited_per_packet,
        );
    }
    println!("churn (remove+reinsert at standing population):");
    for p in &churn {
        println!(
            "  {:>10} n={:<6} {:>10.1} ns/update over {} updates, {} rebuilds",
            p.engine, p.population, p.ns_per_update, p.updates, p.rebuilds,
        );
    }
}
