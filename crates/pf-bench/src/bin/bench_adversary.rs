//! Writes `BENCH_adversary.json`: the adversarial-traffic campaign.
//! State-machine workload generators shape hostile flows against each
//! defense mechanism — RSS collision floods, admission-signature
//! mimicry, quota-gamed bursts, geom overlap bombs, monitor-evading
//! shaping — and every family runs against both the undefended and the
//! hardened build. Every collapse and every recovery claim is an
//! `assert!`, so a zero exit *is* the campaign's proof.
//!
//! ```text
//! cargo run -p pf-bench --release --bin bench_adversary            # full sweep
//! cargo run -p pf-bench --release --bin bench_adversary -- --smoke # tiny CI sweep
//! cargo run -p pf-bench --release --bin bench_adversary -- --stdout
//! cargo run -p pf-bench --release --bin bench_adversary -- --seed 0xC0FFEE
//! ```

use pf_bench::{adversary, cli};

fn main() {
    let args = cli::parse_or_exit("bench_adversary", true);
    if args.cores.is_some() || args.batch.is_some() {
        eprintln!(
            "bench_adversary: the RSS-collision family fixes its core count \
             (core/batch sweeps live in bench_mc)"
        );
        std::process::exit(2);
    }
    let report = adversary::sweep(args.smoke, args.seed.unwrap_or(adversary::DEFAULT_SEED));
    let json = adversary::to_json(&report);
    let Some(path) = args.out_path(adversary::default_path()) else {
        print!("{json}");
        return;
    };
    std::fs::write(&path, &json).expect("write BENCH_adversary.json");
    println!(
        "wrote {} ({} rows, capacity {} pps, wanted {} pps, seed {:#x})",
        path.display(),
        report.rows.len(),
        report.capacity_pps,
        report.wanted_pps,
        report.seed
    );
    for p in &report.rows {
        println!(
            "  {:>15} {:>10}  goodput/coverage {:>5.3}  p99 {:>8} us  \
             drops adm/ring/q {:>6}/{:>6}/{:>6}  shed {:>6}  resig {:>2}  capped {:>7}",
            p.family,
            p.mode,
            p.goodput_ratio,
            p.p99_latency_us,
            p.drops_admission,
            p.drops_interface,
            p.drops_queue_full,
            p.drops_mimicry_shed,
            p.gate_resignatures,
            p.candidates_capped
        );
    }
}
