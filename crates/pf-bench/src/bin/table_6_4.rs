//! Regenerates table 6-4: effect of received-packet batching.
fn main() {
    println!("{}", pf_bench::vmtp_exp::report_table_6_4());
}
