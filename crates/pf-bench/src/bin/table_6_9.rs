//! Regenerates table 6-9: user-level demultiplexing with batching.
fn main() {
    println!("{}", pf_bench::recvcost::report_table_6_9());
}
