//! Writes `BENCH_fabric.json`: the fault-tolerant-fabric campaign.
//! Ring topologies of {16, 64, 256} nodes carry flowgen traffic
//! through three chaos scenarios — router kill, link-flap train,
//! partition-and-heal — each run both undefended (static routes) and
//! hardened (hello probing, backup failover, LSU flooding, bounded
//! reconvergence), under both event-queue backends. Every recovery
//! claim — exact undefended blackhole accounting, ≥99% surviving-path
//! goodput after the convergence deadline, zero TTL loops, bounded
//! route churn, backend-identical histories — is an `assert!`, so a
//! zero exit *is* the campaign's proof.
//!
//! ```text
//! cargo run -p pf-bench --release --bin bench_fabric            # full sweep
//! cargo run -p pf-bench --release --bin bench_fabric -- --smoke # tiny CI sweep
//! cargo run -p pf-bench --release --bin bench_fabric -- --stdout
//! cargo run -p pf-bench --release --bin bench_fabric -- --out /tmp/fabric.json
//! ```

use pf_bench::{cli, fabric};

fn main() {
    let args = cli::parse_or_exit("bench_fabric", true);
    // Chaos cells model single-core routed nodes; reject the shared
    // multi-core flags loudly rather than silently ignoring them.
    if args.cores.as_deref().is_some_and(|c| c != [1]) {
        eprintln!(
            "bench_fabric: multi-core sweeps live in bench_mc \
             (bench_fabric models single-core routed nodes; got --cores {:?})",
            args.cores.unwrap()
        );
        std::process::exit(2);
    }
    if args.batch.as_deref().is_some_and(|b| b != [1]) {
        eprintln!(
            "bench_fabric: batched execution is swept by bench_mc \
             (bench_fabric forwards per frame; got --batch {:?})",
            args.batch.unwrap()
        );
        std::process::exit(2);
    }
    let report = fabric::sweep(args.smoke, args.seed.unwrap_or(fabric::FABRIC_SEED));
    let json = fabric::to_json(&report);
    let Some(path) = args.out_path(fabric::default_path()) else {
        print!("{json}");
        return;
    };
    std::fs::write(&path, &json).expect("write BENCH_fabric.json");
    println!("wrote {} ({} rows)", path.display(), report.rows.len());
    for p in &report.rows {
        println!(
            "  {:>14} {:>3}n {:>10} {:>8}  delivered {:>6}/{:<6} \
             recovered {:>5.3}  conv {:>6.1} ms  churn {:>4}  {:>8.1} ms wall",
            p.scenario,
            p.nodes,
            p.deploy,
            p.backend,
            p.delivered,
            p.packets,
            p.recovered_frac,
            p.convergence_ms,
            p.route_churn,
            p.wall_ms
        );
    }
}
