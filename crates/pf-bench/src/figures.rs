//! The paper's cost-diagram figures, reproduced as measured event counts.
//!
//! Figures 2-1/2-2 (context switches and system calls per packet for
//! user-process vs kernel demultiplexing), figure 2-3 (kernel-resident
//! protocols confine overhead packets to the kernel), and figures 3-4/3-5
//! (received-packet batching amortizes per-packet system calls) are
//! diagrams in the paper; here each becomes a table of per-packet counter
//! measurements from the simulated kernel.

use crate::recvcost::{self, DemuxMode, RecvConfig};
use crate::report::Report;
use pf_kernel::world::World;
use pf_net::medium::Medium;
use pf_net::segment::FaultModel;
use pf_proto::bsp::BspConfig;
use pf_proto::bsp_app::{BspReceiverApp, BspSenderApp};
use pf_proto::ip::KernelIp;
use pf_proto::pup::PupAddr;
use pf_proto::stream::{TcpBulkReceiver, TcpBulkSender};
use pf_sim::cost::CostModel;
use pf_sim::counters::Counters;
use pf_sim::time::SimTime;
use pf_sim::SimClock;

/// Per-packet overhead events for one demultiplexing mode.
#[derive(Debug, Clone, Copy)]
pub struct DemuxEvents {
    /// Context switches per packet.
    pub switches: f64,
    /// System calls per packet.
    pub syscalls: f64,
    /// Data copies per packet.
    pub copies: f64,
}

/// Measures figure 2-1/2-2 event counts for one mode.
pub fn demux_events(mode: DemuxMode) -> DemuxEvents {
    let r = recvcost::run(&RecvConfig {
        mode,
        count: 300,
        spacing_us: if mode == DemuxMode::Kernel {
            900
        } else {
            1_900
        },
        ..Default::default()
    });
    DemuxEvents {
        switches: r.context_switches_per_packet,
        syscalls: r.syscalls_per_packet,
        copies: r.copies_per_packet,
    }
}

/// Figures 2-1/2-2 report.
pub fn report_fig_2_1_2_2() -> Report {
    let kernel = demux_events(DemuxMode::Kernel);
    let user = demux_events(DemuxMode::UserProcess);
    let mut r = Report::new(
        "Figures 2-1/2-2",
        "Per-packet overhead events: user-process vs kernel demultiplexing",
    )
    .headers(&[
        "demultiplexing in",
        "ctx switches/pkt",
        "syscalls/pkt",
        "copies/pkt",
    ]);
    r.row(&[
        "kernel (fig 2-2)".into(),
        format!("{:.2}", kernel.switches),
        format!("{:.2}", kernel.syscalls),
        format!("{:.2}", kernel.copies),
    ]);
    r.row(&[
        "user process (fig 2-1)".into(),
        format!("{:.2}", user.switches),
        format!("{:.2}", user.syscalls),
        format!("{:.2}", user.copies),
    ]);
    r.note("paper: user demux needs at least 2 extra switches and 2 extra copies per packet");
    r
}

/// Domain crossings per useful (stream payload) kilobyte, for a user-level
/// protocol vs a kernel-resident one — figure 2-3's claim quantified.
#[derive(Debug, Clone, Copy)]
pub struct CrossingCounts {
    /// Domain crossings per payload KB for user-level BSP.
    pub user_bsp_per_kb: f64,
    /// Domain crossings per payload KB for kernel TCP.
    pub kernel_tcp_per_kb: f64,
}

/// Measures figure 2-3.
pub fn crossings() -> CrossingCounts {
    const TOTAL: usize = 128 * 1024;

    // User-level BSP: every data, ack, and control packet crosses.
    let mut w = World::new(17);
    let seg = w.add_segment(Medium::experimental_3mb(), FaultModel::default());
    let a = w.add_host("sender", seg, 0x0A, CostModel::microvax_ii());
    let b = w.add_host("receiver", seg, 0x0B, CostModel::microvax_ii());
    let src = PupAddr::new(1, 0x0A, 0x300);
    let dst = PupAddr::new(1, 0x0B, 0x400);
    let cfg = BspConfig::default();
    let payload = vec![7u8; TOTAL];
    let rx = w.spawn(b, Box::new(BspReceiverApp::new(dst, cfg.clone())));
    w.spawn(a, Box::new(BspSenderApp::new(src, dst, payload, cfg)));
    w.run_until(SimTime(900 * 1_000_000_000));
    assert!(w.app_ref::<BspReceiverApp>(b, rx).expect("rx").is_done());
    let user: Counters = *w.counters(b);
    let user_bsp_per_kb = user.domain_crossings as f64 / (TOTAL as f64 / 1024.0);

    // Kernel TCP: acks and control stay in the kernel.
    let mut w = World::new(17);
    let seg = w.add_segment(Medium::standard_10mb(), FaultModel::default());
    let a = w.add_host("sender", seg, 0x0A, CostModel::microvax_ii());
    let b = w.add_host("receiver", seg, 0x0B, CostModel::microvax_ii());
    w.register_protocol(a, Box::new(KernelIp::new(10)));
    w.register_protocol(b, Box::new(KernelIp::new(11)));
    let rx = w.spawn(b, Box::new(TcpBulkReceiver::new(5000)));
    w.spawn(a, Box::new(TcpBulkSender::new(11, 5000, 0x0B, TOTAL, 0)));
    w.run_until(SimTime(900 * 1_000_000_000));
    assert!(w.app_ref::<TcpBulkReceiver>(b, rx).expect("rx").is_done());
    let kernel: Counters = *w.counters(b);
    let kernel_tcp_per_kb = kernel.domain_crossings as f64 / (TOTAL as f64 / 1024.0);

    CrossingCounts {
        user_bsp_per_kb,
        kernel_tcp_per_kb,
    }
}

/// Figure 2-3 report.
pub fn report_fig_2_3() -> Report {
    let c = crossings();
    let mut r = Report::new(
        "Figure 2-3",
        "Kernel-resident protocols reduce domain crossings (receiver side)",
    )
    .headers(&["implementation", "domain crossings / payload KB"]);
    r.row(&["user-level BSP".into(), format!("{:.2}", c.user_bsp_per_kb)]);
    r.row(&["kernel TCP".into(), format!("{:.2}", c.kernel_tcp_per_kb)]);
    r.note("every ack and control packet costs a user-level implementation a crossing");
    r
}

/// Figures 3-4/3-5: system calls per packet with and without batching.
pub fn report_fig_3_4_3_5() -> Report {
    let plain = recvcost::run(&RecvConfig {
        count: 300,
        spacing_us: 400,
        ..Default::default()
    });
    let batched = recvcost::run(&RecvConfig {
        count: 300,
        batching: true,
        spacing_us: 400,
        ..Default::default()
    });
    let mut r = Report::new(
        "Figures 3-4/3-5",
        "Received-packet batching amortizes per-packet overheads",
    )
    .headers(&[
        "mode",
        "syscalls/pkt",
        "ctx switches/pkt",
        "per-packet time",
    ]);
    r.row(&[
        "one packet per read (fig 3-4)".into(),
        format!("{:.2}", plain.syscalls_per_packet),
        format!("{:.2}", plain.context_switches_per_packet),
        format!("{:.2} ms", plain.per_packet_ms),
    ]);
    r.row(&[
        "batched reads (fig 3-5)".into(),
        format!("{:.2}", batched.syscalls_per_packet),
        format!("{:.2}", batched.context_switches_per_packet),
        format!("{:.2} ms", batched.per_packet_ms),
    ]);
    r.note("one system call returns all pending packets (§3)");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig_2_user_demux_pays_more_of_everything() {
        let k = demux_events(DemuxMode::Kernel);
        let u = demux_events(DemuxMode::UserProcess);
        // The paper's diagram: at least 2 extra context switches, 2 extra
        // system calls (demux read + pipe write... plus the receiver's
        // read), and 2 extra copies per packet.
        assert!(u.switches > k.switches + 0.9, "switches {u:?} vs {k:?}");
        assert!(u.syscalls >= k.syscalls + 1.9, "syscalls {u:?} vs {k:?}");
        assert!(u.copies >= k.copies + 1.9, "copies {u:?} vs {k:?}");
    }

    #[test]
    fn fig_2_3_kernel_protocol_crosses_less() {
        let c = crossings();
        assert!(
            c.user_bsp_per_kb > 2.0 * c.kernel_tcp_per_kb,
            "user {:.2} vs kernel {:.2} crossings/KB",
            c.user_bsp_per_kb,
            c.kernel_tcp_per_kb
        );
    }

    #[test]
    fn fig_3_4_3_5_batching_cuts_syscalls() {
        let plain = recvcost::run(&RecvConfig {
            count: 200,
            spacing_us: 400,
            ..Default::default()
        });
        let batched = recvcost::run(&RecvConfig {
            count: 200,
            batching: true,
            spacing_us: 400,
            ..Default::default()
        });
        assert!(
            batched.syscalls_per_packet < 0.6 * plain.syscalls_per_packet,
            "batched {:.2} vs plain {:.2} syscalls/pkt",
            batched.syscalls_per_packet,
            plain.syscalls_per_packet
        );
    }
}
