//! Table 6-6: relative performance of stream protocol implementations.
//!
//! ```text
//! Implementation       Rate
//! Packet filter BSP    38 KB/s
//! Unix kernel TCP      222 KB/s
//! ```
//!
//! Plus the §6.4 text observations: forcing TCP down to BSP's 568-byte
//! packets cuts its throughput in half; feeding TCP from a disk file (the
//! FTP case) halves it again, while BSP is unchanged — the network, not
//! the disk, limits BSP.

use crate::report::Report;
use pf_kernel::world::World;
use pf_net::medium::Medium;
use pf_net::segment::FaultModel;
use pf_proto::bsp::BspConfig;
use pf_proto::bsp_app::{BspReceiverApp, BspSenderApp};
use pf_proto::ip::KernelIp;
use pf_proto::pup::PupAddr;
use pf_proto::stream::{TcpBulkReceiver, TcpBulkSender};
use pf_sim::cost::CostModel;
use pf_sim::time::{SimDuration, SimTime};
use pf_sim::SimClock;

const TOTAL: usize = 512 * 1024;
const RUN_CAP: SimTime = SimTime(900 * 1_000_000_000);

/// A 1987-era disk read of one 16 KB chunk (seek + rotation + transfer).
pub const DISK_CHUNK_COST: SimDuration = SimDuration::from_micros(55_000);

/// BSP bulk throughput in KB/s; `disk_source` charges [`DISK_CHUNK_COST`]
/// per 16 KB chunk.
pub fn bsp_bulk_kbs(disk_source: bool) -> f64 {
    let mut w = World::new(55);
    let seg = w.add_segment(Medium::experimental_3mb(), FaultModel::default());
    let a = w.add_host("sender", seg, 0x0A, CostModel::microvax_ii());
    let b = w.add_host("receiver", seg, 0x0B, CostModel::microvax_ii());
    w.set_contended(a, true);
    w.set_contended(b, true);
    let src = PupAddr::new(1, 0x0A, 0x300);
    let dst = PupAddr::new(1, 0x0B, 0x400);
    // The Stanford BSP implementation (1982) predates received-packet
    // batching, checksums its Pups in software, and runs a small window —
    // the configuration behind table 6-6's 38 KB/s.
    let cfg = BspConfig {
        window: 2,
        checksummed: true,
        batch: false,
        ..Default::default()
    };
    let payload: Vec<u8> = (0..TOTAL).map(|i| (i % 251) as u8).collect();
    let rx = w.spawn(b, Box::new(BspReceiverApp::new(dst, cfg.clone())));
    let mut sender = BspSenderApp::new(src, dst, payload, cfg);
    if disk_source {
        sender = sender.with_chunked_source(16 * 1024, DISK_CHUNK_COST);
    }
    w.spawn(a, Box::new(sender));
    w.run_until(RUN_CAP);
    let r = w.app_ref::<BspReceiverApp>(b, rx).expect("receiver");
    assert!(r.is_done(), "BSP transfer finished ({} bytes)", r.bytes);
    assert_eq!(r.bytes as usize, TOTAL);
    r.throughput_bps().expect("done") / 1024.0
}

/// Kernel TCP bulk throughput in KB/s with the given MSS (`0` = default
/// 1024-byte segments, i.e. 1078-byte wire packets); `disk_source`
/// charges [`DISK_CHUNK_COST`] per 16 KB chunk.
pub fn tcp_bulk_kbs(mss: usize, disk_source: bool) -> f64 {
    let mut w = World::new(55);
    let seg = w.add_segment(Medium::standard_10mb(), FaultModel::default());
    let a = w.add_host("sender", seg, 0x0A, CostModel::microvax_ii());
    let b = w.add_host("receiver", seg, 0x0B, CostModel::microvax_ii());
    w.register_protocol(a, Box::new(KernelIp::new(10)));
    w.register_protocol(b, Box::new(KernelIp::new(11)));
    let rx = w.spawn(b, Box::new(TcpBulkReceiver::new(5000)));
    let mut tx = TcpBulkSender::new(11, 5000, 0x0B, TOTAL, mss);
    if disk_source {
        tx = tx.with_source_cost(DISK_CHUNK_COST);
    }
    w.spawn(a, Box::new(tx));
    w.run_until(RUN_CAP);
    let r = w.app_ref::<TcpBulkReceiver>(b, rx).expect("receiver");
    assert!(r.is_done(), "TCP transfer finished ({} bytes)", r.bytes);
    assert_eq!(r.bytes as usize, TOTAL);
    r.throughput_bps().expect("done") / 1024.0
}

/// Builds the table 6-6 report (with the §6.4 extra rows).
pub fn report_table_6_6() -> Report {
    let bsp = bsp_bulk_kbs(false);
    let tcp = tcp_bulk_kbs(0, false);
    let tcp_small = tcp_bulk_kbs(514, false);
    let tcp_disk = tcp_bulk_kbs(0, true);
    let bsp_disk = bsp_bulk_kbs(true);
    let mut r = Report::new("Table 6-6", "Relative performance of stream protocols").headers(&[
        "implementation",
        "paper",
        "measured",
    ]);
    r.row(&[
        "Packet filter BSP".into(),
        "38 KB/s".into(),
        format!("{bsp:.0} KB/s"),
    ]);
    r.row(&[
        "Unix kernel TCP".into(),
        "222 KB/s".into(),
        format!("{tcp:.0} KB/s"),
    ]);
    r.row(&[
        "TCP, 568-byte packets".into(),
        "~111 KB/s (half)".into(),
        format!("{tcp_small:.0} KB/s"),
    ]);
    r.row(&[
        "TCP, disk file source".into(),
        "~111 KB/s (half)".into(),
        format!("{tcp_disk:.0} KB/s"),
    ]);
    r.row(&[
        "BSP, disk file source".into(),
        "38 KB/s (unchanged)".into(),
        format!("{bsp_disk:.0} KB/s"),
    ]);
    r.note("network is the rate-limiting factor for BSP file transfer (§6.4)");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_6_6_shape() {
        let bsp = bsp_bulk_kbs(false);
        let tcp = tcp_bulk_kbs(0, false);
        // Bands around the paper's absolute numbers.
        assert!((20.0..90.0).contains(&bsp), "BSP {bsp:.0} KB/s (paper 38)");
        assert!(
            (130.0..330.0).contains(&tcp),
            "TCP {tcp:.0} KB/s (paper 222)"
        );
        // The headline: kernel TCP is severalfold faster than user BSP.
        let ratio = tcp / bsp;
        assert!(
            (2.5..9.0).contains(&ratio),
            "TCP/BSP ratio {ratio:.1} (paper ~5.8)"
        );
    }

    #[test]
    fn small_packets_halve_tcp() {
        let tcp = tcp_bulk_kbs(0, false);
        let small = tcp_bulk_kbs(514, false);
        let ratio = tcp / small;
        assert!(
            (1.5..2.8).contains(&ratio),
            "small-packet ratio {ratio:.2} (paper ~2)"
        );
    }

    #[test]
    fn disk_source_halves_tcp_but_not_bsp() {
        let tcp = tcp_bulk_kbs(0, false);
        let tcp_disk = tcp_bulk_kbs(0, true);
        let tcp_ratio = tcp / tcp_disk;
        assert!(
            (1.4..2.8).contains(&tcp_ratio),
            "TCP disk ratio {tcp_ratio:.2} (paper ~2)"
        );

        let bsp = bsp_bulk_kbs(false);
        let bsp_disk = bsp_bulk_kbs(true);
        let bsp_ratio = bsp / bsp_disk;
        assert!(
            (0.9..1.25).contains(&bsp_ratio),
            "BSP unchanged by disk source: ratio {bsp_ratio:.2}"
        );
    }
}
