//! Chaos campaign: `BENCH_chaos.json`.
//!
//! Sweeps the full fault spectrum — loss, corruption, truncation,
//! reordering, duplication — over seeded BSP and VMTP scenarios, and
//! checks the degradation machinery end to end:
//!
//! * **protocols**: every byte stream / transaction completes exactly
//!   under any fault mix with loss ≤ 30% (checksums discard the damaged
//!   frames, retransmission recovers them), and a total blackout ends in
//!   a *bounded* give-up rather than an unbounded retry storm;
//! * **engines**: corrupted and truncated packets get one verdict from
//!   every execution engine in the workspace;
//! * **kernel**: overflowing ports shed packets per their configured
//!   policy, and quarantined filters (validation-rejected or
//!   over-budget) keep being served by the checked interpreter.
//!
//! Everything is seeded through [`pf_sim::rng::SplitMix64`], so the
//! campaign is reproducible and the tests assert on exact counters. The
//! campaign's own completion is the zero-panic invariant: every
//! violation is an `assert!` with the seed in its message.

use pf_filter::interp::{CheckedInterpreter, InterpConfig};
use pf_filter::packet::PacketView;
use pf_filter::program::{Assembler, FilterProgram};
use pf_filter::samples;
use pf_filter::word::BinaryOp;
use pf_ir::{singleton_engines, FilterEngine};
use pf_kernel::device::DemuxEngine;
use pf_kernel::types::{Fd, OverflowPolicy, ProcId, RecvPacket};
use pf_kernel::PfDevice;
use pf_proto::bsp::{BspConfig, Effect, ReceiverMachine, SenderMachine, RTO_TOKEN};
use pf_proto::pup::{Pup, PupAddr};
use pf_proto::vmtp::{ClientMachine, ServerMachine, VEffect, VmtpPacket, VMTP_RTO_TOKEN};
use pf_sim::rng::SplitMix64;
use pf_sim::time::SimDuration;
use std::collections::VecDeque;

/// Give-up threshold used by both protocol scenarios: generous enough
/// that a 30%-loss channel practically never exhausts it, small enough
/// that a blackout terminates quickly.
pub const MAX_RETRIES: u32 = 32;

/// Default campaign base seed (the value the committed artifact was
/// produced under); `--seed` overrides it. Scenario sub-seeds are
/// derived from the base so the default reproduces the artifact
/// bit-for-bit while any other base reshuffles every scenario.
pub const DEFAULT_SEED: u64 = 0xC4A0_0000;

/// Per-delivery fault probabilities for the byte channel.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChaosFaults {
    /// Probability a frame is silently dropped.
    pub loss: f64,
    /// Probability one random bit of one random byte is flipped.
    pub corruption: f64,
    /// Probability a frame is truncated to a random proper prefix.
    pub truncation: f64,
    /// Probability a frame is delivered after the next one (local swap).
    pub reorder: f64,
    /// Probability a pristine extra copy is delivered as well.
    pub duplication: f64,
}

/// Counts of faults the channel actually injected.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultTally {
    /// Frames dropped.
    pub lost: u64,
    /// Extra copies produced.
    pub duplicated: u64,
    /// Frames with a bit flipped.
    pub corrupted: u64,
    /// Frames cut to a prefix.
    pub truncated: u64,
    /// Frames that swapped places with a neighbor.
    pub reordered: u64,
}

impl FaultTally {
    fn merge(self, other: FaultTally) -> FaultTally {
        FaultTally {
            lost: self.lost + other.lost,
            duplicated: self.duplicated + other.duplicated,
            corrupted: self.corrupted + other.corrupted,
            truncated: self.truncated + other.truncated,
            reordered: self.reordered + other.reordered,
        }
    }

    fn total(&self) -> u64 {
        self.lost + self.duplicated + self.corrupted + self.truncated + self.reordered
    }
}

/// A unidirectional byte channel applying [`ChaosFaults`] per push.
///
/// The five gates are drawn unconditionally in a fixed order (loss,
/// duplication, corruption, truncation, reorder) — the same independence
/// contract as `pf_net::segment`, so one fault's rate never skews
/// another's random stream. Duplication yields a pristine copy even when
/// the primary is lost or damaged (two copies on the wire).
struct Channel {
    q: VecDeque<Vec<u8>>,
    faults: ChaosFaults,
    tally: FaultTally,
}

impl Channel {
    fn new(faults: ChaosFaults) -> Self {
        Channel {
            q: VecDeque::new(),
            faults,
            tally: FaultTally::default(),
        }
    }

    fn push(&mut self, bytes: Vec<u8>, rng: &mut SplitMix64) {
        let lost = rng.chance(self.faults.loss);
        let duplicated = rng.chance(self.faults.duplication);
        let corrupted = rng.chance(self.faults.corruption);
        let truncated = rng.chance(self.faults.truncation);
        let reordered = rng.chance(self.faults.reorder);
        let mut primary = bytes.clone();
        if corrupted && !primary.is_empty() {
            self.tally.corrupted += 1;
            let at = rng.below(primary.len() as u64) as usize;
            let bit = rng.below(8) as u32;
            primary[at] ^= 1u8 << bit;
        }
        if truncated && primary.len() > 1 {
            self.tally.truncated += 1;
            let keep = 1 + rng.below(primary.len() as u64 - 1) as usize;
            primary.truncate(keep);
        }
        if lost {
            self.tally.lost += 1;
        } else if reordered && !self.q.is_empty() {
            // Arrive *before* the frame already in flight: local swap.
            self.tally.reordered += 1;
            let prior = self.q.pop_back().expect("non-empty");
            self.q.push_back(primary);
            self.q.push_back(prior);
        } else {
            self.q.push_back(primary);
        }
        if duplicated {
            self.tally.duplicated += 1;
            self.q.push_back(bytes);
        }
    }

    fn pop(&mut self) -> Option<Vec<u8>> {
        self.q.pop_front()
    }

    fn is_empty(&self) -> bool {
        self.q.is_empty()
    }
}

/// Outcome of one protocol run through the faulty channel.
#[derive(Debug, Clone, Copy)]
pub struct ProtoRun {
    /// The payload (BSP) or every transaction (VMTP) arrived exactly.
    pub delivered: bool,
    /// The sender/client exhausted its retries and gave up.
    pub gave_up: bool,
    /// First-transmission data packets (BSP) or packets sent (VMTP).
    pub data_packets: u64,
    /// Backed-off retransmissions performed.
    pub retransmits: u64,
    /// Frames the decoders rejected (bad checksum or malformed).
    pub discards: u64,
    /// Duplicate data packets the receiver suppressed (BSP).
    pub duplicates: u64,
    /// Out-of-order arrivals the receiver buffered or re-acked (BSP).
    pub out_of_order: u64,
    /// Scheduler iterations consumed.
    pub steps: u64,
    /// Faults the channels injected.
    pub injected: FaultTally,
}

/// Drives one checksummed BSP transfer of `payload_len` bytes through
/// the faulty channel until the sender closes or gives up.
pub fn run_bsp(seed: u64, faults: ChaosFaults, payload_len: usize) -> ProtoRun {
    let mut rng = SplitMix64::new(seed);
    let payload: Vec<u8> = (0..payload_len).map(|i| (i % 251) as u8).collect();
    let cfg = BspConfig {
        window: 4,
        segment: 400,
        checksummed: true,
        max_retries: MAX_RETRIES,
        ..Default::default()
    };
    let sa = PupAddr::new(1, 0x0A, 0x100);
    let ra = PupAddr::new(1, 0x0B, 0x200);
    let mut s = SenderMachine::new(sa, ra, cfg);
    let mut r = ReceiverMachine::new(ra);
    let mut to_recv = Channel::new(faults);
    let mut to_send = Channel::new(faults);
    let mut delivered: Vec<u8> = Vec::new();
    let mut discards = 0u64;

    let mut opening = Vec::new();
    opening.extend(s.connect());
    opening.extend(s.offer(&payload));
    opening.extend(s.finish());
    for e in opening {
        if let Effect::Send(p) = e {
            to_recv.push(p.encode_body(true), &mut rng);
        }
    }

    let mut steps = 0u64;
    while !s.is_closed() && !s.is_failed() {
        steps += 1;
        assert!(
            steps < 500_000,
            "bsp livelock: seed {seed:#x} faults {faults:?}"
        );
        if let Some(bytes) = to_recv.pop() {
            match Pup::decode_body(&bytes) {
                Ok(p) => {
                    for e in r.on_pup(&p) {
                        match e {
                            Effect::Send(p) => to_send.push(p.encode_body(true), &mut rng),
                            Effect::Deliver(d) => delivered.extend(d),
                            _ => {}
                        }
                    }
                }
                Err(_) => discards += 1,
            }
        }
        if let Some(bytes) = to_send.pop() {
            match Pup::decode_body(&bytes) {
                Ok(p) => {
                    for e in s.on_pup(&p) {
                        if let Effect::Send(p) = e {
                            to_recv.push(p.encode_body(true), &mut rng);
                        }
                    }
                }
                Err(_) => discards += 1,
            }
        }
        // Quiescent but unfinished: fire the retransmission timer.
        if to_recv.is_empty() && to_send.is_empty() && !s.is_closed() && !s.is_failed() {
            for e in s.on_timer(RTO_TOKEN) {
                if let Effect::Send(p) = e {
                    to_recv.push(p.encode_body(true), &mut rng);
                }
            }
        }
    }

    ProtoRun {
        delivered: s.is_closed() && delivered == payload,
        gave_up: s.is_failed(),
        data_packets: s.stats.data_packets,
        retransmits: s.stats.retransmits,
        discards,
        duplicates: r.stats.duplicates,
        out_of_order: r.stats.out_of_order,
        steps,
        injected: to_recv.tally.merge(to_send.tally),
    }
}

/// Drives `ops` sequential checksummed VMTP transactions through the
/// faulty channel until they all complete or the client gives up.
pub fn run_vmtp(seed: u64, faults: ChaosFaults, ops: u32, response_len: usize) -> ProtoRun {
    const CLIENT_ETH: u64 = 0x0A;
    let mut rng = SplitMix64::new(seed);
    let mut client = ClientMachine::new(1, 2, 0x0B, SimDuration::from_millis(100))
        .with_retry_policy(SimDuration::from_secs(2), MAX_RETRIES);
    let mut server = ServerMachine::new(2);
    let response: Vec<u8> = (0..response_len).map(|i| (i * 7 % 239) as u8).collect();
    let mut to_server = Channel::new(faults);
    let mut to_client = Channel::new(faults);
    let mut discards = 0u64;
    let mut sent = 0u64;
    let mut completed = 0u32;
    let mut gave_up = false;
    let mut exact = true;

    for e in client.invoke(0, vec![0x55; 64]) {
        if let VEffect::Send(p, _eth) = e {
            sent += 1;
            to_server.push(p.encode_body_opts(true), &mut rng);
        }
    }

    let mut steps = 0u64;
    while completed < ops && !gave_up {
        steps += 1;
        assert!(
            steps < 500_000,
            "vmtp livelock: seed {seed:#x} faults {faults:?}"
        );
        if let Some(bytes) = to_server.pop() {
            match VmtpPacket::decode_body(&bytes) {
                Some(p) => {
                    for e in server.on_packet(&p, CLIENT_ETH) {
                        match e {
                            VEffect::Send(p, _eth) => {
                                sent += 1;
                                to_client.push(p.encode_body_opts(true), &mut rng);
                            }
                            VEffect::DeliverRequest {
                                client: c,
                                client_eth,
                                trans,
                                ..
                            } => {
                                for e in server.respond(c, client_eth, trans, response.clone()) {
                                    if let VEffect::Send(p, _eth) = e {
                                        sent += 1;
                                        to_client.push(p.encode_body_opts(true), &mut rng);
                                    }
                                }
                            }
                            _ => {}
                        }
                    }
                }
                None => discards += 1,
            }
        }
        if let Some(bytes) = to_client.pop() {
            match VmtpPacket::decode_body(&bytes) {
                Some(p) => {
                    for e in client.on_packet(&p) {
                        match e {
                            VEffect::Send(p, _eth) => {
                                sent += 1;
                                to_server.push(p.encode_body_opts(true), &mut rng);
                            }
                            VEffect::Complete { data, .. } => {
                                exact &= data == response;
                                completed += 1;
                                if completed < ops {
                                    for e in client.invoke(0, vec![0x55; 64]) {
                                        if let VEffect::Send(p, _eth) = e {
                                            sent += 1;
                                            to_server.push(p.encode_body_opts(true), &mut rng);
                                        }
                                    }
                                }
                            }
                            VEffect::Failed { .. } => gave_up = true,
                            _ => {}
                        }
                    }
                }
                None => discards += 1,
            }
        }
        if to_server.is_empty() && to_client.is_empty() && completed < ops && !gave_up {
            for e in client.on_timer(VMTP_RTO_TOKEN) {
                match e {
                    VEffect::Send(p, _eth) => {
                        sent += 1;
                        to_server.push(p.encode_body_opts(true), &mut rng);
                    }
                    VEffect::Failed { .. } => gave_up = true,
                    _ => {}
                }
            }
        }
    }

    ProtoRun {
        delivered: completed == ops && exact,
        gave_up,
        data_packets: sent,
        retransmits: client.retries,
        discards,
        duplicates: 0,
        out_of_order: 0,
        steps,
        injected: to_server.tally.merge(to_client.tally),
    }
}

/// A program the validator rejects (reserved encoding after a
/// short-circuit) but the checked interpreter accepts for packets whose
/// `DstSocketLo` word differs from `sock`: the CNAND terminates *true*
/// on the mismatch before reaching the undecodable word.
pub fn shortcircuit_then_garbage(priority: u8, sock: u16) -> FilterProgram {
    let mut words = Assembler::new(priority)
        .pushword(samples::WORD_DSTSOCKET_LO)
        .pushlit_op(BinaryOp::Cnand, sock)
        .finish()
        .words()
        .to_vec();
    words.push(15 << 6); // reserved encoding: fails validation
    FilterProgram::from_words(priority, words)
}

/// One engine-agreement tally over mutated packets.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineAgreement {
    /// Filter programs exercised.
    pub programs: usize,
    /// Mutated packets evaluated (bit-flip mutants plus every prefix).
    pub packets: u64,
    /// Individual engine verdicts compared against the checked reference.
    pub verdicts: u64,
    /// Verdicts that differed (must be zero).
    pub disagreements: u64,
}

/// Feeds corrupted and truncated packets to every execution surface the
/// workspace has — the full [`pf_ir::singleton_engines`] ladder, from the
/// checked interpreter through the set engines to the template JIT when
/// the `jit` feature is on — and counts verdicts that disagree with the
/// checked reference.
pub fn engine_agreement(seed: u64, rounds: usize) -> EngineAgreement {
    let mut rng = SplitMix64::new(seed);
    let checked = CheckedInterpreter::default();
    let valid: Vec<FilterProgram> = vec![
        samples::fig_3_8_pup_type_range(),
        samples::fig_3_9_pup_socket_35(),
        samples::pup_socket_filter(10, 0, 35),
        samples::ethertype_filter(9, samples::PUP_ETHERTYPE_3MB),
        samples::padded_accept_filter(5, 12),
    ];
    // Per-program engine stack, built once by the shared factory.
    struct Stack {
        program: FilterProgram,
        engines: Vec<Box<dyn FilterEngine>>,
    }
    let build = |program: FilterProgram| -> Stack {
        let engines = singleton_engines(&program, InterpConfig::default());
        Stack { program, engines }
    };
    let mut stacks: Vec<Stack> = valid.into_iter().map(build).collect();
    // One validation-rejected program rides along: the factory hands out
    // only the checked-fallback surfaces for it, and they must still agree.
    stacks.push(build(shortcircuit_then_garbage(7, 35)));
    {
        let rejected = stacks.last().expect("non-empty");
        assert!(rejected.engines.len() < stacks[0].engines.len());
    }

    let mut out = EngineAgreement {
        programs: stacks.len(),
        ..Default::default()
    };
    for round in 0..rounds {
        let base: Vec<u8> = match round % 3 {
            0 => samples::pup_packet_3mb(samples::PUP_ETHERTYPE_3MB, 0, 35, 1),
            1 => samples::pup_packet_3mb(
                rng.below(6) as u16,
                rng.below(2) as u16,
                30 + rng.below(12) as u16,
                rng.below(120) as u8,
            ),
            _ => (0..rng.below(64) as usize)
                .map(|_| rng.next_u64() as u8)
                .collect(),
        };
        // Corruption mutants: four independent single-bit flips.
        let mut mutants: Vec<Vec<u8>> = (0..4)
            .filter(|_| !base.is_empty())
            .map(|_| {
                let mut m = base.clone();
                let at = rng.below(m.len() as u64) as usize;
                m[at] ^= 1u8 << rng.below(8);
                m
            })
            .collect();
        // Truncation mutants: every prefix, including empty.
        mutants.extend((0..=base.len()).map(|k| base[..k].to_vec()));
        for m in &mutants {
            out.packets += 1;
            let view = PacketView::new(m);
            for s in &mut stacks {
                let expect = checked.eval(&s.program, view);
                for engine in &mut s.engines {
                    out.verdicts += 1;
                    if engine.matches(m).is_some() != expect {
                        out.disagreements += 1;
                    }
                }
            }
        }
    }
    out
}

/// Kernel-degradation scenario results.
#[derive(Debug, Clone, Copy)]
pub struct DegradationReport {
    /// Ports quarantined (one validation-rejected, one over-budget).
    pub quarantined_ports: usize,
    /// Packets accepted by quarantined filters via the checked fallback.
    pub quarantine_accepts: u64,
    /// Packets accepted by the healthy compiled member.
    pub compiled_accepts: u64,
    /// Checked evaluations terminated by the instruction budget.
    pub budget_overruns: u64,
    /// Overflow drops at the drop-tail port.
    pub drop_tail_drops: u64,
    /// Overflow drops at the drop-oldest port.
    pub drop_oldest_drops: u64,
    /// Drop-tail kept the *oldest* packets.
    pub drop_tail_keeps_oldest: bool,
    /// Drop-oldest kept the *newest* packets.
    pub drop_oldest_keeps_newest: bool,
}

/// Exercises graceful degradation on a live [`PfDevice`]: quarantined
/// filters (validation-rejected, over-budget, and dynamically
/// over-budget) keep answering through the checked interpreter while
/// healthy filters stay compiled, and full queues shed packets per the
/// configured [`OverflowPolicy`].
pub fn kernel_degradation(seed: u64) -> DegradationReport {
    let mut rng = SplitMix64::new(seed);
    let mut d = PfDevice::builder()
        .engine(DemuxEngine::Sharded)
        .instruction_budget(Some(8))
        .build();

    // Healthy: compiled into the sharded set (6 instructions ≤ budget).
    let clean = d.open((ProcId(0), Fd(0)));
    assert!(d.set_filter(clean, samples::pup_socket_filter(10, 0, 35)));
    // Validation-rejected, quarantined at bind; accepts sockets ≠ 35.
    let bad = d.open((ProcId(0), Fd(1)));
    assert!(!d.set_filter(bad, shortcircuit_then_garbage(20, 35)));
    // Validation-rejected *and* always over budget when interpreted: ten
    // decodable instructions before the garbage word, budget 8. Highest
    // priority, so the first-match walk evaluates it on every packet.
    let hog = d.open((ProcId(0), Fd(2)));
    let mut hog_words = samples::fig_3_8_pup_type_range().words().to_vec();
    hog_words.push(15 << 6);
    assert!(!d.set_filter(hog, FilterProgram::from_words(30, hog_words)));

    let mut budget_overruns = 0u64;
    for _ in 0..200 {
        let sock = 30 + rng.below(12) as u16;
        let pkt = samples::pup_packet_3mb(samples::PUP_ETHERTYPE_3MB, 0, sock, 1);
        let out = d.demux(&pkt);
        budget_overruns += u64::from(out.budget_overruns);
        assert!(
            !out.accepted.is_empty(),
            "seed {seed:#x}: socket {sock} matched nobody"
        );
    }
    let quarantine_accepts = d.port(bad).stats().accepts + d.port(hog).stats().accepts;
    let compiled_accepts = d.port(clean).stats().accepts;
    let quarantined_ports = d.engine_stats().quarantined_ports;

    // Overflow policies, side by side on a fresh device.
    let mut d2 = PfDevice::new();
    let tail = d2.open((ProcId(1), Fd(0)));
    assert!(d2.set_filter(tail, samples::accept_all(1)));
    d2.port_mut(tail).config.max_queue = 4;
    let oldest = d2.open((ProcId(1), Fd(1)));
    assert!(d2.set_filter(oldest, samples::accept_all(1)));
    d2.port_mut(oldest).config.max_queue = 4;
    d2.port_mut(oldest).config.overflow = OverflowPolicy::DropOldest;
    for i in 0..10u8 {
        let pkt = RecvPacket {
            bytes: vec![i],
            stamp: None,
            dropped_before: 0,
        };
        let _ = d2.port_mut(tail).enqueue(pkt.clone());
        let _ = d2.port_mut(oldest).enqueue(pkt);
    }
    let kept =
        |d: &PfDevice, p| -> Vec<u8> { d.port(p).queue.iter().map(|r| r.bytes[0]).collect() };
    DegradationReport {
        quarantined_ports,
        quarantine_accepts,
        compiled_accepts,
        budget_overruns,
        drop_tail_drops: d2.port(tail).stats().drops,
        drop_oldest_drops: d2.port(oldest).stats().drops,
        drop_tail_keeps_oldest: kept(&d2, tail) == vec![0, 1, 2, 3],
        drop_oldest_keeps_newest: kept(&d2, oldest) == vec![6, 7, 8, 9],
    }
}

/// One protocol × fault-mix measurement.
#[derive(Debug, Clone, Copy)]
pub struct ChaosPoint {
    /// `bsp` or `vmtp`.
    pub scenario: &'static str,
    /// The fault mix driven through the channel.
    pub faults: ChaosFaults,
    /// The run's outcome counters.
    pub run: ProtoRun,
}

/// The whole campaign: protocol sweep plus the engine-agreement and
/// kernel-degradation scenarios.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Base seed the campaign ran under (recorded for replay).
    pub seed: u64,
    /// Protocol sweep rows.
    pub rows: Vec<ChaosPoint>,
    /// Engine-agreement tally (disagreements must be zero).
    pub engines: EngineAgreement,
    /// Kernel-degradation scenario results.
    pub kernel: DegradationReport,
}

/// Runs the campaign and asserts its invariants: under any swept fault
/// mix with loss ≤ 30% every BSP byte and VMTP transaction arrives
/// exactly; under a blackout the sender gives up after a bounded number
/// of retransmissions; every engine agrees on damaged packets; the
/// kernel degrades per policy. A violated invariant panics with the
/// offending seed, so a completed sweep *is* the zero-panic proof.
pub fn sweep(smoke: bool, base_seed: u64) -> ChaosReport {
    // XOR-mixing against the default keeps every historic sub-seed
    // intact when `base_seed == DEFAULT_SEED` and reshuffles all of them
    // coherently otherwise.
    let mix = base_seed ^ DEFAULT_SEED;
    let losses: &[f64] = if smoke {
        &[0.0, 0.1, 0.3]
    } else {
        &[0.0, 0.05, 0.1, 0.2, 0.3]
    };
    let (payload, ops, response) = if smoke {
        (2_000, 3, 1_500)
    } else {
        (6_000, 6, 3_000)
    };
    let mut rows = Vec::new();
    let mut seed = base_seed;
    for &loss in losses {
        // Two mixes per loss level: loss alone, and loss plus the rest of
        // the spectrum.
        let mixes = [
            ChaosFaults {
                loss,
                ..Default::default()
            },
            ChaosFaults {
                loss,
                corruption: 0.10,
                truncation: 0.05,
                reorder: 0.10,
                duplication: 0.05,
            },
        ];
        for faults in mixes {
            seed += 1;
            let bsp = run_bsp(seed, faults, payload);
            assert!(
                bsp.delivered && !bsp.gave_up,
                "bsp must deliver at loss {loss}: seed {seed:#x} {bsp:?}"
            );
            rows.push(ChaosPoint {
                scenario: "bsp",
                faults,
                run: bsp,
            });
            seed += 1;
            let vmtp = run_vmtp(seed, faults, ops, response);
            assert!(
                vmtp.delivered && !vmtp.gave_up,
                "vmtp must complete at loss {loss}: seed {seed:#x} {vmtp:?}"
            );
            rows.push(ChaosPoint {
                scenario: "vmtp",
                faults,
                run: vmtp,
            });
        }
    }
    // Blackout: retransmission must be *bounded* — backed-off retries up
    // to MAX_RETRIES, then a clean give-up, not an unbounded storm.
    let blackout = ChaosFaults {
        loss: 1.0,
        ..Default::default()
    };
    let bsp = run_bsp(0xB1AC_0001 ^ mix, blackout, 200);
    assert!(
        bsp.gave_up && !bsp.delivered,
        "bsp blackout must give up: {bsp:?}"
    );
    assert!(
        bsp.retransmits <= u64::from(MAX_RETRIES) * 6,
        "bsp blackout retransmits unbounded: {bsp:?}"
    );
    rows.push(ChaosPoint {
        scenario: "bsp",
        faults: blackout,
        run: bsp,
    });
    let vmtp = run_vmtp(0xB1AC_0002 ^ mix, blackout, 1, 100);
    assert!(
        vmtp.gave_up && !vmtp.delivered,
        "vmtp blackout must give up: {vmtp:?}"
    );
    assert!(
        vmtp.retransmits <= u64::from(MAX_RETRIES) + 1,
        "vmtp blackout retransmits unbounded: {vmtp:?}"
    );
    rows.push(ChaosPoint {
        scenario: "vmtp",
        faults: blackout,
        run: vmtp,
    });

    let engines = engine_agreement(0xE6E1_5EED ^ mix, if smoke { 8 } else { 40 });
    assert_eq!(
        engines.disagreements, 0,
        "engines disagreed on damaged packets: {engines:?}"
    );
    assert!(engines.verdicts > 0);

    let kernel = kernel_degradation(0xDE6_0001 ^ mix);
    assert_eq!(kernel.quarantined_ports, 2, "{kernel:?}");
    assert!(kernel.quarantine_accepts > 0, "{kernel:?}");
    assert!(kernel.compiled_accepts > 0, "{kernel:?}");
    assert!(kernel.budget_overruns > 0, "{kernel:?}");
    assert!(kernel.drop_tail_keeps_oldest, "{kernel:?}");
    assert!(kernel.drop_oldest_keeps_newest, "{kernel:?}");
    assert_eq!(kernel.drop_tail_drops, 6, "{kernel:?}");
    assert_eq!(kernel.drop_oldest_drops, 6, "{kernel:?}");

    ChaosReport {
        seed: base_seed,
        rows,
        engines,
        kernel,
    }
}

fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.2}")
    } else {
        "null".to_string()
    }
}

/// Renders the campaign as JSON (hand-rolled: the build is hermetic, no
/// serde).
pub fn to_json(report: &ChaosReport) -> String {
    let mut s = String::from("{\n  \"experiment\": \"chaos\",\n");
    s.push_str(
        "  \"workload\": \"checksummed BSP transfers and VMTP transactions through a \
         seeded fault channel (loss/corruption/truncation/reorder/duplication), plus \
         engine-agreement and kernel-degradation scenarios\",\n",
    );
    s.push_str(&format!("  \"seed\": {},\n", report.seed));
    s.push_str("  \"rows\": [\n");
    for (i, p) in report.rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"loss\": {}, \"corruption\": {}, \
             \"truncation\": {}, \"reorder\": {}, \"duplication\": {}, \
             \"delivered\": {}, \"gave_up\": {}, \"data_packets\": {}, \
             \"retransmits\": {}, \"discards\": {}, \"duplicates\": {}, \
             \"out_of_order\": {}, \"faults_injected\": {}, \"steps\": {}}}{}\n",
            p.scenario,
            fmt_f64(p.faults.loss),
            fmt_f64(p.faults.corruption),
            fmt_f64(p.faults.truncation),
            fmt_f64(p.faults.reorder),
            fmt_f64(p.faults.duplication),
            p.run.delivered,
            p.run.gave_up,
            p.run.data_packets,
            p.run.retransmits,
            p.run.discards,
            p.run.duplicates,
            p.run.out_of_order,
            p.run.injected.total(),
            p.run.steps,
            if i + 1 == report.rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    let e = &report.engines;
    s.push_str(&format!(
        "  \"engine_agreement\": {{\"programs\": {}, \"packets\": {}, \
         \"verdicts\": {}, \"disagreements\": {}}},\n",
        e.programs, e.packets, e.verdicts, e.disagreements
    ));
    let k = &report.kernel;
    s.push_str(&format!(
        "  \"kernel_degradation\": {{\"quarantined_ports\": {}, \
         \"quarantine_accepts\": {}, \"compiled_accepts\": {}, \
         \"budget_overruns\": {}, \"drop_tail_drops\": {}, \
         \"drop_oldest_drops\": {}, \"drop_tail_keeps_oldest\": {}, \
         \"drop_oldest_keeps_newest\": {}}}\n",
        k.quarantined_ports,
        k.quarantine_accepts,
        k.compiled_accepts,
        k.budget_overruns,
        k.drop_tail_drops,
        k.drop_oldest_drops,
        k.drop_tail_keeps_oldest,
        k.drop_oldest_keeps_newest
    ));
    s.push('}');
    s.push('\n');
    s
}

/// Default output path: the repository root's `BENCH_chaos.json`.
pub fn default_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_chaos.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_channel_delivers_without_retransmission() {
        let run = run_bsp(1, ChaosFaults::default(), 3_000);
        assert!(run.delivered && !run.gave_up, "{run:?}");
        assert_eq!(run.retransmits, 0, "{run:?}");
        assert_eq!(run.discards, 0, "{run:?}");
        assert_eq!(run.injected.total(), 0, "{run:?}");
    }

    #[test]
    fn heavy_loss_still_delivers_exactly() {
        let faults = ChaosFaults {
            loss: 0.3,
            ..Default::default()
        };
        let run = run_bsp(2, faults, 4_000);
        assert!(run.delivered && !run.gave_up, "{run:?}");
        assert!(run.retransmits > 0, "loss must force retransmission");
        assert!(run.injected.lost > 0);
    }

    #[test]
    fn corruption_is_discarded_not_delivered() {
        let faults = ChaosFaults {
            corruption: 0.25,
            truncation: 0.15,
            ..Default::default()
        };
        let run = run_bsp(3, faults, 4_000);
        assert!(run.delivered && !run.gave_up, "{run:?}");
        assert!(run.discards > 0, "checksums must catch damage: {run:?}");
    }

    #[test]
    fn vmtp_survives_the_full_spectrum() {
        let faults = ChaosFaults {
            loss: 0.15,
            corruption: 0.1,
            truncation: 0.05,
            reorder: 0.1,
            duplication: 0.1,
        };
        let run = run_vmtp(4, faults, 4, 2_000);
        assert!(run.delivered && !run.gave_up, "{run:?}");
        assert!(run.retransmits > 0, "{run:?}");
    }

    #[test]
    fn blackout_gives_up_after_bounded_retries() {
        let blackout = ChaosFaults {
            loss: 1.0,
            ..Default::default()
        };
        let bsp = run_bsp(5, blackout, 100);
        assert!(bsp.gave_up && !bsp.delivered, "{bsp:?}");
        assert!(bsp.retransmits <= u64::from(MAX_RETRIES) * 6, "{bsp:?}");
        let vmtp = run_vmtp(6, blackout, 1, 50);
        assert!(vmtp.gave_up && !vmtp.delivered, "{vmtp:?}");
        assert_eq!(vmtp.retransmits, u64::from(MAX_RETRIES), "{vmtp:?}");
    }

    #[test]
    fn engines_agree_on_damaged_packets() {
        let a = engine_agreement(0xA6EE, 6);
        assert_eq!(a.disagreements, 0, "{a:?}");
        assert!(a.packets > 100, "{a:?}");
        assert_eq!(a.programs, 6);
    }

    #[test]
    fn kernel_degrades_gracefully() {
        let k = kernel_degradation(7);
        assert_eq!(k.quarantined_ports, 2);
        assert!(k.quarantine_accepts > 0);
        assert!(k.compiled_accepts > 0);
        assert!(k.budget_overruns > 0);
        assert!(k.drop_tail_keeps_oldest);
        assert!(k.drop_oldest_keeps_newest);
    }

    #[test]
    fn smoke_sweep_holds_every_invariant() {
        let report = sweep(true, DEFAULT_SEED);
        // 3 losses x 2 mixes x 2 protocols + 2 blackout rows.
        assert_eq!(report.rows.len(), 14);
        let json = to_json(&report);
        assert!(json.contains("\"experiment\": \"chaos\""));
        assert!(json.contains("\"engine_agreement\""));
        assert!(json.contains("\"kernel_degradation\""));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces:\n{json}"
        );
    }
}
