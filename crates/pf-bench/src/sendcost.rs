//! Table 6-1: the cost of sending packets.
//!
//! ```text
//! Total packet size   via packet filter   via UDP
//! 128 bytes           1.9 mSec            3.1 mSec
//! 1500 bytes          3.6 mSec            4.9 mSec
//! ```
//!
//! "Although sending datagrams via the packet filter costs less than
//! sending an unchecksummed UDP datagram of the same size … the packet
//! filter has a slight edge, since it does not need to choose a route for
//! the datagram or compute a checksum."

use crate::report::Report;
use pf_kernel::app::App;
use pf_kernel::types::HostId;
use pf_kernel::world::{ProcCtx, World};
use pf_net::frame;
use pf_net::medium::Medium;
use pf_net::segment::FaultModel;
use pf_proto::ip::{KernelIp, IP_HEADER, UDP_HEADER};
use pf_sim::cost::CostModel;
use pf_sim::SimClock;

/// Number of packets sent per measurement.
const COUNT: usize = 200;

/// Measured send costs for one packet size.
#[derive(Debug, Clone, Copy)]
pub struct SendCost {
    /// Total frame size in bytes.
    pub frame_bytes: usize,
    /// Milliseconds of elapsed (CPU) time per packet via `pf_write`.
    pub via_pf_ms: f64,
    /// Milliseconds per packet via the kernel UDP socket.
    pub via_udp_ms: f64,
}

struct PfBlaster {
    frame: Vec<u8>,
}

impl App for PfBlaster {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        let fd = k.pf_open();
        for _ in 0..COUNT {
            k.pf_write(fd, &self.frame).expect("frame fits");
        }
    }
}

struct UdpBlaster {
    data: Vec<u8>,
}

impl App for UdpBlaster {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        let sock = k.ksock_open("ip").expect("ip registered");
        for _ in 0..COUNT {
            k.ksock_request(
                sock,
                pf_proto::ip::ops::UDP_SEND,
                self.data.clone(),
                [99, 7, 0x0B, 0],
            );
        }
    }
}

fn lone_host() -> (World, HostId) {
    let mut w = World::new(1);
    let seg = w.add_segment(Medium::standard_10mb(), FaultModel::default());
    let h = w.add_host("sender", seg, 0x0A, CostModel::microvax_ii());
    w.register_protocol(h, Box::new(KernelIp::new(10)));
    (w, h)
}

/// Elapsed CPU milliseconds per packet for one sender app.
fn measure(app: Box<dyn App>) -> f64 {
    let (mut w, h) = lone_host();
    w.spawn(h, app);
    w.run();
    w.cpu(h).busy_time().as_millis_f64() / COUNT as f64
}

/// Runs the experiment for both packet sizes.
pub fn run() -> Vec<SendCost> {
    let medium = Medium::standard_10mb();
    [128usize, 1500]
        .into_iter()
        .map(|size| {
            let payload = vec![0xA5u8; size - medium.header_len];
            let pf_frame = frame::build(&medium, 0x0B, 0x0A, 0x7777, &payload).expect("fits");
            assert_eq!(pf_frame.len(), size);
            let via_pf_ms = measure(Box::new(PfBlaster { frame: pf_frame }));
            // A UDP datagram whose whole frame is `size` bytes.
            let data = vec![0x5Au8; size - medium.header_len - IP_HEADER - UDP_HEADER];
            let via_udp_ms = measure(Box::new(UdpBlaster { data }));
            SendCost {
                frame_bytes: size,
                via_pf_ms,
                via_udp_ms,
            }
        })
        .collect()
}

/// Paper values for the report.
pub const PAPER: [(usize, f64, f64); 2] = [(128, 1.9, 3.1), (1500, 3.6, 4.9)];

/// Builds the printable report.
pub fn report() -> Report {
    let results = run();
    let mut r = Report::new("Table 6-1", "Cost of sending packets").headers(&[
        "packet size",
        "pf (paper)",
        "pf (measured)",
        "UDP (paper)",
        "UDP (measured)",
    ]);
    for (res, (sz, p_pf, p_udp)) in results.iter().zip(PAPER) {
        assert_eq!(res.frame_bytes, sz);
        r.row(&[
            format!("{} bytes", res.frame_bytes),
            format!("{p_pf:.1} ms"),
            format!("{:.2} ms", res.via_pf_ms),
            format!("{p_udp:.1} ms"),
            format!("{:.2} ms", res.via_udp_ms),
        ]);
    }
    r.note("the packet filter wins: no route choice, no checksum (§6.2)");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table_6_1() {
        let results = run();
        for (res, (sz, p_pf, p_udp)) in results.iter().zip(PAPER) {
            assert_eq!(res.frame_bytes, sz);
            // Within ±35% of the paper's absolute numbers.
            assert!(
                (res.via_pf_ms / p_pf - 1.0).abs() < 0.35,
                "pf {} bytes: {:.2} vs paper {p_pf}",
                sz,
                res.via_pf_ms
            );
            assert!(
                (res.via_udp_ms / p_udp - 1.0).abs() < 0.35,
                "udp {} bytes: {:.2} vs paper {p_udp}",
                sz,
                res.via_udp_ms
            );
            // And the ordering claim: pf is cheaper than UDP.
            assert!(res.via_pf_ms < res.via_udp_ms);
        }
    }
}
