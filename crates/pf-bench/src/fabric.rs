//! The fault-tolerant-fabric campaign (`BENCH_fabric.json`): routed
//! topologies under router/link chaos, undefended versus hardened,
//! with the recovery claims asserted inside the sweep.
//!
//! Each cell builds the standard ring-of-routers topology, attaches a
//! [`FabricSchedule`] (router kill, link flap train, or a partition
//! that isolates one router and later heals), drives a flowgen
//! workload through it, and runs the same world twice: once with plain
//! static routers ([`deploy`]) and once with the hardened resilience
//! plane ([`deploy_hardened`] — hello probing, backup failover, LSU
//! flooding, residual reconvergence). The sweep is its own referee:
//!
//! * **Undefended blackholes are exact**: with no control plane and no
//!   stochastic faults, every lost packet is accounted one-for-one at
//!   the dead router (`frames_dropped_down`) or the downed link
//!   (`link_down_drops`) — delivered + blackholed == injected, always.
//! * **Hardened recovery is bounded**: after the detection/flooding
//!   window ([`conv_bound`]), ≥ 99% of packets whose endpoints survive
//!   are delivered; every router's `last_route_change_ns` falls inside
//!   the scenario's convergence deadline; route churn and triggered
//!   reconvergences stay under closed-form caps.
//! * **No loops, ever**: the sum of `ttl_expired` across all routers
//!   is asserted zero in every cell — backup next-hops are strictly
//!   downhill and LSU floods precede rerouted data FIFO-wise, so even
//!   transient disagreement never cycles a packet to death.
//! * **Backends agree**: every cell runs per [`QueueBackend`]; the
//!   full outcome (per-host counters, every snapshot, every router
//!   stat) must match bit-for-bit under fault schedules too.

use crate::flowgen::{self, Arrival, FlowSpec, Pattern, SizeMix, Transport};
use crate::netbench::{ring_topology, DEFAULT_SEED};
use pf_kernel::World;
use pf_net::fabric::FabricSchedule;
use pf_net::frame;
use pf_net::{LinkId, NodeId, Topology};
use pf_proto::ip::{encode_ip, IpHeader, IP_ETHERTYPE};
use pf_proto::router::{deploy, deploy_hardened, HelloConfig};
use pf_sim::cost::CostModel;
use pf_sim::queue::QueueBackend;
use pf_sim::time::{SimDuration, SimTime};
use pf_sim::SimClock;
use std::collections::HashMap;

/// When the first fault hits (traffic starts at ~0 and runs to ~2.3s,
/// so there is ample pre-fault and post-fault signal).
const T_FAULT: SimTime = SimTime(1_000_000_000);
/// The asserted reconvergence deadline after the last fault
/// transition: dead interval (60ms) + two hello ticks (40ms) of
/// detection skew, plus LSU flood-and-recompute propagation across
/// the ring diameter — route recompute dominates the per-hop cost at
/// 2ms ([`CostModel::microvax_ii`]'s `route_recompute`; queueing
/// behind hellos and the 20ms stamp quantization eat the rest of the
/// 4ms/hop allowance), so the bound scales with hop count instead of
/// pretending detection is the whole story.
fn conv_bound(r_count: usize) -> SimDuration {
    SimDuration::from_millis(100 + 4 * (r_count as u64 / 2).max(1))
}
/// Virtual-time horizon the world runs to (hardened routers tick
/// forever, so runs are bounded by time, not queue exhaustion).
const DRAIN_AT: SimTime = SimTime(3_000_000_000);

/// The three chaos shapes the campaign sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Ring router 1 crashes at [`T_FAULT`] and never comes back.
    RouterKill,
    /// Ring link 0 flaps: 100ms down / 150ms up, three cycles.
    LinkFlap,
    /// Ring links 0 and 1 go down together at [`T_FAULT`] (isolating
    /// router 1 and its LAN) and heal at `T_FAULT + 600ms`.
    Partition,
}

impl Scenario {
    /// Artifact label.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::RouterKill => "router_kill",
            Scenario::LinkFlap => "link_flap",
            Scenario::Partition => "partition_heal",
        }
    }

    fn schedule(self, routers: &[NodeId]) -> FabricSchedule {
        let mut s = FabricSchedule::new();
        match self {
            Scenario::RouterKill => s.router_outage(routers[1], T_FAULT, None),
            Scenario::LinkFlap => s.link_flaps(
                LinkId(0),
                T_FAULT,
                SimDuration::from_millis(100),
                SimDuration::from_millis(150),
                3,
            ),
            Scenario::Partition => s.partition(
                &[LinkId(0), LinkId(1)],
                T_FAULT,
                Some(SimTime(T_FAULT.0 + 600_000_000)),
            ),
        }
        s
    }

    /// Instant of the last schedule transition.
    fn last_transition(self) -> SimTime {
        match self {
            Scenario::RouterKill => T_FAULT,
            // Downs at 1.0/1.25/1.5s, ups at 1.1/1.35/1.6s.
            Scenario::LinkFlap => SimTime(T_FAULT.0 + 600_000_000),
            Scenario::Partition => SimTime(T_FAULT.0 + 600_000_000),
        }
    }

    /// Fault-state transitions, for the churn/reconvergence caps.
    fn transitions(self) -> u64 {
        match self {
            Scenario::RouterKill => 1,
            Scenario::LinkFlap => 6,
            Scenario::Partition => 4,
        }
    }

    /// The instant by which a hardened fabric of `r_count` routers
    /// must have settled.
    fn check_at(self, r_count: usize) -> SimTime {
        SimTime(self.last_transition().0 + conv_bound(r_count).0)
    }
}

/// One campaign row: a (scenario × size × deploy × backend) cell.
#[derive(Debug, Clone)]
pub struct FabricPoint {
    pub scenario: &'static str,
    /// "undefended" or "hardened".
    pub deploy: &'static str,
    pub backend: &'static str,
    pub nodes: usize,
    pub routers: usize,
    pub links: usize,
    /// Workload packets injected.
    pub packets: usize,
    /// Packets received by their addressed host by the horizon.
    pub delivered: u64,
    pub delivered_frac: f64,
    /// Packets swallowed by the scenario's blackhole (dead-router drops
    /// plus down-link drops; exact for undefended, diagnostic for
    /// hardened where control traffic also hits the blackhole).
    pub blackholed: u64,
    /// Packets sent after the settle deadline with both endpoints on
    /// surviving LANs.
    pub expected_after_check: u64,
    /// Packets delivered after the settle deadline.
    pub delivered_after_check: u64,
    /// delivered_after_check / expected_after_check.
    pub recovered_frac: f64,
    pub ttl_expired: u64,
    pub no_route: u64,
    pub hellos_sent: u64,
    pub control_in: u64,
    pub neighbors_lost: u64,
    pub neighbors_recovered: u64,
    pub failovers: u64,
    pub reconvergences: u64,
    pub route_churn: u64,
    /// Latest route-table change across all routers, relative to the
    /// first fault, milliseconds (0 when no table ever changed).
    pub convergence_ms: f64,
    pub wall_ms: f64,
}

/// The full campaign artifact.
#[derive(Debug, Clone)]
pub struct FabricReport {
    pub seed: u64,
    pub smoke: bool,
    pub hello_ms: u64,
    pub dead_ms: u64,
    /// Convergence-deadline formula: base + per-hop × ring diameter.
    pub conv_base_ms: u64,
    pub conv_per_hop_ms: u64,
    pub rows: Vec<FabricPoint>,
}

/// Everything a run produced that must be identical across queue
/// backends (wall time excluded).
#[derive(Debug, Clone, PartialEq)]
struct RunOutcome {
    end_ns: u64,
    received: Vec<u64>,
    snapshots: Vec<Vec<u64>>,
    dropped_down: u64,
    cut_link_drops: u64,
    forwarded: u64,
    ttl_expired: u64,
    no_route: u64,
    hellos_sent: u64,
    control_in: u64,
    neighbors_lost: u64,
    neighbors_recovered: u64,
    failovers: u64,
    reconvergences: u64,
    route_churn: u64,
    last_change_ns: u64,
    /// Routers whose forwarder ran at least one reconvergence.
    reconverged_routers: usize,
}

fn cell_spec(flows: usize) -> FlowSpec {
    FlowSpec {
        flows,
        // Spread arrivals across the whole pre/during/post-fault
        // horizon instead of front-loading them.
        arrival: Arrival::Poisson {
            rate_fps: flows as f64 / 2.2,
        },
        sizes: SizeMix::Fixed(2),
        pattern: Pattern::Uniform,
        transports: vec![Transport::Udp, Transport::Bsp, Transport::Vmtp],
        payload: 64,
        packet_gap_ns: 200_000,
        churn_events: 0,
        start: SimTime(1_000),
    }
}

fn ip_proto(t: Transport) -> u8 {
    match t {
        Transport::Udp => 17,
        Transport::Bsp => 99,
        Transport::Vmtp => 81,
    }
}

/// The router on a host's LAN (ring LANs have exactly one).
fn lan_router(topo: &Topology, host: NodeId) -> NodeId {
    let link = topo.interfaces(host)[0].link;
    *topo
        .members(link)
        .iter()
        .find(|m| topo.kind(**m) == pf_net::topology::NodeKind::Router)
        .expect("every LAN hangs off a router")
}

/// The router sequence a packet takes under the static plan, by
/// walking the plan route tables from the source's LAN router.
fn plan_path(
    topo: &Topology,
    ip2router: &HashMap<u32, NodeId>,
    src_host: NodeId,
    dst_ip: u32,
) -> Vec<NodeId> {
    let mut cur = lan_router(topo, src_host);
    let mut path = vec![cur];
    loop {
        let r = topo
            .route_table(cur)
            .lookup(dst_ip)
            .expect("the plan covers every subnet");
        match r.next_hop {
            None => return path,
            Some(nh) => {
                cur = *ip2router.get(&nh).expect("next hop is a router iface");
                path.push(cur);
            }
        }
    }
}

/// Builds the cell's world (with the scenario's fault schedule
/// attached), injects the workload, runs it with snapshots at the
/// scenario's checkpoints, and collects the outcome.
fn run_cell(
    scenario: Scenario,
    hardened: bool,
    nodes: usize,
    flows: usize,
    backend: QueueBackend,
    seed: u64,
) -> (RunOutcome, f64) {
    let (base, routers, hosts) = ring_topology(nodes);
    let topo = base.with_fabric(scenario.schedule(&routers));
    let cell_seed = seed ^ ((nodes as u64) << 32) ^ flows as u64;
    let packets = flowgen::generate(&cell_spec(flows), hosts.len(), cell_seed);

    let mut w = World::with_queue_backend(cell_seed, backend);
    let costs = CostModel::microvax_ii();
    let d = if hardened {
        deploy_hardened(&topo, &mut w, &costs, HelloConfig::default())
    } else {
        deploy(&topo, &mut w, &costs)
    };
    for h in &hosts {
        w.set_nic_capacity(d.host(*h), 1 << 20);
    }

    for p in &packets {
        let src = hosts[p.src];
        let dst_ip = topo.ip(hosts[p.dst]);
        let (iface, next_eth) = topo.first_hop(src, dst_ip).expect("ring is connected");
        let src_if = topo.interfaces(src)[iface];
        let packet = encode_ip(
            &IpHeader {
                proto: ip_proto(p.transport),
                // A reroute can double a packet's path mid-flight
                // (forward progress toward the cut, then the full
                // detour the other way around the ring): 64-router
                // rings legitimately need ~95 hops. With the budget
                // covering any single detour, every TTL expiry left is
                // a genuine forwarding loop — which the campaign
                // asserts never happens.
                ttl: 255,
                src: topo.ip(src),
                dst: dst_ip,
                total_len: 0,
            },
            &vec![0xA5u8; p.payload],
        );
        let f = frame::build(
            topo.medium(src_if.link),
            next_eth,
            src_if.eth,
            IP_ETHERTYPE,
            &packet,
        )
        .expect("frame fits the medium");
        w.send_frame_at(d.host(src), f, p.at);
    }

    let check = scenario.check_at(routers.len());
    let snapshot_times: Vec<SimTime> = match scenario {
        Scenario::RouterKill | Scenario::LinkFlap => vec![check],
        Scenario::Partition => vec![
            SimTime(T_FAULT.0 + conv_bound(routers.len()).0),
            scenario.last_transition(),
            check,
        ],
    };

    let started = std::time::Instant::now();
    let mut snapshots = Vec::new();
    for &at in &snapshot_times {
        SimClock::run_until(&mut w, at);
        snapshots.push(
            hosts
                .iter()
                .map(|h| w.counters(d.host(*h)).packets_received)
                .collect::<Vec<u64>>(),
        );
    }
    SimClock::run_until(&mut w, DRAIN_AT);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let received: Vec<u64> = hosts
        .iter()
        .map(|h| w.counters(d.host(*h)).packets_received)
        .collect();
    for (i, h) in hosts.iter().enumerate() {
        assert_eq!(
            w.counters(d.host(*h)).drops_interface,
            0,
            "host {i}: NIC overruns would corrupt the loss accounting"
        );
    }
    let mut out = RunOutcome {
        end_ns: w.now().0,
        received,
        snapshots,
        dropped_down: 0,
        cut_link_drops: 0,
        forwarded: 0,
        ttl_expired: 0,
        no_route: 0,
        hellos_sent: 0,
        control_in: 0,
        neighbors_lost: 0,
        neighbors_recovered: 0,
        failovers: 0,
        reconvergences: 0,
        route_churn: 0,
        last_change_ns: 0,
        reconverged_routers: 0,
    };
    for r in &routers {
        let id = d.router(*r);
        let s = w.router_stats(id);
        out.forwarded += s.forwarded;
        out.ttl_expired += s.ttl_expired;
        out.no_route += s.no_route;
        out.hellos_sent += s.hellos_sent;
        out.control_in += s.control_in;
        out.neighbors_lost += s.neighbors_lost;
        out.neighbors_recovered += s.neighbors_recovered;
        out.failovers += s.failovers;
        out.reconvergences += s.reconvergences;
        out.route_churn += s.route_churn;
        out.last_change_ns = out.last_change_ns.max(s.last_route_change_ns);
        if s.reconvergences > 0 {
            out.reconverged_routers += 1;
        }
        out.dropped_down += w.router_counters(id).frames_dropped_down;
        assert_eq!(s.not_routable, 0, "every injected frame is routable");
    }
    let cut_links: &[usize] = match scenario {
        Scenario::RouterKill => &[],
        Scenario::LinkFlap => &[0],
        Scenario::Partition => &[0, 1],
    };
    for &l in cut_links {
        out.cut_link_drops += w.segment_faults(d.segments[l]).link_down_drops;
    }
    (out, wall_ms)
}

/// Per-cell derived expectations from the static plan: which packets
/// must still be deliverable after the fabric settles.
struct CellPlan {
    packets: usize,
    /// Packets sent at/after the settle deadline whose endpoints both
    /// survive the scenario's end state.
    expected_after_check: u64,
    /// Partition only: surviving (non-isolated) packets sent inside the
    /// converged-partition window, with 50ms of in-flight margin.
    expected_during: u64,
}

fn plan_cell(scenario: Scenario, nodes: usize, flows: usize, seed: u64) -> CellPlan {
    let (topo, routers, hosts) = ring_topology(nodes);
    let cell_seed = seed ^ ((nodes as u64) << 32) ^ flows as u64;
    let packets = flowgen::generate(&cell_spec(flows), hosts.len(), cell_seed);
    let mut ip2router = HashMap::new();
    for r in &routers {
        for i in topo.interfaces(*r) {
            ip2router.insert(i.ip, *r);
        }
    }
    let victim = routers[1];
    let check = scenario.check_at(routers.len());
    let mut expected_after_check = 0;
    let mut expected_during = 0;
    for p in &packets {
        let src = hosts[p.src];
        let dst = hosts[p.dst];
        let involves_victim = lan_router(&topo, src) == victim || lan_router(&topo, dst) == victim;
        // End state: the kill leaves the victim's LAN dark forever;
        // flap and partition both end fully healed.
        let survives_end = scenario != Scenario::RouterKill || !involves_victim;
        if p.at >= check && survives_end {
            expected_after_check += 1;
        }
        if scenario == Scenario::Partition
            && !involves_victim
            && p.at >= SimTime(T_FAULT.0 + conv_bound(routers.len()).0)
            && p.at < SimTime(scenario.last_transition().0 - 50_000_000)
        {
            // Surviving-path traffic the hardened fabric must carry
            // *through* the partition (detour around the isolated
            // router), not merely after the heal.
            let path = plan_path(&topo, &ip2router, src, topo.ip(dst));
            let _ = path; // endpoints decide survival; path kept for clarity
            expected_during += 1;
        }
    }
    CellPlan {
        packets: packets.len(),
        expected_after_check,
        expected_during,
    }
}

fn sum(v: &[u64]) -> u64 {
    v.iter().sum()
}

/// Runs the campaign. `smoke` shrinks the grid for CI; every assert
/// still fires. Panics (never lies) when undefended loss accounting is
/// inexact, hardened recovery misses its bound, any TTL expires, churn
/// exceeds its cap, or the two queue backends disagree.
pub fn sweep(smoke: bool, seed: u64) -> FabricReport {
    let node_sizes: &[usize] = if smoke { &[16] } else { &[16, 64, 256] };
    let scenarios = [
        Scenario::RouterKill,
        Scenario::LinkFlap,
        Scenario::Partition,
    ];
    let backends = [QueueBackend::Heap, QueueBackend::Calendar];
    let cfg = HelloConfig::default();
    let mut rows = Vec::new();

    for &nodes in node_sizes {
        let flows = if smoke { 200 } else { 8 * nodes };
        for scenario in scenarios {
            let plan = plan_cell(scenario, nodes, flows, seed);
            let mut cell: HashMap<&'static str, RunOutcome> = HashMap::new();
            for hardened in [false, true] {
                let deploy_name = if hardened { "hardened" } else { "undefended" };
                let mut per_backend: Vec<RunOutcome> = Vec::new();
                for backend in backends {
                    let (out, wall_ms) = run_cell(scenario, hardened, nodes, flows, backend, seed);
                    let (topo_shape, routers, _) = ring_topology(nodes);
                    let delivered = sum(&out.received);
                    let delivered_after = delivered - sum(out.snapshots.last().unwrap());
                    rows.push(FabricPoint {
                        scenario: scenario.name(),
                        deploy: deploy_name,
                        backend: backend.name(),
                        nodes,
                        routers: routers.len(),
                        links: topo_shape.link_count(),
                        packets: plan.packets,
                        delivered,
                        delivered_frac: delivered as f64 / plan.packets as f64,
                        blackholed: out.dropped_down + out.cut_link_drops,
                        expected_after_check: plan.expected_after_check,
                        delivered_after_check: delivered_after,
                        recovered_frac: delivered_after as f64
                            / (plan.expected_after_check as f64).max(1.0),
                        ttl_expired: out.ttl_expired,
                        no_route: out.no_route,
                        hellos_sent: out.hellos_sent,
                        control_in: out.control_in,
                        neighbors_lost: out.neighbors_lost,
                        neighbors_recovered: out.neighbors_recovered,
                        failovers: out.failovers,
                        reconvergences: out.reconvergences,
                        route_churn: out.route_churn,
                        convergence_ms: if out.last_change_ns == 0 {
                            0.0
                        } else {
                            (out.last_change_ns.saturating_sub(T_FAULT.0)) as f64 / 1e6
                        },
                        wall_ms,
                    });
                    per_backend.push(out);
                }
                assert_eq!(
                    per_backend[0],
                    per_backend[1],
                    "{}/{nodes} nodes/{deploy_name}: heap and calendar must \
                     simulate identical histories under faults",
                    scenario.name()
                );
                cell.insert(deploy_name, per_backend.remove(0));
            }
            assert_cell(
                scenario,
                nodes,
                &plan,
                &cell["undefended"],
                &cell["hardened"],
                &cfg,
            );
        }
    }

    FabricReport {
        seed,
        smoke,
        hello_ms: cfg.hello_interval.as_nanos() / 1_000_000,
        dead_ms: cfg.dead_interval.as_nanos() / 1_000_000,
        conv_base_ms: 100,
        conv_per_hop_ms: 4,
        rows,
    }
}

/// The campaign's referee: every recovery claim, checked per cell.
fn assert_cell(
    scenario: Scenario,
    nodes: usize,
    plan: &CellPlan,
    undef: &RunOutcome,
    hard: &RunOutcome,
    _cfg: &HelloConfig,
) {
    let name = scenario.name();
    let (_, routers, _) = ring_topology(nodes);
    let r_count = routers.len() as u64;
    let links = {
        let (topo, _, _) = ring_topology(nodes);
        topo.link_count() as u64
    };

    // No loops, anywhere, ever: strictly-downhill backups plus
    // FIFO-ordered LSU wavefronts mean reconvergence never cycles a
    // packet; static tables trivially cannot.
    assert_eq!(undef.ttl_expired, 0, "{name}/{nodes}: undefended TTL loop");
    assert_eq!(hard.ttl_expired, 0, "{name}/{nodes}: hardened TTL loop");

    // Plain routers have no resilience plane at all.
    assert_eq!(
        (undef.hellos_sent, undef.control_in, undef.reconvergences),
        (0, 0, 0),
        "{name}/{nodes}: undefended routers must stay silent"
    );

    // Undefended loss accounting is exact: every missing packet is at
    // the blackhole, nothing else drops.
    let undef_delivered = sum(&undef.received);
    let blackholed = undef.dropped_down + undef.cut_link_drops;
    assert_eq!(
        undef_delivered + blackholed,
        plan.packets as u64,
        "{name}/{nodes}: undefended conservation (delivered {} + blackholed {})",
        undef_delivered,
        blackholed
    );
    assert!(
        blackholed > 0,
        "{name}/{nodes}: the fault must actually eat traffic"
    );
    assert_eq!(
        undef.no_route, 0,
        "{name}/{nodes}: static routes never miss"
    );

    // The hardened fabric detects, fails over, floods, reconverges.
    assert!(hard.hellos_sent > 0 && hard.control_in > 0);
    assert!(
        hard.neighbors_lost >= 1,
        "{name}/{nodes}: the dead adjacency must be detected"
    );
    assert!(hard.reconvergences >= 1 && hard.route_churn >= 1);

    // Recovery: after the settle deadline, ≥99% of surviving-path
    // traffic is delivered.
    let hard_delivered = sum(&hard.received);
    let hard_after = hard_delivered - sum(hard.snapshots.last().unwrap());
    assert!(
        hard_after as f64 >= 0.99 * plan.expected_after_check as f64,
        "{name}/{nodes}: hardened recovered {}/{} post-settle packets",
        hard_after,
        plan.expected_after_check
    );
    assert!(
        plan.expected_after_check > 0,
        "{name}/{nodes}: the cell must have post-settle traffic to judge"
    );

    // Convergence is bounded: no route table changes after the
    // scenario's deadline.
    let deadline = scenario.check_at(routers.len());
    assert!(
        hard.last_change_ns > 0 && hard.last_change_ns <= deadline.0,
        "{name}/{nodes}: last route change at {}ns, deadline {}ns",
        hard.last_change_ns,
        deadline.0
    );

    // Churn and reconvergence stay under closed-form caps: per fault
    // transition, a router reconverges only on fresh LSUs (at most a
    // handful per transition) and each pass rewrites at most one route
    // per subnet.
    let cap_churn = scenario.transitions() * r_count * links * 3;
    let cap_reconv = scenario.transitions() * r_count * 6;
    assert!(
        hard.route_churn <= cap_churn,
        "{name}/{nodes}: churn {} exceeds cap {}",
        hard.route_churn,
        cap_churn
    );
    assert!(
        hard.reconvergences <= cap_reconv,
        "{name}/{nodes}: {} reconvergences exceed cap {}",
        hard.reconvergences,
        cap_reconv
    );

    match scenario {
        Scenario::RouterKill => {
            // Dead forever: hardened strictly beats undefended, the
            // victim's neighbors failed over, and every surviving
            // router reconverged.
            assert!(
                hard_delivered > undef_delivered,
                "{name}/{nodes}: hardened {} must beat undefended {}",
                hard_delivered,
                undef_delivered
            );
            assert!(hard.failovers >= 1, "backup next-hops must engage");
            assert_eq!(
                hard.reconverged_routers,
                routers.len() - 1,
                "{name}/{nodes}: every surviving router reconverges"
            );
        }
        Scenario::LinkFlap => {
            // Both endpoints of the flapping link die and recover each
            // cycle; the fabric must track all three rounds.
            assert!(
                hard.neighbors_recovered >= hard.neighbors_lost.min(4),
                "{name}/{nodes}: flap recoveries must be observed"
            );
            assert!(
                hard_delivered >= undef_delivered,
                "{name}/{nodes}: rerouting around a flap never loses more"
            );
        }
        Scenario::Partition => {
            assert!(
                hard_delivered > undef_delivered,
                "{name}/{nodes}: the detour around the isolated router pays"
            );
            // During the converged partition window, surviving-path
            // traffic flows around the cut: snapshot[1] (heal) minus
            // snapshot[0] (fault + bound) bounds it from below.
            let during = sum(&hard.snapshots[1]) - sum(&hard.snapshots[0]);
            assert!(
                during as f64 >= 0.99 * plan.expected_during as f64,
                "{name}/{nodes}: {} delivered during partition, expected ≥99% of {}",
                during,
                plan.expected_during
            );
            assert!(
                hard.neighbors_recovered >= 4,
                "{name}/{nodes}: both cut adjacencies must heal (both ends)"
            );
        }
    }
}

fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

/// Renders the campaign as JSON (hand-rolled: the build is hermetic,
/// no serde).
pub fn to_json(report: &FabricReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"campaign\": \"fabric\",\n");
    s.push_str(&format!("  \"seed\": {},\n", report.seed));
    s.push_str(&format!("  \"smoke\": {},\n", report.smoke));
    s.push_str(&format!(
        "  \"hello_ms\": {}, \"dead_ms\": {}, \"conv_base_ms\": {}, \
         \"conv_per_hop_ms\": {},\n",
        report.hello_ms, report.dead_ms, report.conv_base_ms, report.conv_per_hop_ms
    ));
    s.push_str(
        "  \"asserts\": [\"undefended losses equal blackhole drops exactly\", \
         \"hardened delivers >=99% of surviving-path traffic post-settle\", \
         \"zero TTL expiries in every cell\", \
         \"route changes stop by the convergence deadline\", \
         \"churn and reconvergences under closed-form caps\", \
         \"heap and calendar histories identical under faults\"],\n",
    );
    s.push_str("  \"rows\": [\n");
    for (i, p) in report.rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"deploy\": \"{}\", \"backend\": \"{}\", \
             \"nodes\": {}, \"routers\": {}, \"links\": {}, \"packets\": {}, \
             \"delivered\": {}, \"delivered_frac\": {}, \"blackholed\": {}, \
             \"expected_after_check\": {}, \"delivered_after_check\": {}, \
             \"recovered_frac\": {}, \"ttl_expired\": {}, \"no_route\": {}, \
             \"hellos_sent\": {}, \"control_in\": {}, \"neighbors_lost\": {}, \
             \"neighbors_recovered\": {}, \"failovers\": {}, \"reconvergences\": {}, \
             \"route_churn\": {}, \"convergence_ms\": {}, \"wall_ms\": {}}}{}\n",
            p.scenario,
            p.deploy,
            p.backend,
            p.nodes,
            p.routers,
            p.links,
            p.packets,
            p.delivered,
            fmt_f64(p.delivered_frac),
            p.blackholed,
            p.expected_after_check,
            p.delivered_after_check,
            fmt_f64(p.recovered_frac),
            p.ttl_expired,
            p.no_route,
            p.hellos_sent,
            p.control_in,
            p.neighbors_lost,
            p.neighbors_recovered,
            p.failovers,
            p.reconvergences,
            p.route_churn,
            fmt_f64(p.convergence_ms),
            fmt_f64(p.wall_ms),
            if i + 1 < report.rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

/// Where the committed artifact lives.
pub fn default_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fabric.json")
}

/// Re-exported so the binary and the campaign agree on one default.
pub const FABRIC_SEED: u64 = DEFAULT_SEED;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_paths_walk_the_ring() {
        let (topo, routers, hosts) = ring_topology(16);
        let mut ip2router = HashMap::new();
        for r in &routers {
            for i in topo.interfaces(*r) {
                ip2router.insert(i.ip, *r);
            }
        }
        // hosts[0] hangs off router 0, hosts[1] off router 1 (LANs are
        // dealt round-robin).
        let path = plan_path(&topo, &ip2router, hosts[0], topo.ip(hosts[1]));
        assert_eq!(path.first(), Some(&routers[0]));
        assert_eq!(path.last(), Some(&routers[1]));
        // Same-LAN traffic never leaves the first router.
        let path = plan_path(&topo, &ip2router, hosts[0], topo.ip(hosts[4]));
        assert_eq!(path, vec![routers[0]]);
    }

    #[test]
    fn schedules_match_the_scenario_contract() {
        let (_, routers, _) = ring_topology(16);
        let kill = Scenario::RouterKill.schedule(&routers);
        assert_eq!(kill.len(), 1);
        let flap = Scenario::LinkFlap.schedule(&routers);
        assert_eq!(flap.len(), 6, "three down/up cycles");
        let part = Scenario::Partition.schedule(&routers);
        assert_eq!(part.len(), 4, "two links down, two links healed");
        assert_eq!(
            part.events().last().unwrap().at,
            Scenario::Partition.last_transition()
        );
    }

    #[test]
    fn smoke_cell_router_kill_recovers_hardened_only() {
        // One small end-to-end cell through the real machinery (single
        // backend; the full backend cross-check runs in the sweep).
        let plan = plan_cell(Scenario::RouterKill, 16, 120, 0xFAB);
        let (undef, _) = run_cell(
            Scenario::RouterKill,
            false,
            16,
            120,
            QueueBackend::Heap,
            0xFAB,
        );
        let (hard, _) = run_cell(
            Scenario::RouterKill,
            true,
            16,
            120,
            QueueBackend::Heap,
            0xFAB,
        );
        assert_eq!(
            sum(&undef.received) + undef.dropped_down,
            plan.packets as u64,
            "undefended conservation"
        );
        assert!(sum(&hard.received) > sum(&undef.received));
        assert_eq!(hard.ttl_expired, 0);
        assert!(hard.failovers >= 1 && hard.reconvergences >= 1);
        let after = sum(&hard.received) - sum(hard.snapshots.last().unwrap());
        assert!(after as f64 >= 0.99 * plan.expected_after_check as f64);
    }

    #[test]
    fn json_has_the_campaign_shape() {
        let report = FabricReport {
            seed: 7,
            smoke: true,
            hello_ms: 20,
            dead_ms: 60,
            conv_base_ms: 100,
            conv_per_hop_ms: 4,
            rows: vec![FabricPoint {
                scenario: "router_kill",
                deploy: "hardened",
                backend: "heap",
                nodes: 16,
                routers: 4,
                links: 8,
                packets: 240,
                delivered: 230,
                delivered_frac: 230.0 / 240.0,
                blackholed: 10,
                expected_after_check: 100,
                delivered_after_check: 100,
                recovered_frac: 1.0,
                ttl_expired: 0,
                no_route: 3,
                hellos_sent: 1000,
                control_in: 900,
                neighbors_lost: 2,
                neighbors_recovered: 0,
                failovers: 2,
                reconvergences: 6,
                route_churn: 12,
                convergence_ms: 81.2,
                wall_ms: 3.5,
            }],
        };
        let json = to_json(&report);
        for key in [
            "\"campaign\": \"fabric\"",
            "\"seed\": 7",
            "\"conv_base_ms\": 100",
            "\"scenario\": \"router_kill\"",
            "\"recovered_frac\": 1.000",
            "\"convergence_ms\": 81.200",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert!(default_path().ends_with("BENCH_fabric.json"));
    }
}
