//! Ablations of the design choices the paper calls out.
//!
//! * §3.2 — priority assignment: "if priorities are assigned proportional
//!   to the likelihood that a filter will accept a packet, then the
//!   'average' packet will match one of the first few filters";
//! * §3.2 — adaptive reordering: "the interpreter may occasionally reorder
//!   such filters to place the busier ones first";
//! * §7 — write batching: "a write-batching option (to send several
//!   packets in one system call) might also improve performance".

use crate::report::Report;
use pf_filter::interp::InterpConfig;
use pf_filter::program::FilterProgram;
use pf_filter::samples;
use pf_ir::singleton_engines;
use pf_kernel::app::App;
use pf_kernel::device::DemuxEngine;
use pf_kernel::types::{Fd, PortConfig, ReadError, ReadMode, RecvPacket};
use pf_kernel::world::{ProcCtx, World};
use pf_net::medium::Medium;
use pf_net::segment::FaultModel;
use pf_sim::cost::CostModel;
use pf_sim::rng::SplitMix64;
use pf_sim::time::{SimDuration, SimTime};
use pf_sim::SimClock;
use std::hint::black_box;
use std::time::Instant;

/// Ports in the reordering experiment.
const PORTS: usize = 16;
/// Fraction of traffic aimed at the single hot port.
const HOT_SHARE: f64 = 0.9;
const PACKETS: usize = 4_000;

struct Sink {
    filter: pf_filter::program::FilterProgram,
    fd: Option<Fd>,
}

impl App for Sink {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        let fd = k.pf_open();
        k.pf_set_filter(fd, self.filter.clone());
        k.pf_configure(
            fd,
            PortConfig {
                read_mode: ReadMode::Batch,
                max_queue: 1 << 16,
                ..Default::default()
            },
        );
        self.fd = Some(fd);
        k.pf_read(fd);
    }
    fn on_packets(&mut self, fd: Fd, _p: Vec<RecvPacket>, k: &mut ProcCtx<'_>) {
        k.pf_read(fd);
    }
    fn on_read_error(&mut self, fd: Fd, _e: ReadError, k: &mut ProcCtx<'_>) {
        k.pf_read(fd);
    }
}

/// Demultiplexing-order policies under skewed traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderPolicy {
    /// Equal priorities, no adaptive reordering: the hot port (inserted
    /// last) is always tested last.
    StaticWorstCase,
    /// Equal priorities with §3.2's adaptive reordering.
    Adaptive,
    /// The hot port assigned a higher priority by its owner.
    PriorityHint,
}

/// Runs skewed traffic through 16 socket filters; returns the mean number
/// of predicates applied per packet.
pub fn predicates_per_packet(policy: OrderPolicy) -> f64 {
    let mut w = World::new(14);
    let seg = w.add_segment(Medium::experimental_3mb(), FaultModel::default());
    let h = w.add_host("host", seg, 0x0B, CostModel::microvax_ii());
    w.set_nic_capacity(h, 1 << 20);
    if policy != OrderPolicy::Adaptive {
        w.set_adaptive_reorder(h, false);
    }
    // Cold ports first; the hot port (socket 15) inserted last, so a
    // static demultiplexer always tests it last.
    for i in 0..PORTS {
        let prio = if policy == OrderPolicy::PriorityHint && i == PORTS - 1 {
            20
        } else {
            10
        };
        w.spawn(
            h,
            Box::new(Sink {
                filter: samples::pup_socket_filter(prio, 0, i as u16),
                fd: None,
            }),
        );
    }
    w.run_until(SimTime(5_000_000));
    let before = *w.counters(h);

    let mut rng = SplitMix64::new(7);
    for i in 0..PACKETS {
        let sock = if rng.next_f64() < HOT_SHARE {
            (PORTS - 1) as u16
        } else {
            rng.below((PORTS - 1) as u64) as u16
        };
        let at = SimTime(10_000_000) + SimDuration::from_micros(4_000).times(i as u64);
        w.inject_frame(h, samples::pup_packet_3mb(2, 0, sock, 1), at);
    }
    w.run();
    let counters = *w.counters(h) - before;
    counters.filters_applied as f64 / PACKETS as f64
}

/// One table 6-10 filter shape timed on every execution surface
/// (nanoseconds per evaluation, real wall clock).
pub struct LadderRow {
    /// Shape label (instruction count or figure name).
    pub shape: String,
    /// `(engine name, ns/eval)` per surface, in
    /// [`pf_ir::singleton_engines`] ladder order — so a new surface (like
    /// the feature-gated template JIT) shows up here without this module
    /// changing.
    pub ns: Vec<(&'static str, f64)>,
}

fn time_ns<F: FnMut() -> bool>(iters: u32, mut f: F) -> f64 {
    for _ in 0..iters / 8 {
        black_box(f());
    }
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

/// Measures the real (host wall-clock, not simulated) cost of one filter
/// evaluation on each execution surface, over the table 6-10 shapes plus
/// the paper's two workhorse filters. The surfaces come from
/// [`pf_ir::singleton_engines`], so the ladder automatically covers every
/// rung the workspace has — including the template JIT when the `jit`
/// feature is on. This is the in-report summary of the `filter_exec`
/// criterion bench, runnable offline.
pub fn engine_ladder(iters: u32) -> Vec<LadderRow> {
    let packet = samples::pup_packet_3mb(2, 0, 35, 50);
    let shapes: Vec<(String, FilterProgram)> = [0usize, 1, 9, 21]
        .iter()
        .map(|&len| {
            (
                format!("{len} instructions"),
                samples::padded_accept_filter(10, len),
            )
        })
        .chain([
            (
                "fig 3-8 (type range)".to_string(),
                samples::fig_3_8_pup_type_range(),
            ),
            (
                "fig 3-9 (socket 35)".to_string(),
                samples::fig_3_9_pup_socket_35(),
            ),
        ])
        .collect();
    shapes
        .into_iter()
        .map(|(shape, program)| {
            let ns = singleton_engines(&program, InterpConfig::default())
                .iter_mut()
                .map(|engine| {
                    let name = engine.name();
                    let ns = time_ns(iters, || engine.matches(black_box(&packet)).is_some());
                    (name, ns)
                })
                .collect();
            LadderRow { shape, ns }
        })
        .collect()
}

/// Simulated CPU cost (virtual ms per packet) of demultiplexing skewed
/// traffic through 16 socket filters under each kernel demux engine, with
/// adaptive reordering off and the hot port tested last — the sequential
/// loop's worst case, and exactly where §7 promises compiled engines help.
pub fn demux_cpu_ms_per_packet(engine: DemuxEngine) -> f64 {
    const DEMUX_PACKETS: usize = 1_000;
    let mut w = World::new(21);
    let seg = w.add_segment(Medium::experimental_3mb(), FaultModel::default());
    let h = w.add_host("host", seg, 0x0B, CostModel::microvax_ii());
    w.set_nic_capacity(h, 1 << 20);
    w.set_adaptive_reorder(h, false);
    for i in 0..PORTS {
        w.spawn(
            h,
            Box::new(Sink {
                filter: samples::pup_socket_filter(10, 0, i as u16),
                fd: None,
            }),
        );
    }
    w.run_until(SimTime(5_000_000));
    w.set_demux_engine(h, engine);
    let before = w.cpu(h).busy_time();
    let mut rng = SplitMix64::new(7);
    for i in 0..DEMUX_PACKETS {
        let sock = if rng.next_f64() < HOT_SHARE {
            (PORTS - 1) as u16
        } else {
            rng.below((PORTS - 1) as u64) as u16
        };
        let at = SimTime(10_000_000) + SimDuration::from_micros(4_000).times(i as u64);
        w.inject_frame(h, samples::pup_packet_3mb(2, 0, sock, 1), at);
    }
    w.run();
    (w.cpu(h).busy_time() - before).as_millis_f64() / DEMUX_PACKETS as f64
}

/// Per-packet send cost (ms) for `count` small frames, batched or not
/// (§7's write-batching proposal).
pub fn send_cost_ms(batched: bool) -> f64 {
    const COUNT: usize = 256;
    struct Blaster {
        batched: bool,
    }
    impl App for Blaster {
        fn start(&mut self, k: &mut ProcCtx<'_>) {
            let fd = k.pf_open();
            let frame = samples::pup_packet_3mb(2, 0, 9, 1);
            if self.batched {
                // 16 frames per writev.
                let batch: Vec<Vec<u8>> = (0..16).map(|_| frame.clone()).collect();
                for _ in 0..(COUNT / 16) {
                    k.pf_write_batch(fd, &batch).expect("frames fit");
                }
            } else {
                for _ in 0..COUNT {
                    k.pf_write(fd, &frame).expect("frame fits");
                }
            }
        }
    }
    let mut w = World::new(3);
    let seg = w.add_segment(Medium::experimental_3mb(), FaultModel::default());
    let h = w.add_host("sender", seg, 0x0A, CostModel::microvax_ii());
    w.spawn(h, Box::new(Blaster { batched }));
    w.run();
    w.cpu(h).busy_time().as_millis_f64() / COUNT as f64
}

/// Builds the ablation report.
pub fn report_ablations() -> Report {
    let worst = predicates_per_packet(OrderPolicy::StaticWorstCase);
    let adaptive = predicates_per_packet(OrderPolicy::Adaptive);
    let hinted = predicates_per_packet(OrderPolicy::PriorityHint);
    let plain = send_cost_ms(false);
    let batched = send_cost_ms(true);
    let mut r = Report::new("Ablations", "Design choices the paper calls out").headers(&[
        "experiment",
        "configuration",
        "measured",
    ]);
    r.row(&[
        "filter ordering (90% of traffic to 1 of 16 ports)".into(),
        "static, hot port last".into(),
        format!("{worst:.1} predicates/packet"),
    ]);
    r.row(&[
        "".into(),
        "adaptive reordering (§3.2)".into(),
        format!("{adaptive:.1} predicates/packet"),
    ]);
    r.row(&[
        "".into(),
        "owner-assigned priority (§3.2)".into(),
        format!("{hinted:.1} predicates/packet"),
    ]);
    r.row(&[
        "send path".into(),
        "one write(2) per packet".into(),
        format!("{plain:.2} ms/packet"),
    ]);
    r.row(&[
        "".into(),
        "write batching, 16/syscall (§7)".into(),
        format!("{batched:.2} ms/packet"),
    ]);
    for engine in [
        DemuxEngine::Sequential,
        DemuxEngine::DecisionTable,
        DemuxEngine::Ir,
        DemuxEngine::Sharded,
        DemuxEngine::Geom,
        DemuxEngine::Jit,
    ] {
        let ms = demux_cpu_ms_per_packet(engine);
        let label = match engine {
            DemuxEngine::Sequential => "demux engine (16 filters, hot port last)",
            _ => "",
        };
        let config = match engine {
            DemuxEngine::Sequential => "sequential interpreter (figure 4-1)",
            DemuxEngine::DecisionTable => "decision table (§7)",
            DemuxEngine::Ir => "IR threaded code + shared guards",
            DemuxEngine::Sharded => "sharded value-numbered set",
            DemuxEngine::Geom => "geometric tuple-space classifier",
            DemuxEngine::Jit => "per-filter template JIT",
        };
        r.row(&[
            label.into(),
            config.into(),
            format!("{ms:.3} ms/packet (simulated)"),
        ]);
    }
    for (i, row) in engine_ladder(40_000).into_iter().enumerate() {
        let label = if i == 0 {
            "engine ladder (real wall clock)"
        } else {
            ""
        };
        let cells: Vec<String> = row
            .ns
            .into_iter()
            .map(|(e, ns)| format!("{e} {ns:.0}ns"))
            .collect();
        r.row(&[label.into(), row.shape, cells.join(", ")]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_reordering_moves_the_busy_filter_forward() {
        let worst = predicates_per_packet(OrderPolicy::StaticWorstCase);
        let adaptive = predicates_per_packet(OrderPolicy::Adaptive);
        // Static worst case tests nearly all 16 filters for 90% of
        // packets; adaptive converges to testing the hot filter first.
        assert!(worst > 12.0, "worst case {worst:.1} predicates/packet");
        assert!(
            adaptive < worst * 0.4,
            "adaptive {adaptive:.1} vs worst {worst:.1}"
        );
    }

    #[test]
    fn priority_hint_matches_or_beats_adaptive() {
        let adaptive = predicates_per_packet(OrderPolicy::Adaptive);
        let hinted = predicates_per_packet(OrderPolicy::PriorityHint);
        // §3.2: likelihood-proportional priorities get the average packet
        // matched "against one of the first few filters" from the start.
        assert!(
            hinted <= adaptive + 0.3,
            "hinted {hinted:.1} vs adaptive {adaptive:.1}"
        );
        assert!(hinted < 3.0, "hinted {hinted:.1} predicates/packet");
    }

    #[test]
    fn compiled_demux_engines_beat_sequential_worst_case() {
        let seq = demux_cpu_ms_per_packet(DemuxEngine::Sequential);
        let table = demux_cpu_ms_per_packet(DemuxEngine::DecisionTable);
        let ir = demux_cpu_ms_per_packet(DemuxEngine::Ir);
        let sharded = demux_cpu_ms_per_packet(DemuxEngine::Sharded);
        // Worst-case sequential interprets ~15 whole filters per packet;
        // the table probes per shape, the IR set shares guard work, and
        // the sharded set touches one member per packet.
        assert!(table < seq, "table {table:.3} vs sequential {seq:.3}");
        assert!(ir < seq, "ir {ir:.3} vs sequential {seq:.3}");
        assert!(sharded < seq, "sharded {sharded:.3} vs sequential {seq:.3}");
        // Sharding skips the cold members entirely, so it must also beat
        // the flat IR walk on this skewed population.
        assert!(sharded < ir, "sharded {sharded:.3} vs flat ir {ir:.3}");
        // The JIT engine's flat per-member native cost (16 × 10 µs) is far
        // below the worst-case sequential interpretation bill.
        let jit = demux_cpu_ms_per_packet(DemuxEngine::Jit);
        assert!(jit < seq, "jit {jit:.3} vs sequential {seq:.3}");
    }

    #[test]
    fn engine_ladder_covers_every_execution_surface() {
        // The ladder is a timing harness; pin that it times exactly the
        // surfaces `singleton_engines` hands out — the JIT rung appears iff
        // the `jit` feature is on — and that every timing is sane (the real
        // equivalence suite lives in pf-ir's differential tests).
        let expected = pf_ir::singleton_surface_count(InterpConfig::default());
        for row in engine_ladder(16) {
            assert_eq!(row.ns.len(), expected, "{}", row.shape);
            assert_eq!(
                row.ns.iter().any(|&(name, _)| name == "jit"),
                cfg!(feature = "jit"),
                "{}",
                row.shape
            );
            assert!(row.ns.iter().all(|&(_, ns)| ns >= 0.0), "{}", row.shape);
        }
    }

    #[test]
    fn write_batching_helps_the_send_path() {
        let plain = send_cost_ms(false);
        let batched = send_cost_ms(true);
        // One syscall's overhead (~0.15 ms) spread over 16 frames.
        assert!(
            batched < plain - 0.10,
            "batched {batched:.2} vs plain {plain:.2}"
        );
        // But copies and driver work remain: the win is bounded.
        assert!(
            batched > plain * 0.8,
            "batched {batched:.2} not implausibly cheap"
        );
    }
}
