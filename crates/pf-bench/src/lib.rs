//! Experiment harness: regenerates every table and figure in §6 of
//! *The Packet Filter: An Efficient Mechanism for User-level Network Code*
//! (SOSP 1987).
//!
//! Each module owns one experiment family and exposes both raw
//! measurement functions (used by the test suite to pin the paper's shape
//! claims) and a `report_*` function that renders a paper-vs-measured
//! table:
//!
//! | module | reproduces |
//! |--------|------------|
//! | [`sendcost`] | table 6-1 (send cost, pf vs UDP) |
//! | [`profile61`] | §6.1 (gprof-style kernel per-packet profile) |
//! | [`vmtp_exp`] | tables 6-2, 6-3, 6-4, 6-5 (VMTP comparisons) |
//! | [`streams`] | table 6-6 (BSP vs kernel TCP bulk streams) |
//! | [`telnet_exp`] | table 6-7 (telnet output rates) |
//! | [`recvcost`] | tables 6-8, 6-9, 6-10 (receive-path costs) |
//! | [`figures`] | figures 2-1/2-2, 2-3, 3-4/3-5 (as event counts) |
//! | [`breakeven`] | §6.5 (filter-count break-even sweep) |
//!
//! [`ablations`] additionally measures the §3.2/§7 design-choice knobs
//! (adaptive reordering, priority assignment, write batching), [`chaos`]
//! runs the fault-injection campaign (`BENCH_chaos.json`), [`overload`]
//! runs the saturation campaign (`BENCH_overload.json`): offered load to
//! 8× capacity across the overload-armor tiers. [`flowgen`] synthesizes
//! flow-level workloads (Poisson/Pareto arrivals, elephants and mice,
//! incast, routing churn) and [`netbench`] drives them across routed
//! multi-segment topologies for the internet-scale campaign
//! (`BENCH_net.json`).
//!
//! Run `cargo run -p pf-bench --release --bin paper-report` for everything
//! at once, or the individual `table_*` / `figures` / `section_6_1` /
//! `break_even` / `ablations` binaries.

pub mod ablations;
pub mod adversary;
pub mod breakeven;
pub mod chaos;
pub mod cli;
pub mod demux_json;
pub mod fabric;
pub mod figures;
pub mod flowgen;
pub mod mc;
pub mod netbench;
pub mod overload;
pub mod profile61;
pub mod recvcost;
pub mod report;
pub mod sendcost;
pub mod streams;
pub mod telnet_exp;
pub mod vmtp_exp;
