//! Shared command-line handling for the `bench_*` binaries.
//!
//! Every bench binary accepts the same small vocabulary, parsed here once
//! instead of copy-pasted per binary:
//!
//! * `--smoke` — the tiny CI sweep instead of the full one (only where a
//!   binary declares it has one);
//! * `--stdout` — print the artifact to stdout instead of writing a file;
//! * `--out <path>` — write the artifact to `<path>` instead of the
//!   binary's default location;
//! * `--cores <list>` / `--batch <list>` — comma-separated worker-core
//!   and batch-size sweeps for the multi-core binaries (`bench_mc`
//!   sweeps them; `bench_overload` accepts them only to reject anything
//!   but the single-core shape with a pointer to `bench_mc`).

use std::path::PathBuf;

/// Parsed bench-binary arguments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BenchArgs {
    /// Run the tiny CI sweep.
    pub smoke: bool,
    /// Print to stdout instead of writing the output file.
    pub stdout: bool,
    /// Explicit output path (overrides the binary's default).
    pub out: Option<PathBuf>,
    /// Worker-core counts to sweep (`--cores 1,2,4,8`); `None` leaves the
    /// binary's default sweep in place.
    pub cores: Option<Vec<usize>>,
    /// Batch sizes to sweep (`--batch 1,8,32,128`); `None` leaves the
    /// binary's default sweep in place.
    pub batch: Option<Vec<usize>>,
    /// Campaign seed (`--seed <u64>`, decimal or `0x`-hex); `None` keeps
    /// the binary's fixed default. Every campaign records the seed it ran
    /// under in its JSON artifact, so any row is reproducible from the
    /// record alone.
    pub seed: Option<u64>,
}

/// Parses a `--seed` value: decimal, or hex with an `0x`/`0X` prefix.
fn parse_seed(value: &str) -> Result<u64, String> {
    let v = value.trim();
    let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    };
    parsed.map_err(|_| format!("--seed must be a u64 (decimal or 0x-hex), got `{value}`"))
}

/// Parses a `--cores`/`--batch` style comma-separated list of positive
/// integers, naming the flag and the valid form in every error.
fn parse_count_list(flag: &str, value: &str) -> Result<Vec<usize>, String> {
    let example = match flag {
        "--cores" => "--cores 1,2,4,8",
        _ => "--batch 1,8,32,128",
    };
    let mut counts = Vec::new();
    for part in value.split(',') {
        let n: usize = part.trim().parse().map_err(|_| {
            format!("{flag} values must be positive integers, got `{part}` (e.g. {example})")
        })?;
        if n == 0 {
            return Err(format!(
                "{flag} values must be at least 1, got `0` (e.g. {example})"
            ));
        }
        counts.push(n);
    }
    if counts.is_empty() {
        return Err(format!("{flag} requires a non-empty list (e.g. {example})"));
    }
    Ok(counts)
}

impl BenchArgs {
    /// The effective output destination: `None` means stdout was
    /// requested, otherwise the explicit `--out` path or `default`.
    pub fn out_path(&self, default: PathBuf) -> Option<PathBuf> {
        if self.stdout {
            None
        } else {
            Some(self.out.clone().unwrap_or(default))
        }
    }
}

/// Parses bench arguments from an iterator (exposed for tests).
/// `accepts_smoke` is false for binaries with no smoke mode, making
/// `--smoke` an error there rather than a silent no-op.
pub fn try_parse<I>(args: I, accepts_smoke: bool) -> Result<BenchArgs, String>
where
    I: IntoIterator<Item = String>,
{
    let mut out = BenchArgs::default();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" if accepts_smoke => out.smoke = true,
            "--stdout" => out.stdout = true,
            "--out" => match it.next() {
                Some(p) => out.out = Some(PathBuf::from(p)),
                None => return Err("--out requires a path".into()),
            },
            "--cores" => match it.next() {
                Some(v) => out.cores = Some(parse_count_list("--cores", &v)?),
                None => return Err("--cores requires a list (e.g. --cores 1,2,4,8)".into()),
            },
            "--batch" => match it.next() {
                Some(v) => out.batch = Some(parse_count_list("--batch", &v)?),
                None => return Err("--batch requires a list (e.g. --batch 1,8,32,128)".into()),
            },
            "--seed" => match it.next() {
                Some(v) => out.seed = Some(parse_seed(&v)?),
                None => return Err("--seed requires a value (e.g. --seed 0xC0FFEE)".into()),
            },
            other => {
                let smoke = if accepts_smoke { "--smoke, " } else { "" };
                return Err(format!(
                    "unknown argument `{other}` (valid flags: {smoke}--stdout, --out <path>, \
                     --cores <list>, --batch <list>, --seed <u64>)"
                ));
            }
        }
    }
    Ok(out)
}

/// Parses `std::env::args()`; on error prints usage for `bin` to stderr
/// and exits with status 2.
pub fn parse_or_exit(bin: &str, accepts_smoke: bool) -> BenchArgs {
    match try_parse(std::env::args().skip(1), accepts_smoke) {
        Ok(a) => a,
        Err(e) => {
            let smoke = if accepts_smoke { "[--smoke] " } else { "" };
            eprintln!("{bin}: {e}");
            eprintln!(
                "usage: {bin} {smoke}[--stdout] [--out <path>] [--cores <list>] [--batch <list>] \
                 [--seed <u64>]"
            );
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_the_full_vocabulary() {
        let a = try_parse(args(&["--smoke", "--out", "x.json"]), true).unwrap();
        assert!(a.smoke);
        assert!(!a.stdout);
        assert_eq!(a.out, Some(PathBuf::from("x.json")));
        assert_eq!(a.out_path(PathBuf::from("d.json")), Some("x.json".into()));
    }

    #[test]
    fn defaults_write_to_the_default_path() {
        let a = try_parse(args(&[]), true).unwrap();
        assert_eq!(a, BenchArgs::default());
        assert_eq!(a.out_path(PathBuf::from("d.json")), Some("d.json".into()));
    }

    #[test]
    fn stdout_wins_over_paths() {
        let a = try_parse(args(&["--stdout", "--out", "x.json"]), true).unwrap();
        assert_eq!(a.out_path(PathBuf::from("d.json")), None);
    }

    #[test]
    fn rejects_unknown_flags_and_smoke_where_unsupported() {
        assert!(try_parse(args(&["--frob"]), true).is_err());
        assert!(try_parse(args(&["--smoke"]), false).is_err());
        assert!(try_parse(args(&["--out"]), true).is_err(), "missing path");
    }

    #[test]
    fn parses_core_and_batch_sweeps() {
        let a = try_parse(args(&["--cores", "1,2,4,8", "--batch", "1,32"]), true).unwrap();
        assert_eq!(a.cores, Some(vec![1, 2, 4, 8]));
        assert_eq!(a.batch, Some(vec![1, 32]));
        let a = try_parse(args(&["--cores", "4"]), false).unwrap();
        assert_eq!(a.cores, Some(vec![4]));
        assert_eq!(a.batch, None);
    }

    #[test]
    fn rejects_zero_and_garbage_core_and_batch_values() {
        // Zero cores/batch is meaningless; the error must say so and show
        // the valid form rather than silently clamping.
        let e = try_parse(args(&["--cores", "0"]), true).unwrap_err();
        assert!(
            e.contains("at least 1") && e.contains("--cores 1,2,4,8"),
            "{e}"
        );
        let e = try_parse(args(&["--batch", "8,0"]), true).unwrap_err();
        assert!(
            e.contains("at least 1") && e.contains("--batch 1,8,32,128"),
            "{e}"
        );
        let e = try_parse(args(&["--cores", "two"]), true).unwrap_err();
        assert!(
            e.contains("positive integers") && e.contains("`two`"),
            "{e}"
        );
        assert!(try_parse(args(&["--cores"]), true).is_err(), "missing list");
        assert!(try_parse(args(&["--batch", ""]), true).is_err(), "empty");
    }

    #[test]
    fn parses_seed_in_decimal_and_hex() {
        let a = try_parse(args(&["--seed", "12345"]), true).unwrap();
        assert_eq!(a.seed, Some(12345));
        let a = try_parse(args(&["--seed", "0xC0FFEE"]), false).unwrap();
        assert_eq!(a.seed, Some(0xC0FFEE));
        assert_eq!(try_parse(args(&[]), true).unwrap().seed, None);
        let e = try_parse(args(&["--seed", "lucky"]), true).unwrap_err();
        assert!(e.contains("--seed") && e.contains("`lucky`"), "{e}");
        assert!(try_parse(args(&["--seed"]), true).is_err(), "missing value");
    }

    #[test]
    fn unknown_flag_errors_list_the_valid_vocabulary() {
        // A misspelled `--smoke` must fail loudly (not silently run the
        // full campaign) and tell the user what would have worked.
        let e = try_parse(args(&["--smok"]), true).unwrap_err();
        assert!(e.contains("--smok"), "{e}");
        assert!(
            e.contains("--smoke") && e.contains("--stdout") && e.contains("--out"),
            "{e}"
        );
        // Where there is no smoke mode, the listing must not advertise it.
        let e = try_parse(args(&["--smoke"]), false).unwrap_err();
        assert!(!e.contains("--smoke,"), "{e}");
        assert!(e.contains("--stdout") && e.contains("--out"), "{e}");
    }
}
