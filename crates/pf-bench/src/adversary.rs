//! Adversarial-traffic campaign: `BENCH_adversary.json`.
//!
//! The overload campaign (`overload.rs`) proves the receive path
//! survives a *dumb* flood. This campaign attacks the armor itself:
//! every scenario is built from a probabilistic traffic state machine
//! ([`TrafficMachine`], maybenot-style: states × sampled dwell timers ×
//! weighted transitions, deterministic from a seed) shaped against a
//! specific mechanism, and every family runs twice — once against the
//! *undefended* build of that mechanism, once against the hardened one:
//!
//! * **rss_collision** — flows precomputed against the well-known
//!   default RSS key so the whole flood steers onto the victim flow's
//!   queue; hardened by a per-boot keyed hash
//!   ([`RssConfig::keyed`]).
//! * **mimicry** — a flood wearing a protected flow's admission
//!   signature, so the gate classifies it as protected and the junk
//!   quota never touches it; hardened by signature re-selection under
//!   unmatched-admit pressure ([`AdmissionConfig::mimicry_threshold`]).
//! * **quota_gaming** — on/off bursts tuned to the token bucket's full
//!   refill period, so every burst finds a full bank and slams the demux
//!   path while the *average* rate stays inside quota; hardened by
//!   keyed refill jitter ([`AdmissionConfig::refill_jitter_key`]).
//! * **geom_bomb** — a wide-overlap range population plus probe traffic
//!   stabbing the point every interval covers, making candidate
//!   evaluation dominate; hardened by the priority-pruned candidate cap
//!   ([`World::set_geom_candidate_cap`]).
//! * **monitor_evasion** — traffic shaped to satisfy a lenient endpoint
//!   but violate the monitor's stricter approximation of it (plus
//!   padding, which honestly does *not* help the evader against
//!   word-offset filters); hardened by capturing with the endpoint's
//!   own predicate ([`pf_monitor::capture::covering_filter`]).
//!
//! Every claimed collapse and every claimed recovery is a
//! sweep-internal `assert!`, so a zero exit *is* the campaign's proof:
//! the undefended row measurably degrades, the hardened row holds
//! goodput (or capture coverage) at ≥ 0.95 under the same offered load.

use crate::overload::{capacity_pps, wanted_pps, BENCH_ARMOR, NIC_RING, WANTED_SOCK};
use pf_filter::program::{Assembler, FilterProgram};
use pf_filter::samples;
use pf_filter::word::BinaryOp;
use pf_kernel::app::App;
use pf_kernel::mc::{McConfig, McPipeline, RssConfig};
use pf_kernel::types::{Fd, PortConfig, ReadError, ReadMode, RecvPacket};
use pf_kernel::world::{OverloadConfig, ProcCtx, World};
use pf_kernel::{AdmissionConfig, AdmissionQuota, DemuxEngine};
use pf_net::frame;
use pf_net::medium::Medium;
use pf_net::segment::FaultModel;
use pf_sim::cost::CostModel;
use pf_sim::rng::SplitMix64;
use pf_sim::time::{SimDuration, SimTime};
use pf_sim::SimClock;

/// Default campaign seed (the value the committed artifact was produced
/// under); `--seed` overrides it.
pub const DEFAULT_SEED: u64 = 0xAD5E_7A11;

// ---------------------------------------------------------------------------
// The workload state-machine DSL.
// ---------------------------------------------------------------------------

/// A sampled delay. All sampling draws from the machine's own
/// [`SplitMix64`] stream, so a schedule is a pure function of
/// (machine, seed, window).
#[derive(Debug, Clone, Copy)]
pub enum Delay {
    /// Exactly `ns` nanoseconds.
    Fixed(u64),
    /// Uniform in `[lo, hi]` nanoseconds.
    UniformNs {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
}

impl Delay {
    fn sample(self, rng: &mut SplitMix64) -> u64 {
        match self {
            Delay::Fixed(ns) => ns,
            Delay::UniformNs { lo, hi } => lo + rng.next_u64() % (hi - lo + 1),
        }
    }
}

/// How an emitting state picks among its frame variants.
#[derive(Debug, Clone, Copy)]
pub enum Pick {
    /// Round-robin through the variants (collision sets, shaped cycles).
    Cycle,
    /// Sample a variant uniformly per emission.
    Random,
}

/// What a state emits when entered.
#[derive(Debug, Clone)]
pub struct Emit {
    /// The frame variants this state can send.
    pub variants: Vec<Vec<u8>>,
    /// Variant selection policy.
    pub pick: Pick,
    /// Frames emitted back-to-back per entry (1 = a single frame).
    pub burst: u64,
    /// Spacing between frames inside the burst.
    pub gap: Delay,
    /// Zero-pad every emitted frame to this length
    /// ([`frame::pad`], clamped to the medium's maximum).
    pub pad_to: Option<usize>,
    /// Overwrite the last 8 bytes of every emitted frame with its
    /// emission time (big-endian nanoseconds), so a consumer can
    /// measure honest end-to-end latency including ring residency.
    /// The variant must reserve an 8-byte tail. Applied *after*
    /// padding.
    pub stamp_tail: bool,
}

impl Emit {
    /// A steady single-variant emitter with no padding or stamping.
    pub fn steady(frame: Vec<u8>) -> Self {
        Emit {
            variants: vec![frame],
            pick: Pick::Cycle,
            burst: 1,
            gap: Delay::Fixed(0),
            pad_to: None,
            stamp_tail: false,
        }
    }
}

/// One machine state: an optional emission on entry, a sampled dwell,
/// and weighted transitions.
#[derive(Debug, Clone)]
pub struct State {
    /// Label (for debugging and docs; unused by the walker).
    pub name: &'static str,
    /// Emission on entry, if any.
    pub emit: Option<Emit>,
    /// Sampled time spent in the state before transitioning.
    pub dwell: Delay,
    /// `(weight, next-state-index)`; sampled by weight. Empty = self-loop.
    pub next: Vec<(u32, usize)>,
}

/// A probabilistic traffic state machine (maybenot-style): the
/// adversary families are expressed as machines, so bursts, quiet
/// phases, collision cycling, and shaping are all the same small
/// vocabulary — and every schedule is deterministic from its seed.
#[derive(Debug, Clone)]
pub struct TrafficMachine {
    /// The states; the walk starts at index 0.
    pub states: Vec<State>,
}

impl TrafficMachine {
    /// Walks the machine over `[start, end)` and returns the emitted,
    /// timestamped frames in emission order.
    pub fn schedule(
        &self,
        seed: u64,
        medium: &Medium,
        start: SimTime,
        end: SimTime,
    ) -> Vec<(SimTime, Vec<u8>)> {
        assert!(!self.states.is_empty(), "machine needs at least one state");
        let mut rng = SplitMix64::new(seed);
        let mut out = Vec::new();
        let mut cursors = vec![0usize; self.states.len()];
        let mut si = 0usize;
        let mut t = start.0;
        while t < end.0 {
            let s = &self.states[si];
            if let Some(e) = &s.emit {
                for b in 0..e.burst {
                    if t >= end.0 {
                        break;
                    }
                    let vi = match e.pick {
                        Pick::Cycle => {
                            let c = cursors[si];
                            cursors[si] = (c + 1) % e.variants.len();
                            c
                        }
                        Pick::Random => (rng.next_u64() % e.variants.len() as u64) as usize,
                    };
                    let mut f = e.variants[vi].clone();
                    if let Some(len) = e.pad_to {
                        frame::pad(medium, &mut f, len);
                    }
                    if e.stamp_tail {
                        let n = f.len();
                        assert!(n >= 8, "stamp_tail needs an 8-byte tail");
                        f[n - 8..].copy_from_slice(&t.to_be_bytes());
                    }
                    out.push((SimTime(t), f));
                    if b + 1 < e.burst {
                        t += e.gap.sample(&mut rng);
                    }
                }
            }
            t += s.dwell.sample(&mut rng);
            si = if s.next.is_empty() {
                si
            } else {
                let total: u64 = s.next.iter().map(|(w, _)| u64::from(*w)).sum();
                let mut roll = rng.next_u64() % total.max(1);
                let mut chosen = s.next[0].1;
                for (w, n) in &s.next {
                    if roll < u64::from(*w) {
                        chosen = *n;
                        break;
                    }
                    roll -= u64::from(*w);
                }
                chosen
            };
        }
        out
    }
}

/// A single-state machine emitting `frame` every `interval_ns`, with a
/// small sampled phase jitter so concurrent streams interleave rather
/// than collide on identical instants.
pub fn steady_stream(frame: Vec<u8>, interval_ns: u64) -> TrafficMachine {
    TrafficMachine {
        states: vec![State {
            name: "stream",
            emit: Some(Emit::steady(frame)),
            dwell: Delay::UniformNs {
                lo: interval_ns.saturating_sub(interval_ns / 16).max(1),
                hi: interval_ns + interval_ns / 16,
            },
            next: Vec::new(),
        }],
    }
}

// ---------------------------------------------------------------------------
// Shared measurement plumbing.
// ---------------------------------------------------------------------------

/// One family × mode cell.
#[derive(Debug, Clone, Copy)]
pub struct AdversaryPoint {
    /// Adversary family label.
    pub family: &'static str,
    /// `"undefended"` or `"hardened"`.
    pub mode: &'static str,
    /// Wanted (protected) frames offered.
    pub wanted_offered: u64,
    /// Attack frames offered.
    pub attack_offered: u64,
    /// Wanted frames delivered over wanted frames offered (for
    /// `monitor_evasion`: capture coverage — captured over seen by the
    /// endpoint).
    pub goodput_ratio: f64,
    /// p99 end-to-end (emission → consumption) latency of the wanted
    /// stream, µs; 0 where the family measures coverage instead.
    pub p99_latency_us: u64,
    /// Frames shed by quota at the admission gate.
    pub drops_admission: u64,
    /// Frames dropped at the receive ring.
    pub drops_interface: u64,
    /// Frames dropped at a full port queue after demux.
    pub drops_queue_full: u64,
    /// Mimic frames shed after gate re-signature.
    pub drops_mimicry_shed: u64,
    /// Gate signature re-selections.
    pub gate_resignatures: u64,
    /// Geom candidates pruned by the candidate cap.
    pub candidates_capped: u64,
}

impl AdversaryPoint {
    fn zeroed(family: &'static str, mode: &'static str) -> Self {
        AdversaryPoint {
            family,
            mode,
            wanted_offered: 0,
            attack_offered: 0,
            goodput_ratio: 0.0,
            p99_latency_us: 0,
            drops_admission: 0,
            drops_interface: 0,
            drops_queue_full: 0,
            drops_mimicry_shed: 0,
            gate_resignatures: 0,
            candidates_capped: 0,
        }
    }
}

/// The wanted stream's consumer: protected filter, per-packet compute,
/// end-to-end latency recovered from the frame's stamped tail.
struct AdvConsumer {
    filter: FilterProgram,
    got: u64,
    latencies_ns: Vec<u64>,
}

impl AdvConsumer {
    fn new(filter: FilterProgram) -> Self {
        AdvConsumer {
            filter,
            got: 0,
            latencies_ns: Vec::new(),
        }
    }
}

/// Per-packet application cost of consuming one wanted packet.
const CONSUME: SimDuration = SimDuration::from_micros(200);

impl App for AdvConsumer {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        let fd = k.pf_open();
        assert!(k.pf_set_filter(fd, self.filter.clone()));
        k.pf_configure(
            fd,
            PortConfig {
                read_mode: ReadMode::Batch,
                max_queue: 64,
                ..Default::default()
            },
        );
        k.pf_read(fd);
    }

    fn on_packets(&mut self, fd: Fd, packets: Vec<RecvPacket>, k: &mut ProcCtx<'_>) {
        let now = k.now().0;
        for p in &packets {
            let n = p.bytes.len();
            if n >= 8 {
                let sent = u64::from_be_bytes(p.bytes[n - 8..].try_into().unwrap());
                if sent > 0 && sent <= now {
                    self.latencies_ns.push(now - sent);
                }
            }
        }
        self.got += packets.len() as u64;
        k.compute("user:consume", CONSUME.times(packets.len() as u64));
        k.pf_read(fd);
    }

    fn on_read_error(&mut self, fd: Fd, _err: ReadError, k: &mut ProcCtx<'_>) {
        k.pf_read(fd);
    }
}

/// A port owner that binds filters and never reads: surviving traffic
/// piles up and drops after demultiplexing — the cost the adversary
/// wants the kernel to keep paying.
struct MultiSink {
    filters: Vec<FilterProgram>,
    quota: Option<AdmissionQuota>,
}

impl App for MultiSink {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        for f in &self.filters {
            let fd = k.pf_open();
            assert!(k.pf_set_filter(fd, f.clone()));
            k.pf_configure(
                fd,
                PortConfig {
                    max_queue: 64,
                    ..Default::default()
                },
            );
            if self.quota.is_some() {
                k.pf_set_quota(fd, self.quota);
            }
        }
    }
}

/// p99 by nearest-rank, µs.
fn p99_us(mut lat: Vec<u64>) -> u64 {
    if lat.is_empty() {
        return 0;
    }
    lat.sort_unstable();
    lat[(lat.len() - 1) * 99 / 100] / 1_000
}

/// A wanted-stream frame addressed to the bench host, with an 8-byte
/// tail reserved for the emission stamp.
fn wanted_frame() -> Vec<u8> {
    let mut f = samples::pup_packet_3mb_with_data(2, 1, 0, WANTED_SOCK, 1, &[0u8; 8]);
    f[0] = 0x0B;
    f[1] = 0x0A;
    f
}

/// An attack frame to socket `sock` with ethertype `ethertype`.
fn attack_frame(ethertype: u16, sock: u16) -> Vec<u8> {
    let mut f = samples::pup_packet_3mb(ethertype, 0, sock, 1);
    f[0] = 0x0B;
    f[1] = 0x0A;
    f
}

/// The wanted stream as a machine: steady at [`wanted_pps`], stamped
/// for end-to-end latency.
fn wanted_machine() -> TrafficMachine {
    let mut m = steady_stream(wanted_frame(), 1_000_000_000 / wanted_pps());
    m.states[0].emit.as_mut().unwrap().stamp_tail = true;
    m
}

/// Simulated traffic window per cell.
fn window(smoke: bool) -> SimDuration {
    if smoke {
        SimDuration::from_millis(900)
    } else {
        SimDuration::from_secs(2)
    }
}

/// Builds a single-host world with polling armor (the baseline defenses
/// every family runs under — the adversary's job is to defeat them).
fn armored_world(seed: u64, engine: DemuxEngine) -> (World, pf_kernel::types::HostId) {
    let mut w = World::new(seed);
    let seg = w.add_segment(Medium::experimental_3mb(), FaultModel::default());
    let host = w.add_host("bob", seg, 0x0B, CostModel::microvax_ii());
    w.set_nic_capacity(host, NIC_RING);
    w.set_demux_engine(host, engine);
    w.set_overload_armor(host, Some(BENCH_ARMOR));
    (w, host)
}

/// Injects a machine's schedule into `host`, returning the frame count.
fn inject_machine(
    w: &mut World,
    host: pf_kernel::types::HostId,
    m: &TrafficMachine,
    seed: u64,
    start: SimTime,
    end: SimTime,
) -> u64 {
    let sched = m.schedule(seed, &Medium::experimental_3mb(), start, end);
    let n = sched.len() as u64;
    for (t, f) in sched {
        w.inject_frame(host, f, t);
    }
    n
}

// ---------------------------------------------------------------------------
// Family: mimicry.
// ---------------------------------------------------------------------------

/// Mimicry flood: frames wearing the protected flow's admission
/// signature (dst-socket word == 35) but failing the rest of its filter
/// (wrong ethertype), at 4× capacity. Undefended, the gate classifies
/// every mimic as protected traffic — the junk quota never applies —
/// and the kernel pays full demux for a flood that matches nothing.
fn run_mimicry(hardened: bool, smoke: bool, seed: u64) -> AdversaryPoint {
    let (mut w, host) = armored_world(seed ^ 0x3131, DemuxEngine::Sharded);
    w.set_admission_control(
        host,
        Some(AdmissionConfig {
            mimicry_threshold: hardened.then_some(48),
            ..Default::default()
        }),
    );
    let consumer = w.spawn(
        host,
        Box::new(AdvConsumer::new(samples::pup_socket_filter(
            200,
            0,
            WANTED_SOCK,
        ))),
    );

    let attack_pps = 4 * capacity_pps();
    let mimic = steady_stream(attack_frame(9, WANTED_SOCK), 1_000_000_000 / attack_pps);
    let start = SimTime(1_000_000);
    let traffic_end = SimTime(start.0 + window(smoke).as_nanos());
    let drain_end = SimTime(traffic_end.0 + 600_000_000);
    let wanted_offered = inject_machine(&mut w, host, &wanted_machine(), seed, start, traffic_end);
    let attack_offered = inject_machine(&mut w, host, &mimic, seed ^ 0xA77A, start, traffic_end);
    w.run_until(drain_end);

    let app = w.app_ref::<AdvConsumer>(host, consumer).expect("consumer");
    let c = w.counters(host);
    AdversaryPoint {
        wanted_offered,
        attack_offered,
        goodput_ratio: app.got as f64 / wanted_offered as f64,
        p99_latency_us: p99_us(app.latencies_ns.clone()),
        drops_admission: c.drops_admission,
        drops_interface: c.drops_interface,
        drops_queue_full: c.drops_queue_full,
        drops_mimicry_shed: c.drops_mimicry_shed,
        gate_resignatures: c.gate_resignature_events,
        ..AdversaryPoint::zeroed("mimicry", if hardened { "hardened" } else { "undefended" })
    }
}

// ---------------------------------------------------------------------------
// Family: quota gaming.
// ---------------------------------------------------------------------------

/// The gamed junk quota: 200 pps sustained, 128-frame burst bank.
const GAMED_QUOTA: AdmissionQuota = AdmissionQuota {
    rate_pps: 200,
    burst: 128,
};

/// Quota gaming: the attacker idles exactly one full-refill period
/// (burst/rate = 640 ms), then fires the whole bank as one burst — the
/// classic bucket admits every frame because the *average* rate is
/// within quota, and each burst stalls the demux path ahead of wanted
/// traffic. The damage is latency, not loss: both rows hold goodput,
/// the undefended row's wanted p99 balloons.
fn run_quota_gaming(hardened: bool, smoke: bool, seed: u64) -> AdversaryPoint {
    let (mut w, host) = armored_world(seed ^ 0x9A3E, DemuxEngine::Sharded);
    w.set_admission_control(
        host,
        Some(AdmissionConfig {
            refill_jitter_key: hardened.then_some(seed ^ 0xB17E),
            ..Default::default()
        }),
    );
    let consumer = w.spawn(
        host,
        Box::new(AdvConsumer::new(samples::pup_socket_filter(
            200,
            0,
            WANTED_SOCK,
        ))),
    );
    w.spawn(
        host,
        Box::new(MultiSink {
            filters: vec![samples::pup_socket_filter(10, 0, 99)],
            quota: Some(GAMED_QUOTA),
        }),
    );

    let refill_ns = GAMED_QUOTA.burst * 1_000_000_000 / GAMED_QUOTA.rate_pps;
    let gaming = TrafficMachine {
        states: vec![
            State {
                name: "quiet",
                emit: None,
                dwell: Delay::Fixed(refill_ns),
                next: vec![(1, 1)],
            },
            State {
                name: "burst",
                emit: Some(Emit {
                    variants: vec![attack_frame(2, 99)],
                    pick: Pick::Cycle,
                    burst: GAMED_QUOTA.burst,
                    gap: Delay::Fixed(50_000),
                    pad_to: None,
                    stamp_tail: false,
                }),
                dwell: Delay::Fixed(0),
                next: vec![(1, 0)],
            },
        ],
    };

    // Longer window than the other families: the burst cadence is
    // 640 ms, and the campaign needs several epochs of jittered caps.
    let dur = if smoke {
        SimDuration::from_millis(1_400)
    } else {
        SimDuration::from_secs(4)
    };
    let start = SimTime(1_000_000);
    let traffic_end = SimTime(start.0 + dur.as_nanos());
    let drain_end = SimTime(traffic_end.0 + 600_000_000);
    let wanted_offered = inject_machine(&mut w, host, &wanted_machine(), seed, start, traffic_end);
    let attack_offered = inject_machine(&mut w, host, &gaming, seed ^ 0x0FF0, start, traffic_end);
    w.run_until(drain_end);

    let app = w.app_ref::<AdvConsumer>(host, consumer).expect("consumer");
    let c = w.counters(host);
    AdversaryPoint {
        wanted_offered,
        attack_offered,
        goodput_ratio: app.got as f64 / wanted_offered as f64,
        p99_latency_us: p99_us(app.latencies_ns.clone()),
        drops_admission: c.drops_admission,
        drops_interface: c.drops_interface,
        drops_queue_full: c.drops_queue_full,
        ..AdversaryPoint::zeroed(
            "quota_gaming",
            if hardened { "hardened" } else { "undefended" },
        )
    }
}

// ---------------------------------------------------------------------------
// Family: geom overlap bomb.
// ---------------------------------------------------------------------------

/// Nested range filters in the bomb population; every interval
/// contains the probe socket, so each probe gathers the whole
/// population as candidates.
const BOMB_RANGES: u16 = 64;
/// The socket every bomb interval covers.
const BOMB_SOCK: u16 = 5_000;

/// Geom overlap bomb: a population of nested socket ranges — all
/// covering one point — plus probe traffic stabbing that point, so the
/// undefended geom engine evaluates the whole candidate list per
/// packet and demux cost explodes. Hardened, the priority-pruned
/// candidate cap bounds evaluation per packet and sheds only the
/// lowest-priority wide-overlap members.
fn run_geom_bomb(hardened: bool, smoke: bool, seed: u64) -> AdversaryPoint {
    let (mut w, host) = armored_world(seed ^ 0x6E08, DemuxEngine::Geom);
    if hardened {
        w.set_geom_candidate_cap(host, Some(4));
    }
    let consumer = w.spawn(
        host,
        Box::new(AdvConsumer::new(samples::pup_socket_filter(
            200,
            0,
            WANTED_SOCK,
        ))),
    );
    let ranges = (0..BOMB_RANGES)
        .map(|i| samples::socket_range_filter(10, 4_000 + i, 6_000 - i))
        .collect();
    w.spawn(
        host,
        Box::new(MultiSink {
            filters: ranges,
            quota: None,
        }),
    );

    let attack_pps = (capacity_pps() / 5).max(1);
    let probe = steady_stream(attack_frame(2, BOMB_SOCK), 1_000_000_000 / attack_pps);
    let start = SimTime(1_000_000);
    let traffic_end = SimTime(start.0 + window(smoke).as_nanos());
    let drain_end = SimTime(traffic_end.0 + 600_000_000);
    let wanted_offered = inject_machine(&mut w, host, &wanted_machine(), seed, start, traffic_end);
    let attack_offered = inject_machine(&mut w, host, &probe, seed ^ 0xB0B0, start, traffic_end);
    w.run_until(drain_end);

    let app = w.app_ref::<AdvConsumer>(host, consumer).expect("consumer");
    let c = w.counters(host);
    let capped = w.device(host).engine_stats().geom_candidates_capped;
    AdversaryPoint {
        wanted_offered,
        attack_offered,
        goodput_ratio: app.got as f64 / wanted_offered as f64,
        p99_latency_us: p99_us(app.latencies_ns.clone()),
        drops_interface: c.drops_interface,
        drops_queue_full: c.drops_queue_full,
        candidates_capped: capped,
        ..AdversaryPoint::zeroed(
            "geom_bomb",
            if hardened { "hardened" } else { "undefended" },
        )
    }
}

// ---------------------------------------------------------------------------
// Family: RSS collision flood.
// ---------------------------------------------------------------------------

/// Worker cores in the collision cell.
const RSS_CORES: usize = 4;
/// Collision flows the adversary precomputes.
const RSS_FLOWS: usize = 48;
/// The packet word the RSS hash covers (the dst-socket word).
const RSS_HASH_WORD: u16 = 8;

/// RSS collision flood: the adversary knows the NIC's well-known
/// default hash key, precomputes [`RSS_FLOWS`] sockets that all steer
/// to the wanted flow's queue, and floods them — the whole attack
/// lands on one core while the others idle (stealing is off: in the
/// modeled deployment the siblings are busy with their own queues).
/// Hardened, the per-boot keyed hash invalidates the precomputation
/// and the same flood spreads across all queues.
fn run_rss_collision(hardened: bool, smoke: bool, seed: u64) -> AdversaryPoint {
    let default_rss = RssConfig::multi_queue(RSS_CORES, vec![RSS_HASH_WORD]);
    let victim_queue = default_rss.steer(&wanted_frame());
    // The attacker's precomputation, against the *default* key: sockets
    // whose frames steer onto the victim queue.
    let mut collision = Vec::new();
    let mut sock = 20_000u16;
    while collision.len() < RSS_FLOWS {
        let f = attack_frame(2, sock);
        if sock != WANTED_SOCK && default_rss.steer(&f) == victim_queue {
            collision.push(f);
        }
        sock += 1;
    }

    let rss = if hardened {
        let keyed = RssConfig::keyed(RSS_CORES, vec![RSS_HASH_WORD], seed ^ 0xB007);
        // The defense's whole claim: the precomputed set no longer
        // concentrates. Check it directly against the keyed steering.
        let on_victim = collision
            .iter()
            .filter(|f| keyed.steer(f) == keyed.steer(&wanted_frame()))
            .count();
        assert!(
            on_victim * 2 < collision.len(),
            "keyed RSS must break the collision precomputation \
             ({on_victim}/{} still on the victim queue)",
            collision.len()
        );
        keyed
    } else {
        default_rss
    };

    let mut cfg = McConfig::single_core(DemuxEngine::Sharded);
    cfg.cores = RSS_CORES;
    cfg.batch = 16;
    cfg.rss = rss;
    cfg.nic_ring = NIC_RING;
    cfg.steal = false;
    cfg.consume = CONSUME;
    cfg.armor = Some(OverloadConfig {
        hi_watermark: 16,
        lo_watermark: 4,
        poll_batch: 16,
        poll_interval: SimDuration::from_millis(2),
    });
    let mut pl = McPipeline::new(cfg);
    pl.add_filter(samples::pup_socket_filter(200, 0, WANTED_SOCK));

    // Anchored to the *single-core interrupt-path* capacity, but the mc
    // pipeline's polling + batched path services frames several times
    // cheaper, so the collision flood must offer well past that anchor
    // to overrun one core: 12× collapses the undefended victim queue
    // while the same load spread over 4 keyed queues stays comfortable.
    let attack_pps = capacity_pps() * 12;
    let flood = TrafficMachine {
        states: vec![State {
            name: "collision-flood",
            emit: Some(Emit {
                variants: collision,
                pick: Pick::Cycle,
                burst: 1,
                gap: Delay::Fixed(0),
                pad_to: None,
                stamp_tail: false,
            }),
            dwell: Delay::Fixed(1_000_000_000 / attack_pps),
            next: Vec::new(),
        }],
    };
    let start = SimTime(1_000_000);
    let end = SimTime(start.0 + window(smoke).as_nanos());
    let m = Medium::experimental_3mb();
    let mut arrivals = wanted_machine().schedule(seed, &m, start, end);
    let wanted_offered = arrivals.len() as u64;
    let attack = flood.schedule(seed ^ 0xC011, &m, start, end);
    let attack_offered = attack.len() as u64;
    arrivals.extend(attack);
    arrivals.sort_by_key(|(t, _)| t.0);

    pl.schedule_arrivals(arrivals);
    SimClock::run(&mut pl);
    let report = pl.report();
    // Only the wanted filter exists, so every delivery is a wanted one.
    let delivered = report.total.packets_delivered;
    AdversaryPoint {
        wanted_offered,
        attack_offered,
        goodput_ratio: delivered as f64 / wanted_offered as f64,
        p99_latency_us: report.latency_quantile(0.99).as_nanos() / 1_000,
        drops_interface: report.total.drops_interface,
        ..AdversaryPoint::zeroed(
            "rss_collision",
            if hardened { "hardened" } else { "undefended" },
        )
    }
}

// ---------------------------------------------------------------------------
// Family: monitor evasion.
// ---------------------------------------------------------------------------

/// Replays a precomputed schedule onto the wire (one timer per frame),
/// so machine-shaped traffic crosses a real segment and a promiscuous
/// monitor can see it.
struct Replayer {
    schedule: Vec<(SimTime, Vec<u8>)>,
    fd: Option<Fd>,
}

impl App for Replayer {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        self.fd = Some(k.pf_open());
        let now = k.now();
        for (i, (t, _)) in self.schedule.iter().enumerate() {
            k.set_timer(t.saturating_since(now), i as u64);
        }
    }

    fn on_timer(&mut self, token: u64, k: &mut ProcCtx<'_>) {
        let frame = self.schedule[token as usize].1.clone();
        let _ = k.pf_write(self.fd.unwrap(), &frame);
    }
}

/// Counts packets accepted by one filter (the endpoint under watch).
struct CountApp {
    filter: FilterProgram,
    got: u64,
}

impl App for CountApp {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        let fd = k.pf_open();
        assert!(k.pf_set_filter(fd, self.filter.clone()));
        k.pf_configure(
            fd,
            PortConfig {
                read_mode: ReadMode::Batch,
                max_queue: 64,
                ..Default::default()
            },
        );
        k.pf_read(fd);
    }

    fn on_packets(&mut self, fd: Fd, packets: Vec<RecvPacket>, k: &mut ProcCtx<'_>) {
        self.got += packets.len() as u64;
        k.pf_read(fd);
    }

    fn on_read_error(&mut self, fd: Fd, _err: ReadError, k: &mut ProcCtx<'_>) {
        k.pf_read(fd);
    }
}

/// Monitor evasion: the endpoint is lenient (checks only the
/// dst-socket word); the classic monitor approximates it with the
/// stricter figure-3-9 filter. A shaping machine cycles through frames
/// that satisfy the endpoint but violate the approximation — wrong
/// ethertype, set socket-hi word, padded — and most of the
/// conversation escapes the trace. The hardened monitor captures with
/// the endpoint's *own* predicate ([`pf_monitor::capture::covering_filter`]),
/// closing the gap by construction. (Padding alone evades nothing:
/// word-offset filters are padding-blind — the evasion is the header
/// shaping. The padded variant is in the cycle to prove exactly that.)
fn run_monitor_evasion(smoke: bool, seed: u64) -> (AdversaryPoint, AdversaryPoint) {
    let endpoint_filter = Assembler::new(10)
        .pushword(samples::WORD_DSTSOCKET_LO)
        .pushlit_op(BinaryOp::Eq, WANTED_SOCK)
        .finish();

    // One state per shaped variant, cycled — the DSL's state walk *is*
    // the shaping schedule.
    let shape = |ethertype: u16, hi: u16| {
        let mut f = samples::pup_packet_3mb(ethertype, hi, WANTED_SOCK, 1);
        f[0] = 0x0B;
        f[1] = 0x0A;
        f
    };
    let dwell = Delay::UniformNs {
        lo: 4_000_000,
        hi: 6_000_000,
    };
    let state = |name, f: Vec<u8>, pad_to: Option<usize>, next: usize| State {
        name,
        emit: Some(Emit {
            variants: vec![f],
            pick: Pick::Cycle,
            burst: 1,
            gap: Delay::Fixed(0),
            pad_to,
            stamp_tail: false,
        }),
        dwell,
        next: vec![(1, next)],
    };
    let shaper = TrafficMachine {
        states: vec![
            state("standard", shape(2, 0), None, 1),
            state("ethertype-shaped", shape(9, 0), None, 2),
            state("sockethi-shaped", shape(2, 7), None, 3),
            state("padded", shape(2, 0), Some(120), 0),
        ],
    };

    let mut w = World::new(seed ^ 0x30_0E);
    let seg = w.add_segment(Medium::experimental_3mb(), FaultModel::default());
    let shaper_host = w.add_host("shaper", seg, 0x0A, CostModel::microvax_ii());
    let endpoint_host = w.add_host("endpoint", seg, 0x0B, CostModel::microvax_ii());
    let monitor_host = w.add_host("monitor", seg, 0x0C, CostModel::microvax_ii());

    let dur = if smoke {
        SimDuration::from_millis(600)
    } else {
        SimDuration::from_secs(2)
    };
    let start = SimTime(1_000_000);
    let end = SimTime(start.0 + dur.as_nanos());
    let schedule = shaper.schedule(seed, &Medium::experimental_3mb(), start, end);
    let offered = schedule.len() as u64;
    w.spawn(shaper_host, Box::new(Replayer { schedule, fd: None }));
    let ep = w.spawn(
        endpoint_host,
        Box::new(CountApp {
            filter: endpoint_filter.clone(),
            got: 0,
        }),
    );
    let strict = w.spawn(
        monitor_host,
        Box::new(pf_monitor::capture::CaptureApp::with_filter(
            samples::pup_socket_filter(200, 0, WANTED_SOCK),
            usize::MAX,
        )),
    );
    let covering = w.spawn(
        monitor_host,
        Box::new(pf_monitor::capture::CaptureApp::with_filter(
            pf_monitor::capture::covering_filter(&endpoint_filter, 190),
            usize::MAX,
        )),
    );
    w.run_until(SimTime(end.0 + 600_000_000));

    let seen = w
        .app_ref::<CountApp>(endpoint_host, ep)
        .expect("endpoint")
        .got;
    assert!(
        seen == offered,
        "every shaped variant must satisfy the endpoint: {seen}/{offered}"
    );
    let coverage = |proc| {
        let cap = w
            .app_ref::<pf_monitor::capture::CaptureApp>(monitor_host, proc)
            .expect("capture");
        cap.captured() as u64
    };
    let point = |mode, captured: u64| AdversaryPoint {
        wanted_offered: seen,
        attack_offered: offered,
        goodput_ratio: captured as f64 / seen.max(1) as f64,
        ..AdversaryPoint::zeroed("monitor_evasion", mode)
    };
    (
        point("undefended", coverage(strict)),
        point("hardened", coverage(covering)),
    )
}

// ---------------------------------------------------------------------------
// The campaign.
// ---------------------------------------------------------------------------

/// The whole campaign.
#[derive(Debug, Clone)]
pub struct AdversaryReport {
    /// Seed every cell derives its streams from.
    pub seed: u64,
    /// Single-core junk service capacity the rates are anchored to.
    pub capacity_pps: u64,
    /// Wanted-stream rate.
    pub wanted_pps: u64,
    /// Every family × mode cell.
    pub rows: Vec<AdversaryPoint>,
}

impl AdversaryReport {
    /// The row for one cell.
    pub fn cell(&self, family: &str, mode: &str) -> &AdversaryPoint {
        self.rows
            .iter()
            .find(|r| r.family == family && r.mode == mode)
            .expect("cell swept")
    }
}

/// Runs every family undefended and hardened, asserting the campaign's
/// claims: each undefended row measurably degrades (goodput collapse,
/// coverage collapse, or a latency blow-up with after-demux drops), and
/// each hardened row holds goodput / coverage at ≥ 0.95 under the same
/// offered load with its defense's counters visibly engaged.
pub fn sweep(smoke: bool, seed: u64) -> AdversaryReport {
    let mut rows = Vec::new();
    for hardened in [false, true] {
        rows.push(run_rss_collision(hardened, smoke, seed));
        rows.push(run_mimicry(hardened, smoke, seed));
        rows.push(run_quota_gaming(hardened, smoke, seed));
        rows.push(run_geom_bomb(hardened, smoke, seed));
    }
    let (und, hard) = run_monitor_evasion(smoke, seed);
    rows.push(und);
    rows.push(hard);
    let report = AdversaryReport {
        seed,
        capacity_pps: capacity_pps(),
        wanted_pps: wanted_pps(),
        rows,
    };

    let collapse = |family: &str| {
        let u = report.cell(family, "undefended");
        let h = report.cell(family, "hardened");
        assert!(
            u.goodput_ratio < 0.8,
            "{family}: undefended build must collapse: {u:?}"
        );
        assert!(
            h.goodput_ratio >= 0.95,
            "{family}: hardened build must hold goodput: {h:?}"
        );
    };
    collapse("rss_collision");
    collapse("mimicry");
    collapse("geom_bomb");

    let mim_u = report.cell("mimicry", "undefended");
    let mim_h = report.cell("mimicry", "hardened");
    assert_eq!(
        mim_u.drops_mimicry_shed, 0,
        "the classic gate has no mimic defense: {mim_u:?}"
    );
    assert!(
        mim_h.gate_resignatures >= 1,
        "mimicry pressure must re-signature the gate: {mim_h:?}"
    );
    assert!(
        mim_h.drops_mimicry_shed > mim_h.attack_offered / 2,
        "the re-signatured gate must shed the bulk of the flood: {mim_h:?}"
    );

    let q_u = report.cell("quota_gaming", "undefended");
    let q_h = report.cell("quota_gaming", "hardened");
    assert_eq!(
        q_u.drops_admission, 0,
        "the gamed bucket admits every burst (that is the attack): {q_u:?}"
    );
    assert!(
        q_u.drops_queue_full > 0,
        "the admitted bursts must be paid for and then dropped: {q_u:?}"
    );
    assert!(
        q_h.drops_admission >= q_h.attack_offered / 4,
        "refill jitter must shed a sizable cut of every burst: {q_h:?}"
    );
    for p in [q_u, q_h] {
        assert!(
            p.goodput_ratio >= 0.95,
            "quota gaming damages latency, not delivery: {p:?}"
        );
    }
    assert!(
        q_u.p99_latency_us as f64 > 1.5 * q_h.p99_latency_us as f64,
        "the undefended wanted p99 must balloon versus hardened: \
         {} us vs {} us",
        q_u.p99_latency_us,
        q_h.p99_latency_us
    );

    let g_u = report.cell("geom_bomb", "undefended");
    let g_h = report.cell("geom_bomb", "hardened");
    assert_eq!(g_u.candidates_capped, 0, "no cap, nothing pruned: {g_u:?}");
    assert!(
        g_h.candidates_capped > g_h.attack_offered,
        "the cap must prune candidates on virtually every probe: {g_h:?}"
    );

    let m_u = report.cell("monitor_evasion", "undefended");
    let m_h = report.cell("monitor_evasion", "hardened");
    assert!(
        m_u.goodput_ratio <= 0.6,
        "the strict approximation must miss the shaped variants: {m_u:?}"
    );
    assert!(
        m_h.goodput_ratio >= 0.95,
        "the covering filter must capture the whole conversation: {m_h:?}"
    );

    report
}

fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

/// Renders the campaign as JSON (hand-rolled: the build is hermetic, no
/// serde).
pub fn to_json(report: &AdversaryReport) -> String {
    let mut s = String::from("{\n  \"experiment\": \"adversary\",\n");
    s.push_str(
        "  \"workload\": \"state-machine-generated hostile flows (RSS collision flood, \
         admission-signature mimicry, quota-gamed bursts, geom overlap bomb, \
         monitor-evading shaping), each against the undefended and the hardened \
         build of the mechanism it targets\",\n",
    );
    s.push_str(&format!(
        "  \"seed\": {},\n  \"capacity_pps\": {},\n  \"wanted_pps\": {},\n",
        report.seed, report.capacity_pps, report.wanted_pps
    ));
    s.push_str("  \"rows\": [\n");
    for (i, p) in report.rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"family\": \"{}\", \"mode\": \"{}\", \"wanted_offered\": {}, \
             \"attack_offered\": {}, \"goodput_ratio\": {}, \"p99_latency_us\": {}, \
             \"drops_admission\": {}, \"drops_interface\": {}, \"drops_queue_full\": {}, \
             \"drops_mimicry_shed\": {}, \"gate_resignatures\": {}, \
             \"candidates_capped\": {}}}{}\n",
            p.family,
            p.mode,
            p.wanted_offered,
            p.attack_offered,
            fmt_f64(p.goodput_ratio),
            p.p99_latency_us,
            p.drops_admission,
            p.drops_interface,
            p.drops_queue_full,
            p.drops_mimicry_shed,
            p.gate_resignatures,
            p.candidates_capped,
            if i + 1 == report.rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"signature\": {\n");
    let fams = [
        "rss_collision",
        "mimicry",
        "quota_gaming",
        "geom_bomb",
        "monitor_evasion",
    ];
    for (i, fam) in fams.iter().enumerate() {
        let u = report.cell(fam, "undefended");
        let h = report.cell(fam, "hardened");
        s.push_str(&format!(
            "    \"{fam}\": {{\"undefended_ratio\": {}, \"hardened_ratio\": {}, \
             \"undefended_p99_us\": {}, \"hardened_p99_us\": {}}}{}\n",
            fmt_f64(u.goodput_ratio),
            fmt_f64(h.goodput_ratio),
            u.p99_latency_us,
            h.p99_latency_us,
            if i + 1 == fams.len() { "" } else { "," }
        ));
    }
    s.push_str("  }\n}\n");
    s
}

/// Default output path: the repository root's `BENCH_adversary.json`.
pub fn default_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_adversary.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_schedules_are_deterministic() {
        let m = steady_stream(attack_frame(2, 99), 1_000_000);
        let med = Medium::experimental_3mb();
        let a = m.schedule(7, &med, SimTime(0), SimTime(50_000_000));
        let b = m.schedule(7, &med, SimTime(0), SimTime(50_000_000));
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = m.schedule(8, &med, SimTime(0), SimTime(50_000_000));
        assert_ne!(a, c, "a different seed must shift the jittered timing");
    }

    #[test]
    fn machine_bursts_pad_and_stamp() {
        let base = wanted_frame();
        let m = TrafficMachine {
            states: vec![State {
                name: "burst",
                emit: Some(Emit {
                    variants: vec![base.clone()],
                    pick: Pick::Cycle,
                    burst: 5,
                    gap: Delay::Fixed(1_000),
                    pad_to: Some(100),
                    stamp_tail: true,
                }),
                dwell: Delay::Fixed(10_000_000),
                next: Vec::new(),
            }],
        };
        let med = Medium::experimental_3mb();
        let out = m.schedule(3, &med, SimTime(500), SimTime(9_000_000));
        assert_eq!(out.len(), 5, "one burst fits the window");
        for (t, f) in &out {
            assert_eq!(f.len(), 100, "padded to length");
            let stamp = u64::from_be_bytes(f[92..100].try_into().unwrap());
            assert_eq!(stamp, t.0, "tail stamp is the emission time");
            assert_eq!(&f[..base.len() - 8], &base[..base.len() - 8]);
        }
        assert_eq!(out[1].0 .0 - out[0].0 .0, 1_000, "intra-burst gap");
    }

    #[test]
    fn weighted_transitions_visit_both_branches() {
        let m = TrafficMachine {
            states: vec![
                State {
                    name: "root",
                    emit: None,
                    dwell: Delay::Fixed(1_000),
                    next: vec![(1, 1), (1, 2)],
                },
                State {
                    name: "left",
                    emit: Some(Emit::steady(attack_frame(2, 1))),
                    dwell: Delay::Fixed(1_000),
                    next: vec![(1, 0)],
                },
                State {
                    name: "right",
                    emit: Some(Emit::steady(attack_frame(2, 2))),
                    dwell: Delay::Fixed(1_000),
                    next: vec![(1, 0)],
                },
            ],
        };
        let med = Medium::experimental_3mb();
        let out = m.schedule(11, &med, SimTime(0), SimTime(1_000_000));
        let view = |f: &[u8]| u16::from_be_bytes([f[16], f[17]]);
        let lefts = out.iter().filter(|(_, f)| view(f) == 1).count();
        let rights = out.iter().filter(|(_, f)| view(f) == 2).count();
        assert!(lefts > 0 && rights > 0, "{lefts} / {rights}");
    }

    #[test]
    fn cells_are_deterministic() {
        let a = run_quota_gaming(true, true, DEFAULT_SEED);
        let b = run_quota_gaming(true, true, DEFAULT_SEED);
        assert_eq!(a.goodput_ratio, b.goodput_ratio);
        assert_eq!(a.p99_latency_us, b.p99_latency_us);
        assert_eq!(a.drops_admission, b.drops_admission);
    }

    #[test]
    fn smoke_sweep_holds_every_invariant() {
        let report = sweep(true, DEFAULT_SEED);
        // 4 two-row families + monitor evasion's pair.
        assert_eq!(report.rows.len(), 10);
        let json = to_json(&report);
        assert!(json.contains("\"experiment\": \"adversary\""));
        assert!(json.contains(&format!("\"seed\": {DEFAULT_SEED}")));
        assert!(json.contains("\"signature\""));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces:\n{json}"
        );
    }
}
