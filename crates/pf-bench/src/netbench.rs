//! The internet-scale topology campaign (`BENCH_net.json`): routed
//! multi-segment simulation under flow-level workloads, swept across
//! topology size × flow count × event-queue backend.
//!
//! Each cell builds a ring-of-routers topology (one host LAN per
//! router), synthesizes a [`flowgen`](crate::flowgen) workload —
//! Poisson arrivals, elephant/mice sizes, a 20% incast hot spot, all
//! three transports, scheduled routing churn — maps every packet onto
//! an IP-over-Ethernet frame via the topology's first-hop tables, and
//! drives the kernel [`World`] through [`SimClock`]. The sweep is its
//! own referee:
//!
//! * **Routed delivery is exact**: every cell asserts each host
//!   received precisely the packets addressed to it — no interface
//!   drops, no routing black holes, no TTL deaths — at every size up
//!   to 256 nodes × 100k flows.
//! * **Backends agree**: each cell runs once per
//!   [`QueueBackend`]; final virtual time and every per-host counter
//!   must match bit-for-bit, pinning the calendar queue's tie-break
//!   contract under real traffic.
//! * **The calendar earns its keep**: a classic hold-model microbench
//!   measures raw `pop`+`schedule` throughput per backend; at ≥10k
//!   pending events the calendar must beat the binary heap (asserted
//!   in-sweep). Sparse populations are reported un-asserted — that is
//!   where the calendar's year-scan loses, and the artifact says so.

use crate::flowgen::{self, Arrival, FlowSpec, Pattern, SizeMix, Transport};
use pf_kernel::World;
use pf_net::frame;
use pf_net::medium::Medium;
use pf_net::segment::FaultModel;
use pf_net::topology::Route;
use pf_net::{LinkId, NodeId, Topology};
use pf_proto::ip::{encode_ip, IpHeader, IP_ETHERTYPE};
use pf_proto::router::deploy;
use pf_sim::cost::CostModel;
use pf_sim::queue::{EventQueue, QueueBackend};
use pf_sim::rng::SplitMix64;
use pf_sim::time::SimTime;
use pf_sim::SimClock;

/// Default workload seed (spells "flow seed", squinting).
pub const DEFAULT_SEED: u64 = 0xF10E_5EED;

/// One topology-sweep measurement.
#[derive(Debug, Clone)]
pub struct TopoPoint {
    /// Total nodes (routers + hosts).
    pub nodes: usize,
    /// Router count (ring size).
    pub routers: usize,
    /// Host count.
    pub hosts: usize,
    /// Segment count (ring links + host LANs).
    pub links: usize,
    /// Flows synthesized.
    pub flows: usize,
    /// Packets scheduled (elephants make this > flows).
    pub packets: usize,
    /// Routing-churn route flips injected mid-run.
    pub churn_events: usize,
    /// Event-queue backend name.
    pub backend: &'static str,
    /// Packets received by their addressed host.
    pub delivered: u64,
    /// delivered / packets (asserted to be exactly 1.0).
    pub delivery_frac: f64,
    /// Router forward operations summed over the run.
    pub forwarded: u64,
    /// Final virtual time, nanoseconds.
    pub sim_end_ns: u64,
    /// Wall-clock run time, milliseconds.
    pub wall_ms: f64,
    /// Wall-clock throughput, packets/second.
    pub pkts_per_sec: f64,
}

/// One hold-model event-core measurement.
#[derive(Debug, Clone)]
pub struct HoldPoint {
    /// Event-queue backend name.
    pub backend: &'static str,
    /// Steady-state pending-event population.
    pub pending: usize,
    /// pop+schedule operations timed.
    pub ops: usize,
    /// Best-of-three throughput, operations/second.
    pub ops_per_sec: f64,
}

/// The full campaign artifact.
#[derive(Debug, Clone)]
pub struct NetReport {
    /// Workload seed.
    pub seed: u64,
    /// Whether this was the reduced CI sweep.
    pub smoke: bool,
    /// Topology sweep rows.
    pub topology: Vec<TopoPoint>,
    /// Event-core microbench rows.
    pub event_core: Vec<HoldPoint>,
}

/// A ring of `nodes/4` routers, each with a 3-host LAN: the sweep's
/// standard shape. Returns the frozen plan plus the router and host
/// node ids (hosts in endpoint order).
pub fn ring_topology(nodes: usize) -> (Topology, Vec<NodeId>, Vec<NodeId>) {
    assert!(nodes >= 2, "need at least one router and one host");
    let r_count = (nodes / 4).max(1);
    let h_count = nodes - r_count;
    let mut b = Topology::builder();
    let routers: Vec<NodeId> = (0..r_count).map(|i| b.router(format!("r{i}"))).collect();
    let hosts: Vec<NodeId> = (0..h_count).map(|i| b.host(format!("h{i}"))).collect();
    let m = Medium::standard_10mb();
    // Ring links first (link ids 0..r_count), then one LAN per router
    // (link id r_count + r) — the churn injector depends on this order.
    if r_count >= 3 {
        for i in 0..r_count {
            b.link(
                routers[i],
                routers[(i + 1) % r_count],
                m,
                FaultModel::default(),
            );
        }
    } else if r_count == 2 {
        b.link(routers[0], routers[1], m, FaultModel::default());
    }
    for (r, router) in routers.iter().enumerate() {
        let mut members = vec![*router];
        members.extend(hosts.iter().skip(r).step_by(r_count));
        if members.len() >= 2 {
            b.lan(&members, m, FaultModel::default());
        }
    }
    (b.build(), routers, hosts)
}

/// The sweep's workload shape for one cell: Poisson flow arrivals
/// scaled to the flow count, a bimodal size mix, a 20% incast hot spot
/// on host 0, all three transports cycled, and two routing-churn
/// events whenever the ring is big enough to have antipodal paths.
fn cell_spec(flows: usize, routers: usize) -> FlowSpec {
    FlowSpec {
        flows,
        arrival: Arrival::Poisson {
            rate_fps: flows as f64 * 50.0,
        },
        sizes: SizeMix::ElephantsAndMice {
            mice: 1,
            elephants: 4,
            elephant_fraction: 0.1,
        },
        pattern: Pattern::Incast { fraction: 0.2 },
        transports: vec![Transport::Udp, Transport::Bsp, Transport::Vmtp],
        payload: 64,
        packet_gap_ns: 200_000,
        churn_events: if routers >= 4 && routers.is_multiple_of(2) {
            2
        } else {
            0
        },
        start: SimTime(1_000),
    }
}

fn ip_proto(t: Transport) -> u8 {
    match t {
        Transport::Udp => 17,
        Transport::Bsp => 99,
        Transport::Vmtp => 81,
    }
}

/// What one cell run produced; everything except `wall_ms` must be
/// identical across queue backends.
#[derive(Debug, Clone, PartialEq)]
struct CellOutcome {
    end: SimTime,
    received: Vec<u64>,
    forwarded: u64,
    packets: usize,
}

/// Builds the cell's world, injects the whole packet schedule, runs it
/// (pausing at each churn instant to flip router 0's antipodal route),
/// and asserts exact delivery.
fn run_cell(nodes: usize, flows: usize, backend: QueueBackend, seed: u64) -> (CellOutcome, f64) {
    let (topo, routers, hosts) = ring_topology(nodes);
    let spec = cell_spec(flows, routers.len());
    let cell_seed = seed ^ ((nodes as u64) << 32) ^ flows as u64;
    let packets = flowgen::generate(&spec, hosts.len(), cell_seed);
    let churn = flowgen::churn_times(&spec, &packets);

    let mut w = World::with_queue_backend(cell_seed, backend);
    let d = deploy(&topo, &mut w, &CostModel::microvax_ii());
    for h in &hosts {
        // The incast victim sees a large standing backlog; a deep ring
        // keeps "no interface drops" a property of routing, not luck.
        w.set_nic_capacity(d.host(*h), 1 << 20);
    }

    let mut expected = vec![0u64; hosts.len()];
    for p in &packets {
        expected[p.dst] += 1;
        let src = hosts[p.src];
        let dst_ip = topo.ip(hosts[p.dst]);
        let (iface, next_eth) = topo.first_hop(src, dst_ip).expect("ring is connected");
        let src_if = topo.interfaces(src)[iface];
        let packet = encode_ip(
            &IpHeader {
                proto: ip_proto(p.transport),
                ttl: 64,
                src: topo.ip(src),
                dst: dst_ip,
                total_len: 0,
            },
            &vec![0xA5u8; p.payload],
        );
        let f = frame::build(
            topo.medium(src_if.link),
            next_eth,
            src_if.eth,
            IP_ETHERTYPE,
            &packet,
        )
        .expect("frame fits the medium");
        w.send_frame_at(d.host(src), f, p.at);
    }

    let started = std::time::Instant::now();
    if churn.is_empty() {
        SimClock::run(&mut w);
    } else {
        // Router 0 sits exactly between the two equal-cost ring paths
        // to the antipodal router's LAN; churn toggles which one it
        // uses. Both are shortest, so delivery stays exact mid-flip.
        let r_count = routers.len();
        let antipodal_lan = LinkId(r_count + r_count / 2);
        let prefix = topo.subnet(antipodal_lan);
        let via = |neighbor: usize, link: usize| -> Option<u32> {
            topo.interfaces(routers[neighbor])
                .iter()
                .find(|i| i.link == LinkId(link))
                .map(|i| i.ip)
        };
        let clockwise = via(1, 0).expect("ring link 0");
        let counter = via(r_count - 1, r_count - 1).expect("ring link r-1");
        for (k, &at) in churn.iter().enumerate() {
            SimClock::run_until(&mut w, at);
            let (iface, next_hop) = if k % 2 == 0 {
                (0, clockwise)
            } else {
                (1, counter)
            };
            let flipped = w.update_route(
                d.router(routers[0]),
                Route {
                    prefix,
                    len: 24,
                    iface,
                    next_hop: Some(next_hop),
                },
            );
            assert!(flipped, "router 0 must accept the churn route");
        }
        SimClock::run(&mut w);
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let received: Vec<u64> = hosts
        .iter()
        .map(|h| w.counters(d.host(*h)).packets_received)
        .collect();
    let mut forwarded = 0;
    for r in &routers {
        let stats = w.router_stats(d.router(*r));
        assert_eq!(stats.no_route, 0, "static routes cover every subnet");
        assert_eq!(stats.ttl_expired, 0, "TTL 64 outlives a {nodes}-node ring");
        assert_eq!(stats.not_routable, 0, "every frame is well-formed IP");
        forwarded += stats.forwarded;
    }
    for (i, h) in hosts.iter().enumerate() {
        let c = w.counters(d.host(*h));
        assert_eq!(c.drops_interface, 0, "host {i}: no NIC overruns");
        assert_eq!(
            c.packets_received, expected[i],
            "host {i} must receive exactly its addressed packets"
        );
    }
    (
        CellOutcome {
            end: w.now(),
            received,
            forwarded,
            packets: packets.len(),
        },
        wall_ms,
    )
}

/// Classic hold-model throughput: prefill `pending` events, then time
/// `ops` iterations of pop-one/schedule-one (the population stays
/// constant, the event horizon slides forward). Best of three runs.
fn hold_ops_per_sec(backend: QueueBackend, pending: usize, ops: usize, seed: u64) -> f64 {
    let mut best = 0.0f64;
    for rep in 0..3 {
        let mut q: EventQueue<u32> = EventQueue::with_backend(backend);
        let mut rng = SplitMix64::new(seed.wrapping_add(rep));
        for i in 0..pending {
            q.schedule(SimTime(rng.below(1_000_000_000)), i as u32);
        }
        let started = std::time::Instant::now();
        for _ in 0..ops {
            let (t, v) = q.pop().expect("population never drains");
            q.schedule(SimTime(t.0 + 1 + rng.below(1_000_000)), v);
        }
        let secs = started.elapsed().as_secs_f64().max(1e-9);
        best = best.max(ops as f64 / secs);
    }
    best
}

/// Runs the campaign. `smoke` shrinks the grid for CI; every assert
/// still fires. Panics (never lies) when routed delivery is not exact,
/// the two backends disagree, or the calendar loses a dense hold.
pub fn sweep(smoke: bool, seed: u64) -> NetReport {
    let (node_sizes, flow_sizes): (&[usize], &[usize]) = if smoke {
        (&[4, 16], &[1_000])
    } else {
        (&[4, 16, 64, 256], &[1_000, 10_000, 100_000])
    };
    let backends = [QueueBackend::Heap, QueueBackend::Calendar];

    let mut topology = Vec::new();
    for &nodes in node_sizes {
        for &flows in flow_sizes {
            let mut outcomes: Vec<CellOutcome> = Vec::new();
            for backend in backends {
                let (out, wall_ms) = run_cell(nodes, flows, backend, seed);
                let (topo_shape, routers, hosts) = ring_topology(nodes);
                let spec = cell_spec(flows, routers.len());
                topology.push(TopoPoint {
                    nodes,
                    routers: routers.len(),
                    hosts: hosts.len(),
                    links: topo_shape.link_count(),
                    flows,
                    packets: out.packets,
                    churn_events: spec.churn_events,
                    backend: backend.name(),
                    delivered: out.received.iter().sum(),
                    delivery_frac: 1.0,
                    forwarded: out.forwarded,
                    sim_end_ns: out.end.0,
                    wall_ms,
                    pkts_per_sec: out.packets as f64 / (wall_ms / 1e3).max(1e-9),
                });
                outcomes.push(out);
            }
            assert_eq!(
                outcomes[0], outcomes[1],
                "{nodes} nodes/{flows} flows: heap and calendar must simulate \
                 identical histories"
            );
        }
    }

    let (hold_sizes, hold_ops): (&[usize], usize) = if smoke {
        (&[1_000, 10_000], 60_000)
    } else {
        (&[1_000, 10_000, 100_000], 300_000)
    };
    let mut event_core = Vec::new();
    for &pending in hold_sizes {
        let heap = hold_ops_per_sec(QueueBackend::Heap, pending, hold_ops, seed);
        let cal = hold_ops_per_sec(QueueBackend::Calendar, pending, hold_ops, seed);
        if pending >= 10_000 {
            assert!(
                cal >= heap,
                "calendar must beat the heap at {pending} pending \
                 (calendar {cal:.0} ops/s vs heap {heap:.0} ops/s)"
            );
        }
        event_core.push(HoldPoint {
            backend: QueueBackend::Heap.name(),
            pending,
            ops: hold_ops,
            ops_per_sec: heap,
        });
        event_core.push(HoldPoint {
            backend: QueueBackend::Calendar.name(),
            pending,
            ops: hold_ops,
            ops_per_sec: cal,
        });
    }

    if !smoke {
        let flagship = topology
            .iter()
            .filter(|p| p.nodes == 256 && p.flows >= 100_000)
            .count();
        assert!(flagship >= 2, "the 256-node × 100k-flow cell must run");
    }
    NetReport {
        seed,
        smoke,
        topology,
        event_core,
    }
}

fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

/// Renders the campaign as JSON (hand-rolled: the build is hermetic,
/// no serde).
pub fn to_json(report: &NetReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"campaign\": \"net\",\n");
    s.push_str(&format!("  \"seed\": {},\n", report.seed));
    s.push_str(&format!("  \"smoke\": {},\n", report.smoke));
    s.push_str(
        "  \"asserts\": [\"exact routed delivery per host\", \
         \"heap and calendar histories identical\", \
         \"calendar >= heap ops/s at >= 10k pending\"],\n",
    );
    s.push_str("  \"topology\": [\n");
    for (i, p) in report.topology.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"nodes\": {}, \"routers\": {}, \"hosts\": {}, \"links\": {}, \
             \"flows\": {}, \"packets\": {}, \"churn_events\": {}, \"backend\": \"{}\", \
             \"delivered\": {}, \"delivery_frac\": {}, \"forwarded\": {}, \
             \"sim_end_ns\": {}, \"wall_ms\": {}, \"pkts_per_sec\": {}}}{}\n",
            p.nodes,
            p.routers,
            p.hosts,
            p.links,
            p.flows,
            p.packets,
            p.churn_events,
            p.backend,
            p.delivered,
            fmt_f64(p.delivery_frac),
            p.forwarded,
            p.sim_end_ns,
            fmt_f64(p.wall_ms),
            fmt_f64(p.pkts_per_sec),
            if i + 1 < report.topology.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"event_core\": [\n");
    for (i, p) in report.event_core.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"backend\": \"{}\", \"pending\": {}, \"ops\": {}, \"ops_per_sec\": {}}}{}\n",
            p.backend,
            p.pending,
            p.ops,
            fmt_f64(p.ops_per_sec),
            if i + 1 < report.event_core.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

/// Where the committed artifact lives.
pub fn default_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_net.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_shape_matches_the_sweep_contract() {
        let (topo, routers, hosts) = ring_topology(16);
        assert_eq!(routers.len(), 4);
        assert_eq!(hosts.len(), 12);
        // 4 ring links + 4 host LANs.
        assert_eq!(topo.link_count(), 8);
        assert_eq!(topo.node_count(), 16);
        // Every host can reach every other host's IP.
        for a in &hosts {
            for b in &hosts {
                if a != b {
                    assert!(topo.first_hop(*a, topo.ip(*b)).is_some());
                }
            }
        }
    }

    #[test]
    fn tiny_ring_degenerates_to_one_lan() {
        let (topo, routers, hosts) = ring_topology(4);
        assert_eq!(routers.len(), 1);
        assert_eq!(hosts.len(), 3);
        assert_eq!(topo.link_count(), 1, "one router, no ring: a single LAN");
    }

    #[test]
    fn backends_simulate_identical_histories_with_churn() {
        // 16 nodes → 4 routers, so the churn path (run_until +
        // update_route) is exercised, on a workload small enough for
        // debug builds.
        let (heap, _) = run_cell(16, 300, QueueBackend::Heap, 0xD0_0D);
        let (cal, _) = run_cell(16, 300, QueueBackend::Calendar, 0xD0_0D);
        assert_eq!(heap, cal);
        assert!(heap.forwarded > 0, "inter-LAN traffic crossed the ring");
        let delivered: u64 = heap.received.iter().sum();
        assert_eq!(delivered as usize, heap.packets, "exact delivery");
    }

    #[test]
    fn hold_model_reports_finite_throughput() {
        for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
            let ops = hold_ops_per_sec(backend, 256, 2_000, 1);
            assert!(ops.is_finite() && ops > 0.0, "{backend:?}: {ops}");
        }
    }

    #[test]
    fn json_has_the_campaign_shape() {
        let report = NetReport {
            seed: 7,
            smoke: true,
            topology: vec![TopoPoint {
                nodes: 4,
                routers: 1,
                hosts: 3,
                links: 1,
                flows: 10,
                packets: 13,
                churn_events: 0,
                backend: "heap",
                delivered: 13,
                delivery_frac: 1.0,
                forwarded: 0,
                sim_end_ns: 42,
                wall_ms: 0.5,
                pkts_per_sec: 26_000.0,
            }],
            event_core: vec![HoldPoint {
                backend: "calendar",
                pending: 1_000,
                ops: 100,
                ops_per_sec: 1e6,
            }],
        };
        let json = to_json(&report);
        for key in [
            "\"campaign\": \"net\"",
            "\"topology\"",
            "\"event_core\"",
            "\"delivery_frac\": 1.000",
            "\"pending\": 1000",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert!(default_path().ends_with("BENCH_net.json"));
    }
}
