//! Tables 6-2 through 6-5: the VMTP comparisons.
//!
//! * table 6-2 — minimal round-trip (read zero bytes from a file):
//!   packet filter 14.7 ms, Unix kernel 7.44 ms, V kernel 7.32 ms;
//! * table 6-3 — bulk data (repeated 16 KB file-segment reads, ~1 MB):
//!   packet filter 112 KB/s, Unix kernel 336 KB/s, V kernel 278 KB/s,
//!   Unix kernel TCP 222 KB/s;
//! * table 6-4 — received-packet batching: 112 vs 64 KB/s;
//! * table 6-5 — an interposed user-level demultiplexing process:
//!   +20 % latency on minimal operations, bulk 112 → 25 KB/s.

use crate::report::Report;
use pf_kernel::types::{HostId, ProcId};
use pf_kernel::world::World;
use pf_net::medium::Medium;
use pf_net::segment::FaultModel;
use pf_proto::ip::KernelIp;
use pf_proto::stream::{TcpBulkReceiver, TcpBulkSender};
use pf_proto::vmtp::SEGMENT_BYTES;
use pf_proto::vmtp_kernel::{KVmtpClient, KVmtpServer, KernelVmtp};
use pf_proto::vmtp_user::{DemuxProcess, VmtpUserClient, VmtpUserServer, Workload};
use pf_sim::cost::CostModel;
use pf_sim::time::SimTime;
use pf_sim::SimClock;

const SERVER_ENTITY: u32 = 0x20;
const CLIENT_ENTITY: u32 = 0x10;
const SERVER_ETH: u64 = 0x0B;
const MINIMAL_OPS: u64 = 50;
/// ~1 MB transferred per bulk trial, as in the paper ("about 1 Mb").
const BULK_OPS: u64 = 64;
const RUN_CAP: SimTime = SimTime(900 * 1_000_000_000);

/// Which VMTP implementation to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// User-level over the packet filter.
    PacketFilter,
    /// Ditto, without received-packet batching (table 6-4).
    PacketFilterNoBatch,
    /// Ditto, receiving through a user-level demultiplexer (table 6-5).
    PacketFilterViaDemux,
    /// Kernel-resident, Unix cost model.
    UnixKernel,
    /// Kernel-resident, V-kernel cost model.
    VKernel,
}

/// One measurement: per-op latency and bulk throughput.
#[derive(Debug, Clone, Copy)]
pub struct VmtpMeasurement {
    /// Milliseconds per minimal operation.
    pub per_op_ms: f64,
    /// Bulk throughput in KB/s.
    pub bulk_kbs: f64,
}

fn world_for(costs: &CostModel, kernel_vmtp: bool) -> (World, HostId, HostId) {
    let mut w = World::new(77);
    let seg = w.add_segment(Medium::standard_10mb(), FaultModel::default());
    let c = w.add_host("client", seg, 0x0A, costs.clone());
    let s = w.add_host("server", seg, SERVER_ETH, costs.clone());
    if kernel_vmtp {
        w.register_protocol(c, Box::new(KernelVmtp::new()));
        w.register_protocol(s, Box::new(KernelVmtp::new()));
    }
    (w, c, s)
}

fn run_user(variant: Variant, ops: u64, response_bytes: u32) -> (World, HostId, ProcId) {
    let (mut w, c, s) = world_for(&CostModel::microvax_ii(), false);
    // The measured machines were timesharing systems with other active
    // processes (§6.5.1): wakeups cost two context switches.
    w.set_contended(c, true);
    w.set_contended(s, true);
    let server = match variant {
        Variant::PacketFilterNoBatch => VmtpUserServer::new(SERVER_ENTITY).without_batching(),
        _ => VmtpUserServer::new(SERVER_ENTITY),
    };
    w.spawn(s, Box::new(server));
    let mut client = VmtpUserClient::new(
        CLIENT_ENTITY,
        SERVER_ENTITY,
        SERVER_ETH,
        Workload {
            ops,
            response_bytes,
        },
    );
    client = match variant {
        Variant::PacketFilterNoBatch => client.without_batching(),
        Variant::PacketFilterViaDemux => client.via_pipe(),
        _ => client,
    };
    let filter = client.filter();
    let p = w.spawn(c, Box::new(client));
    if variant == Variant::PacketFilterViaDemux {
        w.spawn(c, Box::new(DemuxProcess::new(filter, p).with_queue(1024)));
    }
    w.run_until(RUN_CAP);
    (w, c, p)
}

fn run_kernel(costs: CostModel, ops: u64, response_bytes: u32) -> (World, HostId, ProcId) {
    let (mut w, c, s) = world_for(&costs, true);
    w.spawn(s, Box::new(KVmtpServer::new(SERVER_ENTITY)));
    let p = w.spawn(
        c,
        Box::new(KVmtpClient::new(
            CLIENT_ENTITY,
            SERVER_ENTITY,
            SERVER_ETH,
            Workload {
                ops,
                response_bytes,
            },
        )),
    );
    w.run_until(RUN_CAP);
    (w, c, p)
}

/// Debug helper: bulk run with counters (used by the dbg binary).
pub fn debug_bulk(variant: Variant) -> String {
    let (w, c, p) = run_user(variant, BULK_OPS, SEGMENT_BYTES as u32);
    let app = w.app_ref::<VmtpUserClient>(c, p).expect("client");
    format!(
        "done={} bulk={:?} KB/s retries={} client: {} ",
        app.is_done(),
        app.throughput_bps().map(|b| (b / 1024.0) as u64),
        app.machine_retries(),
        w.counters(c)
    )
}

/// Measures one variant: minimal RTT and bulk throughput.
pub fn measure(variant: Variant) -> VmtpMeasurement {
    let (per_op_ms, bulk_kbs);
    match variant {
        Variant::UnixKernel | Variant::VKernel => {
            let costs = if variant == Variant::VKernel {
                CostModel::v_kernel()
            } else {
                CostModel::microvax_ii()
            };
            let (w, c, p) = run_kernel(costs.clone(), MINIMAL_OPS, 0);
            let app = w.app_ref::<KVmtpClient>(c, p).expect("client");
            assert!(app.is_done(), "kernel minimal workload finished");
            per_op_ms = app.per_op().expect("done").as_millis_f64();
            let (w, c, p) = run_kernel(costs, BULK_OPS, SEGMENT_BYTES as u32);
            let app = w.app_ref::<KVmtpClient>(c, p).expect("client");
            assert!(app.is_done(), "kernel bulk workload finished");
            bulk_kbs = app.throughput_bps().expect("done") / 1024.0;
        }
        _ => {
            let (w, c, p) = run_user(variant, MINIMAL_OPS, 0);
            let app = w.app_ref::<VmtpUserClient>(c, p).expect("client");
            assert!(
                app.is_done(),
                "user minimal workload finished ({variant:?})"
            );
            per_op_ms = app.per_op().expect("done").as_millis_f64();
            let (w, c, p) = run_user(variant, BULK_OPS, SEGMENT_BYTES as u32);
            let app = w.app_ref::<VmtpUserClient>(c, p).expect("client");
            assert!(app.is_done(), "user bulk workload finished ({variant:?})");
            bulk_kbs = app.throughput_bps().expect("done") / 1024.0;
        }
    }
    VmtpMeasurement {
        per_op_ms,
        bulk_kbs,
    }
}

/// Table 6-2: relative performance of VMTP for small messages.
pub fn report_table_6_2() -> Report {
    let rows = [
        ("Packet filter", Variant::PacketFilter, 14.7),
        ("Unix kernel", Variant::UnixKernel, 7.44),
        ("V kernel", Variant::VKernel, 7.32),
    ];
    let mut r = Report::new("Table 6-2", "VMTP minimal round-trip operation").headers(&[
        "implementation",
        "paper",
        "measured",
    ]);
    for (name, v, paper) in rows {
        let m = measure(v);
        r.row(&[
            name.to_string(),
            format!("{paper:.2} ms"),
            format!("{:.2} ms", m.per_op_ms),
        ]);
    }
    r.note("user-level implementation costs almost exactly a factor of two (§6.3)");
    r
}

/// Table 6-3: VMTP bulk data transfer, plus the kernel TCP row.
pub fn report_table_6_3() -> Report {
    let rows = [
        ("Packet filter", Variant::PacketFilter, 112.0),
        ("Unix kernel VMTP", Variant::UnixKernel, 336.0),
        ("V kernel VMTP", Variant::VKernel, 278.0),
    ];
    let mut r = Report::new("Table 6-3", "VMTP bulk data transfer").headers(&[
        "implementation",
        "paper",
        "measured",
    ]);
    for (name, v, paper) in rows {
        let m = measure(v);
        r.row(&[
            name.to_string(),
            format!("{paper:.0} KB/s"),
            format!("{:.0} KB/s", m.bulk_kbs),
        ]);
    }
    let tcp = measure_kernel_tcp_bulk();
    r.row(&[
        "Unix kernel TCP".to_string(),
        "222 KB/s".to_string(),
        format!("{tcp:.0} KB/s"),
    ]);
    r.note("user-level bulk pays about a factor of three (§6.3)");
    r
}

/// Kernel TCP bulk throughput in KB/s (the table 6-3 comparison row).
pub fn measure_kernel_tcp_bulk() -> f64 {
    let mut w = World::new(77);
    let seg = w.add_segment(Medium::standard_10mb(), FaultModel::default());
    let a = w.add_host("sender", seg, 0x0A, CostModel::microvax_ii());
    let b = w.add_host("receiver", seg, 0x0B, CostModel::microvax_ii());
    w.register_protocol(a, Box::new(KernelIp::new(10)));
    w.register_protocol(b, Box::new(KernelIp::new(11)));
    let rx = w.spawn(b, Box::new(TcpBulkReceiver::new(5000)));
    w.spawn(
        a,
        Box::new(TcpBulkSender::new(11, 5000, 0x0B, 1024 * 1024, 0)),
    );
    w.run_until(RUN_CAP);
    let r = w.app_ref::<TcpBulkReceiver>(b, rx).expect("receiver");
    assert!(r.is_done(), "TCP bulk finished");
    r.throughput_bps().expect("done") / 1024.0
}

/// Table 6-4: effect of received-packet batching.
pub fn report_table_6_4() -> Report {
    let with = measure(Variant::PacketFilter);
    let without = measure(Variant::PacketFilterNoBatch);
    let mut r = Report::new("Table 6-4", "Effect of received-packet batching")
        .headers(&["batching", "paper", "measured"]);
    r.row(&[
        "yes".into(),
        "112 KB/s".into(),
        format!("{:.0} KB/s", with.bulk_kbs),
    ]);
    r.row(&[
        "no".into(),
        "64 KB/s".into(),
        format!("{:.0} KB/s", without.bulk_kbs),
    ]);
    r.note(format!(
        "batching improves throughput by {:.0}% (paper: ~75%)",
        100.0 * (with.bulk_kbs / without.bulk_kbs - 1.0)
    ));
    r
}

/// Table 6-5: effect of a user-level demultiplexing process.
pub fn report_table_6_5() -> Report {
    let direct = measure(Variant::PacketFilter);
    let demux = measure(Variant::PacketFilterViaDemux);
    let mut r = Report::new("Table 6-5", "Effect of user-level demultiplexing").headers(&[
        "demultiplexing in",
        "minimal op (paper)",
        "minimal op (measured)",
        "bulk (paper)",
        "bulk (measured)",
    ]);
    r.row(&[
        "kernel".into(),
        "14.72 ms".into(),
        format!("{:.2} ms", direct.per_op_ms),
        "112 KB/s".into(),
        format!("{:.0} KB/s", direct.bulk_kbs),
    ]);
    r.row(&[
        "user process".into(),
        "18.08 ms".into(),
        format!("{:.2} ms", demux.per_op_ms),
        "25 KB/s".into(),
        format!("{:.0} KB/s", demux.bulk_kbs),
    ]);
    r.note("small cost for short messages, large cost for bulk (§6.3)");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_6_2_shape() {
        let pf = measure(Variant::PacketFilter).per_op_ms;
        let unix = measure(Variant::UnixKernel).per_op_ms;
        let v = measure(Variant::VKernel).per_op_ms;
        // Bands around the paper's absolute numbers…
        assert!(
            (9.0..22.0).contains(&pf),
            "pf per-op {pf:.2} ms (paper 14.7)"
        );
        assert!(
            (4.5..11.0).contains(&unix),
            "unix per-op {unix:.2} ms (paper 7.44)"
        );
        // …and the headline ratio: "almost exactly a factor of two".
        let ratio = pf / unix;
        assert!((1.5..2.8).contains(&ratio), "pf/unix ratio {ratio:.2}");
        // The V kernel is no slower than the Unix kernel.
        assert!(v <= unix * 1.05, "v {v:.2} vs unix {unix:.2}");
    }

    #[test]
    fn table_6_3_shape() {
        let pf = measure(Variant::PacketFilter).bulk_kbs;
        let unix = measure(Variant::UnixKernel).bulk_kbs;
        let tcp = measure_kernel_tcp_bulk();
        assert!(
            (60.0..200.0).contains(&pf),
            "pf bulk {pf:.0} KB/s (paper 112)"
        );
        assert!(
            (200.0..500.0).contains(&unix),
            "unix bulk {unix:.0} (paper 336)"
        );
        assert!(
            (130.0..330.0).contains(&tcp),
            "tcp bulk {tcp:.0} (paper 222)"
        );
        // Kernel VMTP beats kernel TCP (no checksums), which beats user pf.
        assert!(unix > tcp, "unchecksummed kernel VMTP beats TCP");
        assert!(tcp > pf, "kernel TCP beats user-level VMTP");
        // The paper saw a factor of three; our simulated pipeline overlaps
        // the two hosts' CPUs more than the 1987 system did, landing
        // nearer 1.5x — the ordering and direction are what we pin.
        let ratio = unix / pf;
        assert!(
            (1.3..4.5).contains(&ratio),
            "kernel/user bulk ratio {ratio:.2}"
        );
    }

    #[test]
    fn table_6_4_batching_helps_substantially() {
        let with = measure(Variant::PacketFilter).bulk_kbs;
        let without = measure(Variant::PacketFilterNoBatch).bulk_kbs;
        let gain = with / without - 1.0;
        // Paper: +75%.
        assert!(gain > 0.25, "batching gain {:.0}%", gain * 100.0);
    }

    #[test]
    fn table_6_5_demux_hurts_bulk_much_more_than_latency() {
        let direct = measure(Variant::PacketFilter);
        let demux = measure(Variant::PacketFilterViaDemux);
        let latency_penalty = demux.per_op_ms / direct.per_op_ms;
        let bulk_penalty = direct.bulk_kbs / demux.bulk_kbs;
        // Paper: 1.23x latency, 4.5x bulk.
        assert!(
            (1.02..1.8).contains(&latency_penalty),
            "latency {latency_penalty:.2}x"
        );
        assert!(
            bulk_penalty > 1.8,
            "bulk penalty {bulk_penalty:.2}x (paper ~4.5x)"
        );
        assert!(
            bulk_penalty > latency_penalty * 1.5,
            "bulk suffers much more than latency"
        );
    }
}
