//! §6.1: kernel per-packet processing time, gprof style.
//!
//! "A 4.3BSD Unix kernel was configured to collect the CPU time spent in
//! and number of calls made to each kernel subroutine. … During the
//! profiling period, the system handled 1.3 million packets. 21% of these
//! packets were processed by the packet filter; of the remainder, 69% were
//! IP packets and 10% were ARP packets."
//!
//! Headline numbers to reproduce:
//!
//! * packet filter: **1.57 ms** per packet, **41%** of it evaluating
//!   filter predicates, the average packet tested against **6.3**
//!   predicates; crude model **0.8 ms + 0.122 ms × predicates**;
//! * kernel IP: **1.77 ms** per packet through the transport layer,
//!   **0.49 ms** in the IP layer alone.

use crate::report::Report;
use pf_kernel::app::App;
use pf_kernel::types::{Fd, PortConfig, ReadError, ReadMode, RecvPacket, SockId};
use pf_kernel::world::{ProcCtx, World};
use pf_net::frame;
use pf_net::medium::Medium;
use pf_net::segment::FaultModel;
use pf_proto::arp::{oper, ArpPacket, KernelArp, ARP_ETHERTYPE};
use pf_proto::ip::{encode_ip, encode_udp, IpHeader, KernelIp, IP_ETHERTYPE, PROTO_TCP, PROTO_UDP};
use pf_proto::tcp::Segment;
use pf_sim::cost::CostModel;
use pf_sim::rng::SplitMix64;
use pf_sim::time::{SimDuration, SimTime};
use pf_sim::SimClock;

/// Packets in the synthetic profiling trace (the paper's 1.3 M scaled to
/// a laptop-friendly count; per-packet averages are what matter).
const TRACE: usize = 10_000;

/// Active packet-filter ports in the main run — uniform traffic over 12
/// ports tests (12+1)/2 = 6.5 predicates on average, the paper's 6.3.
const PORTS: usize = 12;

/// Traffic mix per §6.1: 21% packet filter, 69% IP, 10% ARP.
const PF_SHARE: f64 = 0.21;
const IP_SHARE: f64 = 0.69;

/// Per-run measurements.
#[derive(Debug, Clone, Copy)]
pub struct ProfileResult {
    /// Packet-filter CPU time per pf packet, ms.
    pub pf_ms_per_packet: f64,
    /// Fraction of pf time spent evaluating filters.
    pub filter_fraction: f64,
    /// Mean predicates applied per pf packet.
    pub predicates_per_packet: f64,
    /// IP-layer CPU time per IP packet, ms.
    pub ip_layer_ms: f64,
    /// IP + transport + delivery CPU time per IP packet, ms.
    pub transport_ms: f64,
    /// ARP CPU time per ARP packet, ms.
    pub arp_ms: f64,
}

/// A pf sink process for one Pup socket.
struct PupSink {
    socket: u16,
    fd: Option<Fd>,
    got: u64,
}

impl App for PupSink {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        let fd = k.pf_open();
        k.pf_set_filter(
            fd,
            pf_filter::samples::pup_socket_filter(10, 0, self.socket),
        );
        k.pf_configure(
            fd,
            PortConfig {
                read_mode: ReadMode::Batch,
                max_queue: 4096,
                ..Default::default()
            },
        );
        self.fd = Some(fd);
        k.pf_read(fd);
    }
    fn on_packets(&mut self, fd: Fd, packets: Vec<RecvPacket>, k: &mut ProcCtx<'_>) {
        self.got += packets.len() as u64;
        k.pf_read(fd);
    }
    fn on_read_error(&mut self, fd: Fd, _e: ReadError, k: &mut ProcCtx<'_>) {
        k.pf_read(fd);
    }
}

/// A UDP sink over the kernel stack.
struct UdpSink {
    got: u64,
}

impl App for UdpSink {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        let sock = k.ksock_open("ip").expect("ip registered");
        k.ksock_request(sock, pf_proto::ip::ops::UDP_BIND, Vec::new(), [53, 0, 0, 0]);
    }
    fn on_socket(&mut self, _s: SockId, op: u32, _d: Vec<u8>, _m: [u64; 4], _k: &mut ProcCtx<'_>) {
        if op == pf_proto::ip::ops::UDP_RECV {
            self.got += 1;
        }
    }
}

/// Runs the profiling workload with `ports` active pf ports; returns the
/// result plus raw (predicates, pf ms) for model fitting.
pub fn run(ports: usize) -> ProfileResult {
    let medium = Medium::experimental_3mb();
    let mut w = World::new(88);
    let seg = w.add_segment(medium, FaultModel::default());
    let h = w.add_host("profiled", seg, 0x0B, CostModel::microvax_ii());
    w.set_nic_capacity(h, 1 << 20);
    w.register_protocol(h, Box::new(KernelIp::new(11)));
    w.register_protocol(h, Box::new(KernelArp::new(11)));
    for i in 0..ports {
        w.spawn(
            h,
            Box::new(PupSink {
                socket: i as u16,
                fd: None,
                got: 0,
            }),
        );
    }
    w.spawn(h, Box::new(UdpSink { got: 0 }));

    // Setup, then snapshot the profiler baseline.
    w.run_until(SimTime(5_000_000));
    let base = w.profiler(h).clone();
    let base_counters = *w.counters(h);

    let mut rng = SplitMix64::new(2026);
    let (mut n_pf, mut n_ip, mut n_arp) = (0u64, 0u64, 0u64);
    let spacing = SimDuration::from_micros(2_500);
    let t0 = SimTime(10_000_000);
    for i in 0..TRACE {
        let at = t0 + spacing.times(i as u64);
        let dice = rng.next_f64();
        if dice < PF_SHARE {
            n_pf += 1;
            let sock = rng.below(ports as u64) as u16;
            let f = pf_filter::samples::pup_packet_3mb(2, 0, sock, 1);
            w.inject_frame(h, f, at);
        } else if dice < PF_SHARE + IP_SHARE {
            n_ip += 1;
            // The paper's IP traffic was a TCP-heavy mix; model it as
            // half UDP datagrams to a bound socket, half TCP data
            // segments (charged through `tcp_input` with checksums, like
            // the stream traffic a timesharing VAX carried).
            let l4_and_proto = if rng.chance(0.5) {
                (encode_udp(9999, 53, &[0u8; 64]), PROTO_UDP)
            } else {
                let seg = Segment {
                    src_port: 1023,
                    dst_port: 513,
                    seq: i as u32,
                    ack: 0,
                    flags: pf_proto::tcp::flags::ACK,
                    window: 4096,
                    data: vec![0u8; 512],
                };
                (seg.encode(), PROTO_TCP)
            };
            let ip = encode_ip(
                &IpHeader {
                    proto: l4_and_proto.1,
                    ttl: 30,
                    src: 10,
                    dst: 11,
                    total_len: 0,
                },
                &l4_and_proto.0,
            );
            let f = frame::build(&medium, 0x0B, 0x0A, IP_ETHERTYPE, &ip).expect("fits");
            w.inject_frame(h, f, at);
        } else {
            n_arp += 1;
            let arp = ArpPacket {
                oper: oper::ARP_REQUEST,
                sha: 0x0A,
                spa: 10,
                tha: 0,
                tpa: 11,
            };
            let f = arp.encode_frame(&medium, ARP_ETHERTYPE, medium.broadcast, 0x0A);
            w.inject_frame(h, f, at);
        }
    }
    w.run();

    let prof = w.profiler(h).clone();
    // Subtract the setup baseline.
    let delta = |name: &str| {
        SimDuration::from_nanos(prof.stats(name).time.as_nanos() - base.stats(name).time.as_nanos())
    };
    let counters = *w.counters(h) - base_counters;

    let pf_time = delta("pf:filter") + delta("pf:input") + delta("pf:read-copyout");
    let filter_time = delta("pf:filter");
    let ip_layer = delta("ip:input");
    let transport = ip_layer
        + delta("udp:input")
        + delta("tcp:input")
        + delta("tcp:cksum")
        + delta("sock:copyout")
        + delta("kern:wakeup");
    let arp_time = delta("arp:input");

    ProfileResult {
        pf_ms_per_packet: pf_time.as_millis_f64() / n_pf as f64,
        filter_fraction: filter_time.as_nanos() as f64 / pf_time.as_nanos().max(1) as f64,
        predicates_per_packet: counters.filters_applied as f64 / n_pf as f64,
        ip_layer_ms: ip_layer.as_millis_f64() / n_ip as f64,
        transport_ms: transport.as_millis_f64() / n_ip as f64,
        arp_ms: arp_time.as_millis_f64() / n_arp as f64,
    }
}

/// Fits the §6.1 linear model (pf ms = a + b × predicates) by sweeping the
/// number of active ports; returns (intercept, slope).
pub fn fit_model() -> (f64, f64) {
    let samples: Vec<(f64, f64)> = [2usize, 4, 8, 12, 16, 20]
        .into_iter()
        .map(|ports| {
            let r = run(ports);
            (r.predicates_per_packet, r.pf_ms_per_packet)
        })
        .collect();
    let n = samples.len() as f64;
    let sx: f64 = samples.iter().map(|s| s.0).sum();
    let sy: f64 = samples.iter().map(|s| s.1).sum();
    let sxx: f64 = samples.iter().map(|s| s.0 * s.0).sum();
    let sxy: f64 = samples.iter().map(|s| s.0 * s.1).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let intercept = (sy - slope * sx) / n;
    (intercept, slope)
}

/// Builds the §6.1 report.
pub fn report_section_6_1() -> Report {
    let r12 = run(PORTS);
    let (a, b) = fit_model();
    let mut r = Report::new("Section 6.1", "Kernel per-packet processing time")
        .headers(&["quantity", "paper", "measured"]);
    r.row(&[
        "pf time per packet".into(),
        "1.57 ms".into(),
        format!("{:.2} ms", r12.pf_ms_per_packet),
    ]);
    r.row(&[
        "share evaluating filters".into(),
        "41%".into(),
        format!("{:.0}%", 100.0 * r12.filter_fraction),
    ]);
    r.row(&[
        "predicates per packet".into(),
        "6.3".into(),
        format!("{:.1}", r12.predicates_per_packet),
    ]);
    r.row(&[
        "linear model".into(),
        "0.8 + 0.122n ms".into(),
        format!("{a:.2} + {b:.3}n ms"),
    ]);
    r.row(&[
        "IP-layer time per packet".into(),
        "0.49 ms".into(),
        format!("{:.2} ms", r12.ip_layer_ms),
    ]);
    r.row(&[
        "IP through transport".into(),
        "1.77 ms".into(),
        format!("{:.2} ms", r12.transport_ms),
    ]);
    r.row(&[
        "ARP time per packet".into(),
        "(profiled)".into(),
        format!("{:.2} ms", r12.arp_ms),
    ]);
    r.note("traffic mix 21% pf / 69% IP / 10% ARP, as in the paper's trace");
    r.note("IP traffic is half UDP datagrams, half checksummed TCP segments");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_6_1_headline_numbers() {
        let r = run(PORTS);
        // pf per-packet time near 1.57 ms.
        assert!(
            (1.0..2.3).contains(&r.pf_ms_per_packet),
            "pf per-packet {:.2} ms (paper 1.57)",
            r.pf_ms_per_packet
        );
        // ~41% of it in filter evaluation.
        assert!(
            (0.25..0.60).contains(&r.filter_fraction),
            "filter fraction {:.2} (paper 0.41)",
            r.filter_fraction
        );
        // ~6.3 predicates per packet with 12 active ports.
        assert!(
            (5.5..7.5).contains(&r.predicates_per_packet),
            "predicates {:.1} (paper 6.3)",
            r.predicates_per_packet
        );
        // IP layer ~0.49 ms.
        assert!(
            (0.40..0.60).contains(&r.ip_layer_ms),
            "IP layer {:.2} ms (paper 0.49)",
            r.ip_layer_ms
        );
        // The kernel-resident IP path is about 3x cheaper than pf per
        // packet ("the kernel-resident IP layer is about three times
        // faster than the packet filter at processing an average packet").
        let ratio = r.pf_ms_per_packet / r.ip_layer_ms;
        assert!(
            (2.0..4.5).contains(&ratio),
            "pf/IP-layer ratio {ratio:.1} (paper ~3.2)"
        );
    }

    #[test]
    fn linear_model_matches_paper_shape() {
        let (a, b) = fit_model();
        // Paper: 0.8 ms + 0.122 ms per predicate.
        assert!((0.5..1.2).contains(&a), "intercept {a:.2} (paper 0.8)");
        assert!((0.08..0.18).contains(&b), "slope {b:.3} (paper 0.122)");
    }
}
