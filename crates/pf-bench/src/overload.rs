//! Saturation campaign: `BENCH_overload.json`.
//!
//! Sweeps offered load from 0.5× to 8× of the unarmored receive path's
//! nominal capacity, across the four overload-armor tiers and three
//! demultiplexing engines, and measures what each configuration actually
//! *delivers* under that load:
//!
//! * **goodput** — wanted (high-priority) packets consumed by the user
//!   process per second, the receive-livelock observable;
//! * **useful-work fraction** — user CPU time over wall-clock, versus the
//!   demux and driver fractions that eat it under livelock;
//! * **drop location** — shed at the NIC by the admission gate, dropped
//!   at the ring, or dropped after demultiplexing at a full port queue;
//! * **p99 port latency** — demux-stamp → user-delivery delay on the
//!   wanted port (queue residency plus scheduling delay; time parked in
//!   the polling backlog before demux is *not* included).
//!
//! The signature result: the full-armor goodput curve stays flat past
//! saturation (8× within 20% of 1×) while the no-armor curve falls off a
//! cliff — the kernel spends its cycles on per-frame interrupts for
//! traffic it then throws away, and the consumer starves. A completed
//! sweep is itself the proof: every claim is an `assert!`.

use pf_filter::program::{Assembler, FilterProgram};
use pf_filter::samples;
use pf_filter::word::BinaryOp;
use pf_kernel::app::App;
use pf_kernel::types::{Fd, HostId, PortConfig, ReadMode, RecvPacket};
use pf_kernel::world::{OverloadConfig, ProcCtx, World};
use pf_kernel::{AdmissionConfig, AdmissionQuota, DemuxEngine};
use pf_net::medium::Medium;
use pf_net::segment::FaultModel;
use pf_sim::cost::CostModel;
use pf_sim::time::{SimDuration, SimTime};
use pf_sim::SimClock;

/// Destination socket of the wanted (high-priority, protected) stream.
pub const WANTED_SOCK: u16 = 35;
/// Destination socket of the best-effort junk flood.
pub const JUNK_SOCK: u16 = 99;
/// NIC receive-ring capacity used by every cell (hardware is held
/// constant across tiers; only the software armor varies).
pub const NIC_RING: usize = 256;

/// Default campaign seed (the value the committed artifact was produced
/// under); `--seed` overrides it.
pub const DEFAULT_SEED: u64 = 0x0E11_0AD5;
/// Per-packet application cost of consuming one wanted packet.
pub const CONSUME: SimDuration = SimDuration::from_micros(200);

/// The armor parameters every armored cell runs: a 16-frame high-water
/// mark, and a poll tick whose admitted-demux ceiling (16 frames / 8 ms
/// = 2000 pps) sits comfortably above the wanted rate, so bounding the
/// batch never becomes the bottleneck for protected traffic.
pub const BENCH_ARMOR: OverloadConfig = OverloadConfig {
    hi_watermark: 16,
    lo_watermark: 4,
    poll_batch: 16,
    poll_interval: SimDuration::from_millis(8),
};

/// The junk port's token bucket in the shedding tiers: a trickle, so
/// nearly the whole flood is shed at the NIC for the cost of one probe.
pub const JUNK_QUOTA: AdmissionQuota = AdmissionQuota {
    rate_pps: 50,
    burst: 32,
};

/// Nominal capacity of the *unarmored* receive path, packets per second:
/// the fixed per-frame interrupt cost plus one engine probe plus the
/// demux bookkeeping — what the kernel pays even for a frame it drops
/// right after demultiplexing. Offered-load multipliers are anchored to
/// this, so 1× is the edge of the livelock regime by construction.
pub fn capacity_pps() -> u64 {
    let m = CostModel::microvax_ii();
    let per = m.driver_rx_cost(frame_to_host(WANTED_SOCK).len()) + m.dtree_probe + m.pf_bookkeeping;
    1_000_000_000 / per.as_nanos().max(1)
}

/// Rate of the wanted stream: a quarter of nominal capacity, so even at
/// 0.5× total offered load the junk flood is the larger component.
pub fn wanted_pps() -> u64 {
    (capacity_pps() / 4).max(1)
}

/// A Pup frame link-addressed to the bench host, dst socket `sock`.
fn frame_to_host(sock: u16) -> Vec<u8> {
    let mut f = samples::pup_packet_3mb(2, 0, sock, 1);
    f[0] = 0x0B; // EtherDst
    f[1] = 0x0A; // EtherSrc
    f
}

/// A one-test filter whose leading comparison doubles as its admission
/// signature: `packet[DstSocketLo] == sock`.
fn socket_eq_filter(priority: u8, sock: u16) -> FilterProgram {
    Assembler::new(priority)
        .pushword(samples::WORD_DSTSOCKET_LO)
        .pushlit_op(BinaryOp::Eq, sock)
        .finish()
}

/// The armor tiers the campaign compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Armor {
    /// Per-packet interrupts all the way down (the seed behavior).
    None,
    /// Interrupt→polling switchover only.
    Polling,
    /// Polling plus the admission gate with a junk-port quota.
    Shedding,
    /// Shedding plus backpressure marks on both ports.
    Full,
}

impl Armor {
    /// Every tier, in escalation order.
    pub const ALL: [Armor; 4] = [Armor::None, Armor::Polling, Armor::Shedding, Armor::Full];

    /// Row label.
    pub fn label(self) -> &'static str {
        match self {
            Armor::None => "none",
            Armor::Polling => "polling",
            Armor::Shedding => "shedding",
            Armor::Full => "full",
        }
    }

    fn polling(self) -> bool {
        self != Armor::None
    }

    fn shedding(self) -> bool {
        matches!(self, Armor::Shedding | Armor::Full)
    }

    fn full(self) -> bool {
        self == Armor::Full
    }
}

/// The engines the campaign sweeps (the compiled ladder; `Jit` degrades
/// to per-member threaded code when the `jit` feature is off).
pub const ENGINES: [(DemuxEngine, &str); 3] = [
    (DemuxEngine::DecisionTable, "dtree"),
    (DemuxEngine::Sharded, "sharded"),
    (DemuxEngine::Jit, "jit"),
];

/// The consumer of the wanted stream: batch reads, per-packet compute,
/// and a demux-stamp → delivery latency sample per packet.
struct Consumer {
    backpressure_mark: Option<usize>,
    fd: Option<Fd>,
    got: u64,
    latencies_ns: Vec<u64>,
}

impl App for Consumer {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        let fd = k.pf_open();
        assert!(k.pf_set_filter(fd, socket_eq_filter(200, WANTED_SOCK)));
        k.pf_configure(
            fd,
            PortConfig {
                read_mode: ReadMode::Batch,
                max_queue: 64,
                timestamp: true,
                backpressure_mark: self.backpressure_mark,
                ..Default::default()
            },
        );
        self.fd = Some(fd);
        k.pf_read(fd);
    }

    fn on_packets(&mut self, fd: Fd, packets: Vec<RecvPacket>, k: &mut ProcCtx<'_>) {
        let now = k.now();
        for p in &packets {
            if let Some(stamp) = p.stamp {
                self.latencies_ns.push(now.since(stamp).as_nanos());
            }
        }
        self.got += packets.len() as u64;
        k.compute("user:consume", CONSUME.times(packets.len() as u64));
        k.pf_read(fd);
    }
}

/// The junk port's owner: binds the best-effort filter (and its quota /
/// backpressure mark where the tier arms them) and never reads, so junk
/// that survives admission piles up and drops after demultiplexing.
struct Sink {
    quota: Option<AdmissionQuota>,
    backpressure_mark: Option<usize>,
}

impl App for Sink {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        let fd = k.pf_open();
        assert!(k.pf_set_filter(fd, socket_eq_filter(10, JUNK_SOCK)));
        k.pf_configure(
            fd,
            PortConfig {
                max_queue: 64,
                backpressure_mark: self.backpressure_mark,
                ..Default::default()
            },
        );
        if self.quota.is_some() {
            k.pf_set_quota(fd, self.quota);
        }
    }
}

/// Injects a periodic stream of `pps` frames to `sock` over
/// `[start, end)`, phase-shifted by `phase_ns`; returns the count.
fn inject_stream(
    w: &mut World,
    host: HostId,
    sock: u16,
    pps: u64,
    start: SimTime,
    end: SimTime,
    phase_ns: u64,
) -> u64 {
    if pps == 0 {
        return 0;
    }
    let step = 1_000_000_000 / pps;
    let mut t = start.0 + phase_ns;
    let mut n = 0;
    while t < end.0 {
        w.inject_frame(host, frame_to_host(sock), SimTime(t));
        t += step;
        n += 1;
    }
    n
}

/// One cell's measurements.
#[derive(Debug, Clone, Copy)]
pub struct OverloadPoint {
    /// Engine label.
    pub engine: &'static str,
    /// Armor-tier label.
    pub armor: &'static str,
    /// Offered load as a multiple of [`capacity_pps`].
    pub offered_x: f64,
    /// Total offered rate, packets per second.
    pub offered_pps: u64,
    /// Wanted / junk frames injected.
    pub wanted_offered: u64,
    /// Junk frames injected.
    pub junk_offered: u64,
    /// Wanted packets consumed by the user process, per second.
    pub goodput_pps: f64,
    /// User CPU time / wall clock.
    pub useful_frac: f64,
    /// Packet-filter (admit + demux + deliver) CPU time / wall clock.
    pub demux_frac: f64,
    /// Driver (interrupt + poll) CPU time / wall clock.
    pub driver_frac: f64,
    /// Frames shed by the admission gate (drop-at-NIC).
    pub drops_admission: u64,
    /// Frames dropped at a full port queue (drop-after-demux).
    pub drops_queue_full: u64,
    /// Frames dropped at the receive ring / polling backlog.
    pub drops_interface: u64,
    /// Frames no filter accepted.
    pub drops_no_match: u64,
    /// p99 demux-stamp → delivery latency on the wanted port, µs.
    pub p99_latency_us: u64,
    /// Poll ticks taken.
    pub poll_batches: u64,
    /// Interrupt↔polling transitions.
    pub rx_mode_switches: u64,
    /// Backpressure notifications delivered.
    pub backpressure_signals: u64,
}

/// Runs one (engine, armor, offered-multiple) cell for `duration` of
/// simulated time and returns its measurements. Fully deterministic for
/// a given `seed` (the world's fault/arrival randomness source).
pub fn run_cell(
    engine: DemuxEngine,
    engine_label: &'static str,
    armor: Armor,
    mult: f64,
    duration: SimDuration,
    seed: u64,
) -> OverloadPoint {
    let mut w = World::new(seed);
    let seg = w.add_segment(Medium::experimental_3mb(), FaultModel::default());
    let host = w.add_host("bob", seg, 0x0B, CostModel::microvax_ii());
    w.set_nic_capacity(host, NIC_RING);
    w.set_demux_engine(host, engine);
    if armor.polling() {
        w.set_overload_armor(host, Some(BENCH_ARMOR));
    }
    if armor.shedding() {
        w.set_admission_control(host, Some(AdmissionConfig::default()));
    }
    let consumer = w.spawn(
        host,
        Box::new(Consumer {
            backpressure_mark: armor.full().then_some(48),
            fd: None,
            got: 0,
            latencies_ns: Vec::new(),
        }),
    );
    w.spawn(
        host,
        Box::new(Sink {
            quota: armor.shedding().then_some(JUNK_QUOTA),
            backpressure_mark: armor.full().then_some(48),
        }),
    );

    let wanted = wanted_pps();
    let offered = (mult * capacity_pps() as f64).round() as u64;
    let junk = offered.saturating_sub(wanted);
    let start = SimTime(1_000_000);
    let end = SimTime(start.0 + duration.as_nanos());
    let wanted_offered = inject_stream(&mut w, host, WANTED_SOCK, wanted, start, end, 0);
    let junk_offered = inject_stream(&mut w, host, JUNK_SOCK, junk, start, end, 7_001);
    w.run_until(end);

    let app = w.app_ref::<Consumer>(host, consumer).expect("consumer");
    let mut lat = app.latencies_ns.clone();
    lat.sort_unstable();
    let p99_latency_us = if lat.is_empty() {
        0
    } else {
        lat[(lat.len() - 1) * 99 / 100] / 1_000
    };
    let wall = duration.as_nanos() as f64;
    let frac = |prefix: &str| w.profiler(host).time_with_prefix(prefix).as_nanos() as f64 / wall;
    let c = w.counters(host);
    OverloadPoint {
        engine: engine_label,
        armor: armor.label(),
        offered_x: mult,
        offered_pps: offered,
        wanted_offered,
        junk_offered,
        goodput_pps: app.got as f64 / duration.as_secs_f64(),
        useful_frac: frac("user:"),
        demux_frac: frac("pf:"),
        driver_frac: frac("driver:"),
        drops_admission: c.drops_admission,
        drops_queue_full: c.drops_queue_full,
        drops_interface: c.drops_interface,
        drops_no_match: c.drops_no_match,
        p99_latency_us,
        poll_batches: c.poll_batches,
        rx_mode_switches: c.rx_mode_switches,
        backpressure_signals: c.backpressure_signals,
    }
}

/// The whole campaign.
#[derive(Debug, Clone)]
pub struct OverloadReport {
    /// Seed every cell's [`World`] ran under (recorded for replay).
    pub seed: u64,
    /// Nominal unarmored capacity the multipliers are anchored to.
    pub capacity_pps: u64,
    /// Wanted-stream rate.
    pub wanted_pps: u64,
    /// Per-cell simulated duration.
    pub duration: SimDuration,
    /// Every (engine × armor × offered-multiple) cell.
    pub rows: Vec<OverloadPoint>,
}

impl OverloadReport {
    /// The row for one cell.
    pub fn cell(&self, engine: &str, armor: &str, mult: f64) -> &OverloadPoint {
        self.rows
            .iter()
            .find(|r| r.engine == engine && r.armor == armor && r.offered_x == mult)
            .expect("cell swept")
    }
}

/// Runs the sweep and asserts the campaign's invariants for every
/// engine: the full-armor goodput at 8× is within 20% of its 1× value
/// (flat past saturation), the no-armor goodput at 8× is less than half
/// its 1× value (the livelock cliff), shedding moves drops from
/// after-demux to the NIC, and armor buys back useful-work fraction at
/// saturation. A violated invariant panics with the offending cell.
pub fn sweep(smoke: bool, seed: u64) -> OverloadReport {
    let mults: &[f64] = if smoke {
        &[1.0, 8.0]
    } else {
        &[0.5, 1.0, 2.0, 4.0, 8.0]
    };
    let duration = if smoke {
        SimDuration::from_millis(800)
    } else {
        SimDuration::from_secs(3)
    };
    let mut rows = Vec::new();
    for (engine, label) in ENGINES {
        for armor in Armor::ALL {
            for &mult in mults {
                rows.push(run_cell(engine, label, armor, mult, duration, seed));
            }
        }
    }
    let report = OverloadReport {
        seed,
        capacity_pps: capacity_pps(),
        wanted_pps: wanted_pps(),
        duration,
        rows,
    };

    for (_, label) in ENGINES {
        let full_1 = report.cell(label, "full", 1.0);
        let full_8 = report.cell(label, "full", 8.0);
        let none_1 = report.cell(label, "none", 1.0);
        let none_8 = report.cell(label, "none", 8.0);
        assert!(
            full_8.goodput_pps >= 0.8 * full_1.goodput_pps && full_8.goodput_pps > 0.0,
            "{label}: full armor must stay flat past saturation: \
             1x {:.1} pps vs 8x {:.1} pps",
            full_1.goodput_pps,
            full_8.goodput_pps
        );
        assert!(
            none_8.goodput_pps < 0.5 * none_1.goodput_pps,
            "{label}: no armor must fall off the livelock cliff: \
             1x {:.1} pps vs 8x {:.1} pps",
            none_1.goodput_pps,
            none_8.goodput_pps
        );
        assert!(
            full_8.useful_frac > none_8.useful_frac,
            "{label}: armor must buy back useful work at 8x: \
             full {:.3} vs none {:.3}",
            full_8.useful_frac,
            none_8.useful_frac
        );
        // Drop location: with the gate armed the flood is shed at the
        // NIC; without it, it is paid for and then thrown away after
        // demultiplexing (or overruns the ring).
        assert!(
            full_8.drops_admission > full_8.drops_queue_full,
            "{label}: full armor sheds at the NIC: {full_8:?}"
        );
        assert!(
            none_8.drops_queue_full + none_8.drops_interface > 0,
            "{label}: unarmored overload drops after paying for demux: {none_8:?}"
        );
        // The armored tiers actually engaged their machinery.
        assert!(
            full_8.poll_batches > 0 && full_8.rx_mode_switches >= 1,
            "{label}: polling must engage at 8x: {full_8:?}"
        );
    }
    report
}

fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

/// Renders the campaign as JSON (hand-rolled: the build is hermetic, no
/// serde).
pub fn to_json(report: &OverloadReport) -> String {
    let mut s = String::from("{\n  \"experiment\": \"overload\",\n");
    s.push_str(
        "  \"workload\": \"protected high-priority stream plus a best-effort flood, \
         offered at 0.5x-8x of unarmored receive capacity, across armor tiers \
         {none, polling, shedding, full} and demux engines {dtree, sharded, jit}\",\n",
    );
    s.push_str(&format!("  \"seed\": {},\n", report.seed));
    s.push_str(&format!(
        "  \"capacity_pps\": {},\n  \"wanted_pps\": {},\n  \"duration_ms\": {},\n",
        report.capacity_pps,
        report.wanted_pps,
        report.duration.as_nanos() / 1_000_000
    ));
    s.push_str("  \"rows\": [\n");
    for (i, p) in report.rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"engine\": \"{}\", \"armor\": \"{}\", \"offered_x\": {}, \
             \"offered_pps\": {}, \"wanted_offered\": {}, \"junk_offered\": {}, \
             \"goodput_pps\": {}, \"useful_frac\": {}, \"demux_frac\": {}, \
             \"driver_frac\": {}, \"drops_admission\": {}, \"drops_queue_full\": {}, \
             \"drops_interface\": {}, \"drops_no_match\": {}, \"p99_latency_us\": {}, \
             \"poll_batches\": {}, \"rx_mode_switches\": {}, \
             \"backpressure_signals\": {}}}{}\n",
            p.engine,
            p.armor,
            fmt_f64(p.offered_x),
            p.offered_pps,
            p.wanted_offered,
            p.junk_offered,
            fmt_f64(p.goodput_pps),
            fmt_f64(p.useful_frac),
            fmt_f64(p.demux_frac),
            fmt_f64(p.driver_frac),
            p.drops_admission,
            p.drops_queue_full,
            p.drops_interface,
            p.drops_no_match,
            p.p99_latency_us,
            p.poll_batches,
            p.rx_mode_switches,
            p.backpressure_signals,
            if i + 1 == report.rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"signature\": {\n");
    for (ei, (_, label)) in ENGINES.iter().enumerate() {
        let ratio = |armor: &str| {
            let one = report.cell(label, armor, 1.0).goodput_pps;
            let eight = report.cell(label, armor, 8.0).goodput_pps;
            if one > 0.0 {
                eight / one
            } else {
                f64::NAN
            }
        };
        s.push_str(&format!(
            "    \"{}\": {{\"full_8x_over_1x\": {}, \"none_8x_over_1x\": {}}}{}\n",
            label,
            fmt_f64(ratio("full")),
            fmt_f64(ratio("none")),
            if ei + 1 == ENGINES.len() { "" } else { "," }
        ));
    }
    s.push_str("  }\n}\n");
    s
}

/// Default output path: the repository root's `BENCH_overload.json`.
pub fn default_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_overload.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_are_deterministic() {
        let d = SimDuration::from_millis(300);
        let a = run_cell(
            DemuxEngine::Sharded,
            "sharded",
            Armor::Full,
            4.0,
            d,
            DEFAULT_SEED,
        );
        let b = run_cell(
            DemuxEngine::Sharded,
            "sharded",
            Armor::Full,
            4.0,
            d,
            DEFAULT_SEED,
        );
        assert_eq!(a.goodput_pps, b.goodput_pps);
        assert_eq!(a.drops_admission, b.drops_admission);
        assert_eq!(a.p99_latency_us, b.p99_latency_us);
    }

    #[test]
    fn smoke_sweep_holds_every_invariant() {
        let report = sweep(true, DEFAULT_SEED);
        // 3 engines x 4 tiers x 2 multiples.
        assert_eq!(report.rows.len(), 24);
        let json = to_json(&report);
        assert!(json.contains("\"experiment\": \"overload\""));
        assert!(json.contains("\"signature\""));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces:\n{json}"
        );
    }
}
