//! Machine-readable demux-scaling results: `BENCH_demux.json`.
//!
//! The breakeven sweep and the ablation table live in EXPERIMENTS.md
//! prose; this module races the demultiplexing engines
//! (flat-sequential interpreter, §7 decision table, flat IR set, sharded
//! value-numbered set, and — with the `jit` feature — a priority-ordered
//! walk of template-JIT native filters) over growing multi-ethertype
//! populations and writes the results as JSON — engine, population size,
//! ns/packet, and per-packet executed-test counts — so the perf
//! trajectory can be tracked across PRs by a machine instead of a reader.
//!
//! Timing is real wall clock over the set structures themselves (no
//! simulated world), averaged over a deterministic round-robin traffic
//! mix. The executed-test counters come from the sets' own stats and are
//! exact; tests assert on those (deterministic), never on timing.

use pf_filter::dtree::FilterSet;
use pf_filter::interp::CheckedInterpreter;
use pf_filter::packet::PacketView;
use pf_filter::program::{Assembler, FilterProgram};
use pf_filter::samples;
use pf_filter::word::BinaryOp;
use pf_ir::set::{IrFilterSet, ShardedVnSet};
use std::hint::black_box;
use std::time::Instant;

/// Ethernet types cycled through the synthetic population: a protocol
/// mix, so neither "everything shares one guard" nor "nothing shares".
pub const ETHERTYPES: [u16; 8] = [2, 3, 5, 8, 11, 17, 23, 29];

/// Engines raced per population point (the `jit` feature adds one more).
pub const ENGINES_RACED: usize = 4 + if cfg!(feature = "jit") { 1 } else { 0 };

/// One engine × population measurement.
#[derive(Debug, Clone)]
pub struct DemuxPoint {
    /// Engine label: `sequential`, `dtree`, `ir`, `sharded`, or `jit`.
    pub engine: &'static str,
    /// Active filters.
    pub population: usize,
    /// Mean wall-clock nanoseconds per packet.
    pub ns_per_packet: f64,
    /// Mean interned tests evaluated fresh per packet (0 for engines
    /// without a shared test table).
    pub tests_evaluated_per_packet: f64,
    /// Mean memoized test hits per packet.
    pub tests_memoized_per_packet: f64,
    /// Mean members evaluated per packet.
    pub filters_evaluated_per_packet: f64,
}

/// The `i`-th member of the multi-ethertype population, in the figure 3-9
/// idiom: the selective per-member socket test first (`CAND`, so the
/// common mismatch exits early), the protocol's ethertype compare *last*.
/// That trailing compare is exactly what guard-prefix sharing cannot
/// reach and set-level value numbering can; the socket word is what the
/// shard index discriminates on.
pub fn multi_ethertype_filter(i: usize) -> FilterProgram {
    let ethertype = ETHERTYPES[i % ETHERTYPES.len()];
    let socket = 100 + (i / ETHERTYPES.len()) as u16;
    Assembler::new(10)
        .pushword(8)
        .pushlit_op(BinaryOp::Cand, socket)
        .pushword(1)
        .pushlit_op(BinaryOp::Eq, ethertype)
        .finish()
}

/// The packet the `i`-th member (and only it) accepts.
pub fn packet_for(i: usize) -> Vec<u8> {
    let ethertype = ETHERTYPES[i % ETHERTYPES.len()];
    let socket = 100 + (i / ETHERTYPES.len()) as u16;
    samples::pup_packet_3mb(ethertype, 0, socket, 1)
}

/// A deterministic traffic mix over a population of `n`: every fourth
/// packet matches nobody (a stray ethertype), the rest round-robin over
/// the members.
pub fn traffic(n: usize, packets: usize) -> Vec<Vec<u8>> {
    (0..packets)
        .map(|j| {
            if j % 4 == 3 {
                samples::pup_packet_3mb(0x600, 0, 1, 1) // no member matches
            } else {
                packet_for((j * 7) % n) // coprime stride: all shards hit
            }
        })
        .collect()
}

fn time_per_packet(packets: &[Vec<u8>], mut eval: impl FnMut(&[u8])) -> f64 {
    for p in packets.iter().take(packets.len() / 4) {
        eval(black_box(p));
    }
    let start = Instant::now();
    for p in packets {
        eval(black_box(p));
    }
    start.elapsed().as_nanos() as f64 / packets.len() as f64
}

/// Measures all four engines at one population size.
pub fn measure(population: usize, packets_per_point: usize) -> Vec<DemuxPoint> {
    let filters: Vec<(u32, FilterProgram)> = (0..population)
        .map(|i| (i as u32, multi_ethertype_filter(i)))
        .collect();
    let packets = traffic(population, packets_per_point);
    let n = packets.len() as f64;
    let mut out = Vec::new();

    // Flat-sequential: the figure 4-1 loop over checked interpretations.
    let interp = CheckedInterpreter::default();
    let ns = time_per_packet(&packets, |p| {
        let view = PacketView::new(p);
        black_box(filters.iter().find(|(_, f)| interp.eval(f, view)));
    });
    out.push(DemuxPoint {
        engine: "sequential",
        population,
        ns_per_packet: ns,
        tests_evaluated_per_packet: 0.0,
        tests_memoized_per_packet: 0.0,
        filters_evaluated_per_packet: {
            // First-match walk: count members actually interpreted.
            let mut applied = 0u64;
            for p in &packets {
                let view = PacketView::new(p);
                for (_, f) in &filters {
                    applied += 1;
                    if interp.eval(f, view) {
                        break;
                    }
                }
            }
            applied as f64 / n
        },
    });

    // §7 decision table.
    let mut dtree = FilterSet::new();
    for (id, f) in &filters {
        dtree.insert(*id, f.clone());
    }
    let ns = time_per_packet(&packets, |p| {
        black_box(dtree.first_match(PacketView::new(p)));
    });
    out.push(DemuxPoint {
        engine: "dtree",
        population,
        ns_per_packet: ns,
        tests_evaluated_per_packet: 0.0,
        tests_memoized_per_packet: 0.0,
        filters_evaluated_per_packet: 0.0,
    });

    // Flat IR set (guard-prefix sharing, walks every member).
    let mut ir = IrFilterSet::new();
    for (id, f) in &filters {
        ir.insert(*id, f.clone());
    }
    let ns = time_per_packet(&packets, |p| {
        black_box(ir.matches_with_stats(PacketView::new(p)).0.len());
    });
    let mut te = 0u64;
    let mut tm = 0u64;
    let mut fe = 0u64;
    for p in &packets {
        let (_, s) = ir.matches_with_stats(PacketView::new(p));
        te += u64::from(s.tests_evaluated);
        tm += u64::from(s.tests_memoized);
        fe += u64::from(s.filters_evaluated);
    }
    out.push(DemuxPoint {
        engine: "ir",
        population,
        ns_per_packet: ns,
        tests_evaluated_per_packet: te as f64 / n,
        tests_memoized_per_packet: tm as f64 / n,
        filters_evaluated_per_packet: fe as f64 / n,
    });

    // Sharded value-numbered set.
    let mut sharded = ShardedVnSet::new();
    for (id, f) in &filters {
        sharded.insert(*id, f.clone());
    }
    let ns = time_per_packet(&packets, |p| {
        black_box(sharded.matches_with_stats(PacketView::new(p)).0.len());
    });
    let mut te = 0u64;
    let mut tm = 0u64;
    let mut fe = 0u64;
    for p in &packets {
        let (_, s) = sharded.matches_with_stats(PacketView::new(p));
        te += u64::from(s.tests_evaluated);
        tm += u64::from(s.tests_memoized);
        fe += u64::from(s.filters_evaluated);
    }
    out.push(DemuxPoint {
        engine: "sharded",
        population,
        ns_per_packet: ns,
        tests_evaluated_per_packet: te as f64 / n,
        tests_memoized_per_packet: tm as f64 / n,
        filters_evaluated_per_packet: fe as f64 / n,
    });

    // Template JIT: a priority-ordered first-match walk of per-member
    // native code (the kernel's `DemuxEngine::Jit` shape), no set-level
    // sharing at all — the race shows where raw per-member speed beats
    // structural work-sharing and where it stops scaling.
    #[cfg(feature = "jit")]
    {
        let jitted: Vec<pf_ir::JitFilter> = filters
            .iter()
            .map(|(_, f)| pf_ir::JitFilter::compile(f.clone()).expect("population validates"))
            .collect();
        let ns = time_per_packet(&packets, |p| {
            let view = PacketView::new(p);
            black_box(jitted.iter().position(|f| f.eval(view)));
        });
        let mut fe = 0u64;
        for p in &packets {
            let view = PacketView::new(p);
            for f in &jitted {
                fe += 1;
                if f.eval(view) {
                    break;
                }
            }
        }
        out.push(DemuxPoint {
            engine: "jit",
            population,
            ns_per_packet: ns,
            tests_evaluated_per_packet: 0.0,
            tests_memoized_per_packet: 0.0,
            filters_evaluated_per_packet: fe as f64 / n,
        });
    }

    out
}

/// The full sweep (1 → 512 filters), or the tiny CI smoke sweep.
pub fn sweep(smoke: bool) -> Vec<DemuxPoint> {
    let populations: &[usize] = if smoke {
        &[1, 4, 16]
    } else {
        &[1, 4, 16, 64, 256, 512]
    };
    let packets = if smoke { 400 } else { 2_000 };
    populations
        .iter()
        .flat_map(|&n| measure(n, packets))
        .collect()
}

fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.2}")
    } else {
        "null".to_string()
    }
}

/// Renders the sweep as JSON (hand-rolled: the build is hermetic, no
/// serde).
pub fn to_json(points: &[DemuxPoint]) -> String {
    let mut s = String::from("{\n  \"experiment\": \"demux_scaling\",\n");
    s.push_str("  \"unit\": \"ns/packet, wall clock\",\n");
    s.push_str(
        "  \"workload\": \"multi-ethertype population (8 ethertypes x n/8 sockets), \
         round-robin traffic with 25% no-match strays\",\n",
    );
    s.push_str("  \"rows\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"engine\": \"{}\", \"population\": {}, \"ns_per_packet\": {}, \
             \"tests_evaluated_per_packet\": {}, \"tests_memoized_per_packet\": {}, \
             \"filters_evaluated_per_packet\": {}}}{}\n",
            p.engine,
            p.population,
            fmt_f64(p.ns_per_packet),
            fmt_f64(p.tests_evaluated_per_packet),
            fmt_f64(p.tests_memoized_per_packet),
            fmt_f64(p.filters_evaluated_per_packet),
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Default output path: the repository root's `BENCH_demux.json`.
pub fn default_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_demux.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All four engines agree on every verdict over the traffic mix.
    #[test]
    fn engines_agree_on_the_synthetic_population() {
        let n = 40;
        let filters: Vec<(u32, FilterProgram)> = (0..n)
            .map(|i| (i as u32, multi_ethertype_filter(i)))
            .collect();
        let interp = CheckedInterpreter::default();
        let mut dtree = FilterSet::new();
        let mut ir = IrFilterSet::new();
        let mut sharded = ShardedVnSet::new();
        for (id, f) in &filters {
            dtree.insert(*id, f.clone());
            ir.insert(*id, f.clone());
            sharded.insert(*id, f.clone());
        }
        for p in traffic(n, 200) {
            let view = PacketView::new(&p);
            let expect: Vec<u32> = filters
                .iter()
                .filter(|(_, f)| interp.eval(f, view))
                .map(|(id, _)| *id)
                .collect();
            assert_eq!(dtree.matches(view), expect);
            assert_eq!(ir.matches(view), expect);
            assert_eq!(sharded.matches(view), expect);
        }
    }

    /// The acceptance-criteria shape, asserted on deterministic counters
    /// rather than wall clock: at a 256-filter multi-ethertype population
    /// the sharded set evaluates a small bounded number of tests and
    /// members per packet, where the flat IR set walks all 256.
    #[test]
    fn sharded_work_is_population_independent_at_256() {
        let n = 256;
        let mut ir = IrFilterSet::new();
        let mut sharded = ShardedVnSet::new();
        for i in 0..n {
            ir.insert(i as u32, multi_ethertype_filter(i));
            sharded.insert(i as u32, multi_ethertype_filter(i));
        }
        let p = packet_for(37);
        let view = PacketView::new(&p);
        let (ir_ids, ir_stats) = ir.matches_with_stats(view);
        assert_eq!(ir_ids, vec![37]);
        let (sh_ids, sh_stats) = sharded.matches_with_stats(view);
        assert_eq!(sh_ids, vec![37]);
        assert_eq!(
            ir_stats.filters_evaluated, 256,
            "flat set walks everyone: {ir_stats:?}"
        );
        // The shard index (keyed on the socket word) selects the 8
        // same-socket members; everyone else is skipped outright.
        assert_eq!(sh_stats.filters_evaluated, 8, "{sh_stats:?}");
        assert_eq!(sh_stats.filters_skipped, 248, "{sh_stats:?}");
        // Shared tests run at most once per packet: the socket test once
        // fresh, then 7 memoized hits; each member's ethertype test is
        // distinct (8 ethertypes), so at most 9 fresh evaluations.
        assert!(
            sh_stats.tests_evaluated <= 9,
            "shared tests evaluated at most once each: {sh_stats:?}"
        );
        assert!(sh_stats.tests_memoized >= 7, "{sh_stats:?}");
        // The op count collapses with the shard walk (9 vs 64 when this
        // was written); pin a comfortable 4x margin rather than the
        // exact engine-version-dependent figure.
        assert!(
            sh_stats.ops_executed * 4 < ir_stats.ops_executed,
            "sharded {sh_stats:?} vs flat {ir_stats:?}"
        );
    }

    #[test]
    fn json_rows_are_well_formed() {
        let points = vec![DemuxPoint {
            engine: "sharded",
            population: 16,
            ns_per_packet: 123.456,
            tests_evaluated_per_packet: 2.5,
            tests_memoized_per_packet: 1.5,
            filters_evaluated_per_packet: 2.0,
        }];
        let json = to_json(&points);
        assert!(json.contains("\"engine\": \"sharded\""));
        assert!(json.contains("\"population\": 16"));
        assert!(json.contains("\"ns_per_packet\": 123.46"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces:\n{json}"
        );
    }

    #[test]
    fn smoke_sweep_produces_all_engines() {
        let points = sweep(true);
        assert_eq!(
            points.len(),
            3 * ENGINES_RACED,
            "3 populations x every raced engine"
        );
        for engine in ["sequential", "dtree", "ir", "sharded"] {
            assert!(points.iter().any(|p| p.engine == engine));
        }
        assert_eq!(
            points.iter().any(|p| p.engine == "jit"),
            cfg!(feature = "jit")
        );
    }

    /// Feature `jit`: the native walk agrees with the checked first-match
    /// over the whole traffic mix (timing is raced in the binary; verdict
    /// parity is what the test suite pins).
    #[cfg(feature = "jit")]
    #[test]
    fn jit_walk_matches_checked_first_match() {
        let n = 40;
        let filters: Vec<FilterProgram> = (0..n).map(multi_ethertype_filter).collect();
        let jitted: Vec<pf_ir::JitFilter> = filters
            .iter()
            .map(|f| pf_ir::JitFilter::compile(f.clone()).expect("validates"))
            .collect();
        let interp = CheckedInterpreter::default();
        for p in traffic(n, 200) {
            let view = PacketView::new(&p);
            let expect = filters.iter().position(|f| interp.eval(f, view));
            let got = jitted.iter().position(|f| f.eval(view));
            assert_eq!(got, expect);
        }
    }
}
