//! Machine-readable demux-scaling results: `BENCH_demux.json`.
//!
//! The breakeven sweep and the ablation table live in EXPERIMENTS.md
//! prose; this module races the demultiplexing engines
//! (flat-sequential interpreter, §7 decision table, flat IR set, sharded
//! value-numbered set, geometric tuple-space classifier, and — with the
//! `jit` feature — a priority-ordered walk of template-JIT native
//! filters) over growing multi-ethertype populations and writes the
//! results as JSON — engine, population size, ns/packet, and per-packet
//! executed-test counts — so the perf trajectory can be tracked across
//! PRs by a machine instead of a reader.
//!
//! Two further sections target the geometric classifier specifically: a
//! mixed exact/range *ladder* to 100k+ filters (where every exact-match
//! engine degenerates to a linear walk and only the interval index stays
//! sublinear) and a *churn* column measuring incremental insert/delete
//! cost at a standing population (tombstones + threshold compaction
//! versus rebuild-the-world). Both carry sweep-internal asserts on the
//! deterministic work counters — geom must beat the sharded set on
//! range-heavy populations, stay within 2x on pure-exact ones, and show
//! sublinear probe growth up the ladder — so a regression fails the run
//! rather than quietly bending a curve.
//!
//! Timing is real wall clock over the set structures themselves (no
//! simulated world), averaged over a deterministic round-robin traffic
//! mix. The executed-test counters come from the sets' own stats and are
//! exact; tests assert on those (deterministic), never on timing.

use pf_filter::dtree::FilterSet;
use pf_filter::interp::CheckedInterpreter;
use pf_filter::packet::PacketView;
use pf_filter::program::{Assembler, FilterProgram};
use pf_filter::samples;
use pf_filter::word::BinaryOp;
use pf_ir::set::{IrFilterSet, ShardedVnSet};
use pf_ir::GeomSet;
use std::hint::black_box;
use std::time::Instant;

/// Ethernet types cycled through the synthetic population: a protocol
/// mix, so neither "everything shares one guard" nor "nothing shares".
pub const ETHERTYPES: [u16; 8] = [2, 3, 5, 8, 11, 17, 23, 29];

/// Engines raced per population point (the `jit` feature adds one more).
pub const ENGINES_RACED: usize = 5 + if cfg!(feature = "jit") { 1 } else { 0 };

/// One engine × population measurement.
#[derive(Debug, Clone)]
pub struct DemuxPoint {
    /// Engine label: `sequential`, `dtree`, `ir`, `sharded`, `geom`, or
    /// `jit`.
    pub engine: &'static str,
    /// Active filters.
    pub population: usize,
    /// Mean wall-clock nanoseconds per packet.
    pub ns_per_packet: f64,
    /// Mean interned tests evaluated fresh per packet (0 for engines
    /// without a shared test table).
    pub tests_evaluated_per_packet: f64,
    /// Mean memoized test hits per packet.
    pub tests_memoized_per_packet: f64,
    /// Mean members evaluated per packet.
    pub filters_evaluated_per_packet: f64,
}

/// The `i`-th member of the multi-ethertype population, in the figure 3-9
/// idiom: the selective per-member socket test first (`CAND`, so the
/// common mismatch exits early), the protocol's ethertype compare *last*.
/// That trailing compare is exactly what guard-prefix sharing cannot
/// reach and set-level value numbering can; the socket word is what the
/// shard index discriminates on.
pub fn multi_ethertype_filter(i: usize) -> FilterProgram {
    let ethertype = ETHERTYPES[i % ETHERTYPES.len()];
    let socket = 100 + (i / ETHERTYPES.len()) as u16;
    Assembler::new(10)
        .pushword(8)
        .pushlit_op(BinaryOp::Cand, socket)
        .pushword(1)
        .pushlit_op(BinaryOp::Eq, ethertype)
        .finish()
}

/// The packet the `i`-th member (and only it) accepts.
pub fn packet_for(i: usize) -> Vec<u8> {
    let ethertype = ETHERTYPES[i % ETHERTYPES.len()];
    let socket = 100 + (i / ETHERTYPES.len()) as u16;
    samples::pup_packet_3mb(ethertype, 0, socket, 1)
}

/// A deterministic traffic mix over a population of `n`: every fourth
/// packet matches nobody (a stray ethertype), the rest round-robin over
/// the members.
pub fn traffic(n: usize, packets: usize) -> Vec<Vec<u8>> {
    (0..packets)
        .map(|j| {
            if j % 4 == 3 {
                samples::pup_packet_3mb(0x600, 0, 1, 1) // no member matches
            } else {
                packet_for((j * 7) % n) // coprime stride: all shards hit
            }
        })
        .collect()
}

fn time_per_packet(packets: &[Vec<u8>], mut eval: impl FnMut(&[u8])) -> f64 {
    for p in packets.iter().take(packets.len() / 4) {
        eval(black_box(p));
    }
    let start = Instant::now();
    for p in packets {
        eval(black_box(p));
    }
    start.elapsed().as_nanos() as f64 / packets.len() as f64
}

/// Measures all four engines at one population size.
pub fn measure(population: usize, packets_per_point: usize) -> Vec<DemuxPoint> {
    let filters: Vec<(u32, FilterProgram)> = (0..population)
        .map(|i| (i as u32, multi_ethertype_filter(i)))
        .collect();
    let packets = traffic(population, packets_per_point);
    let n = packets.len() as f64;
    let mut out = Vec::new();

    // Flat-sequential: the figure 4-1 loop over checked interpretations.
    let interp = CheckedInterpreter::default();
    let ns = time_per_packet(&packets, |p| {
        let view = PacketView::new(p);
        black_box(filters.iter().find(|(_, f)| interp.eval(f, view)));
    });
    out.push(DemuxPoint {
        engine: "sequential",
        population,
        ns_per_packet: ns,
        tests_evaluated_per_packet: 0.0,
        tests_memoized_per_packet: 0.0,
        filters_evaluated_per_packet: {
            // First-match walk: count members actually interpreted.
            let mut applied = 0u64;
            for p in &packets {
                let view = PacketView::new(p);
                for (_, f) in &filters {
                    applied += 1;
                    if interp.eval(f, view) {
                        break;
                    }
                }
            }
            applied as f64 / n
        },
    });

    // §7 decision table.
    let mut dtree = FilterSet::new();
    for (id, f) in &filters {
        dtree.insert(*id, f.clone());
    }
    let ns = time_per_packet(&packets, |p| {
        black_box(dtree.first_match(PacketView::new(p)));
    });
    out.push(DemuxPoint {
        engine: "dtree",
        population,
        ns_per_packet: ns,
        tests_evaluated_per_packet: 0.0,
        tests_memoized_per_packet: 0.0,
        filters_evaluated_per_packet: 0.0,
    });

    // Flat IR set (guard-prefix sharing, walks every member).
    let mut ir = IrFilterSet::new();
    for (id, f) in &filters {
        ir.insert(*id, f.clone());
    }
    let ns = time_per_packet(&packets, |p| {
        black_box(ir.matches_with_stats(PacketView::new(p)).0.len());
    });
    let mut te = 0u64;
    let mut tm = 0u64;
    let mut fe = 0u64;
    for p in &packets {
        let (_, s) = ir.matches_with_stats(PacketView::new(p));
        te += u64::from(s.tests_evaluated);
        tm += u64::from(s.tests_memoized);
        fe += u64::from(s.filters_evaluated);
    }
    out.push(DemuxPoint {
        engine: "ir",
        population,
        ns_per_packet: ns,
        tests_evaluated_per_packet: te as f64 / n,
        tests_memoized_per_packet: tm as f64 / n,
        filters_evaluated_per_packet: fe as f64 / n,
    });

    // Sharded value-numbered set.
    let mut sharded = ShardedVnSet::new();
    for (id, f) in &filters {
        sharded.insert(*id, f.clone());
    }
    let ns = time_per_packet(&packets, |p| {
        black_box(sharded.matches_with_stats(PacketView::new(p)).0.len());
    });
    let mut te = 0u64;
    let mut tm = 0u64;
    let mut fe = 0u64;
    for p in &packets {
        let (_, s) = sharded.matches_with_stats(PacketView::new(p));
        te += u64::from(s.tests_evaluated);
        tm += u64::from(s.tests_memoized);
        fe += u64::from(s.filters_evaluated);
    }
    out.push(DemuxPoint {
        engine: "sharded",
        population,
        ns_per_packet: ns,
        tests_evaluated_per_packet: te as f64 / n,
        tests_memoized_per_packet: tm as f64 / n,
        filters_evaluated_per_packet: fe as f64 / n,
    });

    // Geometric tuple-space classifier: on this pure-exact population it
    // degenerates gracefully — every member keys into one exact tuple on
    // the socket word, so the probe is a hash lookup plus the same
    // same-socket candidate walk the shard index does.
    let mut geom = GeomSet::new();
    for (id, f) in &filters {
        geom.insert(*id, f.clone());
    }
    let ns = time_per_packet(&packets, |p| {
        black_box(geom.matches_with_stats(PacketView::new(p)).0.len());
    });
    let mut fe = 0u64;
    for p in &packets {
        let (_, s) = geom.matches_with_stats(PacketView::new(p));
        fe += u64::from(s.filters_evaluated);
    }
    out.push(DemuxPoint {
        engine: "geom",
        population,
        ns_per_packet: ns,
        tests_evaluated_per_packet: 0.0,
        tests_memoized_per_packet: 0.0,
        filters_evaluated_per_packet: fe as f64 / n,
    });

    // Template JIT: a priority-ordered first-match walk of per-member
    // native code (the kernel's `DemuxEngine::Jit` shape), no set-level
    // sharing at all — the race shows where raw per-member speed beats
    // structural work-sharing and where it stops scaling.
    #[cfg(feature = "jit")]
    {
        let jitted: Vec<pf_ir::JitFilter> = filters
            .iter()
            .map(|(_, f)| pf_ir::JitFilter::compile(f.clone()).expect("population validates"))
            .collect();
        let ns = time_per_packet(&packets, |p| {
            let view = PacketView::new(p);
            black_box(jitted.iter().position(|f| f.eval(view)));
        });
        let mut fe = 0u64;
        for p in &packets {
            let view = PacketView::new(p);
            for f in &jitted {
                fe += 1;
                if f.eval(view) {
                    break;
                }
            }
        }
        out.push(DemuxPoint {
            engine: "jit",
            population,
            ns_per_packet: ns,
            tests_evaluated_per_packet: 0.0,
            tests_memoized_per_packet: 0.0,
            filters_evaluated_per_packet: fe as f64 / n,
        });
    }

    out
}

/// The full sweep (1 → 512 filters), or the tiny CI smoke sweep.
pub fn sweep(smoke: bool) -> Vec<DemuxPoint> {
    let populations: &[usize] = if smoke {
        &[1, 4, 16]
    } else {
        &[1, 4, 16, 64, 256, 512]
    };
    let packets = if smoke { 400 } else { 2_000 };
    let points: Vec<DemuxPoint> = populations
        .iter()
        .flat_map(|&n| measure(n, packets))
        .collect();
    // Sweep-internal assert: on a *pure-exact* population the geometric
    // classifier must stay within 2x of the sharded set's per-packet
    // member work (both should select the same-socket candidates).
    for &n in populations.iter().filter(|&&n| n >= 16) {
        let work = |engine: &str| {
            points
                .iter()
                .find(|p| p.engine == engine && p.population == n)
                .expect("raced engine present")
                .filters_evaluated_per_packet
        };
        let (geom, sharded) = (work("geom"), work("sharded"));
        assert!(
            geom <= 2.0 * sharded + 1.0,
            "geom loses >2x to sharded on pure-exact n={n}: {geom:.2} vs {sharded:.2}"
        );
    }
    points
}

/// Range share of the mixed ladder population, in percent.
pub const RANGE_SHARE_PERCENT: usize = 75;

/// One engine × population point on the mixed exact/range ladder.
#[derive(Debug, Clone)]
pub struct RangePoint {
    /// `sharded` or `geom` — the only engines still in the race at 100k.
    pub engine: &'static str,
    /// Active filters (mixed exact/range).
    pub population: usize,
    /// Mean wall-clock nanoseconds per packet.
    pub ns_per_packet: f64,
    /// Mean members evaluated per packet — the linear-walk tell.
    pub filters_evaluated_per_packet: f64,
    /// Mean threaded-code ops executed per packet.
    pub ops_executed_per_packet: f64,
    /// Mean index nodes visited per packet (0 for sharded): the geometric
    /// probe cost, asserted to grow sublinearly up the ladder.
    pub nodes_visited_per_packet: f64,
}

/// One engine × population churn measurement: the amortized cost of a
/// remove+reinsert cycle at a standing population.
#[derive(Debug, Clone)]
pub struct ChurnPoint {
    /// `sharded` or `geom`.
    pub engine: &'static str,
    /// Standing population across the whole churn run.
    pub population: usize,
    /// Remove+insert cycles performed.
    pub updates: usize,
    /// Mean wall-clock nanoseconds per remove+insert cycle.
    pub ns_per_update: f64,
    /// Whole-index maintenance events during the run: geom compactions /
    /// sharded repartitions. Churn without full rebuilds means this stays
    /// far below `updates`.
    pub rebuilds: u64,
}

/// The `i`-th member of the mixed ladder: `RANGE_SHARE_PERCENT` of
/// indices are §3.8-style socket-range filters over narrow windows
/// spread deterministically across the 16-bit socket space (coprime
/// stride, width 4–16); the rest are the exact multi-ethertype members.
/// Ranges defeat every exact-match index, so this is the population
/// where the interval structures earn their keep.
pub fn mixed_filter(i: usize) -> FilterProgram {
    if i % 100 < RANGE_SHARE_PERCENT {
        let lo = ((i * 9973) % 65_000) as u16;
        let hi = lo + 4 + (i % 13) as u16;
        samples::socket_range_filter(10, lo, hi)
    } else {
        multi_ethertype_filter(i)
    }
}

/// Deterministic traffic over the mixed population: half the packets
/// probe random-looking sockets under the range filters' ethertype, a
/// quarter target exact members, a quarter are no-match strays.
pub fn mixed_traffic(n: usize, packets: usize) -> Vec<Vec<u8>> {
    (0..packets)
        .map(|j| match j % 4 {
            0 | 2 => {
                let sock = ((j * 7919) % 65_536) as u16;
                samples::pup_packet_3mb(2, 0, sock, 1)
            }
            1 => packet_for((j * 7) % n),
            _ => samples::pup_packet_3mb(0x600, 0, 1, 1),
        })
        .collect()
}

/// Races the sharded set against the geometric classifier at one mixed
/// exact/range population size. The linear engines (sequential, dtree,
/// flat IR) are out of the race here by construction — at 100k filters a
/// full walk per packet would take longer than the whole sweep.
pub fn measure_range(population: usize, packets_per_point: usize) -> Vec<RangePoint> {
    let filters: Vec<(u32, FilterProgram)> = (0..population)
        .map(|i| (i as u32, mixed_filter(i)))
        .collect();
    let packets = mixed_traffic(population, packets_per_point);
    let n = packets.len() as f64;
    let mut out = Vec::new();

    let mut sharded = ShardedVnSet::new();
    for (id, f) in &filters {
        sharded.insert(*id, f.clone());
    }
    let ns = time_per_packet(&packets, |p| {
        black_box(sharded.matches_with_stats(PacketView::new(p)).0.len());
    });
    let mut fe = 0u64;
    let mut ops = 0u64;
    for p in &packets {
        let (_, s) = sharded.matches_with_stats(PacketView::new(p));
        fe += u64::from(s.filters_evaluated);
        ops += u64::from(s.ops_executed);
    }
    out.push(RangePoint {
        engine: "sharded",
        population,
        ns_per_packet: ns,
        filters_evaluated_per_packet: fe as f64 / n,
        ops_executed_per_packet: ops as f64 / n,
        nodes_visited_per_packet: 0.0,
    });

    let mut geom = GeomSet::new();
    for (id, f) in &filters {
        geom.insert(*id, f.clone());
    }
    let ns = time_per_packet(&packets, |p| {
        black_box(geom.matches_with_stats(PacketView::new(p)).0.len());
    });
    let mut fe = 0u64;
    let mut ops = 0u64;
    let mut nodes = 0u64;
    for p in &packets {
        let (_, s) = geom.matches_with_stats(PacketView::new(p));
        fe += u64::from(s.filters_evaluated);
        ops += u64::from(s.ops_executed);
        nodes += u64::from(s.nodes_visited);
    }
    out.push(RangePoint {
        engine: "geom",
        population,
        ns_per_packet: ns,
        filters_evaluated_per_packet: fe as f64 / n,
        ops_executed_per_packet: ops as f64 / n,
        nodes_visited_per_packet: nodes as f64 / n,
    });

    out
}

/// Measures incremental management cost: `updates` remove+reinsert
/// cycles against a standing mixed population of `population` filters,
/// per engine. Returns the per-cycle wall clock and the whole-index
/// maintenance count (compactions / repartitions) each engine incurred.
pub fn measure_churn(population: usize, updates: usize) -> Vec<ChurnPoint> {
    let filters: Vec<(u32, FilterProgram)> = (0..population)
        .map(|i| (i as u32, mixed_filter(i)))
        .collect();
    let mut out = Vec::new();

    let mut sharded = ShardedVnSet::new();
    for (id, f) in &filters {
        sharded.insert(*id, f.clone());
    }
    let rebuilds_before = sharded.repartition_count();
    let start = Instant::now();
    for t in 0..updates {
        let id = (t % population) as u32;
        assert!(sharded.remove(id), "churn removes a live filter");
        sharded.insert(id, mixed_filter(population + t));
    }
    let ns = start.elapsed().as_nanos() as f64 / updates as f64;
    assert_eq!(sharded.len(), population, "churn preserves the population");
    out.push(ChurnPoint {
        engine: "sharded",
        population,
        updates,
        ns_per_update: ns,
        rebuilds: sharded.repartition_count() - rebuilds_before,
    });

    let mut geom = GeomSet::new();
    for (id, f) in &filters {
        geom.insert(*id, f.clone());
    }
    let rebuilds_before = geom.compaction_count();
    let start = Instant::now();
    for t in 0..updates {
        let id = (t % population) as u32;
        assert!(geom.remove(id), "churn removes a live filter");
        geom.insert(id, mixed_filter(population + t));
    }
    let ns = start.elapsed().as_nanos() as f64 / updates as f64;
    assert_eq!(geom.len(), population, "churn preserves the population");
    let rebuilds = geom.compaction_count() - rebuilds_before;
    // The whole point of tombstoning: compactions amortize to at most one
    // per `population` removals (plus slack for the threshold crossing),
    // never one per update.
    assert!(
        rebuilds as usize <= updates / population.max(1) + 2,
        "geom churn is not amortized: {rebuilds} compactions over {updates} updates at n={population}"
    );
    out.push(ChurnPoint {
        engine: "geom",
        population,
        updates,
        ns_per_update: ns,
        rebuilds,
    });

    out
}

/// The mixed exact/range ladder plus the churn column: 1k → 100k in the
/// full run, a miniature two-rung ladder in CI smoke. Asserts the
/// acceptance-criteria shape on the deterministic counters.
pub fn range_sweep(smoke: bool) -> (Vec<RangePoint>, Vec<ChurnPoint>) {
    let (populations, packets, updates): (&[usize], usize, usize) = if smoke {
        (&[256, 1_024], 200, 400)
    } else {
        (&[1_000, 10_000, 100_000], 192, 2_000)
    };
    let ladder: Vec<RangePoint> = populations
        .iter()
        .flat_map(|&n| measure_range(n, packets))
        .collect();
    let churn: Vec<ChurnPoint> = populations
        .iter()
        .flat_map(|&n| measure_churn(n, updates))
        .collect();

    // Range-heavy assert: at every rung the geometric classifier must
    // evaluate at least 4x fewer members per packet than the sharded
    // set — ranges push the sharded set into a linear walk while the
    // interval index keeps selecting a handful of candidates.
    for &n in populations {
        let work = |engine: &str| {
            ladder
                .iter()
                .find(|p| p.engine == engine && p.population == n)
                .expect("both engines raced")
                .filters_evaluated_per_packet
        };
        let (geom, sharded) = (work("geom"), work("sharded"));
        assert!(
            geom * 4.0 < sharded,
            "geom does not beat sharded on range-heavy n={n}: {geom:.2} vs {sharded:.2}"
        );
    }
    // Sublinear-probe assert: between the bottom and top of the ladder
    // (a >=4x population growth) the geometric probe cost may grow by at
    // most 2x — O(log n + matches), not O(n).
    let probe = |n: usize| {
        ladder
            .iter()
            .find(|p| p.engine == "geom" && p.population == n)
            .expect("geom raced")
            .nodes_visited_per_packet
    };
    let (lo, hi) = (
        probe(populations[0]),
        probe(*populations.last().expect("non-empty ladder")),
    );
    assert!(
        hi <= 2.0 * lo + 1.0,
        "geom probe cost is not sublinear: {lo:.2} nodes/pkt at n={} vs {hi:.2} at n={}",
        populations[0],
        populations.last().expect("non-empty ladder"),
    );

    (ladder, churn)
}

fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.2}")
    } else {
        "null".to_string()
    }
}

/// Renders the sweep, the mixed exact/range ladder, and the churn
/// column as one JSON document (hand-rolled: the build is hermetic, no
/// serde).
pub fn to_json(
    points: &[DemuxPoint],
    ladder: &[RangePoint],
    churn: &[ChurnPoint],
    seed: u64,
) -> String {
    let mut s = String::from("{\n  \"experiment\": \"demux_scaling\",\n");
    // This campaign draws no randomness (populations and traffic are
    // pinned); the seed is recorded so every BENCH_*.json carries the
    // same replay field.
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str("  \"unit\": \"ns/packet, wall clock\",\n");
    s.push_str(
        "  \"workload\": \"multi-ethertype population (8 ethertypes x n/8 sockets), \
         round-robin traffic with 25% no-match strays\",\n",
    );
    s.push_str("  \"rows\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"engine\": \"{}\", \"population\": {}, \"ns_per_packet\": {}, \
             \"tests_evaluated_per_packet\": {}, \"tests_memoized_per_packet\": {}, \
             \"filters_evaluated_per_packet\": {}}}{}\n",
            p.engine,
            p.population,
            fmt_f64(p.ns_per_packet),
            fmt_f64(p.tests_evaluated_per_packet),
            fmt_f64(p.tests_memoized_per_packet),
            fmt_f64(p.filters_evaluated_per_packet),
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"range_workload\": \"mixed exact/range population ({RANGE_SHARE_PERCENT}% narrow \
         socket-range filters), socket-probe traffic with 25% exact hits and 25% strays\",\n",
    ));
    s.push_str("  \"range_rows\": [\n");
    for (i, p) in ladder.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"engine\": \"{}\", \"population\": {}, \"ns_per_packet\": {}, \
             \"filters_evaluated_per_packet\": {}, \"ops_executed_per_packet\": {}, \
             \"nodes_visited_per_packet\": {}}}{}\n",
            p.engine,
            p.population,
            fmt_f64(p.ns_per_packet),
            fmt_f64(p.filters_evaluated_per_packet),
            fmt_f64(p.ops_executed_per_packet),
            fmt_f64(p.nodes_visited_per_packet),
            if i + 1 == ladder.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(
        "  \"churn_unit\": \"ns/update, wall clock, one update = remove + reinsert at a \
         standing population\",\n",
    );
    s.push_str("  \"churn_rows\": [\n");
    for (i, p) in churn.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"engine\": \"{}\", \"population\": {}, \"updates\": {}, \
             \"ns_per_update\": {}, \"rebuilds\": {}}}{}\n",
            p.engine,
            p.population,
            p.updates,
            fmt_f64(p.ns_per_update),
            p.rebuilds,
            if i + 1 == churn.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Default output path: the repository root's `BENCH_demux.json`.
pub fn default_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_demux.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All bulk engines agree on every verdict over the traffic mix.
    #[test]
    fn engines_agree_on_the_synthetic_population() {
        let n = 40;
        let filters: Vec<(u32, FilterProgram)> = (0..n)
            .map(|i| (i as u32, multi_ethertype_filter(i)))
            .collect();
        let interp = CheckedInterpreter::default();
        let mut dtree = FilterSet::new();
        let mut ir = IrFilterSet::new();
        let mut sharded = ShardedVnSet::new();
        let mut geom = GeomSet::new();
        for (id, f) in &filters {
            dtree.insert(*id, f.clone());
            ir.insert(*id, f.clone());
            sharded.insert(*id, f.clone());
            geom.insert(*id, f.clone());
        }
        for p in traffic(n, 200) {
            let view = PacketView::new(&p);
            let expect: Vec<u32> = filters
                .iter()
                .filter(|(_, f)| interp.eval(f, view))
                .map(|(id, _)| *id)
                .collect();
            assert_eq!(dtree.matches(view), expect);
            assert_eq!(ir.matches(view), expect);
            assert_eq!(sharded.matches(view), expect);
            assert_eq!(geom.matches(view), expect);
        }
    }

    /// The sharded set and the geometric classifier agree on the mixed
    /// exact/range ladder population — the ladder races verdict-identical
    /// engines, so ns/packet differences are pure data-structure cost.
    #[test]
    fn ladder_engines_agree_on_the_mixed_population() {
        let n = 120;
        let filters: Vec<(u32, FilterProgram)> =
            (0..n).map(|i| (i as u32, mixed_filter(i))).collect();
        let interp = CheckedInterpreter::default();
        let mut sharded = ShardedVnSet::new();
        let mut geom = GeomSet::new();
        for (id, f) in &filters {
            sharded.insert(*id, f.clone());
            geom.insert(*id, f.clone());
        }
        for p in mixed_traffic(n, 240) {
            let view = PacketView::new(&p);
            let expect: Vec<u32> = filters
                .iter()
                .filter(|(_, f)| interp.eval(f, view))
                .map(|(id, _)| *id)
                .collect();
            assert_eq!(sharded.matches(view), expect);
            assert_eq!(geom.matches(view), expect);
        }
    }

    /// The deterministic half of the range-heavy acceptance criterion:
    /// at a 512-filter mixed population the geometric classifier selects
    /// a handful of candidates per packet where the sharded set, with no
    /// exact word to discriminate three quarters of the members, walks
    /// them linearly.
    #[test]
    fn geom_work_beats_sharded_on_the_range_population() {
        let n = 512;
        let mut sharded = ShardedVnSet::new();
        let mut geom = GeomSet::new();
        for i in 0..n {
            sharded.insert(i as u32, mixed_filter(i));
            geom.insert(i as u32, mixed_filter(i));
        }
        let packets = mixed_traffic(n, 64);
        let (mut geom_fe, mut sh_fe) = (0u64, 0u64);
        for p in &packets {
            let view = PacketView::new(p);
            geom_fe += u64::from(geom.matches_with_stats(view).1.filters_evaluated);
            sh_fe += u64::from(sharded.matches_with_stats(view).1.filters_evaluated);
        }
        assert!(
            geom_fe * 4 < sh_fe,
            "geom evaluated {geom_fe} members, sharded {sh_fe}"
        );
    }

    /// Churn at a standing population keeps both sets live and asserts
    /// the geom compaction amortization internally; here we additionally
    /// pin that the measurement machinery reports sane rows.
    #[test]
    fn churn_measurement_reports_both_engines() {
        let points = measure_churn(64, 200);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert_eq!(p.population, 64);
            assert_eq!(p.updates, 200);
            assert!(p.ns_per_update.is_finite() && p.ns_per_update > 0.0);
        }
        let geom = points
            .iter()
            .find(|p| p.engine == "geom")
            .expect("geom row");
        assert!(
            geom.rebuilds as usize <= 200 / 64 + 2,
            "geom churn amortization: {} rebuilds",
            geom.rebuilds
        );
    }

    /// The acceptance-criteria shape, asserted on deterministic counters
    /// rather than wall clock: at a 256-filter multi-ethertype population
    /// the sharded set evaluates a small bounded number of tests and
    /// members per packet, where the flat IR set walks all 256.
    #[test]
    fn sharded_work_is_population_independent_at_256() {
        let n = 256;
        let mut ir = IrFilterSet::new();
        let mut sharded = ShardedVnSet::new();
        for i in 0..n {
            ir.insert(i as u32, multi_ethertype_filter(i));
            sharded.insert(i as u32, multi_ethertype_filter(i));
        }
        let p = packet_for(37);
        let view = PacketView::new(&p);
        let (ir_ids, ir_stats) = ir.matches_with_stats(view);
        assert_eq!(ir_ids, vec![37]);
        let (sh_ids, sh_stats) = sharded.matches_with_stats(view);
        assert_eq!(sh_ids, vec![37]);
        assert_eq!(
            ir_stats.filters_evaluated, 256,
            "flat set walks everyone: {ir_stats:?}"
        );
        // The shard index (keyed on the socket word) selects the 8
        // same-socket members; everyone else is skipped outright.
        assert_eq!(sh_stats.filters_evaluated, 8, "{sh_stats:?}");
        assert_eq!(sh_stats.filters_skipped, 248, "{sh_stats:?}");
        // Shared tests run at most once per packet: the socket test once
        // fresh, then 7 memoized hits; each member's ethertype test is
        // distinct (8 ethertypes), so at most 9 fresh evaluations.
        assert!(
            sh_stats.tests_evaluated <= 9,
            "shared tests evaluated at most once each: {sh_stats:?}"
        );
        assert!(sh_stats.tests_memoized >= 7, "{sh_stats:?}");
        // The op count collapses with the shard walk (9 vs 64 when this
        // was written); pin a comfortable 4x margin rather than the
        // exact engine-version-dependent figure.
        assert!(
            sh_stats.ops_executed * 4 < ir_stats.ops_executed,
            "sharded {sh_stats:?} vs flat {ir_stats:?}"
        );
    }

    #[test]
    fn json_rows_are_well_formed() {
        let points = vec![DemuxPoint {
            engine: "sharded",
            population: 16,
            ns_per_packet: 123.456,
            tests_evaluated_per_packet: 2.5,
            tests_memoized_per_packet: 1.5,
            filters_evaluated_per_packet: 2.0,
        }];
        let ladder = vec![RangePoint {
            engine: "geom",
            population: 100_000,
            ns_per_packet: 512.0,
            filters_evaluated_per_packet: 3.25,
            ops_executed_per_packet: 19.5,
            nodes_visited_per_packet: 24.0,
        }];
        let churn = vec![ChurnPoint {
            engine: "geom",
            population: 100_000,
            updates: 2_000,
            ns_per_update: 900.0,
            rebuilds: 1,
        }];
        let json = to_json(&points, &ladder, &churn, 7);
        assert!(json.contains("\"seed\": 7"));
        assert!(json.contains("\"engine\": \"sharded\""));
        assert!(json.contains("\"population\": 16"));
        assert!(json.contains("\"ns_per_packet\": 123.46"));
        assert!(json.contains("\"range_rows\""));
        assert!(json.contains("\"nodes_visited_per_packet\": 24.00"));
        assert!(json.contains("\"churn_rows\""));
        assert!(json.contains("\"rebuilds\": 1"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces:\n{json}"
        );
    }

    #[test]
    fn smoke_sweep_produces_all_engines() {
        let points = sweep(true);
        assert_eq!(
            points.len(),
            3 * ENGINES_RACED,
            "3 populations x every raced engine"
        );
        for engine in ["sequential", "dtree", "ir", "sharded", "geom"] {
            assert!(points.iter().any(|p| p.engine == engine));
        }
        assert_eq!(
            points.iter().any(|p| p.engine == "jit"),
            cfg!(feature = "jit")
        );
    }

    /// Feature `jit`: the native walk agrees with the checked first-match
    /// over the whole traffic mix (timing is raced in the binary; verdict
    /// parity is what the test suite pins).
    #[cfg(feature = "jit")]
    #[test]
    fn jit_walk_matches_checked_first_match() {
        let n = 40;
        let filters: Vec<FilterProgram> = (0..n).map(multi_ethertype_filter).collect();
        let jitted: Vec<pf_ir::JitFilter> = filters
            .iter()
            .map(|f| pf_ir::JitFilter::compile(f.clone()).expect("validates"))
            .collect();
        let interp = CheckedInterpreter::default();
        for p in traffic(n, 200) {
            let view = PacketView::new(&p);
            let expect = filters.iter().position(|f| interp.eval(f, view));
            let got = jitted.iter().position(|f| f.eval(view));
            assert_eq!(got, expect);
        }
    }
}
