//! Table formatting for experiment reports.
//!
//! Every experiment prints a table with the paper's published value next
//! to the measured one, so a reader can check the *shape* claims (who
//! wins, by what factor) at a glance.

use std::fmt::Write as _;

/// A rendered experiment table.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment identifier, e.g. `"Table 6-1"`.
    pub id: String,
    /// One-line description.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table.
    pub notes: Vec<String>,
}

impl Report {
    /// Starts a report.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            headers: Vec::new(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Sets the column headers.
    pub fn headers(mut self, headers: &[&str]) -> Self {
        self.headers = headers.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Appends a row.
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Appends a note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// A ratio cell like `"2.01x"`.
    pub fn ratio(a: f64, b: f64) -> String {
        if b == 0.0 {
            "-".to_string()
        } else {
            format!("{:.2}x", a / b)
        }
    }
}

impl core::fmt::Display for Report {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(c.len());
                } else {
                    widths[i] = widths[i].max(c.len());
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "=== {}: {} ===", self.id, self.title);
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(line, "{:<w$}  ", h, w = widths[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (i, c) in row.iter().enumerate() {
                let _ = write!(line, "{:<w$}  ", c, w = widths.get(i).copied().unwrap_or(0));
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut r = Report::new("Table X", "demo").headers(&["name", "paper", "measured"]);
        r.row(&["pf".into(), "1.9 ms".into(), "1.93 ms".into()]);
        r.row(&["udp-longer-name".into(), "3.1 ms".into(), "3.12 ms".into()]);
        r.note("shape holds");
        let s = r.to_string();
        assert!(s.contains("Table X"));
        assert!(s.contains("udp-longer-name"));
        assert!(s.contains("note: shape holds"));
        // Columns align: both rows have "ms" at consistent offsets.
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].starts_with("name"));
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(Report::ratio(4.0, 2.0), "2.00x");
        assert_eq!(Report::ratio(1.0, 0.0), "-");
    }
}
