//! The shared receive-path harness: tables 6-8, 6-9, 6-10, figures
//! 2-1/2-2 and 3-4/3-5, and the §6.5 break-even sweep all drive packets
//! into one host and measure what reception costs.

use crate::report::Report;
use pf_filter::samples;
use pf_kernel::app::App;
use pf_kernel::types::{Fd, PipeId, PortConfig, ProcId, ReadError, ReadMode, RecvPacket};
use pf_kernel::world::{ProcCtx, World};
use pf_proto::vmtp_user::DemuxProcess;
use pf_sim::cost::CostModel;
use pf_sim::counters::Counters;
use pf_sim::rng::SplitMix64;
use pf_sim::time::{SimDuration, SimTime};
use pf_sim::SimClock;

/// Where demultiplexing happens (§6.5's comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemuxMode {
    /// The packet filter in the kernel delivers directly.
    Kernel,
    /// A user-level demultiplexing process relays through a pipe.
    UserProcess,
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct RecvConfig {
    /// Total frame size in bytes.
    pub frame_bytes: usize,
    /// Packets to inject.
    pub count: usize,
    /// Received-packet batching enabled.
    pub batching: bool,
    /// Kernel or user-process demultiplexing.
    pub mode: DemuxMode,
    /// Filter length in instructions for the receiving port; `None` binds
    /// the zero-length accept-all filter (table 6-8/6-9's "without any
    /// real decision-making").
    pub filter_instructions: Option<usize>,
    /// Number of active ports with distinct socket filters (break-even
    /// sweep); traffic is spread uniformly over them. `1` plus
    /// `filter_instructions: None` is the plain single-receiver setup.
    pub active_filters: usize,
    /// Injection spacing in microseconds (must be below the per-packet
    /// processing cost to saturate the receive path).
    pub spacing_us: u64,
    /// The kernel demultiplexing engine (sequential loop or §7's decision
    /// table).
    pub engine: pf_kernel::device::DemuxEngine,
}

impl Default for RecvConfig {
    fn default() -> Self {
        RecvConfig {
            frame_bytes: 128,
            count: 400,
            batching: false,
            mode: DemuxMode::Kernel,
            filter_instructions: None,
            active_filters: 1,
            spacing_us: 450,
            engine: pf_kernel::device::DemuxEngine::Sequential,
        }
    }
}

/// Harness results.
#[derive(Debug, Clone)]
pub struct RecvResult {
    /// Elapsed milliseconds per received packet (saturated).
    pub per_packet_ms: f64,
    /// Packets actually delivered to the final process.
    pub delivered: usize,
    /// Counter deltas over the measurement interval.
    pub counters: Counters,
    /// System calls per packet.
    pub syscalls_per_packet: f64,
    /// Context switches per packet.
    pub context_switches_per_packet: f64,
    /// Data copies per packet.
    pub copies_per_packet: f64,
}

/// A counting sink on a packet-filter port.
struct Sink {
    filter: pf_filter::program::FilterProgram,
    batching: bool,
    fd: Option<Fd>,
    got: usize,
    last_at: SimTime,
}

impl Sink {
    fn new(filter: pf_filter::program::FilterProgram, batching: bool) -> Self {
        Sink {
            filter,
            batching,
            fd: None,
            got: 0,
            last_at: SimTime::ZERO,
        }
    }
}

impl App for Sink {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        let fd = k.pf_open();
        k.pf_set_filter(fd, self.filter.clone());
        k.pf_configure(
            fd,
            PortConfig {
                read_mode: if self.batching {
                    ReadMode::Batch
                } else {
                    ReadMode::Single
                },
                max_queue: 100_000,
                ..Default::default()
            },
        );
        self.fd = Some(fd);
        k.pf_read(fd);
    }

    fn on_packets(&mut self, fd: Fd, packets: Vec<RecvPacket>, k: &mut ProcCtx<'_>) {
        self.got += packets.len();
        self.last_at = k.now();
        k.pf_read(fd);
    }

    fn on_read_error(&mut self, fd: Fd, _e: ReadError, k: &mut ProcCtx<'_>) {
        k.pf_read(fd);
    }
}

/// The far end of the user-level demultiplexer's pipe.
struct PipeSink {
    got: usize,
    last_at: SimTime,
}

impl App for PipeSink {
    fn start(&mut self, _k: &mut ProcCtx<'_>) {}
    fn on_pipe_data(&mut self, _p: PipeId, _d: Vec<u8>, k: &mut ProcCtx<'_>) {
        self.got += 1;
        self.last_at = k.now();
    }
}

/// A Pup frame of exactly `frame_bytes` bytes to socket `sock`.
fn test_frame(frame_bytes: usize, sock: u16) -> Vec<u8> {
    // Header (4) + Pup header (20) + data + checksum (2) = frame_bytes.
    let data = vec![0xEEu8; frame_bytes.saturating_sub(26)];
    let mut f = samples::pup_packet_3mb_with_data(2, 1, 0, sock, 1, &data);
    f.truncate(frame_bytes);
    f
}

/// Runs the harness.
pub fn run(cfg: &RecvConfig) -> RecvResult {
    let mut w = World::new(99);
    let seg = w.add_segment(
        pf_net::medium::Medium::experimental_3mb(),
        pf_net::segment::FaultModel::default(),
    );
    let h = w.add_host("receiver", seg, 0x0B, CostModel::microvax_ii());
    w.set_nic_capacity(h, cfg.count + 10);
    // The paper measured on machines with other active processes: a
    // wakeup costs two context switches (§6.5.1).
    w.set_contended(h, true);
    w.set_demux_engine(h, cfg.engine);

    enum Target {
        Sinks(Vec<ProcId>),
        Pipe(ProcId),
    }

    let target = match cfg.mode {
        DemuxMode::Kernel => {
            let mut sinks = Vec::new();
            for i in 0..cfg.active_filters {
                let filter = match cfg.filter_instructions {
                    Some(n) => {
                        assert_eq!(cfg.active_filters, 1, "padded filters are single-port");
                        samples::padded_accept_filter(10, n)
                    }
                    None if cfg.active_filters == 1 => pf_filter::program::FilterProgram::empty(10),
                    None => samples::pup_socket_filter(10, 0, i as u16),
                };
                sinks.push(w.spawn(h, Box::new(Sink::new(filter, cfg.batching))));
            }
            Target::Sinks(sinks)
        }
        DemuxMode::UserProcess => {
            let fin = w.spawn(
                h,
                Box::new(PipeSink {
                    got: 0,
                    last_at: SimTime::ZERO,
                }),
            );
            let demux = DemuxProcess::new(pf_filter::program::FilterProgram::empty(10), fin)
                .with_queue(cfg.count + 10);
            let demux = if cfg.batching {
                demux
            } else {
                demux.without_batching()
            };
            w.spawn(h, Box::new(demux));
            Target::Pipe(fin)
        }
    };

    // Let setup complete, then snapshot counters.
    w.run_until(SimTime(5_000_000));
    let before = *w.counters(h);
    let t0 = SimTime(10_000_000);

    let mut rng = SplitMix64::new(4242);
    for i in 0..cfg.count {
        let sock = if cfg.active_filters > 1 {
            rng.below(cfg.active_filters as u64) as u16
        } else {
            0
        };
        let at = t0 + SimDuration::from_micros(cfg.spacing_us * i as u64);
        w.inject_frame(h, test_frame(cfg.frame_bytes, sock), at);
    }
    w.run();

    let after = *w.counters(h);
    let counters = after - before;
    let (delivered, last_at) = match target {
        Target::Sinks(sinks) => {
            let mut total = 0usize;
            let mut last = SimTime::ZERO;
            for s in sinks {
                let app = w.app_ref::<Sink>(h, s).expect("sink");
                total += app.got;
                last = last.max(app.last_at);
            }
            (total, last)
        }
        Target::Pipe(fin) => {
            let app = w.app_ref::<PipeSink>(h, fin).expect("pipe sink");
            (app.got, app.last_at)
        }
    };
    assert_eq!(delivered, cfg.count, "all packets must be delivered");

    let n = cfg.count as f64;
    RecvResult {
        per_packet_ms: last_at.since(t0).as_millis_f64() / n,
        delivered,
        counters,
        syscalls_per_packet: counters.syscalls as f64 / n,
        context_switches_per_packet: counters.context_switches as f64 / n,
        copies_per_packet: counters.copies as f64 / n,
    }
}

/// Table 6-8: per-packet receive cost without batching.
pub fn report_table_6_8() -> Report {
    let paper = [(128usize, 2.3, 5.0), (1500, 4.0, 9.0)];
    let mut r =
        Report::new("Table 6-8", "Per-packet cost of user-level demultiplexing").headers(&[
            "packet size",
            "kernel (paper)",
            "kernel (measured)",
            "user (paper)",
            "user (measured)",
        ]);
    for (size, p_k, p_u) in paper {
        // The 3 Mb experimental Ethernet tops out at 600-byte frames; the
        // paper's 1500-byte rows used the 10 Mb net. Frame size only
        // enters through copy costs, which are medium-independent, so the
        // harness keeps one medium and injects synthetic frames.
        let kernel = run(&RecvConfig {
            frame_bytes: size.min(1500),
            mode: DemuxMode::Kernel,
            spacing_us: 900,
            ..Default::default()
        });
        let user = run(&RecvConfig {
            frame_bytes: size.min(1500),
            mode: DemuxMode::UserProcess,
            spacing_us: 1_800,
            ..Default::default()
        });
        r.row(&[
            format!("{size} bytes"),
            format!("{p_k:.1} ms"),
            format!("{:.2} ms", kernel.per_packet_ms),
            format!("{p_u:.1} ms"),
            format!("{:.2} ms", user.per_packet_ms),
        ]);
    }
    r.note("user-level demultiplexing roughly doubles per-packet cost");
    r
}

/// Table 6-9: the same with received-packet batching.
pub fn report_table_6_9() -> Report {
    let paper = [(128usize, 2.4, 1.9), (1500, 3.5, 5.9)];
    let mut r = Report::new(
        "Table 6-9",
        "Per-packet cost of user-level demultiplexing, with batching",
    )
    .headers(&[
        "packet size",
        "kernel (paper)",
        "kernel (measured)",
        "user (paper)",
        "user (measured)",
    ]);
    for (size, p_k, p_u) in paper {
        let kernel = run(&RecvConfig {
            frame_bytes: size,
            batching: true,
            mode: DemuxMode::Kernel,
            spacing_us: 400,
            ..Default::default()
        });
        let user = run(&RecvConfig {
            frame_bytes: size,
            batching: true,
            mode: DemuxMode::UserProcess,
            spacing_us: 900,
            ..Default::default()
        });
        r.row(&[
            format!("{size} bytes"),
            format!("{p_k:.1} ms"),
            format!("{:.2} ms", kernel.per_packet_ms),
            format!("{p_u:.1} ms"),
            format!("{:.2} ms", user.per_packet_ms),
        ]);
    }
    r.note("batching shrinks the penalty but cannot remove the extra copies");
    r
}

/// Table 6-10: cost of interpreting filters of various lengths.
pub fn report_table_6_10() -> Report {
    let paper = [(0usize, 1.9), (1, 2.0), (9, 2.2), (21, 2.5)];
    let mut r = Report::new("Table 6-10", "Cost of interpreting packet filters").headers(&[
        "filter length",
        "paper",
        "measured",
    ]);
    for (len, p) in paper {
        let res = run(&RecvConfig {
            frame_bytes: 128,
            batching: true,
            filter_instructions: Some(len),
            spacing_us: 400,
            ..Default::default()
        });
        r.row(&[
            format!("{len} instructions"),
            format!("{p:.1} ms"),
            format!("{:.2} ms", res.per_packet_ms),
        ]);
    }
    r.note("~28 µs per filter instruction, on top of a fixed receive path");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(cfg: RecvConfig) -> RecvResult {
        run(&RecvConfig { count: 120, ..cfg })
    }

    #[test]
    fn kernel_demux_cost_matches_table_6_8() {
        let r = quick(RecvConfig {
            spacing_us: 900,
            ..Default::default()
        });
        assert!(
            (1.7..3.0).contains(&r.per_packet_ms),
            "kernel 128B: {:.2} ms (paper 2.3)",
            r.per_packet_ms
        );
    }

    #[test]
    fn user_demux_roughly_doubles_cost() {
        let k = quick(RecvConfig {
            spacing_us: 900,
            ..Default::default()
        });
        let u = quick(RecvConfig {
            mode: DemuxMode::UserProcess,
            spacing_us: 1_800,
            ..Default::default()
        });
        let ratio = u.per_packet_ms / k.per_packet_ms;
        assert!((1.6..3.0).contains(&ratio), "ratio {ratio:.2} (paper ~2.2)");
    }

    #[test]
    fn larger_packets_cost_more() {
        let small = quick(RecvConfig {
            spacing_us: 900,
            ..Default::default()
        });
        let big = quick(RecvConfig {
            frame_bytes: 1500,
            spacing_us: 2_000,
            ..Default::default()
        });
        // Paper: 2.3 → 4.0 ms; the delta is dominated by 1 µs/byte copying.
        let delta = big.per_packet_ms - small.per_packet_ms;
        assert!(
            (1.0..2.6).contains(&delta),
            "delta {delta:.2} ms (paper 1.7)"
        );
    }

    #[test]
    fn batching_amortizes_wakeups() {
        let plain = quick(RecvConfig {
            spacing_us: 400,
            ..Default::default()
        });
        let batched = quick(RecvConfig {
            batching: true,
            spacing_us: 400,
            ..Default::default()
        });
        assert!(
            batched.syscalls_per_packet < plain.syscalls_per_packet,
            "batched {} vs plain {} syscalls/packet",
            batched.syscalls_per_packet,
            plain.syscalls_per_packet
        );
        assert!(batched.per_packet_ms < plain.per_packet_ms);
    }

    #[test]
    fn filter_length_adds_linear_cost() {
        let t = |n| {
            quick(RecvConfig {
                batching: true,
                filter_instructions: Some(n),
                spacing_us: 400,
                ..Default::default()
            })
            .per_packet_ms
        };
        let t0 = t(0);
        let t21 = t(21);
        let delta = t21 - t0;
        // Paper: 1.9 → 2.5 ms, i.e. ~0.6 ms for 21 instructions.
        assert!((0.4..0.8).contains(&delta), "21-instr delta {delta:.2} ms");
    }

    #[test]
    fn figure_2_counters_kernel_vs_user() {
        // Figures 2-1/2-2: the user-level demultiplexer pays extra context
        // switches, system calls, and copies on every packet.
        let k = quick(RecvConfig {
            spacing_us: 900,
            ..Default::default()
        });
        let u = quick(RecvConfig {
            mode: DemuxMode::UserProcess,
            spacing_us: 1_800,
            ..Default::default()
        });
        assert!(u.context_switches_per_packet >= k.context_switches_per_packet + 0.9);
        assert!(u.syscalls_per_packet >= k.syscalls_per_packet + 1.9);
        assert!(u.copies_per_packet >= k.copies_per_packet + 1.9);
    }
}
