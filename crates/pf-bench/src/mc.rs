//! Multi-core scaling campaign: `BENCH_mc.json`.
//!
//! Sweeps the `pf_kernel::mc` data plane across worker-core counts,
//! engine batch sizes, and demultiplexing engines under a saturating
//! burst, and measures what each shape actually achieves:
//!
//! * **goodput** — packets delivered per second of makespan (arrival of
//!   the first frame to the last core going idle), the aggregate
//!   throughput observable;
//! * **cost per packet** — total CPU busy time across cores divided by
//!   packets delivered, the batching observable (dispatch amortization
//!   shows up here even when goodput is makespan-limited);
//! * **p99 delivery latency** — arrival → consumption, including ring
//!   residency, so large batches honestly show their latency quantum;
//! * **placement and traffic counters** — pinned vs replicated filters,
//!   frames steered, cross-core wakeups, steals, batches.
//!
//! The workload is the multi-core analogue of the overload campaign's:
//! a population of `POPULATION` single-socket flows whose filters carry
//! admission signatures on the hashed word (so they pin, one shard per
//! core), plus ~5% junk frames on sockets no pinned filter wants, caught
//! only by a replicated low-priority wildcard homed on core 0 — the junk
//! exercises the residue walk and cross-core delivery.
//!
//! The signature results are sweep-internal `assert!`s: 4 cores deliver
//! at least 3× the 1-core goodput at the same batch size, and batch=32
//! beats batch=1 on per-packet cost for the sharded engine at this
//! population. A zero exit is the campaign's proof.

use pf_filter::samples;
use pf_kernel::mc::{McConfig, McPipeline, Placement, RssConfig};
use pf_kernel::world::OverloadConfig;
use pf_kernel::DemuxEngine;
use pf_sim::time::{SimDuration, SimTime};
use pf_sim::SimClock;

/// Pinned single-socket flows in the population (the batching gate is
/// stated at population ≥ 128, so the campaign runs exactly there).
pub const POPULATION: u16 = 128;
/// First destination socket of the population (sockets must be non-zero
/// so the filters keep their literal admission signatures).
pub const FIRST_SOCK: u16 = 100;
/// Every `JUNK_EVERY`-th frame goes to a socket outside the population
/// (~5% junk, caught only by the replicated wildcard).
pub const JUNK_EVERY: usize = 20;
/// The packet word the RSS hash covers: the low destination-socket word,
/// which is also where the population's admission signatures live.
pub const HASH_WORD: u16 = 8;
/// Per-packet application cost of consuming one delivered packet.
pub const CONSUME: SimDuration = SimDuration::from_micros(200);

/// Core counts the full campaign sweeps.
pub const CORES: [usize; 4] = [1, 2, 4, 8];
/// Batch sizes the full campaign sweeps.
pub const BATCHES: [usize; 4] = [1, 8, 32, 128];

/// The engines the campaign sweeps (the compiled ladder; `Jit` degrades
/// to per-member threaded code when the `jit` feature is off).
pub const ENGINES: [(DemuxEngine, &str); 3] = [
    (DemuxEngine::Sharded, "sharded"),
    (DemuxEngine::DecisionTable, "dtree"),
    (DemuxEngine::Jit, "jit"),
];

/// A population frame: flow `i` sends to socket `FIRST_SOCK + i`.
fn flow_frame(i: usize) -> Vec<u8> {
    samples::pup_packet_3mb(2, 0, FIRST_SOCK + (i as u16 % POPULATION), 1)
}

/// A junk frame on a socket no pinned filter wants; varying the socket
/// spreads junk across the queues like real background traffic.
fn junk_frame(i: usize) -> Vec<u8> {
    samples::pup_packet_3mb(2, 0, 40_000 + (i as u16 % 977), 1)
}

/// The saturating burst driven through every cell: `n` frames at a
/// 100 µs spacing — an offered rate several times any single core's
/// service rate (per-frame costs are on the order of a millisecond), so
/// queues stay deep and the cell measures capacity, not arrival rate.
pub fn burst(n: usize) -> Vec<(SimTime, Vec<u8>)> {
    (0..n)
        .map(|i| {
            let frame = if i % JUNK_EVERY == JUNK_EVERY - 1 {
                junk_frame(i)
            } else {
                flow_frame(i)
            };
            (SimTime(i as u64 * 100_000), frame)
        })
        .collect()
}

/// One cell's measurements.
#[derive(Debug, Clone, Copy)]
pub struct McPoint {
    /// Engine label.
    pub engine: &'static str,
    /// Worker cores.
    pub cores: usize,
    /// Engine batch size.
    pub batch: usize,
    /// Frames offered.
    pub offered: u64,
    /// Packets delivered to consumers.
    pub delivered: u64,
    /// Delivered per second of makespan.
    pub goodput_pps: f64,
    /// Total CPU busy time over delivered packets, µs.
    pub cost_per_packet_us: f64,
    /// p50 arrival → consumption latency, µs.
    pub p50_latency_us: u64,
    /// p99 arrival → consumption latency, µs.
    pub p99_latency_us: u64,
    /// Frames steered to a non-default queue.
    pub frames_steered: u64,
    /// Cross-core delivery wakeups.
    pub cross_core_wakeups: u64,
    /// Work-steal operations.
    pub queue_steals: u64,
    /// Batched engine dispatches.
    pub batches_executed: u64,
    /// Frames dropped at a full receive ring.
    pub drops_interface: u64,
    /// Frames no filter accepted.
    pub drops_no_match: u64,
    /// Filters pinned to one core (vs replicated everywhere).
    pub pinned: u64,
    /// Filters replicated to every core.
    pub replicated: u64,
}

/// Runs one (engine, cores, batch) cell over an `n`-frame burst.
/// Fully deterministic.
pub fn run_cell(
    engine: DemuxEngine,
    engine_label: &'static str,
    cores: usize,
    batch: usize,
    n: usize,
) -> McPoint {
    let mut cfg = McConfig::single_core(engine);
    cfg.cores = cores;
    cfg.batch = batch;
    cfg.rss = if cores == 1 {
        RssConfig::single_queue()
    } else {
        RssConfig::multi_queue(cores, vec![HASH_WORD])
    };
    cfg.consume = CONSUME;
    cfg.steal = cores > 1;
    // Armor with a drain ceiling far above any core's service rate: the
    // polling switch saves per-frame interrupt work under the burst
    // without the poll tick ever becoming the bottleneck.
    cfg.armor = Some(OverloadConfig {
        hi_watermark: 16,
        lo_watermark: 4,
        poll_batch: batch.max(16),
        poll_interval: SimDuration::from_millis(2),
    });
    let mut pl = McPipeline::new(cfg);
    let mut pinned = 0u64;
    let mut replicated = 0u64;
    for i in 0..POPULATION {
        let h = pl.add_filter(samples::pup_socket_filter(10, 0, FIRST_SOCK + i));
        match pl.placement(h) {
            Placement::Pinned { .. } => pinned += 1,
            Placement::Replicated => replicated += 1,
        }
    }
    let wildcard = pl.add_filter(samples::accept_all(1));
    match pl.placement(wildcard) {
        Placement::Pinned { .. } => pinned += 1,
        Placement::Replicated => replicated += 1,
    }

    let arrivals = burst(n);
    let offered = arrivals.len() as u64;
    pl.schedule_arrivals(arrivals);
    SimClock::run(&mut pl);
    let report = pl.report();
    let makespan = report.finish.saturating_since(SimTime::ZERO);
    let busy_ns: u64 = report.busy.iter().map(|b| b.as_nanos()).sum();
    let delivered = report.total.packets_delivered;
    McPoint {
        engine: engine_label,
        cores,
        batch,
        offered,
        delivered,
        goodput_pps: delivered as f64 / makespan.as_secs_f64().max(f64::MIN_POSITIVE),
        cost_per_packet_us: busy_ns as f64 / 1_000.0 / (delivered.max(1)) as f64,
        p50_latency_us: report.latency_quantile(0.50).as_nanos() / 1_000,
        p99_latency_us: report.latency_quantile(0.99).as_nanos() / 1_000,
        frames_steered: report.total.frames_steered,
        cross_core_wakeups: report.total.cross_core_wakeups,
        queue_steals: report.total.queue_steals,
        batches_executed: report.total.batches_executed,
        drops_interface: report.total.drops_interface,
        drops_no_match: report.total.drops_no_match,
        pinned,
        replicated,
    }
}

/// The whole campaign.
#[derive(Debug, Clone)]
pub struct McReportTable {
    /// Seed recorded for artifact provenance. This campaign draws no
    /// randomness (arrivals and steering are fully pinned), so the seed
    /// does not change results; it is recorded so every BENCH_*.json
    /// carries the same replay field.
    pub seed: u64,
    /// Flow population (pinned socket filters).
    pub population: u16,
    /// Frames offered per cell.
    pub frames: usize,
    /// Every (engine × cores × batch) cell.
    pub rows: Vec<McPoint>,
}

impl McReportTable {
    /// The row for one cell.
    pub fn cell(&self, engine: &str, cores: usize, batch: usize) -> &McPoint {
        self.rows
            .iter()
            .find(|r| r.engine == engine && r.cores == cores && r.batch == batch)
            .expect("cell swept")
    }
}

/// Runs the sweep and asserts the campaign's invariants: every cell
/// accounts for every offered frame; multi-queue cells pin the whole
/// population and steer real traffic; 4 cores deliver ≥ 3× the 1-core
/// goodput at the same batch size; and batch=32 beats batch=1 per-packet
/// cost for the sharded engine. A violated invariant panics with the
/// offending cell. `cores`/`batches` override the default sweeps (the
/// scaling asserts need {1, 4} and {1, 32}; sweeps without them skip the
/// corresponding gate).
pub fn sweep(
    smoke: bool,
    cores: Option<&[usize]>,
    batches: Option<&[usize]>,
    seed: u64,
) -> McReportTable {
    let default_cores: &[usize] = if smoke { &[1, 4] } else { &CORES };
    let default_batches: &[usize] = if smoke { &[1, 32] } else { &BATCHES };
    let cores = cores.unwrap_or(default_cores);
    let batches = batches.unwrap_or(default_batches);
    let engines: &[(DemuxEngine, &str)] = if smoke { &ENGINES[..1] } else { &ENGINES };
    let frames = if smoke { 800 } else { 2400 };

    let mut rows = Vec::new();
    for &(engine, label) in engines {
        for &c in cores {
            for &b in batches {
                rows.push(run_cell(engine, label, c, b, frames));
            }
        }
    }
    let report = McReportTable {
        seed,
        population: POPULATION,
        frames,
        rows,
    };

    for p in &report.rows {
        // Conservation: every offered frame is delivered or dropped
        // somewhere we can name.
        assert_eq!(
            p.delivered + p.drops_interface + p.drops_no_match,
            p.offered,
            "unaccounted frames: {p:?}"
        );
        // The wildcard catches junk: nothing is unmatched.
        assert_eq!(p.drops_no_match, 0, "wildcard must catch junk: {p:?}");
        if p.cores > 1 {
            assert_eq!(
                p.pinned,
                u64::from(POPULATION),
                "whole population must pin on multi-queue: {p:?}"
            );
            assert_eq!(p.replicated, 1, "only the wildcard replicates: {p:?}");
            assert!(p.frames_steered > 0, "RSS must steer: {p:?}");
            assert!(
                p.cross_core_wakeups > 0,
                "junk must cross cores to its wildcard consumer: {p:?}"
            );
        }
    }
    for &(_, label) in engines {
        // The 3x gate holds at every batch size for 4 cores. (At 8
        // cores batch=128 still pays a visible granularity tax — a core
        // claims up to 128 frames per drain and claimed frames cannot
        // be stolen, so the burst's tail serializes; the rows are in
        // the JSON and EXPERIMENTS.md discusses it.)
        for &b in batches.iter() {
            if !(cores.contains(&1) && cores.contains(&4)) {
                continue;
            }
            let one = report.cell(label, 1, b);
            let four = report.cell(label, 4, b);
            assert!(
                four.goodput_pps >= 3.0 * one.goodput_pps,
                "{label} batch {b}: 4 cores must deliver >= 3x one core: \
                 {:.1} pps vs {:.1} pps",
                four.goodput_pps,
                one.goodput_pps
            );
        }
    }
    if batches.contains(&1) && batches.contains(&32) {
        for &c in cores {
            let b1 = report.cell("sharded", c, 1);
            let b32 = report.cell("sharded", c, 32);
            assert!(
                b32.cost_per_packet_us < b1.cost_per_packet_us,
                "sharded {c} cores: batch=32 must beat batch=1 per-packet cost: \
                 {:.1} us vs {:.1} us",
                b32.cost_per_packet_us,
                b1.cost_per_packet_us
            );
        }
    }
    report
}

fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

/// Renders the campaign as JSON (hand-rolled: the build is hermetic, no
/// serde).
pub fn to_json(report: &McReportTable) -> String {
    let mut s = String::from("{\n  \"experiment\": \"mc\",\n");
    s.push_str(
        "  \"workload\": \"saturating burst over a population of pinned single-socket \
         flows plus ~5% junk caught by a replicated wildcard, swept across worker \
         cores, engine batch sizes, and demux engines\",\n",
    );
    s.push_str(&format!(
        "  \"seed\": {},\n  \"population\": {},\n  \"frames_per_cell\": {},\n",
        report.seed, report.population, report.frames
    ));
    s.push_str("  \"rows\": [\n");
    for (i, p) in report.rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"engine\": \"{}\", \"cores\": {}, \"batch\": {}, \
             \"offered\": {}, \"delivered\": {}, \"goodput_pps\": {}, \
             \"cost_per_packet_us\": {}, \"p50_latency_us\": {}, \
             \"p99_latency_us\": {}, \"frames_steered\": {}, \
             \"cross_core_wakeups\": {}, \"queue_steals\": {}, \
             \"batches_executed\": {}, \"drops_interface\": {}, \
             \"drops_no_match\": {}, \"pinned\": {}, \"replicated\": {}}}{}\n",
            p.engine,
            p.cores,
            p.batch,
            p.offered,
            p.delivered,
            fmt_f64(p.goodput_pps),
            fmt_f64(p.cost_per_packet_us),
            p.p50_latency_us,
            p.p99_latency_us,
            p.frames_steered,
            p.cross_core_wakeups,
            p.queue_steals,
            p.batches_executed,
            p.drops_interface,
            p.drops_no_match,
            p.pinned,
            p.replicated,
            if i + 1 == report.rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"signature\": {\n");
    let engines: Vec<&str> = {
        let mut v: Vec<&str> = report.rows.iter().map(|r| r.engine).collect();
        v.dedup();
        v
    };
    let scaling_batch = report
        .rows
        .iter()
        .map(|r| r.batch)
        .find(|&b| b == 32)
        .unwrap_or(report.rows[0].batch);
    for (ei, label) in engines.iter().enumerate() {
        let gp = |cores: usize| {
            report
                .rows
                .iter()
                .find(|r| r.engine == *label && r.cores == cores && r.batch == scaling_batch)
                .map(|r| r.goodput_pps)
        };
        let speedup = match (gp(1), gp(4)) {
            (Some(one), Some(four)) if one > 0.0 => four / one,
            _ => f64::NAN,
        };
        s.push_str(&format!(
            "    \"{}\": {{\"speedup_4c_over_1c_at_batch_{}\": {}}}{}\n",
            label,
            scaling_batch,
            fmt_f64(speedup),
            if ei + 1 == engines.len() { "" } else { "," }
        ));
    }
    s.push_str("  }\n}\n");
    s
}

/// Default output path: the repository root's `BENCH_mc.json`.
pub fn default_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_mc.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_are_deterministic() {
        let a = run_cell(DemuxEngine::Sharded, "sharded", 4, 32, 300);
        let b = run_cell(DemuxEngine::Sharded, "sharded", 4, 32, 300);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.goodput_pps, b.goodput_pps);
        assert_eq!(a.p99_latency_us, b.p99_latency_us);
        assert_eq!(a.cross_core_wakeups, b.cross_core_wakeups);
    }

    #[test]
    fn smoke_sweep_holds_every_invariant() {
        let report = sweep(true, None, None, 0);
        // 1 engine x 2 core counts x 2 batch sizes.
        assert_eq!(report.rows.len(), 4);
        let json = to_json(&report);
        assert!(json.contains("\"experiment\": \"mc\""));
        assert!(json.contains("\"signature\""));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces:\n{json}"
        );
    }
}
