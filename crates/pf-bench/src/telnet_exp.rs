//! Table 6-7: relative performance of Telnet.
//!
//! ```text
//! Telnet protocol   Network      Output rate
//! Pup/BSP           10 Mbit/s    1635 c/s   (MC68010 workstation display)
//! IP/TCP            10 Mbit/s    1757 c/s
//! Pup/BSP            3 Mbit/s     878 c/s   (9600-baud terminal)
//! IP/TCP             3 Mbit/s     933 c/s
//! ```
//!
//! (The paper's first two rows are display-limited and the last two
//! terminal-limited; the network column hardly matters, which is the
//! point: "these output rates are clearly limited by the display terminal,
//! not by network performance.")

use crate::report::Report;
use pf_kernel::world::World;
use pf_net::medium::Medium;
use pf_net::segment::FaultModel;
use pf_proto::bsp_app::BspReceiverApp;
use pf_proto::ip::KernelIp;
use pf_proto::pup::PupAddr;
use pf_proto::stream::TcpBulkReceiver;
use pf_proto::telnet::{
    telnet_bsp_client, TelnetBspServer, TelnetTcpServer, TERMINAL_9600_CHAR_COST,
    WORKSTATION_CHAR_COST,
};
use pf_sim::cost::CostModel;
use pf_sim::time::{SimDuration, SimTime};
use pf_sim::SimClock;

const CHARS: usize = 8_000;
const RUN_CAP: SimTime = SimTime(300 * 1_000_000_000);

/// Output rate (characters/second) for telnet over user-level BSP.
pub fn bsp_rate(char_cost: SimDuration) -> f64 {
    let mut w = World::new(61);
    let seg = w.add_segment(Medium::experimental_3mb(), FaultModel::default());
    let server = w.add_host("server", seg, 0x0A, CostModel::microvax_ii());
    let user = w.add_host("user", seg, 0x0B, CostModel::microvax_ii());
    let src = PupAddr::new(1, 0x0A, 0x17);
    let dst = PupAddr::new(1, 0x0B, 0x18);
    let rx = w.spawn(user, Box::new(telnet_bsp_client(dst, char_cost)));
    w.spawn(server, Box::new(TelnetBspServer::new(src, dst, CHARS)));
    w.run_until(RUN_CAP);
    let r = w.app_ref::<BspReceiverApp>(user, rx).expect("client");
    assert!(
        r.is_done(),
        "telnet/BSP stream finished ({} chars)",
        r.bytes
    );
    r.throughput_bps().expect("done")
}

/// Output rate (characters/second) for telnet over kernel TCP.
pub fn tcp_rate(char_cost: SimDuration) -> f64 {
    let mut w = World::new(61);
    let seg = w.add_segment(Medium::standard_10mb(), FaultModel::default());
    let server = w.add_host("server", seg, 0x0A, CostModel::microvax_ii());
    let user = w.add_host("user", seg, 0x0B, CostModel::microvax_ii());
    w.register_protocol(server, Box::new(KernelIp::new(10)));
    w.register_protocol(user, Box::new(KernelIp::new(11)));
    let rx = w.spawn(
        user,
        Box::new(TcpBulkReceiver::new(23).with_per_byte_cost(char_cost)),
    );
    w.spawn(server, Box::new(TelnetTcpServer::new(11, 23, 0x0B, CHARS)));
    w.run_until(RUN_CAP);
    let r = w.app_ref::<TcpBulkReceiver>(user, rx).expect("client");
    assert!(
        r.is_done(),
        "telnet/TCP stream finished ({} chars)",
        r.bytes
    );
    r.throughput_bps().expect("done")
}

/// Builds the table 6-7 report.
pub fn report_table_6_7() -> Report {
    let rows = [
        (
            "Pup/BSP, workstation display",
            WORKSTATION_CHAR_COST,
            1635.0,
            true,
        ),
        (
            "IP/TCP, workstation display",
            WORKSTATION_CHAR_COST,
            1757.0,
            false,
        ),
        (
            "Pup/BSP, 9600-baud terminal",
            TERMINAL_9600_CHAR_COST,
            878.0,
            true,
        ),
        (
            "IP/TCP, 9600-baud terminal",
            TERMINAL_9600_CHAR_COST,
            933.0,
            false,
        ),
    ];
    let mut r = Report::new("Table 6-7", "Relative performance of Telnet").headers(&[
        "configuration",
        "paper",
        "measured",
    ]);
    for (name, cost, paper, is_bsp) in rows {
        let rate = if is_bsp {
            bsp_rate(cost)
        } else {
            tcp_rate(cost)
        };
        r.row(&[
            name.to_string(),
            format!("{paper:.0} c/s"),
            format!("{rate:.0} c/s"),
        ]);
    }
    r.note("output rates limited by the display, not the protocol (§6.4)");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_6_7_shape() {
        let bsp_ws = bsp_rate(WORKSTATION_CHAR_COST);
        let tcp_ws = tcp_rate(WORKSTATION_CHAR_COST);
        let bsp_tt = bsp_rate(TERMINAL_9600_CHAR_COST);
        let tcp_tt = tcp_rate(TERMINAL_9600_CHAR_COST);
        // Workstation rows land near the paper's ~1700 c/s.
        assert!((1_100.0..2_400.0).contains(&bsp_ws), "BSP ws {bsp_ws:.0}");
        assert!((1_100.0..2_400.0).contains(&tcp_ws), "TCP ws {tcp_ws:.0}");
        // Terminal rows below the 960 c/s line ceiling.
        assert!((700.0..960.0).contains(&bsp_tt), "BSP term {bsp_tt:.0}");
        assert!((700.0..960.0).contains(&tcp_tt), "TCP term {tcp_tt:.0}");
        // The protocol choice moves the needle only slightly (paper: ≤8%);
        // allow a generous 35%.
        assert!((tcp_ws / bsp_ws - 1.0).abs() < 0.35);
        assert!((tcp_tt / bsp_tt - 1.0).abs() < 0.35);
        // Terminal rows are strictly slower than workstation rows.
        assert!(bsp_tt < bsp_ws && tcp_tt < tcp_ws);
    }
}
