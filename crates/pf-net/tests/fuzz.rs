// Structured fuzzing for pf-net's hostile-input surfaces: the frame
// codec (build / parse / payload / pad) on both media, and the fabric
// fault-schedule builder. Each target runs >= 10,000 seeded
// iterations, so the suite is slow enough to keep out of the default
// `cargo test` — gate it behind a feature and run it in its own CI
// lane:
//
//   cargo test -p pf-net --release --features fuzz-tests
//
// Like pf-ir's `tests/fuzz.rs` these are hermetic proptest-style
// loops: all randomness comes from the in-tree `pf_sim::rng::SplitMix64`,
// so a failure reproduces from the constant seed with no external
// crates.
#![cfg(feature = "fuzz-tests")]

use pf_net::fabric::{FabricAction, FabricSchedule};
use pf_net::frame;
use pf_net::medium::Medium;
use pf_net::{LinkId, NodeId};
use pf_sim::rng::SplitMix64;
use pf_sim::time::{SimDuration, SimTime};

const ITERS: u32 = 10_000;

fn media() -> [Medium; 2] {
    [Medium::experimental_3mb(), Medium::standard_10mb()]
}

/// A link address biased toward the medium's boundary cases: in-range,
/// exactly at the width limit, far out of range, broadcast.
fn fuzz_addr(rng: &mut SplitMix64, medium: &Medium) -> u64 {
    let bits = medium.addr_len * 8;
    match rng.below(5) {
        0 => rng.next_u64(),
        1 if bits < 64 => 1u64 << bits,
        2 if bits < 64 => (1u64 << bits) - 1,
        3 => medium.broadcast,
        _ => rng.next_u64() & ((1u64 << bits.min(63)) - 1),
    }
}

/// `build` must be total (no panics), reject exactly the documented
/// inputs, and everything it accepts must round-trip through `parse`
/// and `payload` bit-for-bit.
#[test]
fn frame_build_parse_round_trip_is_total() {
    let mut rng = SplitMix64::new(0xF8A_0001);
    let media = media();
    for _ in 0..ITERS {
        let medium = &media[rng.below(2) as usize];
        let dst = fuzz_addr(&mut rng, medium);
        let src = fuzz_addr(&mut rng, medium);
        let ethertype = rng.next_u64() as u16;
        // Bias payload lengths around the max-packet boundary.
        let len = if rng.chance(0.3) {
            let slack = medium.max_packet - medium.header_len;
            (slack as u64)
                .saturating_add(rng.below(8))
                .saturating_sub(4) as usize
        } else {
            rng.below(medium.max_packet as u64 + 64) as usize
        };
        let payload: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();

        let bits = medium.addr_len * 8;
        let fits = |a: u64| bits >= 64 || a < (1u64 << bits);
        let too_long = medium.header_len + payload.len() > medium.max_packet;
        match frame::build(medium, dst, src, ethertype, &payload) {
            Ok(f) => {
                assert!(fits(dst) && fits(src) && !too_long);
                assert_eq!(f.len(), medium.header_len + payload.len());
                let h = frame::parse(medium, &f).expect("built frames parse");
                assert_eq!((h.dst, h.src, h.ethertype), (dst, src, ethertype));
                assert_eq!(frame::payload(medium, &f).unwrap(), &payload[..]);
            }
            Err(_) => assert!(!fits(dst) || !fits(src) || too_long),
        }
    }
}

/// `parse` and `payload` never panic on arbitrary byte soup — including
/// truncations below the header — and agree with each other on whether
/// the header fits.
#[test]
fn frame_parse_survives_corruption_and_truncation() {
    let mut rng = SplitMix64::new(0xF8A_0002);
    let media = media();
    for _ in 0..ITERS {
        let medium = &media[rng.below(2) as usize];
        let mut bytes: Vec<u8> = (0..rng.below(80)).map(|_| rng.next_u64() as u8).collect();
        if rng.chance(0.5) && !bytes.is_empty() {
            // Flip a few bits of an otherwise-valid frame too.
            let f = frame::build(medium, 1, 2, 0x0800, &bytes.clone())
                .unwrap_or_else(|_| bytes.clone());
            bytes = f;
            for _ in 0..rng.below(4) {
                let i = rng.below(bytes.len() as u64) as usize;
                bytes[i] ^= 1 << rng.below(8);
            }
            if rng.chance(0.3) {
                bytes.truncate(rng.below(bytes.len() as u64 + 1) as usize);
            }
        }
        let parsed = frame::parse(medium, &bytes);
        let body = frame::payload(medium, &bytes);
        assert_eq!(
            parsed.is_ok(),
            bytes.len() >= medium.header_len,
            "parse succeeds exactly when the header fits"
        );
        assert_eq!(parsed.is_ok(), body.is_ok(), "parse and payload agree");
        if let Ok(b) = body {
            assert_eq!(b.len(), bytes.len() - medium.header_len);
        }
    }
}

/// `pad` is clamped, monotone, and prefix-preserving for any request.
#[test]
fn frame_pad_is_clamped_and_prefix_preserving() {
    let mut rng = SplitMix64::new(0xF8A_0003);
    let media = media();
    for _ in 0..ITERS {
        let medium = &media[rng.below(2) as usize];
        let mut f: Vec<u8> = (0..rng.below(medium.max_packet as u64 + 16))
            .map(|_| rng.next_u64() as u8)
            .collect();
        let before = f.clone();
        let want = rng.below(2 * medium.max_packet as u64) as usize;
        let added = frame::pad(medium, &mut f, want);
        assert_eq!(f.len(), before.len() + added);
        assert!(f.len() >= before.len(), "pad never shrinks");
        assert!(
            f.len() <= medium.max_packet.max(before.len()),
            "pad never grows past the medium's maximum"
        );
        assert_eq!(&f[..before.len()], &before[..], "existing bytes untouched");
        assert!(f[before.len()..].iter().all(|&b| b == 0));
    }
}

/// The fault-schedule builder keeps its event list time-sorted and
/// stable under arbitrary interleavings of every constructor, and
/// `random_chaos` is a pure function of its seed.
#[test]
fn fabric_schedule_stays_sorted_and_deterministic() {
    let mut rng = SplitMix64::new(0xF8A_0004);
    for _ in 0..ITERS {
        let mut s = FabricSchedule::new();
        let ops = rng.below(12);
        for _ in 0..ops {
            let at = SimTime(rng.below(5_000_000_000));
            let node = NodeId(rng.below(16) as usize);
            let link = LinkId(rng.below(16) as usize);
            match rng.below(5) {
                0 => s.push(
                    at,
                    if rng.chance(0.5) {
                        FabricAction::RouterDown(node)
                    } else {
                        FabricAction::RouterUp(node)
                    },
                ),
                1 => s.router_outage(
                    node,
                    at,
                    rng.chance(0.5).then(|| SimTime(at.0 + rng.below(1 << 30))),
                ),
                2 => s.link_outage(
                    link,
                    at,
                    rng.chance(0.5).then(|| SimTime(at.0 + rng.below(1 << 30))),
                ),
                3 => s.link_flaps(
                    link,
                    at,
                    SimDuration(1 + rng.below(1 << 24)),
                    SimDuration(1 + rng.below(1 << 24)),
                    rng.below(6) as u32,
                ),
                _ => s.partition(
                    &[link],
                    at,
                    rng.chance(0.5).then(|| SimTime(at.0 + rng.below(1 << 30))),
                ),
            }
        }
        let events = s.events();
        assert_eq!(events.len(), s.len());
        assert!(
            events.windows(2).all(|w| w[0].at <= w[1].at),
            "events come out time-sorted"
        );
    }

    // Seed-purity of the chaos generator: same inputs, same schedule.
    let routers: Vec<NodeId> = (0..8usize).map(NodeId).collect();
    let links: Vec<LinkId> = (0..8usize).map(LinkId).collect();
    for seed in 0..64u64 {
        let a = FabricSchedule::random_chaos(
            &routers,
            &links,
            SimTime(2_000_000_000),
            SimDuration::from_millis(200),
            10,
            seed,
        );
        let b = FabricSchedule::random_chaos(
            &routers,
            &links,
            SimTime(2_000_000_000),
            SimDuration::from_millis(200),
            10,
            seed,
        );
        assert_eq!(a.events(), b.events());
    }
}
