// Property suites need the external `proptest` crate; the default build is
// hermetic (offline), so this whole file is gated behind a feature. See the
// crate manifest for how to restore the dev-dependency.
#![cfg(feature = "proptest-tests")]

//! Property-based tests for the simulated data links.

use pf_net::frame;
use pf_net::medium::Medium;
use pf_net::segment::{FaultModel, Network};
use pf_sim::time::SimTime;
use proptest::prelude::*;

proptest! {
    #[test]
    fn frame_round_trips_3mb(
        dst in 0u64..256, src in 0u64..256, ethertype in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..596),
    ) {
        let m = Medium::experimental_3mb();
        let f = frame::build(&m, dst, src, ethertype, &payload).unwrap();
        let h = frame::parse(&m, &f).unwrap();
        prop_assert_eq!(h.dst, dst);
        prop_assert_eq!(h.src, src);
        prop_assert_eq!(h.ethertype, ethertype);
        prop_assert_eq!(frame::payload(&m, &f).unwrap(), &payload[..]);
    }

    #[test]
    fn frame_round_trips_10mb(
        dst in 0u64..(1 << 48), src in 0u64..(1 << 48), ethertype in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..1500),
    ) {
        let m = Medium::standard_10mb();
        let f = frame::build(&m, dst, src, ethertype, &payload).unwrap();
        let h = frame::parse(&m, &f).unwrap();
        prop_assert_eq!(h.dst, dst);
        prop_assert_eq!(h.src, src);
        prop_assert_eq!(h.ethertype, ethertype);
    }

    #[test]
    fn parse_is_total(bytes in prop::collection::vec(any::<u8>(), 0..1600)) {
        for m in [Medium::experimental_3mb(), Medium::standard_10mb()] {
            let _ = frame::parse(&m, &bytes);
            let _ = frame::payload(&m, &bytes);
        }
    }

    #[test]
    fn transmission_delay_is_monotonic(a in 0usize..2000, b in 0usize..2000) {
        for m in [Medium::experimental_3mb(), Medium::standard_10mb()] {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(m.transmission_delay(lo) <= m.transmission_delay(hi));
        }
        // And the 3 Mb wire is strictly slower for any non-empty frame.
        prop_assume!(a > 0);
        prop_assert!(
            Medium::experimental_3mb().transmission_delay(a)
                > Medium::standard_10mb().transmission_delay(a)
        );
    }

    #[test]
    fn unicast_never_leaks_to_third_parties(
        n_hosts in 3usize..8,
        dst_idx in 1usize..8,
        loss in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let dst_idx = dst_idx % n_hosts;
        prop_assume!(dst_idx != 0);
        let mut net = Network::new(seed);
        let seg = net.add_segment(
            Medium::experimental_3mb(),
            FaultModel { loss, ..FaultModel::default() },
        );
        let stations: Vec<_> = (0..n_hosts).map(|i| net.add_station(seg, i as u64 + 1)).collect();
        let m = Medium::experimental_3mb();
        let f = frame::build(&m, dst_idx as u64 + 1, 1, 2, &[0; 10]).unwrap();
        let (_, deliveries) = net.transmit(stations[0], &f, SimTime::ZERO);
        // With loss, 0 or 1 delivery — but never to anyone but the target.
        prop_assert!(deliveries.len() <= 1);
        for d in deliveries {
            prop_assert_eq!(d.station, stations[dst_idx]);
        }
    }

    #[test]
    fn fault_free_broadcast_reaches_everyone_else(
        n_hosts in 2usize..10,
        seed in any::<u64>(),
    ) {
        let mut net = Network::new(seed);
        let seg = net.add_segment(Medium::experimental_3mb(), FaultModel::default());
        let stations: Vec<_> = (0..n_hosts).map(|i| net.add_station(seg, i as u64 + 1)).collect();
        let m = Medium::experimental_3mb();
        let f = frame::build(&m, m.broadcast, 1, 2, &[]).unwrap();
        let (_, deliveries) = net.transmit(stations[0], &f, SimTime::ZERO);
        prop_assert_eq!(deliveries.len(), n_hosts - 1);
    }
}
