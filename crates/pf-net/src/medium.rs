//! Data-link media: the two Ethernets of the paper's evaluation.
//!
//! The paper's measurements use both the 3 Mbit/s Experimental Ethernet
//! (Metcalfe & Boggs 1976 — 1-byte addresses, 4-byte header, the medium of
//! the Pup examples in figures 3-7/3-8/3-9) and the 10 Mbit/s DIX Ethernet
//! (6-byte addresses, 14-byte header). §3.3 says the packet filter reports
//! the data-link's type, address and header lengths, maximum packet size,
//! local address, and broadcast address to user programs; [`Medium`] is
//! that description.

use pf_sim::time::SimDuration;

/// The kind of simulated data link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MediumKind {
    /// The 3 Mbit/s Experimental Ethernet: 1-byte addresses, 4-byte header.
    Experimental3Mb,
    /// The 10 Mbit/s DIX Ethernet: 6-byte addresses, 14-byte header.
    Standard10Mb,
}

/// Static description of a data link (§3.3's control/status information).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Medium {
    /// Which link this is.
    pub kind: MediumKind,
    /// Raw bandwidth in bits per second.
    pub bits_per_second: u64,
    /// Data-link address length in bytes.
    pub addr_len: usize,
    /// Data-link header length in bytes.
    pub header_len: usize,
    /// Maximum packet size (header + payload) in bytes.
    pub max_packet: usize,
    /// The broadcast address (all link addresses fit in a `u64` here).
    pub broadcast: u64,
}

impl Medium {
    /// The 3 Mbit/s Experimental Ethernet.
    pub fn experimental_3mb() -> Self {
        Medium {
            kind: MediumKind::Experimental3Mb,
            bits_per_second: 3_000_000,
            addr_len: 1,
            header_len: 4,
            // The experimental Ethernet carried Pups up to 568 bytes plus
            // encapsulation; 600 bytes is a comfortable frame ceiling.
            max_packet: 600,
            broadcast: 0,
        }
    }

    /// The 10 Mbit/s standard Ethernet.
    pub fn standard_10mb() -> Self {
        Medium {
            kind: MediumKind::Standard10Mb,
            bits_per_second: 10_000_000,
            addr_len: 6,
            header_len: 14,
            max_packet: 1514,
            broadcast: 0xFFFF_FFFF_FFFF,
        }
    }

    /// Time on the wire for a frame of `bytes` bytes (transmission delay
    /// only; propagation is accounted separately by the segment).
    pub fn transmission_delay(&self, bytes: usize) -> SimDuration {
        // bits / (bits/s) = seconds; work in nanoseconds for precision.
        let bits = bytes as u64 * 8;
        SimDuration::from_nanos(bits * 1_000_000_000 / self.bits_per_second)
    }

    /// Whether an address is the broadcast address.
    pub fn is_broadcast(&self, addr: u64) -> bool {
        addr == self.broadcast
    }

    /// Whether an address is a multicast group address (10 Mb Ethernet:
    /// low bit of the first address byte; the experimental Ethernet had no
    /// multicast, only broadcast).
    pub fn is_multicast(&self, addr: u64) -> bool {
        match self.kind {
            MediumKind::Experimental3Mb => false,
            MediumKind::Standard10Mb => {
                // First byte on the wire is the most significant of the 48.
                !self.is_broadcast(addr) && (addr >> 40) & 1 == 1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmission_delay_10mb() {
        let m = Medium::standard_10mb();
        // 1500 bytes at 10 Mbit/s = 1.2 ms.
        assert_eq!(m.transmission_delay(1500).as_micros(), 1200);
        // 128 bytes = 102.4 µs.
        assert_eq!(m.transmission_delay(128).as_nanos(), 102_400);
    }

    #[test]
    fn transmission_delay_3mb() {
        let m = Medium::experimental_3mb();
        // 568-byte Pup at 3 Mbit/s ≈ 1.515 ms.
        let d = m.transmission_delay(568).as_micros();
        assert!((1500..=1530).contains(&d), "{d} µs");
    }

    #[test]
    fn broadcast_addresses() {
        assert!(Medium::experimental_3mb().is_broadcast(0));
        assert!(Medium::standard_10mb().is_broadcast(0xFFFF_FFFF_FFFF));
        assert!(!Medium::standard_10mb().is_broadcast(1));
    }

    #[test]
    fn multicast_is_10mb_only() {
        let m3 = Medium::experimental_3mb();
        let m10 = Medium::standard_10mb();
        let mcast = 0x0100_0000_0001u64; // group bit set in first byte
        assert!(m10.is_multicast(mcast));
        assert!(!m10.is_multicast(0x0200_0000_0001));
        assert!(
            !m10.is_multicast(m10.broadcast),
            "broadcast is not multicast"
        );
        assert!(!m3.is_multicast(mcast));
    }

    #[test]
    fn header_and_addr_lengths() {
        assert_eq!(Medium::experimental_3mb().header_len, 4);
        assert_eq!(Medium::experimental_3mb().addr_len, 1);
        assert_eq!(Medium::standard_10mb().header_len, 14);
        assert_eq!(Medium::standard_10mb().addr_len, 6);
    }
}
