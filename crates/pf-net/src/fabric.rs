//! Routing-plane fault schedules: router crashes, link outages, flaps,
//! and multi-link partitions.
//!
//! The per-segment [`FaultModel`](crate::segment::FaultModel) perturbs
//! individual deliveries; a [`FabricSchedule`] perturbs the *fabric*
//! itself — whole routers fail-stop and recover, whole links go
//! administratively dead and come back. The schedule is pure data
//! (time-sorted [`FabricEvent`]s over topology [`NodeId`]/[`LinkId`]s),
//! so it composes with every per-link fault model: the topology layer
//! carries it as part of the plan and the kernel simulation replays it
//! against the deployed world.
//!
//! Schedules are either hand-built (targeted outages, flap trains,
//! partitions) or generated deterministically from a seed
//! ([`FabricSchedule::random_chaos`]), so chaos campaigns replay
//! bit-identically at a fixed `--seed`.

use pf_sim::rng::SplitMix64;
use pf_sim::time::{SimDuration, SimTime};

use crate::topology::{LinkId, NodeId};

/// One routing-plane state change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricAction {
    /// The router fail-stops: it forwards nothing and emits nothing
    /// until a matching [`FabricAction::RouterUp`].
    RouterDown(NodeId),
    /// The router recovers with its forwarder state intact (fail-stop
    /// with stable storage).
    RouterUp(NodeId),
    /// The link goes dead: every delivery on its segment is dropped.
    LinkDown(LinkId),
    /// The link comes back.
    LinkUp(LinkId),
}

/// One scheduled action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricEvent {
    /// When the action takes effect.
    pub at: SimTime,
    /// What happens.
    pub action: FabricAction,
}

/// A deterministic, time-sorted plan of routing-plane faults.
#[derive(Debug, Clone, Default)]
pub struct FabricSchedule {
    events: Vec<FabricEvent>,
}

impl FabricSchedule {
    /// An empty schedule (no routing-plane faults).
    pub fn new() -> Self {
        FabricSchedule::default()
    }

    /// Number of scheduled actions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule holds no actions.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds one action at `at`.
    pub fn push(&mut self, at: SimTime, action: FabricAction) {
        self.events.push(FabricEvent { at, action });
    }

    /// Kills `node` at `down`; recovers it at `up` when given.
    pub fn router_outage(&mut self, node: NodeId, down: SimTime, up: Option<SimTime>) {
        self.push(down, FabricAction::RouterDown(node));
        if let Some(up) = up {
            assert!(up > down, "recovery must follow the crash");
            self.push(up, FabricAction::RouterUp(node));
        }
    }

    /// Takes `link` down at `down`; restores it at `up` when given.
    pub fn link_outage(&mut self, link: LinkId, down: SimTime, up: Option<SimTime>) {
        self.push(down, FabricAction::LinkDown(link));
        if let Some(up) = up {
            assert!(up > down, "restore must follow the outage");
            self.push(up, FabricAction::LinkUp(link));
        }
    }

    /// A flap train: `cycles` repetitions of down-for-`down_for`,
    /// up-for-`up_for`, starting at `first_down`. The link ends up.
    pub fn link_flaps(
        &mut self,
        link: LinkId,
        first_down: SimTime,
        down_for: SimDuration,
        up_for: SimDuration,
        cycles: u32,
    ) {
        assert!(down_for > SimDuration::ZERO, "a flap must have width");
        let mut t = first_down;
        for _ in 0..cycles {
            self.link_outage(link, t, Some(t + down_for));
            t = t + down_for + up_for;
        }
    }

    /// A multi-link partition: every listed link goes down at `down`
    /// and (when given) heals at `heal`. Cutting a topology's only
    /// inter-region links this way splits the fabric into segments
    /// that cannot reach each other.
    pub fn partition(&mut self, links: &[LinkId], down: SimTime, heal: Option<SimTime>) {
        for &l in links {
            self.link_outage(l, down, heal);
        }
    }

    /// Generates `count` random outages (routers and links mixed) over
    /// `[0, horizon)`, each lasting up to `max_outage`, deterministically
    /// from `seed`. Victims are drawn uniformly from the given pools;
    /// an empty pool is simply never drawn from.
    pub fn random_chaos(
        routers: &[NodeId],
        links: &[LinkId],
        horizon: SimTime,
        max_outage: SimDuration,
        count: usize,
        seed: u64,
    ) -> Self {
        assert!(
            !routers.is_empty() || !links.is_empty(),
            "need at least one victim pool"
        );
        assert!(max_outage > SimDuration::ZERO, "outages must have width");
        let mut rng = SplitMix64::new(seed);
        let mut sched = FabricSchedule::new();
        for _ in 0..count {
            let down = SimTime(rng.below(horizon.0.max(1)));
            let up = down + SimDuration::from_nanos(1 + rng.below(max_outage.as_nanos()));
            let pick_router = if routers.is_empty() {
                false
            } else if links.is_empty() {
                true
            } else {
                rng.chance(0.5)
            };
            if pick_router {
                let n = routers[rng.below(routers.len() as u64) as usize];
                sched.router_outage(n, down, Some(up));
            } else {
                let l = links[rng.below(links.len() as u64) as usize];
                sched.link_outage(l, down, Some(up));
            }
        }
        sched
    }

    /// The scheduled events sorted by time (stable: same-instant events
    /// keep insertion order, so "kill then immediately revive" replays
    /// in the order it was written).
    pub fn events(&self) -> Vec<FabricEvent> {
        let mut ev = self.events.clone();
        ev.sort_by_key(|e| e.at);
        ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_come_back_time_sorted_and_stable() {
        let mut s = FabricSchedule::new();
        s.router_outage(NodeId(3), SimTime(500), Some(SimTime(900)));
        s.link_outage(LinkId(1), SimTime(100), None);
        s.push(SimTime(500), FabricAction::LinkDown(LinkId(7)));
        let ev = s.events();
        assert_eq!(ev.len(), 4);
        assert_eq!(ev[0].action, FabricAction::LinkDown(LinkId(1)));
        // Same-instant events keep insertion order.
        assert_eq!(ev[1].action, FabricAction::RouterDown(NodeId(3)));
        assert_eq!(ev[2].action, FabricAction::LinkDown(LinkId(7)));
        assert_eq!(ev[3].action, FabricAction::RouterUp(NodeId(3)));
    }

    #[test]
    fn flap_train_alternates_and_ends_up() {
        let mut s = FabricSchedule::new();
        s.link_flaps(
            LinkId(0),
            SimTime(1_000),
            SimDuration::from_nanos(100),
            SimDuration::from_nanos(400),
            3,
        );
        let ev = s.events();
        assert_eq!(ev.len(), 6);
        for (i, e) in ev.iter().enumerate() {
            let expect_down = i % 2 == 0;
            match e.action {
                FabricAction::LinkDown(l) => {
                    assert!(expect_down);
                    assert_eq!(l, LinkId(0));
                }
                FabricAction::LinkUp(l) => {
                    assert!(!expect_down);
                    assert_eq!(l, LinkId(0));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(ev[5].at, SimTime(1_000 + 3 * 100 + 2 * 400));
    }

    #[test]
    fn partition_cuts_every_listed_link() {
        let mut s = FabricSchedule::new();
        s.partition(&[LinkId(2), LinkId(5)], SimTime(10), Some(SimTime(20)));
        let ev = s.events();
        let downs = ev
            .iter()
            .filter(|e| matches!(e.action, FabricAction::LinkDown(_)))
            .count();
        let ups = ev
            .iter()
            .filter(|e| matches!(e.action, FabricAction::LinkUp(_)))
            .count();
        assert_eq!((downs, ups), (2, 2));
    }

    #[test]
    fn random_chaos_is_seed_deterministic() {
        let routers = [NodeId(0), NodeId(1)];
        let links = [LinkId(0), LinkId(1), LinkId(2)];
        let gen = |seed| {
            FabricSchedule::random_chaos(
                &routers,
                &links,
                SimTime(1_000_000),
                SimDuration::from_micros(50),
                16,
                seed,
            )
            .events()
        };
        assert_eq!(gen(7), gen(7), "same seed, same schedule");
        assert_ne!(gen(7), gen(8), "different seed, different schedule");
        for e in gen(7) {
            assert!(e.at < SimTime(1_000_000 + 50_000 + 1));
        }
    }
}
