//! Frame construction and header parsing for both media.
//!
//! The packet filter deals in *complete* packets: "the user presents a
//! buffer containing a complete packet, including data-link header" (§3),
//! and received packets are returned "including the data-link layer
//! header". So frames here are plain byte vectors; this module provides
//! the header encode/decode for each [`MediumKind`].

use crate::medium::{Medium, MediumKind};

/// Errors constructing or parsing frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The frame is shorter than the medium's data-link header.
    TooShort {
        /// Actual length in bytes.
        len: usize,
        /// Required minimum (the header length).
        need: usize,
    },
    /// The frame exceeds the medium's maximum packet size.
    TooLong {
        /// Actual length in bytes.
        len: usize,
        /// The medium's maximum.
        max: usize,
    },
    /// An address does not fit the medium's address width.
    BadAddress {
        /// The offending address value.
        addr: u64,
    },
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::TooShort { len, need } => {
                write!(f, "frame of {len} bytes shorter than {need}-byte header")
            }
            FrameError::TooLong { len, max } => {
                write!(f, "frame of {len} bytes exceeds medium maximum {max}")
            }
            FrameError::BadAddress { addr } => {
                write!(
                    f,
                    "address {addr:#x} does not fit the medium's address width"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Decoded data-link header fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Destination link address.
    pub dst: u64,
    /// Source link address.
    pub src: u64,
    /// The Ethernet type field.
    pub ethertype: u16,
}

/// Builds a complete frame: header followed by `payload`.
///
/// # Errors
///
/// Returns [`FrameError::BadAddress`] if an address does not fit the
/// medium, or [`FrameError::TooLong`] if the frame would exceed its maximum
/// packet size.
pub fn build(
    medium: &Medium,
    dst: u64,
    src: u64,
    ethertype: u16,
    payload: &[u8],
) -> Result<Vec<u8>, FrameError> {
    let addr_bits = medium.addr_len * 8;
    let fits = |a: u64| addr_bits >= 64 || a < (1u64 << addr_bits);
    if !fits(dst) {
        return Err(FrameError::BadAddress { addr: dst });
    }
    if !fits(src) {
        return Err(FrameError::BadAddress { addr: src });
    }
    let len = medium.header_len + payload.len();
    if len > medium.max_packet {
        return Err(FrameError::TooLong {
            len,
            max: medium.max_packet,
        });
    }
    let mut f = Vec::with_capacity(len);
    match medium.kind {
        MediumKind::Experimental3Mb => {
            f.push(dst as u8);
            f.push(src as u8);
        }
        MediumKind::Standard10Mb => {
            f.extend_from_slice(&dst.to_be_bytes()[2..8]);
            f.extend_from_slice(&src.to_be_bytes()[2..8]);
        }
    }
    f.extend_from_slice(&ethertype.to_be_bytes());
    f.extend_from_slice(payload);
    Ok(f)
}

/// Parses a frame's data-link header.
///
/// # Errors
///
/// Returns [`FrameError::TooShort`] if the frame cannot hold the header.
pub fn parse(medium: &Medium, frame: &[u8]) -> Result<Header, FrameError> {
    if frame.len() < medium.header_len {
        return Err(FrameError::TooShort {
            len: frame.len(),
            need: medium.header_len,
        });
    }
    Ok(match medium.kind {
        MediumKind::Experimental3Mb => Header {
            dst: u64::from(frame[0]),
            src: u64::from(frame[1]),
            ethertype: u16::from_be_bytes([frame[2], frame[3]]),
        },
        MediumKind::Standard10Mb => {
            let mut dst = [0u8; 8];
            dst[2..8].copy_from_slice(&frame[0..6]);
            let mut src = [0u8; 8];
            src[2..8].copy_from_slice(&frame[6..12]);
            Header {
                dst: u64::from_be_bytes(dst),
                src: u64::from_be_bytes(src),
                ethertype: u16::from_be_bytes([frame[12], frame[13]]),
            }
        }
    })
}

/// Pads a frame in place with zero bytes to `total_len`, clamped to the
/// medium's maximum packet size; frames already that long are unchanged.
/// Returns how many bytes were appended.
///
/// The data-link header and every existing word are untouched, so
/// word-offset filters demultiplex the padded frame identically — which
/// is exactly why padding alone does not evade them; only
/// length-sensitive consumers (and per-byte costs) see the difference.
/// Adversarial traffic shaping pads to probe both.
pub fn pad(medium: &Medium, frame: &mut Vec<u8>, total_len: usize) -> usize {
    let target = total_len.min(medium.max_packet).max(frame.len());
    let added = target - frame.len();
    frame.resize(target, 0);
    added
}

/// The payload portion of a frame (after the data-link header).
///
/// # Errors
///
/// Returns [`FrameError::TooShort`] if the frame cannot hold the header.
pub fn payload<'a>(medium: &Medium, frame: &'a [u8]) -> Result<&'a [u8], FrameError> {
    if frame.len() < medium.header_len {
        return Err(FrameError::TooShort {
            len: frame.len(),
            need: medium.header_len,
        });
    }
    Ok(&frame[medium.header_len..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_3mb() {
        let m = Medium::experimental_3mb();
        let f = build(&m, 0x0B, 0x0C, 2, &[1, 2, 3]).unwrap();
        assert_eq!(f.len(), 7);
        let h = parse(&m, &f).unwrap();
        assert_eq!(
            h,
            Header {
                dst: 0x0B,
                src: 0x0C,
                ethertype: 2
            }
        );
        assert_eq!(payload(&m, &f).unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn padding_grows_payload_without_touching_the_header() {
        let m = Medium::experimental_3mb();
        let mut f = build(&m, 0x0B, 0x0C, 2, &[1, 2, 3]).unwrap();
        let h = parse(&m, &f).unwrap();
        assert_eq!(pad(&m, &mut f, 64), 57);
        assert_eq!(f.len(), 64);
        assert_eq!(parse(&m, &f).unwrap(), h, "header survives padding");
        let p = payload(&m, &f).unwrap();
        assert_eq!(&p[..3], &[1, 2, 3]);
        assert!(p[3..].iter().all(|&b| b == 0));
        // Already long enough: no-op. Over the MTU: clamped.
        assert_eq!(pad(&m, &mut f, 10), 0);
        assert_eq!(f.len(), 64);
        pad(&m, &mut f, usize::MAX);
        assert_eq!(f.len(), m.max_packet);
    }

    #[test]
    fn round_trip_10mb() {
        let m = Medium::standard_10mb();
        let f = build(&m, 0xAABBCCDDEEFF, 0x010203040506, 0x0800, &[9; 10]).unwrap();
        assert_eq!(f.len(), 24);
        let h = parse(&m, &f).unwrap();
        assert_eq!(h.dst, 0xAABBCCDDEEFF);
        assert_eq!(h.src, 0x010203040506);
        assert_eq!(h.ethertype, 0x0800);
    }

    #[test]
    fn address_width_enforced() {
        let m = Medium::experimental_3mb();
        assert!(matches!(
            build(&m, 0x100, 1, 2, &[]),
            Err(FrameError::BadAddress { addr: 0x100 })
        ));
        assert!(matches!(
            build(&m, 1, 0x1FF, 2, &[]),
            Err(FrameError::BadAddress { .. })
        ));
    }

    #[test]
    fn max_packet_enforced() {
        let m = Medium::experimental_3mb();
        let too_big = vec![0u8; m.max_packet]; // + 4-byte header exceeds
        assert!(matches!(
            build(&m, 1, 2, 2, &too_big),
            Err(FrameError::TooLong { .. })
        ));
        let ok = vec![0u8; m.max_packet - m.header_len];
        assert!(build(&m, 1, 2, 2, &ok).is_ok());
    }

    #[test]
    fn short_frame_rejected() {
        let m = Medium::standard_10mb();
        assert!(matches!(
            parse(&m, &[0; 13]),
            Err(FrameError::TooShort { .. })
        ));
        assert!(matches!(
            payload(&m, &[0; 5]),
            Err(FrameError::TooShort { .. })
        ));
    }

    #[test]
    fn header_layout_matches_fig_3_7() {
        // On the 3 Mb Ethernet the type is the second 16-bit word.
        let m = Medium::experimental_3mb();
        let f = build(&m, 1, 2, 0x0002, &[0xAA]).unwrap();
        assert_eq!(u16::from_be_bytes([f[2], f[3]]), 2);
    }
}
