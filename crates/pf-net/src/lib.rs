//! Simulated Ethernet data links and multi-segment topologies.
//!
//! The paper's packet filter "provides a raw interface to Ethernets and
//! similar network data link layers"; its measurements use both the
//! 3 Mbit/s Experimental Ethernet and the 10 Mbit/s standard Ethernet.
//! This crate simulates those links: medium descriptions ([`medium`]),
//! frame encode/decode ([`frame`]), shared-bus segments with address
//! filtering, broadcast/multicast, promiscuous mode, bandwidth-accurate
//! timing, and deterministic fault injection ([`segment`]), plus the
//! [`topology`] layer that wires segments into routed internets of
//! hosts and routers (the forwarding plane itself plugs in through
//! [`topology::Forwarder`]; the IP implementation lives in `pf-proto`).

pub mod fabric;
pub mod frame;
pub mod medium;
pub mod segment;
pub mod topology;

pub use fabric::{FabricAction, FabricEvent, FabricSchedule};
pub use frame::{FrameError, Header};
pub use medium::{Medium, MediumKind};
pub use segment::{
    Delivery, FaultCounters, FaultModel, Network, SegmentId, StationHandle, StationId,
};
pub use topology::{
    Forwarder, ForwarderStats, Interface, LinkId, NodeId, NodeKind, Route, RouteTable, Topology,
    TopologyBuilder,
};
