//! Simulated Ethernet data links.
//!
//! The paper's packet filter "provides a raw interface to Ethernets and
//! similar network data link layers"; its measurements use both the
//! 3 Mbit/s Experimental Ethernet and the 10 Mbit/s standard Ethernet.
//! This crate simulates those links: medium descriptions ([`medium`]),
//! frame encode/decode ([`frame`]), and shared-bus segments with address
//! filtering, broadcast/multicast, promiscuous mode, bandwidth-accurate
//! timing, and deterministic fault injection ([`segment`]).

pub mod frame;
pub mod medium;
pub mod segment;

pub use frame::{FrameError, Header};
pub use medium::{Medium, MediumKind};
pub use segment::{Delivery, FaultCounters, FaultModel, Network, SegmentId, StationId};
