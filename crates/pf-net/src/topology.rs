//! Multi-segment topologies: hosts and routers wired into an internet.
//!
//! A [`Topology`] is a *plan*: nodes (hosts and routers), links between
//! them (each link becomes one [`Network`] segment), deterministic
//! IP/link addressing, and shortest-path forwarding tables computed at
//! build time. The plan is substrate-agnostic — `pf-net` can
//! [`instantiate`](Topology::instantiate) it into a bare [`Network`] for
//! link-layer tests, and `pf-proto` deploys it into a full `World` with
//! kernel-resident IP routers (`pf_proto::router`).
//!
//! ## Addressing
//!
//! Link *l* becomes the /24 subnet `10.⌊l/256⌋.(l mod 256).0`; the *k*-th
//! member of the link gets host byte `k + 1` and link-layer address
//! `k + 1` on that segment (link addresses only need to be unique per
//! segment; `0` is avoided because it is the experimental medium's
//! broadcast address). IPs are globally unique, so the topology carries
//! one static ARP map from IP to link address.
//!
//! ## Forwarding
//!
//! Each router gets a [`RouteTable`] of longest-prefix-match routes
//! computed by a deterministic multi-source BFS per destination subnet
//! (hosts do not forward; a frame's first hop is its LAN's
//! lowest-indexed router). The table is static data — the *execution*
//! of forwarding (TTL decrement, re-encapsulation, cost accounting)
//! lives behind the [`Forwarder`] trait so the kernel simulation can
//! plug in the IP implementation without `pf-net` depending on it.

use std::collections::{HashMap, HashSet};

use pf_sim::time::{SimDuration, SimTime};

use crate::fabric::FabricSchedule;
use crate::medium::Medium;
use crate::segment::{FaultModel, Network, SegmentId, StationHandle, StationId};

/// Identifies a node (host or router) within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// Identifies a link (one shared segment) within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub usize);

/// What a node does with frames that are not addressed to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// End system: sources and sinks traffic, never forwards.
    Host,
    /// Packet switch: runs a [`Forwarder`] over its interfaces.
    Router,
}

/// One node's attachment to one link.
#[derive(Debug, Clone, Copy)]
pub struct Interface {
    /// The link this interface sits on.
    pub link: LinkId,
    /// The interface's IP address (globally unique).
    pub ip: u32,
    /// The interface's link-layer address (unique per segment).
    pub eth: u64,
}

/// A longest-prefix-match route entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Network prefix (host bits zero).
    pub prefix: u32,
    /// Prefix length in bits (0..=32).
    pub len: u8,
    /// Which of the owning node's interfaces the packet leaves on.
    pub iface: usize,
    /// IP of the next-hop router, or `None` when the destination subnet
    /// is directly attached (deliver straight to the destination's
    /// link address).
    pub next_hop: Option<u32>,
}

fn prefix_mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - u32::from(len))
    }
}

/// A static longest-prefix-match forwarding table.
///
/// Entries are kept sorted longest-prefix-first so [`lookup`]
/// (RouteTable::lookup) is a first-match scan — fine for the tens of
/// routes a simulated router carries.
#[derive(Debug, Clone, Default)]
pub struct RouteTable {
    routes: Vec<Route>,
}

impl RouteTable {
    /// An empty table (every lookup misses).
    pub fn new() -> Self {
        RouteTable { routes: Vec::new() }
    }

    /// Inserts a route, replacing any existing entry with the same
    /// prefix and length. Returns `true` when an entry was replaced.
    pub fn set(&mut self, route: Route) -> bool {
        debug_assert_eq!(
            route.prefix & prefix_mask(route.len),
            route.prefix,
            "host bits must be zero in a route prefix"
        );
        if let Some(r) = self
            .routes
            .iter_mut()
            .find(|r| r.prefix == route.prefix && r.len == route.len)
        {
            *r = route;
            return true;
        }
        // Longest prefix first; equal lengths by prefix for determinism.
        let key = |r: &Route| (std::cmp::Reverse(r.len), r.prefix);
        let pos = self.routes.partition_point(|r| key(r) < key(&route));
        self.routes.insert(pos, route);
        false
    }

    /// The most specific route matching `dst`, if any.
    pub fn lookup(&self, dst: u32) -> Option<&Route> {
        self.routes
            .iter()
            .find(|r| dst & prefix_mask(r.len) == r.prefix)
    }

    /// All routes, longest prefix first.
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }
}

/// Counters a [`Forwarder`] keeps about its own drops and successes,
/// plus the resilience-plane tallies a hardened forwarder maintains
/// (all zero for plain static forwarders).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForwarderStats {
    /// Frames re-emitted on an outgoing interface.
    pub forwarded: u64,
    /// Packets dropped because the TTL reached zero.
    pub ttl_expired: u64,
    /// Packets dropped for lack of a matching route (or unresolvable
    /// next hop).
    pub no_route: u64,
    /// Frames dropped because they were not well-formed routable
    /// packets (bad encapsulation, non-IP ethertype, parse errors).
    pub not_routable: u64,
    /// Neighbor-liveness hellos emitted.
    pub hellos_sent: u64,
    /// Routing-control frames received and consumed (hellos + updates).
    pub control_in: u64,
    /// Neighbor routers declared dead after a missed dead-interval.
    pub neighbors_lost: u64,
    /// Dead neighbors heard from again.
    pub neighbors_recovered: u64,
    /// Route entries switched to a precomputed loop-free backup at the
    /// instant a neighbor died (fast local failover, before any
    /// recomputation).
    pub failovers: u64,
    /// Route-table entries changed by reconvergence (installed, revised,
    /// or withdrawn) — the campaign's bounded-churn counter.
    pub route_churn: u64,
    /// Triggered route recomputations over the residual topology.
    pub reconvergences: u64,
    /// Sim-time in nanoseconds of the most recent route-table change
    /// (zero when the table never changed) — the convergence clock.
    pub last_route_change_ns: u64,
}

/// The forwarding plane of a router node.
///
/// The kernel simulation hands every frame arriving on a router's
/// interface to `forward`, charges the router CPU, and transmits
/// whatever comes back. Returning an empty vector drops the frame
/// (TTL expiry, no route, unparseable). The IP implementation lives in
/// `pf_proto::router`; `pf-net` only defines the boundary.
pub trait Forwarder {
    /// Process one received frame; returns `(out_interface, out_frame)`
    /// pairs to transmit.
    fn forward(&mut self, iface: usize, frame: &[u8]) -> Vec<(usize, Vec<u8>)>;

    /// Drop/success counters (zero by default).
    fn stats(&self) -> ForwarderStats {
        ForwarderStats::default()
    }

    /// Replace a route at runtime (routing churn). Returns `false` when
    /// the forwarder does not support route updates.
    fn update_route(&mut self, route: Route) -> bool {
        let _ = route;
        false
    }

    /// Periodic work (liveness probing, protocol timers). The kernel
    /// simulation calls this every [`tick_interval`](Forwarder::tick_interval)
    /// while the router is up; returned `(out_interface, out_frame)`
    /// pairs are transmitted like forwarded traffic. The default
    /// forwarder is purely reactive and emits nothing.
    fn tick(&mut self, now: SimTime) -> Vec<(usize, Vec<u8>)> {
        let _ = now;
        Vec::new()
    }

    /// How often [`tick`](Forwarder::tick) wants to run; `None` (the
    /// default) disables ticking entirely.
    fn tick_interval(&self) -> Option<SimDuration> {
        None
    }
}

#[derive(Debug, Clone)]
struct NodeSpec {
    name: String,
    kind: NodeKind,
}

#[derive(Debug, Clone)]
struct LinkSpec {
    members: Vec<NodeId>,
    medium: Medium,
    faults: FaultModel,
}

/// Incremental builder for a [`Topology`]; see [`Topology::builder`].
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    nodes: Vec<NodeSpec>,
    links: Vec<LinkSpec>,
    fabric: FabricSchedule,
}

impl TopologyBuilder {
    /// Adds an end system.
    pub fn host(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(name.into(), NodeKind::Host)
    }

    /// Adds a packet switch.
    pub fn router(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(name.into(), NodeKind::Router)
    }

    fn add_node(&mut self, name: String, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeSpec { name, kind });
        id
    }

    /// Adds a point-to-point link (a two-station segment).
    pub fn link(&mut self, a: NodeId, b: NodeId, medium: Medium, faults: FaultModel) -> LinkId {
        self.lan(&[a, b], medium, faults)
    }

    /// Adds a shared multi-drop segment joining all `members`.
    pub fn lan(&mut self, members: &[NodeId], medium: Medium, faults: FaultModel) -> LinkId {
        assert!(members.len() >= 2, "a link needs at least two members");
        for m in members {
            assert!(m.0 < self.nodes.len(), "unknown node {:?}", m);
        }
        if medium.addr_len == 1 {
            assert!(
                members.len() <= 254,
                "one-byte link addresses limit a segment to 254 stations"
            );
        }
        let id = LinkId(self.links.len());
        self.links.push(LinkSpec {
            members: members.to_vec(),
            medium,
            faults,
        });
        id
    }

    /// Attaches a routing-plane fault schedule to the plan. Deployments
    /// that honor schedules (e.g. `pf_proto::router::deploy`) replay it
    /// against the running world; the bare [`Network`] substrate from
    /// [`Topology::instantiate`] ignores it.
    pub fn fabric(&mut self, schedule: FabricSchedule) {
        self.fabric = schedule;
    }

    /// Assigns addresses, computes every router's shortest-path route
    /// table, and freezes the plan.
    ///
    /// # Panics
    ///
    /// Panics if a host is on zero or multiple links (end systems have
    /// exactly one interface) or a router has no links.
    pub fn build(self) -> Topology {
        let mut ifaces: Vec<Vec<Interface>> = vec![Vec::new(); self.nodes.len()];
        let mut arp = HashMap::new();
        for (l, link) in self.links.iter().enumerate() {
            let subnet = subnet_of(LinkId(l));
            for (k, member) in link.members.iter().enumerate() {
                let ip = subnet | (k as u32 + 1);
                let eth = k as u64 + 1;
                ifaces[member.0].push(Interface {
                    link: LinkId(l),
                    ip,
                    eth,
                });
                arp.insert(ip, eth);
            }
        }
        for (n, node) in self.nodes.iter().enumerate() {
            match node.kind {
                NodeKind::Host => assert_eq!(
                    ifaces[n].len(),
                    1,
                    "host {:?} must sit on exactly one link",
                    node.name
                ),
                NodeKind::Router => {
                    assert!(!ifaces[n].is_empty(), "router {:?} has no links", node.name)
                }
            }
        }
        let (routes, backups) = compute_routes(&self.nodes, &self.links, &ifaces, &|_, _| false);
        Topology {
            nodes: self.nodes,
            links: self.links,
            ifaces,
            routes,
            backups,
            arp,
            fabric: self.fabric,
        }
    }
}

fn subnet_of(link: LinkId) -> u32 {
    let l = link.0 as u32;
    (10 << 24) | ((l >> 8) << 16) | ((l & 0xFF) << 8)
}

/// Per-destination-subnet multi-source BFS over the router graph,
/// skipping `blocked` router-router adjacencies (the residual graph).
/// Deterministic: frontier and adjacency are walked in index order, and
/// the first (shortest, lowest-index) parent wins.
///
/// Besides the primary tables this also derives *backup* tables: for a
/// router at BFS distance `d ≥ 1`, the backup next-hop is the next
/// downhill parent in priority order — a *different* neighbor router at
/// distance `d − 1`. Because both primary and backup strictly decrease
/// the distance to the destination, any mixture of routers using
/// primaries and routers using backups is loop-free (each hop is
/// strictly downhill); equal-distance alternates are deliberately never
/// used, because two equal-cost neighbors may point at each other.
fn compute_routes(
    nodes: &[NodeSpec],
    links: &[LinkSpec],
    ifaces: &[Vec<Interface>],
    blocked: &dyn Fn(NodeId, NodeId) -> bool,
) -> (Vec<RouteTable>, Vec<RouteTable>) {
    let mut tables = vec![RouteTable::new(); nodes.len()];
    let mut backups = vec![RouteTable::new(); nodes.len()];
    let iface_on = |n: usize, l: LinkId| -> Option<(usize, &Interface)> {
        ifaces[n].iter().enumerate().find(|(_, i)| i.link == l)
    };
    for (dst_l, _) in links.iter().enumerate() {
        let dst_link = LinkId(dst_l);
        let subnet = subnet_of(dst_link);
        let mut dist: Vec<Option<u32>> = vec![None; nodes.len()];
        let mut frontier: Vec<usize> = Vec::new();
        // Routers directly on the destination link deliver directly.
        for m in &links[dst_l].members {
            if nodes[m.0].kind == NodeKind::Router {
                let (idx, _) = iface_on(m.0, dst_link).expect("member has iface");
                tables[m.0].set(Route {
                    prefix: subnet,
                    len: 24,
                    iface: idx,
                    next_hop: None,
                });
                dist[m.0] = Some(0);
                frontier.push(m.0);
            }
        }
        frontier.sort_unstable();
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &v in &frontier {
                for vi in &ifaces[v] {
                    for u in &links[vi.link.0].members {
                        let u = u.0;
                        if u == v
                            || nodes[u].kind != NodeKind::Router
                            || dist[u].is_some()
                            || blocked(NodeId(v), NodeId(u))
                        {
                            continue;
                        }
                        let (uidx, _) = iface_on(u, vi.link).expect("member has iface");
                        tables[u].set(Route {
                            prefix: subnet,
                            len: 24,
                            iface: uidx,
                            next_hop: Some(vi.ip),
                        });
                        dist[u] = Some(dist[v].expect("in frontier") + 1);
                        next.push(u);
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            frontier = next;
        }
        // Backup next-hops: walk each reached router's downhill parents
        // in the same priority order the BFS used (parent index, then
        // the parent's interface order) — the first is the primary, the
        // first with a *different* parent node becomes the backup.
        for u in 0..nodes.len() {
            let Some(d) = dist[u] else { continue };
            if d == 0 {
                continue; // directly attached: no downhill alternate
            }
            let mut primary_parent: Option<usize> = None;
            'scan: for v in 0..nodes.len() {
                if dist[v] != Some(d - 1) || nodes[v].kind != NodeKind::Router {
                    continue;
                }
                for vi in &ifaces[v] {
                    if !links[vi.link.0].members.contains(&NodeId(u))
                        || blocked(NodeId(v), NodeId(u))
                    {
                        continue;
                    }
                    match primary_parent {
                        None => {
                            primary_parent = Some(v);
                            // A second link to the same parent is not a
                            // useful backup against that parent dying.
                            break;
                        }
                        Some(p) if p != v => {
                            let (uidx, _) = iface_on(u, vi.link).expect("member has iface");
                            backups[u].set(Route {
                                prefix: subnet,
                                len: 24,
                                iface: uidx,
                                next_hop: Some(vi.ip),
                            });
                            break 'scan;
                        }
                        Some(_) => {}
                    }
                }
            }
        }
    }
    (tables, backups)
}

/// A frozen network plan; see the module docs for the model.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<NodeSpec>,
    links: Vec<LinkSpec>,
    ifaces: Vec<Vec<Interface>>,
    routes: Vec<RouteTable>,
    backups: Vec<RouteTable>,
    arp: HashMap<u32, u64>,
    fabric: FabricSchedule,
}

impl Topology {
    /// Starts an empty plan.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// Number of nodes (hosts + routers).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links (segments).
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The node's display name.
    pub fn name(&self, node: NodeId) -> &str {
        &self.nodes[node.0].name
    }

    /// Whether the node forwards.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.nodes[node.0].kind
    }

    /// All node ids of a given kind, in index order.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&n| self.nodes[n].kind == kind)
            .map(NodeId)
            .collect()
    }

    /// The node's interfaces in attachment order.
    pub fn interfaces(&self, node: NodeId) -> &[Interface] {
        &self.ifaces[node.0]
    }

    /// A host's (single) IP address; for routers, the first interface's.
    pub fn ip(&self, node: NodeId) -> u32 {
        self.ifaces[node.0][0].ip
    }

    /// The /24 subnet a link was assigned.
    pub fn subnet(&self, link: LinkId) -> u32 {
        subnet_of(link)
    }

    /// A link's members, in attachment order.
    pub fn members(&self, link: LinkId) -> &[NodeId] {
        &self.links[link.0].members
    }

    /// A link's medium.
    pub fn medium(&self, link: LinkId) -> &Medium {
        &self.links[link.0].medium
    }

    /// A link's fault model.
    pub fn faults(&self, link: LinkId) -> &FaultModel {
        &self.links[link.0].faults
    }

    /// A node's computed route table (empty for hosts).
    pub fn route_table(&self, node: NodeId) -> &RouteTable {
        &self.routes[node.0]
    }

    /// A node's precomputed loop-free backup next-hops: for every
    /// destination subnet the router reaches at BFS distance `d ≥ 1`,
    /// the next strictly-downhill parent through a *different* neighbor
    /// router, when one exists. Installing a backup entry over the
    /// primary still moves every packet strictly closer to the
    /// destination, so mixed primary/backup forwarding cannot loop.
    pub fn backup_route_table(&self, node: NodeId) -> &RouteTable {
        &self.backups[node.0]
    }

    /// Recomputes every node's shortest-path table on the residual
    /// graph with the given undirected router-router adjacencies
    /// removed (a dead router is expressed as all of its adjacencies;
    /// a dead link as the pair of routers it joined). Destinations with
    /// no surviving path simply get no route.
    pub fn routes_avoiding(&self, blocked_pairs: &[(NodeId, NodeId)]) -> Vec<RouteTable> {
        let norm = |a: NodeId, b: NodeId| (a.0.min(b.0), a.0.max(b.0));
        let set: HashSet<(usize, usize)> = blocked_pairs.iter().map(|&(a, b)| norm(a, b)).collect();
        let blocked = move |a: NodeId, b: NodeId| set.contains(&norm(a, b));
        compute_routes(&self.nodes, &self.links, &self.ifaces, &blocked).0
    }

    /// The plan's routing-plane fault schedule (empty unless set via
    /// [`TopologyBuilder::fabric`]).
    pub fn fabric_schedule(&self) -> &FabricSchedule {
        &self.fabric
    }

    /// Returns the plan with `schedule` attached — for callers that
    /// obtain a finished [`Topology`] from a shape helper and want to
    /// bolt a fault schedule on afterwards.
    pub fn with_fabric(mut self, schedule: FabricSchedule) -> Self {
        self.fabric = schedule;
        self
    }

    /// The global static ARP map (IP → per-segment link address).
    pub fn arp(&self) -> &HashMap<u32, u64> {
        &self.arp
    }

    /// Where a frame from `node` to `dst_ip` goes on the wire first:
    /// `(interface index, destination link address)`. Direct for
    /// on-subnet destinations, otherwise the LAN's lowest-indexed
    /// router. `None` when the destination is unreachable from here.
    pub fn first_hop(&self, node: NodeId, dst_ip: u32) -> Option<(usize, u64)> {
        for (idx, i) in self.ifaces[node.0].iter().enumerate() {
            if dst_ip & 0xFFFF_FF00 == subnet_of(i.link) {
                return Some((idx, *self.arp.get(&dst_ip)?));
            }
        }
        // Off-subnet: hand to the first router on our first link.
        let (idx, i) = (0, self.ifaces[node.0].first()?);
        let gw = self.links[i.link.0]
            .members
            .iter()
            .find(|m| m.0 != node.0 && self.nodes[m.0].kind == NodeKind::Router)?;
        let gw_iface = self.ifaces[gw.0].iter().find(|gi| gi.link == i.link)?;
        Some((idx, gw_iface.eth))
    }

    /// Materializes the plan into `net`: one segment per link, one
    /// station per interface, in index order. The returned map gives
    /// [`StationHandle`]s for every station.
    pub fn instantiate(&self, net: &mut Network) -> InstantiatedTopology {
        let segments: Vec<SegmentId> = self
            .links
            .iter()
            .map(|l| net.add_segment(l.medium, l.faults))
            .collect();
        let stations: Vec<Vec<StationId>> = self
            .ifaces
            .iter()
            .map(|ifs| {
                ifs.iter()
                    .map(|i| net.add_station(segments[i.link.0], i.eth))
                    .collect()
            })
            .collect();
        InstantiatedTopology { segments, stations }
    }
}

/// Id map produced by [`Topology::instantiate`].
#[derive(Debug, Clone)]
pub struct InstantiatedTopology {
    /// Segment id per link, in link order.
    pub segments: Vec<SegmentId>,
    /// Station ids per node, in interface order.
    pub stations: Vec<Vec<StationId>>,
}

impl InstantiatedTopology {
    /// The [`StationHandle`] for one node interface.
    pub fn station<'a>(
        &self,
        net: &'a mut Network,
        node: NodeId,
        iface: usize,
    ) -> StationHandle<'a> {
        net.station(self.stations[node.0][iface])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> Medium {
        Medium::standard_10mb()
    }

    fn f() -> FaultModel {
        FaultModel::default()
    }

    #[test]
    fn lpm_prefers_the_longest_prefix() {
        let mut t = RouteTable::new();
        t.set(Route {
            prefix: 0,
            len: 0,
            iface: 0,
            next_hop: None,
        });
        t.set(Route {
            prefix: 0x0A01_0000,
            len: 16,
            iface: 1,
            next_hop: None,
        });
        t.set(Route {
            prefix: 0x0A01_0200,
            len: 24,
            iface: 2,
            next_hop: None,
        });
        assert_eq!(t.lookup(0x0A01_0203).unwrap().iface, 2, "/24 wins");
        assert_eq!(t.lookup(0x0A01_0503).unwrap().iface, 1, "/16 next");
        assert_eq!(t.lookup(0x0B00_0001).unwrap().iface, 0, "default last");
    }

    #[test]
    fn set_replaces_same_prefix_routes() {
        let mut t = RouteTable::new();
        let r = Route {
            prefix: 0x0A00_0100,
            len: 24,
            iface: 0,
            next_hop: None,
        };
        assert!(!t.set(r));
        assert!(t.set(Route { iface: 3, ..r }));
        assert_eq!(t.routes().len(), 1);
        assert_eq!(t.lookup(0x0A00_0101).unwrap().iface, 3);
    }

    #[test]
    fn line_topology_routes_toward_the_far_lan() {
        // h1 — r1 — r2 — h2 : three links, two routers.
        let mut b = Topology::builder();
        let h1 = b.host("h1");
        let r1 = b.router("r1");
        let r2 = b.router("r2");
        let h2 = b.host("h2");
        let l0 = b.link(h1, r1, m(), f());
        let _l1 = b.link(r1, r2, m(), f());
        let l2 = b.link(r2, h2, m(), f());
        let t = b.build();

        // r1 reaches h2's subnet through r2, one hop away.
        let route = t.route_table(r1).lookup(t.ip(h2)).expect("route");
        assert_eq!(route.len, 24);
        let next = route.next_hop.expect("not directly attached");
        let r2_on_l1 = t.interfaces(r2).iter().find(|i| i.link.0 == 1).unwrap();
        assert_eq!(next, r2_on_l1.ip);
        // r2 delivers h2's subnet directly.
        let direct = t.route_table(r2).lookup(t.ip(h2)).expect("route");
        assert_eq!(direct.next_hop, None);
        assert_eq!(t.subnet(l2) | 2, t.ip(h2));

        // h1's first hop toward h2 is r1's address on the shared LAN.
        let (iface, eth) = t.first_hop(h1, t.ip(h2)).expect("reachable");
        assert_eq!(iface, 0);
        let r1_on_l0 = t.interfaces(r1).iter().find(|i| i.link == l0).unwrap();
        assert_eq!(eth, r1_on_l0.eth);
        // On-subnet destinations resolve straight to the peer.
        let (_, direct_eth) = t.first_hop(h1, t.ip(r1)).expect("on subnet");
        assert_eq!(direct_eth, r1_on_l0.eth);
    }

    #[test]
    fn addressing_is_unique_and_deterministic() {
        let mut b = Topology::builder();
        let r = b.router("r");
        let hosts: Vec<NodeId> = (0..5).map(|i| b.host(format!("h{i}"))).collect();
        let mut members = vec![r];
        members.extend(&hosts);
        b.lan(&members, m(), f());
        let t = b.build();
        let mut ips: Vec<u32> = (0..t.node_count()).map(|n| t.ip(NodeId(n))).collect();
        ips.sort_unstable();
        ips.dedup();
        assert_eq!(ips.len(), 6, "every interface IP is unique");
        assert_eq!(t.ip(r), (10 << 24) | 1, "first member gets host byte 1");
    }

    #[test]
    fn instantiate_attaches_stations_with_plan_addresses() {
        let mut b = Topology::builder();
        let h1 = b.host("h1");
        let r = b.router("r");
        let h2 = b.host("h2");
        b.lan(&[h1, r], m(), f());
        b.lan(&[r, h2], m(), f());
        let t = b.build();
        let mut net = Network::new(0);
        let inst = t.instantiate(&mut net);
        assert_eq!(inst.segments.len(), 2);
        assert_eq!(inst.stations[r.0].len(), 2, "router has two stations");
        let mut station = inst.station(&mut net, h1, 0);
        assert_eq!(station.addr(), t.interfaces(h1)[0].eth);
        station.set_promiscuous(true);
        station.join_multicast(0x80);
    }

    #[test]
    fn ring_routes_are_shortest_path() {
        // Four routers in a ring; each with one host LAN.
        let mut b = Topology::builder();
        let routers: Vec<NodeId> = (0..4).map(|i| b.router(format!("r{i}"))).collect();
        let hosts: Vec<NodeId> = (0..4).map(|i| b.host(format!("h{i}"))).collect();
        for i in 0..4 {
            b.link(routers[i], routers[(i + 1) % 4], m(), f());
        }
        let lans: Vec<LinkId> = (0..4)
            .map(|i| b.lan(&[routers[i], hosts[i]], m(), f()))
            .collect();
        let t = b.build();
        // r0 to h1's LAN: one hop via r1 (not two hops the other way).
        let r = t.route_table(routers[0]).lookup(t.ip(hosts[1])).unwrap();
        let next = r.next_hop.expect("one hop away");
        assert!(t.interfaces(routers[1]).iter().any(|i| i.ip == next));
        // r0 to its own LAN: direct.
        assert_eq!(
            t.route_table(routers[0])
                .lookup(t.ip(hosts[0]))
                .unwrap()
                .next_hop,
            None
        );
        let _ = lans;
    }

    /// Four routers in a ring, each with one host LAN.
    fn ring4() -> (Topology, Vec<NodeId>, Vec<NodeId>) {
        let mut b = Topology::builder();
        let routers: Vec<NodeId> = (0..4).map(|i| b.router(format!("r{i}"))).collect();
        let hosts: Vec<NodeId> = (0..4).map(|i| b.host(format!("h{i}"))).collect();
        for i in 0..4 {
            b.link(routers[i], routers[(i + 1) % 4], m(), f());
        }
        for i in 0..4 {
            b.lan(&[routers[i], hosts[i]], m(), f());
        }
        (b.build(), routers, hosts)
    }

    fn ip_of(t: &Topology, node: NodeId, hop: Option<u32>) -> bool {
        t.interfaces(node).iter().any(|i| Some(i.ip) == hop)
    }

    #[test]
    fn backup_next_hops_are_strictly_downhill_alternates() {
        let (t, routers, hosts) = ring4();
        // r2 reaches h0's LAN at distance 2 through two downhill
        // parents (r1 and r3, both at distance 1): primary is the
        // lower-indexed r1, backup the alternate r3.
        let dst = t.ip(hosts[0]);
        let prim = t.route_table(routers[2]).lookup(dst).expect("primary");
        let back = t
            .backup_route_table(routers[2])
            .lookup(dst)
            .expect("backup");
        assert_ne!(prim.next_hop, back.next_hop);
        assert!(ip_of(&t, routers[1], prim.next_hop), "primary via r1");
        assert!(ip_of(&t, routers[3], back.next_hop), "backup via r3");
        // r0 sits one hop from h1's LAN and its only distance-0
        // neighbor there is r1: no strictly-downhill alternate exists
        // (the equal-cost detour via r3 is deliberately not offered).
        assert!(t
            .backup_route_table(routers[0])
            .lookup(t.ip(hosts[1]))
            .is_none());
    }

    #[test]
    fn routes_avoiding_reroutes_around_dead_adjacencies() {
        let (t, routers, hosts) = ring4();
        let dst = t.ip(hosts[1]);
        // With the r0–r1 adjacency dead, r0 reaches h1's LAN the long
        // way around, next hop r3.
        let residual = t.routes_avoiding(&[(routers[0], routers[1])]);
        let r = residual[routers[0].0].lookup(dst).expect("rerouted");
        assert!(ip_of(&t, routers[3], r.next_hop), "detour via r3");
        // With *all* of r1's adjacencies dead (a dead router), nobody
        // else has a route to its LAN — no path is honestly no route.
        let dead_r1 = [(routers[0], routers[1]), (routers[1], routers[2])];
        let residual = t.routes_avoiding(&dead_r1);
        for r in [routers[0], routers[2], routers[3]] {
            assert!(residual[r.0].lookup(dst).is_none(), "{r:?} has no path");
        }
        // r1 itself still delivers its directly-attached LAN.
        assert!(residual[routers[1].0].lookup(dst).is_some());
    }

    #[test]
    fn fabric_schedule_rides_the_plan() {
        use crate::fabric::{FabricAction, FabricSchedule};
        let mut b = Topology::builder();
        let h = b.host("h");
        let r = b.router("r");
        b.link(h, r, m(), f());
        let mut sched = FabricSchedule::new();
        sched.router_outage(r, SimTime(100), Some(SimTime(200)));
        b.fabric(sched);
        let t = b.build();
        let ev = t.fabric_schedule().events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].action, FabricAction::RouterDown(r));
    }
}
