//! Shared-bus segments and attached stations.
//!
//! A [`Network`] holds one or more Ethernet segments. Transmitting a frame
//! computes its time on the wire from the medium's bandwidth and produces a
//! [`Delivery`] for every station whose address filter would accept it
//! (unicast match, broadcast, subscribed multicast, or promiscuous mode).
//! Deterministic fault injection is per segment: loss, duplication, byte
//! corruption (seeded bit flips), truncation, bounded reorder jitter, and
//! transient whole-segment partitions, each with its own rate knob and a
//! per-segment [`FaultCounters`] tally.
//!
//! ## Fault draw order
//!
//! Seed stability matters more than elegance here, so the RNG consumption
//! pattern is part of the contract: per `transmit` call one partition-onset
//! gate is drawn first; then, for every accepting receiver (unless the
//! segment is currently partitioned), the five Bernoulli gates are drawn
//! **unconditionally and in a fixed order** — loss, duplication,
//! corruption, truncation, reorder — followed by the parameter draws for
//! whichever gates fired (corrupt byte index then bit index, kept
//! truncation length, reorder jitter), again in gate order. Because every
//! gate consumes its draw regardless of earlier outcomes, the effective
//! fault rates are independent: a lost frame still consumes the
//! duplication draw, so raising the loss rate no longer skews the
//! duplicate rate (or vice versa).
//!
//! The network layer is passive: the host simulation (in `pf-kernel`)
//! schedules the returned deliveries on its event queue. That keeps this
//! crate free of any event-loop coupling.

use crate::frame;
use crate::medium::Medium;
use pf_sim::rng::SplitMix64;
use pf_sim::time::{SimDuration, SimTime};

/// Identifies a segment within a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegmentId(pub usize);

/// Identifies a station (an attached network interface) within a network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StationId(pub usize);

/// Deterministic fault-injection knobs for a segment.
///
/// All probabilities apply per candidate delivery (per accepting receiver)
/// and are drawn independently in the order documented at the module level,
/// except `partition`, which is drawn once per `transmit` call.
#[derive(Debug, Clone, Copy)]
pub struct FaultModel {
    /// Probability a given delivery is silently lost.
    pub loss: f64,
    /// Probability a given delivery is duplicated. The duplicate is a
    /// pristine copy of the transmitted frame arriving one propagation
    /// delay after the nominal arrival, and it is produced even when the
    /// primary copy was selected for loss (two copies on the wire, one
    /// lost).
    pub duplication: f64,
    /// Probability a delivered frame has one randomly chosen bit flipped
    /// in one randomly chosen byte. Corruption happens after the address
    /// decision (the NIC saw the pristine destination) and applies to the
    /// primary copy only.
    pub corruption: f64,
    /// Probability a delivered frame is truncated to a uniformly chosen
    /// prefix of at least one byte (no-op on frames of a single byte).
    pub truncation: f64,
    /// Probability a delivered frame is delayed by extra jitter drawn
    /// uniformly from `(0, reorder_jitter]`, letting later transmissions
    /// overtake it.
    pub reorder: f64,
    /// Upper bound on the reorder jitter. Zero disables reordering even
    /// when the `reorder` gate fires.
    pub reorder_jitter: SimDuration,
    /// Probability, per `transmit` call, that the segment enters a
    /// transient partition during which every delivery on the segment is
    /// dropped (the transmitter still holds the wire; nothing arrives).
    pub partition: f64,
    /// How long a transient partition lasts once it starts.
    pub partition_duration: SimDuration,
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel {
            loss: 0.0,
            duplication: 0.0,
            corruption: 0.0,
            truncation: 0.0,
            reorder: 0.0,
            reorder_jitter: SimDuration::from_micros(500),
            partition: 0.0,
            partition_duration: SimDuration::from_millis(20),
        }
    }
}

/// Per-segment tallies of injected faults, one counter per fault kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Deliveries suppressed by the loss gate.
    pub lost: u64,
    /// Extra copies produced by the duplication gate.
    pub duplicated: u64,
    /// Frames that had a bit flipped.
    pub corrupted: u64,
    /// Frames truncated to a prefix.
    pub truncated: u64,
    /// Frames delayed by reorder jitter.
    pub reordered: u64,
    /// Transient partitions that started.
    pub partition_events: u64,
    /// Deliveries suppressed because the segment was partitioned.
    pub partition_drops: u64,
    /// Deliveries suppressed because the link was administratively down
    /// (routing-plane fault injection; see [`Network::set_link_state`]).
    pub link_down_drops: u64,
}

/// One frame arriving at one station.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// The receiving station.
    pub station: StationId,
    /// When the frame has fully arrived.
    pub arrival: SimTime,
    /// The frame bytes (complete, with data-link header).
    pub frame: Vec<u8>,
}

#[derive(Debug)]
struct Station {
    segment: SegmentId,
    addr: u64,
    promiscuous: bool,
    multicast: Vec<u64>,
}

#[derive(Debug)]
struct Segment {
    medium: Medium,
    faults: FaultModel,
    /// Station propagation delay (end-to-end cable time; tiny vs. the
    /// transmission delay, but nonzero keeps causality strict).
    propagation: SimDuration,
    stations: Vec<StationId>,
    /// The segment drops every delivery until this instant (transient
    /// partition fault).
    partition_until: SimTime,
    /// Administrative link state: while `false`, every delivery on the
    /// segment is dropped and no fault draws are consumed.
    up: bool,
}

/// A collection of Ethernet segments and the stations attached to them.
#[derive(Debug)]
pub struct Network {
    segments: Vec<Segment>,
    stations: Vec<Station>,
    rng: SplitMix64,
    /// Frames transmitted per segment (for monitor-style statistics).
    transmitted: Vec<u64>,
    /// Injected-fault tallies per segment.
    faults: Vec<FaultCounters>,
}

impl Network {
    /// Creates an empty network with a deterministic fault-injection seed.
    pub fn new(seed: u64) -> Self {
        Network {
            segments: Vec::new(),
            stations: Vec::new(),
            rng: SplitMix64::new(seed),
            transmitted: Vec::new(),
            faults: Vec::new(),
        }
    }

    /// Adds a segment with the given medium and fault model.
    pub fn add_segment(&mut self, medium: Medium, faults: FaultModel) -> SegmentId {
        let id = SegmentId(self.segments.len());
        self.segments.push(Segment {
            medium,
            faults,
            propagation: SimDuration::from_micros(5),
            stations: Vec::new(),
            partition_until: SimTime::ZERO,
            up: true,
        });
        self.transmitted.push(0);
        self.faults.push(FaultCounters::default());
        id
    }

    /// Replaces a segment's fault model (e.g. to heal or degrade a link
    /// mid-experiment). Counters and partition state are kept.
    pub fn set_faults(&mut self, segment: SegmentId, faults: FaultModel) {
        self.segments[segment.0].faults = faults;
    }

    /// Sets a segment's administrative link state. While down, every
    /// delivery on the segment is dropped (counted in
    /// [`FaultCounters::link_down_drops`]) and *no* fault-model draws
    /// are consumed, so seeded fault patterns on other segments — and on
    /// this one after it comes back — are unaffected by the outage.
    pub fn set_link_state(&mut self, segment: SegmentId, up: bool) {
        self.segments[segment.0].up = up;
    }

    /// A segment's administrative link state.
    pub fn link_up(&self, segment: SegmentId) -> bool {
        self.segments[segment.0].up
    }

    /// Attaches a station with link address `addr` to a segment and
    /// returns its id; use [`Network::station`] for the handle carrying
    /// the per-station operations (promiscuous mode, multicast groups).
    ///
    /// # Panics
    ///
    /// Panics if the segment id is unknown.
    pub fn add_station(&mut self, segment: SegmentId, addr: u64) -> StationId {
        assert!(segment.0 < self.segments.len(), "unknown segment");
        let id = StationId(self.stations.len());
        self.stations.push(Station {
            segment,
            addr,
            promiscuous: false,
            multicast: Vec::new(),
        });
        self.segments[segment.0].stations.push(id);
        id
    }

    /// A borrow-handle for one station, carrying the per-station surface
    /// that used to live as free methods on `Network`.
    pub fn station(&mut self, id: StationId) -> StationHandle<'_> {
        assert!(id.0 < self.stations.len(), "unknown station");
        StationHandle { net: self, id }
    }

    /// The medium of the segment a station is attached to.
    pub fn medium_of(&self, station: StationId) -> &Medium {
        &self.segments[self.stations[station.0].segment.0].medium
    }

    /// The link address of a station.
    pub fn addr_of(&self, station: StationId) -> u64 {
        self.stations[station.0].addr
    }

    /// Frames transmitted on a segment so far.
    pub fn transmitted_on(&self, segment: SegmentId) -> u64 {
        self.transmitted[segment.0]
    }

    /// Deliveries suppressed by injected loss on a segment so far.
    pub fn lost_on(&self, segment: SegmentId) -> u64 {
        self.faults[segment.0].lost
    }

    /// All injected-fault tallies for a segment so far.
    pub fn faults_on(&self, segment: SegmentId) -> FaultCounters {
        self.faults[segment.0]
    }

    /// Transmits `frame` from `station` starting at `now`.
    ///
    /// Returns the time the transmitter finishes (sender side busy until
    /// then) and the resulting deliveries. The sender never receives its
    /// own frame (Ethernet interfaces do not loop back).
    pub fn transmit(
        &mut self,
        station: StationId,
        frame_bytes: &[u8],
        now: SimTime,
    ) -> (SimTime, Vec<Delivery>) {
        let seg_id = self.stations[station.0].segment;
        let seg = &self.segments[seg_id.0];
        let medium = seg.medium;
        let tx_done = now + medium.transmission_delay(frame_bytes.len());
        let arrival = tx_done + seg.propagation;
        self.transmitted[seg_id.0] += 1;

        let header = frame::parse(&medium, frame_bytes).ok();
        let mut out = Vec::new();
        let receivers: Vec<StationId> = seg.stations.clone();
        let faults = seg.faults;
        let propagation = seg.propagation;

        // An administratively-down link consumes no fault draws at all:
        // the transmitter still holds the wire for the frame time, every
        // would-be delivery is counted and dropped, and the seeded fault
        // pattern resumes exactly where it left off once the link heals.
        if !seg.up {
            for rcv in receivers {
                if rcv == station {
                    continue;
                }
                let r = &self.stations[rcv.0];
                let wants = r.promiscuous
                    || header.is_some_and(|h| {
                        h.dst == r.addr
                            || medium.is_broadcast(h.dst)
                            || (medium.is_multicast(h.dst) && r.multicast.contains(&h.dst))
                    });
                if wants {
                    self.faults[seg_id.0].link_down_drops += 1;
                }
            }
            return (tx_done, out);
        }

        // Fault application follows the draw order documented at the module
        // level; changing the order or adding a draw changes every seeded
        // fault pattern, so treat it as a wire-format-stable contract.
        if now >= self.segments[seg_id.0].partition_until && self.rng.chance(faults.partition) {
            self.segments[seg_id.0].partition_until = now + faults.partition_duration;
            self.faults[seg_id.0].partition_events += 1;
        }
        let partitioned = now < self.segments[seg_id.0].partition_until;

        for rcv in receivers {
            if rcv == station {
                continue;
            }
            let wants = {
                let r = &self.stations[rcv.0];
                r.promiscuous
                    || header.is_some_and(|h| {
                        h.dst == r.addr
                            || medium.is_broadcast(h.dst)
                            || (medium.is_multicast(h.dst) && r.multicast.contains(&h.dst))
                    })
            };
            if !wants {
                continue;
            }
            if partitioned {
                self.faults[seg_id.0].partition_drops += 1;
                continue;
            }

            // Independent Bernoulli gates, fixed order (see module docs).
            let lose = self.rng.chance(faults.loss);
            let dup = self.rng.chance(faults.duplication);
            let corrupt = self.rng.chance(faults.corruption);
            let trunc = self.rng.chance(faults.truncation);
            let reorder = self.rng.chance(faults.reorder);

            let mut primary = frame_bytes.to_vec();
            let mut primary_arrival = arrival;
            if corrupt && !primary.is_empty() {
                let byte = self.rng.below(primary.len() as u64) as usize;
                let bit = self.rng.below(8) as u32;
                primary[byte] ^= 1u8 << bit;
                self.faults[seg_id.0].corrupted += 1;
            }
            if trunc && primary.len() > 1 {
                let keep = 1 + self.rng.below(primary.len() as u64 - 1) as usize;
                primary.truncate(keep);
                self.faults[seg_id.0].truncated += 1;
            }
            if reorder && faults.reorder_jitter > SimDuration::ZERO {
                let jitter = 1 + self.rng.below(faults.reorder_jitter.as_nanos());
                primary_arrival = arrival + SimDuration::from_nanos(jitter);
                self.faults[seg_id.0].reordered += 1;
            }
            if lose {
                self.faults[seg_id.0].lost += 1;
            } else {
                out.push(Delivery {
                    station: rcv,
                    arrival: primary_arrival,
                    frame: primary,
                });
            }
            if dup {
                self.faults[seg_id.0].duplicated += 1;
                out.push(Delivery {
                    station: rcv,
                    arrival: arrival + propagation,
                    frame: frame_bytes.to_vec(),
                });
            }
        }
        (tx_done, out)
    }
}

/// Mutable handle to one attached station.
///
/// Returned by [`Network::station`] (and, for deployed topologies, by
/// the topology layer); carries the per-station operations that used to
/// be free methods on [`Network`]:
///
/// ```
/// use pf_net::medium::Medium;
/// use pf_net::segment::{FaultModel, Network};
///
/// let mut net = Network::new(0);
/// let seg = net.add_segment(Medium::standard_10mb(), FaultModel::default());
/// let id = net.add_station(seg, 0x11);
/// net.station(id).set_promiscuous(true);
/// net.station(id).join_multicast(0x0180_0000_0001);
/// assert_eq!(net.station(id).addr(), 0x11);
/// ```
pub struct StationHandle<'a> {
    net: &'a mut Network,
    id: StationId,
}

impl StationHandle<'_> {
    /// The station's id (stable across the life of the network).
    pub fn id(&self) -> StationId {
        self.id
    }

    /// The segment this station is attached to.
    pub fn segment(&self) -> SegmentId {
        self.net.stations[self.id.0].segment
    }

    /// The station's link address.
    pub fn addr(&self) -> u64 {
        self.net.stations[self.id.0].addr
    }

    /// The medium of the segment this station is attached to.
    pub fn medium(&self) -> &Medium {
        self.net.medium_of(self.id)
    }

    /// Puts the station in (or out of) promiscuous mode — it then
    /// receives every frame on its segment, as a network monitor's
    /// interface does.
    pub fn set_promiscuous(&mut self, on: bool) {
        self.net.stations[self.id.0].promiscuous = on;
    }

    /// Subscribes the station to a multicast group address.
    pub fn join_multicast(&mut self, group: u64) {
        let s = &mut self.net.stations[self.id.0];
        if !s.multicast.contains(&group) {
            s.multicast.push(group);
        }
    }

    /// Leaves a multicast group.
    pub fn leave_multicast(&mut self, group: u64) {
        self.net.stations[self.id.0]
            .multicast
            .retain(|g| *g != group);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::build;

    fn net_with_three_stations() -> (Network, SegmentId, StationId, StationId, StationId) {
        let mut net = Network::new(1);
        let seg = net.add_segment(Medium::experimental_3mb(), FaultModel::default());
        let a = net.add_station(seg, 0x0A);
        let b = net.add_station(seg, 0x0B);
        let c = net.add_station(seg, 0x0C);
        (net, seg, a, b, c)
    }

    #[test]
    fn unicast_reaches_only_destination() {
        let (mut net, _, a, b, _c) = net_with_three_stations();
        let m = *net.medium_of(a);
        let f = build(&m, 0x0B, 0x0A, 2, &[1, 2]).unwrap();
        let (_done, deliveries) = net.transmit(a, &f, SimTime::ZERO);
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].station, b);
        assert_eq!(deliveries[0].frame, f);
    }

    #[test]
    fn broadcast_reaches_everyone_but_sender() {
        let (mut net, _, a, b, c) = net_with_three_stations();
        let m = *net.medium_of(a);
        let f = build(&m, m.broadcast, 0x0A, 2, &[]).unwrap();
        let (_, deliveries) = net.transmit(a, &f, SimTime::ZERO);
        let mut stations: Vec<_> = deliveries.iter().map(|d| d.station).collect();
        stations.sort_by_key(|s| s.0);
        assert_eq!(stations, vec![b, c]);
    }

    #[test]
    fn promiscuous_station_sees_everything() {
        let (mut net, _, a, b, c) = net_with_three_stations();
        net.station(c).set_promiscuous(true);
        let m = *net.medium_of(a);
        let f = build(&m, 0x0B, 0x0A, 2, &[]).unwrap();
        let (_, deliveries) = net.transmit(a, &f, SimTime::ZERO);
        let mut stations: Vec<_> = deliveries.iter().map(|d| d.station).collect();
        stations.sort_by_key(|s| s.0);
        assert_eq!(stations, vec![b, c]);
    }

    #[test]
    fn timing_follows_bandwidth() {
        let (mut net, _, a, _b, _c) = net_with_three_stations();
        let m = *net.medium_of(a);
        let f = build(&m, 0x0B, 0x0A, 2, &vec![0u8; 371]).unwrap(); // 375 bytes
        let (done, deliveries) = net.transmit(a, &f, SimTime::ZERO);
        // 375 B × 8 / 3 Mb/s = 1 ms.
        assert_eq!(done, SimTime(1_000_000));
        assert_eq!(deliveries[0].arrival, SimTime(1_005_000)); // + 5 µs propagation
    }

    #[test]
    fn multicast_on_10mb() {
        let mut net = Network::new(1);
        let seg = net.add_segment(Medium::standard_10mb(), FaultModel::default());
        let a = net.add_station(seg, 0x0200_0000_000A);
        let b = net.add_station(seg, 0x0200_0000_000B);
        let c = net.add_station(seg, 0x0200_0000_000C);
        let group = 0x0100_0000_0077u64;
        net.station(b).join_multicast(group);
        let m = *net.medium_of(a);
        let f = build(&m, group, net.addr_of(a), 0x0800, &[]).unwrap();
        let (_, deliveries) = net.transmit(a, &f, SimTime::ZERO);
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].station, b);
        let _ = c;
        // After leaving, nobody receives.
        net.station(b).leave_multicast(group);
        let (_, deliveries) = net.transmit(a, &f, SimTime::ZERO);
        assert!(deliveries.is_empty());
    }

    #[test]
    fn loss_injection_suppresses_deliveries() {
        let mut net = Network::new(7);
        let seg = net.add_segment(
            Medium::experimental_3mb(),
            FaultModel {
                loss: 1.0,
                ..FaultModel::default()
            },
        );
        let a = net.add_station(seg, 1);
        let _b = net.add_station(seg, 2);
        let m = *net.medium_of(a);
        let f = build(&m, 2, 1, 2, &[]).unwrap();
        let (_, deliveries) = net.transmit(a, &f, SimTime::ZERO);
        assert!(deliveries.is_empty());
        assert_eq!(net.lost_on(seg), 1);
        assert_eq!(net.transmitted_on(seg), 1);
    }

    #[test]
    fn duplication_injection() {
        let mut net = Network::new(7);
        let seg = net.add_segment(
            Medium::experimental_3mb(),
            FaultModel {
                duplication: 1.0,
                ..FaultModel::default()
            },
        );
        let a = net.add_station(seg, 1);
        let b = net.add_station(seg, 2);
        let m = *net.medium_of(a);
        let f = build(&m, 2, 1, 2, &[]).unwrap();
        let (_, deliveries) = net.transmit(a, &f, SimTime::ZERO);
        assert_eq!(deliveries.len(), 2);
        assert!(deliveries.iter().all(|d| d.station == b));
        assert!(deliveries[1].arrival > deliveries[0].arrival);
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let mut net = Network::new(99);
            let seg = net.add_segment(
                Medium::experimental_3mb(),
                FaultModel {
                    loss: 0.3,
                    duplication: 0.1,
                    corruption: 0.2,
                    truncation: 0.1,
                    reorder: 0.2,
                    partition: 0.01,
                    ..FaultModel::default()
                },
            );
            let a = net.add_station(seg, 1);
            let _b = net.add_station(seg, 2);
            let m = *net.medium_of(a);
            let f = build(&m, 2, 1, 2, &[0; 32]).unwrap();
            let mut pattern = Vec::new();
            for _ in 0..50 {
                let (_, d) = net.transmit(a, &f, SimTime::ZERO);
                pattern.push(d.len());
            }
            pattern
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut net = Network::new(11);
        let seg = net.add_segment(
            Medium::experimental_3mb(),
            FaultModel {
                corruption: 1.0,
                ..FaultModel::default()
            },
        );
        let a = net.add_station(seg, 1);
        let _b = net.add_station(seg, 2);
        let m = *net.medium_of(a);
        let f = build(&m, 2, 1, 2, &[0xAA; 64]).unwrap();
        for _ in 0..20 {
            let (_, deliveries) = net.transmit(a, &f, SimTime::ZERO);
            assert_eq!(deliveries.len(), 1);
            let got = &deliveries[0].frame;
            assert_eq!(got.len(), f.len());
            let flipped: u32 = got
                .iter()
                .zip(f.iter())
                .map(|(x, y)| (x ^ y).count_ones())
                .sum();
            assert_eq!(flipped, 1, "exactly one bit flips per corruption");
        }
        assert_eq!(net.faults_on(seg).corrupted, 20);
    }

    #[test]
    fn truncation_yields_proper_prefix() {
        let mut net = Network::new(12);
        let seg = net.add_segment(
            Medium::experimental_3mb(),
            FaultModel {
                truncation: 1.0,
                ..FaultModel::default()
            },
        );
        let a = net.add_station(seg, 1);
        let _b = net.add_station(seg, 2);
        let m = *net.medium_of(a);
        let f = build(&m, 2, 1, 2, &[7; 40]).unwrap();
        for _ in 0..20 {
            let (_, deliveries) = net.transmit(a, &f, SimTime::ZERO);
            let got = &deliveries[0].frame;
            assert!(!got.is_empty() && got.len() < f.len());
            assert_eq!(got[..], f[..got.len()], "truncation keeps a prefix");
        }
        assert_eq!(net.faults_on(seg).truncated, 20);
    }

    #[test]
    fn reorder_delays_primary_within_bound() {
        let jitter = SimDuration::from_micros(100);
        let mut net = Network::new(13);
        let seg = net.add_segment(
            Medium::experimental_3mb(),
            FaultModel {
                reorder: 1.0,
                reorder_jitter: jitter,
                ..FaultModel::default()
            },
        );
        let a = net.add_station(seg, 1);
        let _b = net.add_station(seg, 2);
        let m = *net.medium_of(a);
        let f = build(&m, 2, 1, 2, &[]).unwrap();
        let (done, deliveries) = net.transmit(a, &f, SimTime::ZERO);
        let nominal = done + SimDuration::from_micros(5);
        assert!(deliveries[0].arrival > nominal);
        assert!(deliveries[0].arrival <= nominal + jitter);
        assert_eq!(net.faults_on(seg).reordered, 1);
    }

    #[test]
    fn partition_drops_everything_then_heals() {
        let mut net = Network::new(14);
        let seg = net.add_segment(
            Medium::experimental_3mb(),
            FaultModel {
                partition: 1.0,
                partition_duration: SimDuration::from_millis(20),
                ..FaultModel::default()
            },
        );
        let a = net.add_station(seg, 1);
        let _b = net.add_station(seg, 2);
        let m = *net.medium_of(a);
        let f = build(&m, 2, 1, 2, &[]).unwrap();
        let (_, d) = net.transmit(a, &f, SimTime::ZERO);
        assert!(d.is_empty(), "partition drops all deliveries");
        assert_eq!(net.faults_on(seg).partition_events, 1);
        assert_eq!(net.faults_on(seg).partition_drops, 1);
        // Heal the fault model: the existing partition still runs out its
        // clock, then deliveries resume.
        net.set_faults(seg, FaultModel::default());
        let (_, d) = net.transmit(a, &f, SimTime(1_000_000));
        assert!(d.is_empty(), "still inside the 20 ms partition window");
        let (_, d) = net.transmit(a, &f, SimTime(25_000_000));
        assert_eq!(d.len(), 1, "partition over, delivery resumes");
    }

    #[test]
    fn duplication_rate_is_independent_of_loss_rate() {
        // Satellite fix: the duplication gate must consume its draw even
        // for lost frames, so the effective duplicate rate cannot be
        // skewed by the loss rate (the pre-fix code skipped the dup draw
        // whenever loss fired).
        let dup_count = |loss: f64| {
            let mut net = Network::new(4242);
            let seg = net.add_segment(
                Medium::experimental_3mb(),
                FaultModel {
                    loss,
                    duplication: 0.3,
                    ..FaultModel::default()
                },
            );
            let a = net.add_station(seg, 1);
            let _b = net.add_station(seg, 2);
            let m = *net.medium_of(a);
            let f = build(&m, 2, 1, 2, &[]).unwrap();
            for _ in 0..2000 {
                net.transmit(a, &f, SimTime::ZERO);
            }
            net.faults_on(seg).duplicated
        };
        let lossless = dup_count(0.0);
        let lossy = dup_count(0.8);
        for n in [lossless, lossy] {
            assert!(
                (500..700).contains(&n),
                "≈ 0.3 × 2000 duplicates expected regardless of loss, got {n}"
            );
        }
    }

    #[test]
    fn separate_segments_are_isolated() {
        let mut net = Network::new(1);
        let s1 = net.add_segment(Medium::experimental_3mb(), FaultModel::default());
        let s2 = net.add_segment(Medium::experimental_3mb(), FaultModel::default());
        let a = net.add_station(s1, 1);
        let _b = net.add_station(s2, 1); // same address, different wire
        let m = *net.medium_of(a);
        let f = build(&m, 1, 1, 2, &[]).unwrap();
        let (_, deliveries) = net.transmit(a, &f, SimTime::ZERO);
        assert!(deliveries.is_empty(), "no cross-segment delivery");
    }

    /// Migrated from the removed one-PR deprecation shims
    /// (`Network::attach/set_promiscuous/join_multicast/leave_multicast`):
    /// the `StationHandle` surface covers the same multicast + snoop
    /// scenario the shims were pinned against.
    #[test]
    fn station_handle_surface_covers_former_shims() {
        let group = 0x0100_0000_0001u64;
        let mut net = Network::new(9);
        let seg = net.add_segment(Medium::standard_10mb(), FaultModel::default());
        let a = net.add_station(seg, 1);
        let b = net.add_station(seg, 2);
        let snoop = net.add_station(seg, 3);
        net.station(snoop).set_promiscuous(true);
        net.station(b).join_multicast(group);
        let m = *net.medium_of(a);
        let f = build(&m, group, 1, 2, &[]).unwrap();
        let (_, deliveries) = net.transmit(a, &f, SimTime::ZERO);
        let mut who: Vec<usize> = deliveries.iter().map(|d| d.station.0).collect();
        who.sort_unstable();
        assert_eq!(
            who,
            vec![b.0, snoop.0],
            "multicast member + promiscuous snoop"
        );
        net.station(b).leave_multicast(group);
        let (_, deliveries) = net.transmit(a, &f, SimTime::ZERO);
        let who: Vec<usize> = deliveries.iter().map(|d| d.station.0).collect();
        assert_eq!(who, vec![snoop.0], "after leave only the snoop hears it");
    }

    #[test]
    fn link_down_drops_everything_and_consumes_no_draws() {
        let faults = FaultModel {
            loss: 0.3,
            duplication: 0.2,
            corruption: 0.2,
            ..FaultModel::default()
        };
        // Reference pattern: 20 transmits on an always-up link.
        let pattern = |downs: &[usize]| {
            let mut net = Network::new(77);
            let seg = net.add_segment(Medium::experimental_3mb(), faults);
            let a = net.add_station(seg, 1);
            let _b = net.add_station(seg, 2);
            let m = *net.medium_of(a);
            let f = build(&m, 2, 1, 2, &[0; 16]).unwrap();
            let mut got = Vec::new();
            for i in 0..20 {
                let down = downs.contains(&i);
                net.set_link_state(seg, !down);
                let (_, d) = net.transmit(a, &f, SimTime::ZERO);
                if down {
                    assert!(d.is_empty(), "down link delivers nothing");
                } else {
                    got.push(d.len());
                }
            }
            (got, net.faults_on(seg).link_down_drops)
        };
        let (up_pattern, none_dropped) = pattern(&[]);
        assert_eq!(none_dropped, 0);
        // Interleave outages: the surviving transmits must see the exact
        // same seeded fault pattern, because the down transmits consumed
        // no draws.
        let (with_outages, dropped) = pattern(&[3, 4, 11]);
        assert_eq!(dropped, 3, "one accepting receiver per down transmit");
        assert_eq!(with_outages.len(), 17);
        assert_eq!(
            with_outages[..],
            up_pattern[..with_outages.len()],
            "surviving transmits replay the same seeded draws"
        );
    }
}
