//! Shared-bus segments and attached stations.
//!
//! A [`Network`] holds one or more Ethernet segments. Transmitting a frame
//! computes its time on the wire from the medium's bandwidth and produces a
//! [`Delivery`] for every station whose address filter would accept it
//! (unicast match, broadcast, subscribed multicast, or promiscuous mode).
//! Deterministic fault injection — loss and duplication — is per segment.
//!
//! The network layer is passive: the host simulation (in `pf-kernel`)
//! schedules the returned deliveries on its event queue. That keeps this
//! crate free of any event-loop coupling.

use crate::frame;
use crate::medium::Medium;
use pf_sim::rng::SplitMix64;
use pf_sim::time::{SimDuration, SimTime};

/// Identifies a segment within a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegmentId(pub usize);

/// Identifies a station (an attached network interface) within a network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StationId(pub usize);

/// Deterministic fault-injection knobs for a segment.
#[derive(Debug, Clone, Copy)]
pub struct FaultModel {
    /// Probability a given delivery is silently lost.
    pub loss: f64,
    /// Probability a given delivery is duplicated (the duplicate arrives
    /// one propagation delay later).
    pub duplication: f64,
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel {
            loss: 0.0,
            duplication: 0.0,
        }
    }
}

/// One frame arriving at one station.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// The receiving station.
    pub station: StationId,
    /// When the frame has fully arrived.
    pub arrival: SimTime,
    /// The frame bytes (complete, with data-link header).
    pub frame: Vec<u8>,
}

#[derive(Debug)]
struct Station {
    segment: SegmentId,
    addr: u64,
    promiscuous: bool,
    multicast: Vec<u64>,
}

#[derive(Debug)]
struct Segment {
    medium: Medium,
    faults: FaultModel,
    /// Station propagation delay (end-to-end cable time; tiny vs. the
    /// transmission delay, but nonzero keeps causality strict).
    propagation: SimDuration,
    stations: Vec<StationId>,
}

/// A collection of Ethernet segments and the stations attached to them.
#[derive(Debug)]
pub struct Network {
    segments: Vec<Segment>,
    stations: Vec<Station>,
    rng: SplitMix64,
    /// Frames transmitted per segment (for monitor-style statistics).
    transmitted: Vec<u64>,
    /// Deliveries suppressed by injected loss, per segment.
    lost: Vec<u64>,
}

impl Network {
    /// Creates an empty network with a deterministic fault-injection seed.
    pub fn new(seed: u64) -> Self {
        Network {
            segments: Vec::new(),
            stations: Vec::new(),
            rng: SplitMix64::new(seed),
            transmitted: Vec::new(),
            lost: Vec::new(),
        }
    }

    /// Adds a segment with the given medium and fault model.
    pub fn add_segment(&mut self, medium: Medium, faults: FaultModel) -> SegmentId {
        let id = SegmentId(self.segments.len());
        self.segments.push(Segment {
            medium,
            faults,
            propagation: SimDuration::from_micros(5),
            stations: Vec::new(),
        });
        self.transmitted.push(0);
        self.lost.push(0);
        id
    }

    /// Attaches a station with link address `addr` to a segment.
    ///
    /// # Panics
    ///
    /// Panics if the segment id is unknown.
    pub fn attach(&mut self, segment: SegmentId, addr: u64) -> StationId {
        assert!(segment.0 < self.segments.len(), "unknown segment");
        let id = StationId(self.stations.len());
        self.stations.push(Station {
            segment,
            addr,
            promiscuous: false,
            multicast: Vec::new(),
        });
        self.segments[segment.0].stations.push(id);
        id
    }

    /// The medium of the segment a station is attached to.
    pub fn medium_of(&self, station: StationId) -> &Medium {
        &self.segments[self.stations[station.0].segment.0].medium
    }

    /// The link address of a station.
    pub fn addr_of(&self, station: StationId) -> u64 {
        self.stations[station.0].addr
    }

    /// Puts a station in (or out of) promiscuous mode — it then receives
    /// every frame on its segment, as a network monitor's interface does.
    pub fn set_promiscuous(&mut self, station: StationId, on: bool) {
        self.stations[station.0].promiscuous = on;
    }

    /// Subscribes a station to a multicast group address.
    pub fn join_multicast(&mut self, station: StationId, group: u64) {
        let s = &mut self.stations[station.0];
        if !s.multicast.contains(&group) {
            s.multicast.push(group);
        }
    }

    /// Leaves a multicast group.
    pub fn leave_multicast(&mut self, station: StationId, group: u64) {
        self.stations[station.0].multicast.retain(|g| *g != group);
    }

    /// Frames transmitted on a segment so far.
    pub fn transmitted_on(&self, segment: SegmentId) -> u64 {
        self.transmitted[segment.0]
    }

    /// Deliveries suppressed by injected loss on a segment so far.
    pub fn lost_on(&self, segment: SegmentId) -> u64 {
        self.lost[segment.0]
    }

    /// Transmits `frame` from `station` starting at `now`.
    ///
    /// Returns the time the transmitter finishes (sender side busy until
    /// then) and the resulting deliveries. The sender never receives its
    /// own frame (Ethernet interfaces do not loop back).
    pub fn transmit(
        &mut self,
        station: StationId,
        frame_bytes: &[u8],
        now: SimTime,
    ) -> (SimTime, Vec<Delivery>) {
        let seg_id = self.stations[station.0].segment;
        let seg = &self.segments[seg_id.0];
        let medium = seg.medium;
        let tx_done = now + medium.transmission_delay(frame_bytes.len());
        let arrival = tx_done + seg.propagation;
        self.transmitted[seg_id.0] += 1;

        let header = frame::parse(&medium, frame_bytes).ok();
        let mut out = Vec::new();
        let receivers: Vec<StationId> = seg.stations.clone();
        let faults = seg.faults;
        for rcv in receivers {
            if rcv == station {
                continue;
            }
            let wants = {
                let r = &self.stations[rcv.0];
                r.promiscuous
                    || header.is_some_and(|h| {
                        h.dst == r.addr
                            || medium.is_broadcast(h.dst)
                            || (medium.is_multicast(h.dst) && r.multicast.contains(&h.dst))
                    })
            };
            if !wants {
                continue;
            }
            if self.rng.chance(faults.loss) {
                self.lost[seg_id.0] += 1;
                continue;
            }
            out.push(Delivery {
                station: rcv,
                arrival,
                frame: frame_bytes.to_vec(),
            });
            if self.rng.chance(faults.duplication) {
                out.push(Delivery {
                    station: rcv,
                    arrival: arrival + self.segments[seg_id.0].propagation,
                    frame: frame_bytes.to_vec(),
                });
            }
        }
        (tx_done, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::build;

    fn net_with_three_stations() -> (Network, SegmentId, StationId, StationId, StationId) {
        let mut net = Network::new(1);
        let seg = net.add_segment(Medium::experimental_3mb(), FaultModel::default());
        let a = net.attach(seg, 0x0A);
        let b = net.attach(seg, 0x0B);
        let c = net.attach(seg, 0x0C);
        (net, seg, a, b, c)
    }

    #[test]
    fn unicast_reaches_only_destination() {
        let (mut net, _, a, b, _c) = net_with_three_stations();
        let m = *net.medium_of(a);
        let f = build(&m, 0x0B, 0x0A, 2, &[1, 2]).unwrap();
        let (_done, deliveries) = net.transmit(a, &f, SimTime::ZERO);
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].station, b);
        assert_eq!(deliveries[0].frame, f);
    }

    #[test]
    fn broadcast_reaches_everyone_but_sender() {
        let (mut net, _, a, b, c) = net_with_three_stations();
        let m = *net.medium_of(a);
        let f = build(&m, m.broadcast, 0x0A, 2, &[]).unwrap();
        let (_, deliveries) = net.transmit(a, &f, SimTime::ZERO);
        let mut stations: Vec<_> = deliveries.iter().map(|d| d.station).collect();
        stations.sort_by_key(|s| s.0);
        assert_eq!(stations, vec![b, c]);
    }

    #[test]
    fn promiscuous_station_sees_everything() {
        let (mut net, _, a, b, c) = net_with_three_stations();
        net.set_promiscuous(c, true);
        let m = *net.medium_of(a);
        let f = build(&m, 0x0B, 0x0A, 2, &[]).unwrap();
        let (_, deliveries) = net.transmit(a, &f, SimTime::ZERO);
        let mut stations: Vec<_> = deliveries.iter().map(|d| d.station).collect();
        stations.sort_by_key(|s| s.0);
        assert_eq!(stations, vec![b, c]);
    }

    #[test]
    fn timing_follows_bandwidth() {
        let (mut net, _, a, _b, _c) = net_with_three_stations();
        let m = *net.medium_of(a);
        let f = build(&m, 0x0B, 0x0A, 2, &vec![0u8; 371]).unwrap(); // 375 bytes
        let (done, deliveries) = net.transmit(a, &f, SimTime::ZERO);
        // 375 B × 8 / 3 Mb/s = 1 ms.
        assert_eq!(done, SimTime(1_000_000));
        assert_eq!(deliveries[0].arrival, SimTime(1_005_000)); // + 5 µs propagation
    }

    #[test]
    fn multicast_on_10mb() {
        let mut net = Network::new(1);
        let seg = net.add_segment(Medium::standard_10mb(), FaultModel::default());
        let a = net.attach(seg, 0x0200_0000_000A);
        let b = net.attach(seg, 0x0200_0000_000B);
        let c = net.attach(seg, 0x0200_0000_000C);
        let group = 0x0100_0000_0077u64;
        net.join_multicast(b, group);
        let m = *net.medium_of(a);
        let f = build(&m, group, net.addr_of(a), 0x0800, &[]).unwrap();
        let (_, deliveries) = net.transmit(a, &f, SimTime::ZERO);
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].station, b);
        let _ = c;
        // After leaving, nobody receives.
        net.leave_multicast(b, group);
        let (_, deliveries) = net.transmit(a, &f, SimTime::ZERO);
        assert!(deliveries.is_empty());
    }

    #[test]
    fn loss_injection_suppresses_deliveries() {
        let mut net = Network::new(7);
        let seg = net.add_segment(
            Medium::experimental_3mb(),
            FaultModel {
                loss: 1.0,
                duplication: 0.0,
            },
        );
        let a = net.attach(seg, 1);
        let _b = net.attach(seg, 2);
        let m = *net.medium_of(a);
        let f = build(&m, 2, 1, 2, &[]).unwrap();
        let (_, deliveries) = net.transmit(a, &f, SimTime::ZERO);
        assert!(deliveries.is_empty());
        assert_eq!(net.lost_on(seg), 1);
        assert_eq!(net.transmitted_on(seg), 1);
    }

    #[test]
    fn duplication_injection() {
        let mut net = Network::new(7);
        let seg = net.add_segment(
            Medium::experimental_3mb(),
            FaultModel {
                loss: 0.0,
                duplication: 1.0,
            },
        );
        let a = net.attach(seg, 1);
        let b = net.attach(seg, 2);
        let m = *net.medium_of(a);
        let f = build(&m, 2, 1, 2, &[]).unwrap();
        let (_, deliveries) = net.transmit(a, &f, SimTime::ZERO);
        assert_eq!(deliveries.len(), 2);
        assert!(deliveries.iter().all(|d| d.station == b));
        assert!(deliveries[1].arrival > deliveries[0].arrival);
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let mut net = Network::new(99);
            let seg = net.add_segment(
                Medium::experimental_3mb(),
                FaultModel {
                    loss: 0.3,
                    duplication: 0.1,
                },
            );
            let a = net.attach(seg, 1);
            let _b = net.attach(seg, 2);
            let m = *net.medium_of(a);
            let f = build(&m, 2, 1, 2, &[0; 32]).unwrap();
            let mut pattern = Vec::new();
            for _ in 0..50 {
                let (_, d) = net.transmit(a, &f, SimTime::ZERO);
                pattern.push(d.len());
            }
            pattern
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn separate_segments_are_isolated() {
        let mut net = Network::new(1);
        let s1 = net.add_segment(Medium::experimental_3mb(), FaultModel::default());
        let s2 = net.add_segment(Medium::experimental_3mb(), FaultModel::default());
        let a = net.attach(s1, 1);
        let _b = net.attach(s2, 1); // same address, different wire
        let m = *net.medium_of(a);
        let f = build(&m, 1, 1, 2, &[]).unwrap();
        let (_, deliveries) = net.transmit(a, &f, SimTime::ZERO);
        assert!(deliveries.is_empty(), "no cross-segment delivery");
    }
}
