// Property suites need the external `proptest` crate; the default build is
// hermetic (offline), so this whole file is gated behind a feature. See the
// crate manifest for how to restore the dev-dependency.
#![cfg(feature = "proptest-tests")]

//! Property-based differential test: the calendar-queue backend and the
//! reference `BinaryHeap` backend must pop identical `(time, value)`
//! streams under arbitrary schedule/cancel/peek/pop interleavings.

use pf_sim::queue::{EventQueue, QueueBackend};
use pf_sim::time::SimTime;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Schedule(u64),
    Cancel(usize),
    Peek,
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..1 << 24).prop_map(Op::Schedule),
        1 => (0usize..4096).prop_map(Op::Cancel),
        1 => Just(Op::Peek),
        2 => Just(Op::Pop),
    ]
}

proptest! {
    #[test]
    fn calendar_and_heap_agree(ops in prop::collection::vec(op_strategy(), 1..600)) {
        let mut cal = EventQueue::with_backend(QueueBackend::Calendar);
        let mut heap = EventQueue::with_backend(QueueBackend::Heap);
        let mut handles = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Schedule(at) => {
                    let hc = cal.schedule(SimTime(at), i);
                    let hh = heap.schedule(SimTime(at), i);
                    handles.push((hc, hh));
                }
                Op::Cancel(k) => {
                    if !handles.is_empty() {
                        let (hc, hh) = handles.swap_remove(k % handles.len());
                        prop_assert_eq!(cal.cancel(hc), heap.cancel(hh));
                    }
                }
                Op::Peek => prop_assert_eq!(cal.peek_time(), heap.peek_time()),
                Op::Pop => prop_assert_eq!(cal.pop(), heap.pop()),
            }
            prop_assert_eq!(cal.len(), heap.len());
            prop_assert_eq!(cal.now(), heap.now());
        }
        // Drain: the remaining streams must match exactly, in both the
        // timestamp and the schedule-order tie-break.
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
