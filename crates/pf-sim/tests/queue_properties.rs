// Property suites need the external `proptest` crate; the default build is
// hermetic (offline), so this whole file is gated behind a feature. See the
// crate manifest for how to restore the dev-dependency.
#![cfg(feature = "proptest-tests")]

//! Property tests for the simulation substrate: the event queue's
//! ordering and cancellation invariants, and CPU-accounting monotonicity,
//! under arbitrary interleavings.

use pf_sim::cpu::Cpu;
use pf_sim::queue::EventQueue;
use pf_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

/// One operation against the queue.
#[derive(Debug, Clone, Copy)]
enum Op {
    Schedule(u64),
    Pop,
    /// Cancel the i-th handle issued so far (modulo count).
    Cancel(usize),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..10_000).prop_map(Op::Schedule),
        3 => Just(Op::Pop),
        1 => any::<usize>().prop_map(Op::Cancel),
    ]
}

proptest! {
    /// Pops come out in nondecreasing time order; equal times come out in
    /// schedule order; cancelled events never come out; every scheduled
    /// event is popped exactly once or cancelled exactly once by drain.
    #[test]
    fn event_queue_invariants(ops in prop::collection::vec(op(), 0..200)) {
        let mut q: EventQueue<usize> = EventQueue::new();
        let mut handles = Vec::new();
        let mut scheduled_time = Vec::new(); // payload -> requested time
        let mut cancelled = std::collections::HashSet::new();
        let mut popped = Vec::new();

        for o in ops {
            match o {
                Op::Schedule(t) => {
                    let id = scheduled_time.len();
                    // Requested times in the past are clamped to `now`.
                    let at = SimTime(t).max(q.now());
                    handles.push(q.schedule(SimTime(t), id));
                    scheduled_time.push(at);
                }
                Op::Pop => {
                    if let Some((t, id)) = q.pop() {
                        popped.push((t, id));
                    }
                }
                Op::Cancel(i) => {
                    if !handles.is_empty() {
                        let i = i % handles.len();
                        if q.cancel(handles[i]) {
                            cancelled.insert(i);
                        }
                    }
                }
            }
        }
        while let Some((t, id)) = q.pop() {
            popped.push((t, id));
        }

        // Order: times nondecreasing; ties in schedule order.
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "tie broken by schedule order");
            }
        }
        // Fire times respect the clamped request time.
        for &(t, id) in &popped {
            prop_assert!(t >= scheduled_time[id]);
        }
        // Exactly-once: popped ∪ cancelled = scheduled, disjoint.
        let popped_ids: std::collections::HashSet<usize> =
            popped.iter().map(|p| p.1).collect();
        prop_assert_eq!(popped_ids.len(), popped.len(), "no double pops");
        for id in 0..scheduled_time.len() {
            let p = popped_ids.contains(&id);
            let c = cancelled.contains(&id);
            prop_assert!(p ^ c, "event {} popped={} cancelled={}", id, p, c);
        }
    }

    /// CPU charges serialize: completion times are nondecreasing and every
    /// charge's completion covers its own cost; total busy time is the sum
    /// of costs.
    #[test]
    fn cpu_accounting_is_serial(charges in prop::collection::vec(
        (0u64..100_000, 0u64..5_000), 0..100,
    )) {
        let mut cpu = Cpu::new();
        let mut last_done = SimTime::ZERO;
        let mut total = 0u64;
        for (at, cost_us) in charges {
            let done = cpu.charge("work", SimTime(at), SimDuration::from_micros(cost_us));
            prop_assert!(done >= last_done, "completions nondecreasing");
            prop_assert!(done.as_nanos() >= at + cost_us * 1_000);
            last_done = done;
            total += cost_us;
        }
        prop_assert_eq!(cpu.busy_time().as_micros(), total);
        prop_assert_eq!(cpu.profiler().stats("work").time.as_micros(), total);
    }
}
