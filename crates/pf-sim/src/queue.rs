//! A deterministic discrete-event queue.
//!
//! Events fire in timestamp order; events with equal timestamps fire in the
//! order they were scheduled (a monotonic sequence number breaks ties), so
//! every simulation run is exactly reproducible.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
    cancelled: bool,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// A discrete-event queue over event payloads of type `E`.
///
/// # Examples
///
/// ```
/// use pf_sim::queue::EventQueue;
/// use pf_sim::time::{SimDuration, SimTime};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule(SimTime(2_000), "late");
/// q.schedule(SimTime(1_000), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (SimTime(1_000), "early"));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    /// Sequence numbers scheduled but not yet fired or cancelled.
    pending: std::collections::HashSet<u64>,
    /// Sequence numbers lazily cancelled (skipped at pop time).
    cancelled: std::collections::HashSet<u64>,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pending: std::collections::HashSet::new(),
            cancelled: std::collections::HashSet::new(),
            now: SimTime::ZERO,
        }
    }

    /// The timestamp of the most recently popped event (the current virtual
    /// time).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to the current time: the event
    /// fires next, preserving determinism rather than panicking (callers
    /// computing `now + cost` never hit this; it guards direct misuse).
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventHandle {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        self.heap.push(Scheduled {
            at,
            seq,
            event,
            cancelled: false,
        });
        EventHandle(seq)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event
    /// had not yet fired or been cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        // Lazy cancellation: the heap entry is skipped at pop time.
        if self.pending.remove(&handle.0) {
            self.cancelled.insert(handle.0);
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest pending event, advancing `now`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(s) = self.heap.pop() {
            if s.cancelled || self.cancelled.remove(&s.seq) {
                continue;
            }
            self.pending.remove(&s.seq);
            self.now = s.at;
            return Some((s.at, s.event));
        }
        None
    }

    /// The timestamp of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Pop lazily-cancelled entries off the top first.
        while let Some(s) = self.heap.peek() {
            if self.cancelled.contains(&s.seq) {
                let s = self.heap.pop().expect("peeked");
                self.cancelled.remove(&s.seq);
                continue;
            }
            return Some(s.at);
        }
        None
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), 3);
        q.schedule(SimTime(10), 1);
        q.schedule(SimTime(20), 2);
        assert_eq!(q.pop(), Some((SimTime(10), 1)));
        assert_eq!(q.pop(), Some((SimTime(20), 2)));
        assert_eq!(q.pop(), Some((SimTime(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_fire_in_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime(5), i)));
        }
    }

    #[test]
    fn now_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(42));
    }

    #[test]
    fn past_events_are_clamped() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), "a");
        q.pop();
        q.schedule(SimTime(50), "late"); // in the past
        assert_eq!(q.pop(), Some((SimTime(100), "late")));
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(SimTime(10), 1);
        let h2 = q.schedule(SimTime(20), 2);
        assert!(q.cancel(h1));
        assert!(!q.cancel(h1), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime(20)));
        assert_eq!(q.pop(), Some((SimTime(20), 2)));
        assert!(!q.cancel(h2), "already fired");
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), 1);
        assert_eq!(q.pop(), Some((SimTime(10), 1)));
        q.schedule(q.now() + SimDuration::from_nanos(5), 2);
        assert_eq!(q.pop(), Some((SimTime(15), 2)));
    }
}
