//! Deterministic future event list with two interchangeable backends.
//!
//! Events fire in timestamp order; events with equal timestamps fire in
//! the order they were scheduled (a monotonic sequence number breaks
//! ties), so every simulation run is exactly reproducible. The ordering
//! contract is identical under both backends:
//!
//! * [`QueueBackend::Calendar`] (the default) — a calendar queue after
//!   Brown (CACM 1988): a power-of-two array of time-bucketed bins, each
//!   holding a small binary heap. `schedule` is O(1) amortized and `pop`
//!   is O(1) when the event population is dense in time (the common case
//!   for packet workloads: every in-flight frame has a near-future
//!   arrival). Because two events with equal timestamps always land in
//!   the same bucket, the per-bucket heap's `(time, seq)` order *is* the
//!   global order — the tie-break is preserved exactly.
//! * [`QueueBackend::Heap`] — the classic global `BinaryHeap`, O(log n)
//!   per operation. Kept as the reference implementation for
//!   differential tests and as the comparison arm of `bench_net`'s
//!   event-core sweep.
//!
//! Cancellation is lazy in both backends: a cancelled entry stays in its
//! bin until it surfaces at `pop`/`peek_time`, at which point it is
//! dropped and its bookkeeping reclaimed. When cancelled entries
//! outnumber live ones the queue compacts in O(n), so a schedule/cancel
//! churn loop holds memory proportional to the *live* population, not
//! the all-time schedule count.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

/// Which storage strategy an [`EventQueue`] uses. The observable
/// pop-stream is identical; only the cost profile differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueBackend {
    /// Bucketed calendar queue: O(1) amortized when events are dense in
    /// time, degrades toward a bucket scan when they are sparse.
    #[default]
    Calendar,
    /// Single global binary heap: O(log n) always.
    Heap,
}

impl QueueBackend {
    /// Short stable name, used as the backend label in bench artifacts.
    pub fn name(self) -> &'static str {
        match self {
            QueueBackend::Calendar => "calendar",
            QueueBackend::Heap => "heap",
        }
    }
}

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// Smallest bucket count the calendar shrinks to.
const MIN_BUCKETS: usize = 16;
/// Largest bucket count the calendar grows to.
const MAX_BUCKETS: usize = 1 << 20;
/// Bucket-width ceiling (ns). Keeps the year-scan window arithmetic far
/// from u64 overflow even with a million buckets.
const MAX_WIDTH: u64 = 1 << 40;
/// Bucket width before the first rebuild gives a sample to estimate
/// from: ~1 µs, matching the cost model's typical event spacing.
const INITIAL_WIDTH: u64 = 1_024;

struct Calendar<E> {
    buckets: Vec<BinaryHeap<Scheduled<E>>>,
    /// Nanoseconds of simulated time per bucket (`>= 1`).
    width: u64,
    /// Total stored entries (including lazily-cancelled ones).
    len: usize,
    /// Bucket the dequeue scan starts from.
    cur_slot: usize,
    /// Exclusive upper bound of `cur_slot`'s current one-year window.
    cur_top: u64,
}

impl<E> Calendar<E> {
    fn new() -> Self {
        Calendar {
            buckets: (0..MIN_BUCKETS).map(|_| BinaryHeap::new()).collect(),
            width: INITIAL_WIDTH,
            len: 0,
            cur_slot: 0,
            cur_top: INITIAL_WIDTH,
        }
    }

    fn slot_of(&self, at: u64) -> usize {
        ((at / self.width) as usize) & (self.buckets.len() - 1)
    }

    /// Exclusive top of the bucket window containing `at`.
    fn window_top(&self, at: u64) -> u64 {
        (at / self.width)
            .saturating_add(1)
            .saturating_mul(self.width)
    }

    fn push(&mut self, s: Scheduled<E>) {
        let slot = self.slot_of(s.at.0);
        // The dequeue scan assumes every stored time is at or after the
        // cursor window's start. An insert earlier than that (legal any
        // time `now` trails the stored minimum) pulls the cursor back to
        // its own window, re-establishing the invariant.
        if s.at.0 < self.cur_top.saturating_sub(self.width) {
            self.cur_slot = slot;
            self.cur_top = self.window_top(s.at.0);
        }
        self.buckets[slot].push(s);
        self.len += 1;
        if self.len > 2 * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            self.rebuild();
        }
    }

    /// Bucket holding the globally-minimal `(time, seq)` entry.
    ///
    /// Scans one "year" (every bucket once) from the cursor, accepting a
    /// bucket top only if it falls inside that bucket's current window —
    /// an entry in a later year waits for a later lap. If a whole year
    /// turns up nothing (sparse population), falls back to a direct
    /// search over all bucket tops: the documented heap-like degradation
    /// mode.
    fn min_slot(&self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len();
        let mut slot = self.cur_slot;
        let mut top = self.cur_top;
        for _ in 0..n {
            if let Some(s) = self.buckets[slot].peek() {
                if s.at.0 < top {
                    return Some(slot);
                }
            }
            slot = (slot + 1) & (n - 1);
            top = top.saturating_add(self.width);
        }
        let mut best: Option<(SimTime, u64, usize)> = None;
        for (i, b) in self.buckets.iter().enumerate() {
            if let Some(s) = b.peek() {
                if best.is_none_or(|(at, seq, _)| (s.at, s.seq) < (at, seq)) {
                    best = Some((s.at, s.seq, i));
                }
            }
        }
        best.map(|(_, _, i)| i)
    }

    fn peek(&self) -> Option<&Scheduled<E>> {
        self.min_slot().and_then(|slot| self.buckets[slot].peek())
    }

    fn pop_min(&mut self) -> Option<Scheduled<E>> {
        let slot = self.min_slot()?;
        let s = self.buckets[slot].pop().expect("min_slot bucket nonempty");
        self.len -= 1;
        self.cur_slot = slot;
        self.cur_top = self.window_top(s.at.0);
        if self.len < self.buckets.len() / 4 && self.buckets.len() > MIN_BUCKETS {
            self.rebuild();
        }
        Some(s)
    }

    fn drain_all(&mut self) -> Vec<Scheduled<E>> {
        let mut out = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            out.extend(b.drain());
        }
        self.len = 0;
        out
    }

    fn rebuild(&mut self) {
        let entries = self.drain_all();
        self.rebuild_from(entries);
    }

    /// Re-bucket `entries` into a calendar sized and widthed for them.
    /// O(n), but every threshold crossing that triggers it moved Ω(n)
    /// entries, so the amortized cost per operation stays O(1).
    fn rebuild_from(&mut self, entries: Vec<Scheduled<E>>) {
        let n = entries
            .len()
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        self.width = estimate_width(&entries);
        self.buckets = (0..n).map(|_| BinaryHeap::new()).collect();
        self.len = entries.len();
        let min = entries.iter().map(|s| s.at.0).min();
        for s in entries {
            let slot = self.slot_of(s.at.0);
            self.buckets[slot].push(s);
        }
        match min {
            // Restart the scan at the earliest entry's own window: every
            // stored time is >= it, so nothing hides behind the cursor.
            Some(at) => {
                self.cur_slot = self.slot_of(at);
                self.cur_top = self.window_top(at);
            }
            None => {
                self.cur_slot = 0;
                self.cur_top = self.width;
            }
        }
    }
}

/// Bucket width ≈ 3× the mean inter-event gap, estimated from a
/// deterministic sample's interquartile span (robust to a few outliers
/// at either extreme). Brown's rule of thumb: a handful of events per
/// bucket keeps both the per-bucket heaps and the year scan short.
fn estimate_width<E>(entries: &[Scheduled<E>]) -> u64 {
    if entries.len() < 2 {
        return INITIAL_WIDTH;
    }
    let m = entries.len().min(64);
    let stride = entries.len() / m;
    let mut sample: Vec<u64> = (0..m).map(|i| entries[i * stride].at.0).collect();
    sample.sort_unstable();
    let lo = sample[m / 4];
    let hi = sample[(3 * m) / 4];
    // The middle half of the sample spans roughly half the population.
    let gap = (hi - lo) / ((entries.len() as u64) / 2).max(1);
    (3 * gap).clamp(1, MAX_WIDTH)
}

enum Store<E> {
    Heap(BinaryHeap<Scheduled<E>>),
    Calendar(Calendar<E>),
}

impl<E> Store<E> {
    fn len(&self) -> usize {
        match self {
            Store::Heap(h) => h.len(),
            Store::Calendar(c) => c.len,
        }
    }

    fn push(&mut self, s: Scheduled<E>) {
        match self {
            Store::Heap(h) => h.push(s),
            Store::Calendar(c) => c.push(s),
        }
    }

    fn peek(&self) -> Option<&Scheduled<E>> {
        match self {
            Store::Heap(h) => h.peek(),
            Store::Calendar(c) => c.peek(),
        }
    }

    fn pop_min(&mut self) -> Option<Scheduled<E>> {
        match self {
            Store::Heap(h) => h.pop(),
            Store::Calendar(c) => c.pop_min(),
        }
    }

    fn drain_all(&mut self) -> Vec<Scheduled<E>> {
        match self {
            Store::Heap(h) => h.drain().collect(),
            Store::Calendar(c) => c.drain_all(),
        }
    }

    fn rebuild_from(&mut self, entries: Vec<Scheduled<E>>) {
        match self {
            Store::Heap(h) => *h = entries.into(),
            Store::Calendar(c) => c.rebuild_from(entries),
        }
    }
}

/// A discrete-event queue over event payloads of type `E`.
///
/// # Examples
///
/// ```
/// use pf_sim::queue::EventQueue;
/// use pf_sim::time::{SimDuration, SimTime};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule(SimTime(2_000), "late");
/// q.schedule(SimTime(1_000), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (SimTime(1_000), "early"));
/// ```
pub struct EventQueue<E> {
    store: Store<E>,
    next_seq: u64,
    /// Sequence numbers scheduled but not yet fired or cancelled.
    pending: HashSet<u64>,
    /// Sequence numbers lazily cancelled (skipped at pop time, reclaimed
    /// by compaction when they outnumber the live population).
    cancelled: HashSet<u64>,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero on the default backend.
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::default())
    }

    /// Creates an empty queue on an explicitly chosen backend.
    pub fn with_backend(backend: QueueBackend) -> Self {
        let store = match backend {
            QueueBackend::Heap => Store::Heap(BinaryHeap::new()),
            QueueBackend::Calendar => Store::Calendar(Calendar::new()),
        };
        EventQueue {
            store,
            next_seq: 0,
            pending: HashSet::new(),
            cancelled: HashSet::new(),
            now: SimTime::ZERO,
        }
    }

    /// Which backend this queue stores events in.
    pub fn backend(&self) -> QueueBackend {
        match self.store {
            Store::Heap(_) => QueueBackend::Heap,
            Store::Calendar(_) => QueueBackend::Calendar,
        }
    }

    /// The timestamp of the most recently popped event (the current virtual
    /// time).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to the current time: the event
    /// fires next, preserving determinism rather than panicking (callers
    /// computing `now + cost` never hit this; it guards direct misuse).
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventHandle {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        self.store.push(Scheduled { at, seq, event });
        EventHandle(seq)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event
    /// had not yet fired or been cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        // Lazy cancellation: the stored entry is skipped at pop time.
        if self.pending.remove(&handle.0) {
            self.cancelled.insert(handle.0);
            self.maybe_compact();
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest pending event, advancing `now`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(s) = self.store.pop_min() {
            if self.cancelled.remove(&s.seq) {
                continue;
            }
            self.pending.remove(&s.seq);
            self.now = s.at;
            return Some((s.at, s.event));
        }
        None
    }

    /// The timestamp of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Pop lazily-cancelled entries off the front first.
        loop {
            let seq = match self.store.peek() {
                Some(s) if self.cancelled.contains(&s.seq) => s.seq,
                Some(s) => return Some(s.at),
                None => return None,
            };
            self.store.pop_min();
            self.cancelled.remove(&seq);
        }
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.store.len() - self.cancelled.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries physically stored, *including* lazily-cancelled ones not
    /// yet reclaimed. Exposed so tests can pin that schedule/cancel
    /// churn keeps storage proportional to the live population.
    pub fn stored_len(&self) -> usize {
        self.store.len()
    }

    /// Compacts once dead entries outnumber live ones: rebuilds the
    /// store retaining only live events. Each compaction removes more
    /// entries than it keeps, so the cost amortizes to O(1) per cancel.
    fn maybe_compact(&mut self) {
        if self.cancelled.len() <= self.pending.len().max(MIN_BUCKETS) {
            return;
        }
        let entries = self.store.drain_all();
        let live: Vec<Scheduled<E>> = entries
            .into_iter()
            .filter(|s| !self.cancelled.contains(&s.seq))
            .collect();
        self.cancelled.clear();
        self.store.rebuild_from(live);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use crate::time::SimDuration;

    fn both_backends() -> [QueueBackend; 2] {
        [QueueBackend::Calendar, QueueBackend::Heap]
    }

    #[test]
    fn default_backend_is_calendar() {
        assert_eq!(EventQueue::<u32>::new().backend(), QueueBackend::Calendar);
    }

    #[test]
    fn orders_by_time() {
        for backend in both_backends() {
            let mut q = EventQueue::with_backend(backend);
            q.schedule(SimTime(30), 3);
            q.schedule(SimTime(10), 1);
            q.schedule(SimTime(20), 2);
            assert_eq!(q.pop(), Some((SimTime(10), 1)));
            assert_eq!(q.pop(), Some((SimTime(20), 2)));
            assert_eq!(q.pop(), Some((SimTime(30), 3)));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn equal_times_fire_in_schedule_order() {
        for backend in both_backends() {
            let mut q = EventQueue::with_backend(backend);
            for i in 0..100 {
                q.schedule(SimTime(5), i);
            }
            for i in 0..100 {
                assert_eq!(q.pop(), Some((SimTime(5), i)));
            }
        }
    }

    #[test]
    fn now_advances_with_pop() {
        for backend in both_backends() {
            let mut q = EventQueue::with_backend(backend);
            q.schedule(SimTime(42), ());
            assert_eq!(q.now(), SimTime::ZERO);
            q.pop();
            assert_eq!(q.now(), SimTime(42));
        }
    }

    #[test]
    fn past_events_are_clamped() {
        for backend in both_backends() {
            let mut q = EventQueue::with_backend(backend);
            q.schedule(SimTime(100), "a");
            q.pop();
            q.schedule(SimTime(50), "late"); // in the past
            assert_eq!(q.pop(), Some((SimTime(100), "late")));
        }
    }

    #[test]
    fn cancellation() {
        for backend in both_backends() {
            let mut q = EventQueue::with_backend(backend);
            let h1 = q.schedule(SimTime(10), 1);
            let h2 = q.schedule(SimTime(20), 2);
            assert!(q.cancel(h1));
            assert!(!q.cancel(h1), "double cancel reports false");
            assert_eq!(q.len(), 1);
            assert_eq!(q.peek_time(), Some(SimTime(20)));
            assert_eq!(q.pop(), Some((SimTime(20), 2)));
            assert!(!q.cancel(h2), "already fired");
        }
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        for backend in both_backends() {
            let mut q = EventQueue::with_backend(backend);
            q.schedule(SimTime(10), 1);
            assert_eq!(q.pop(), Some((SimTime(10), 1)));
            q.schedule(q.now() + SimDuration::from_nanos(5), 2);
            assert_eq!(q.pop(), Some((SimTime(15), 2)));
        }
    }

    #[test]
    fn calendar_survives_growth_and_drain_of_a_large_population() {
        let mut q = EventQueue::with_backend(QueueBackend::Calendar);
        let mut rng = SplitMix64::new(7);
        for i in 0..20_000u64 {
            q.schedule(SimTime(rng.below(1 << 32)), i);
        }
        let mut last = SimTime::ZERO;
        let mut n = 0usize;
        while let Some((at, _)) = q.pop() {
            assert!(at >= last, "pops must be time-ordered");
            last = at;
            n += 1;
        }
        assert_eq!(n, 20_000);
    }

    #[test]
    fn calendar_handles_sparse_far_future_events() {
        // Events much farther apart than any bucket year: exercises the
        // direct-search fallback after an empty lap.
        let mut q = EventQueue::with_backend(QueueBackend::Calendar);
        q.schedule(SimTime(1), "near");
        q.schedule(SimTime(3_600_000_000_000), "hour");
        q.schedule(SimTime(86_400_000_000_000), "day");
        assert_eq!(q.pop(), Some((SimTime(1), "near")));
        assert_eq!(q.pop(), Some((SimTime(3_600_000_000_000), "hour")));
        assert_eq!(q.pop(), Some((SimTime(86_400_000_000_000), "day")));
    }

    #[test]
    fn schedule_after_long_idle_advance() {
        // Popping a far-future event moves the calendar cursor a long
        // way; later near-cursor scheduling must still order correctly.
        for backend in both_backends() {
            let mut q = EventQueue::with_backend(backend);
            q.schedule(SimTime(100_000_000_000), "far");
            assert_eq!(q.pop(), Some((SimTime(100_000_000_000), "far")));
            let base = SimTime(100_000_000_000);
            q.schedule(base + SimDuration::from_micros(5), "b");
            q.schedule(base + SimDuration::from_micros(1), "a");
            assert_eq!(q.pop(), Some((base + SimDuration::from_micros(1), "a")));
            assert_eq!(q.pop(), Some((base + SimDuration::from_micros(5), "b")));
        }
    }

    /// The backends must pop byte-identical `(time, value)` streams
    /// under randomized schedule/cancel/peek/pop interleavings — the
    /// deterministic twin of the feature-gated property suite in
    /// tests/properties.rs.
    #[test]
    fn calendar_and_heap_pop_identical_streams() {
        for seed in 0..8u64 {
            let mut cal = EventQueue::with_backend(QueueBackend::Calendar);
            let mut heap = EventQueue::with_backend(QueueBackend::Heap);
            let mut rng = SplitMix64::new(0xD1FF ^ seed);
            let mut handles = Vec::new();
            for i in 0..4_000u64 {
                match rng.below(10) {
                    0..=5 => {
                        let at = SimTime(rng.below(1 << 20));
                        let hc = cal.schedule(at, i);
                        let hh = heap.schedule(at, i);
                        handles.push((hc, hh));
                    }
                    6 => {
                        if !handles.is_empty() {
                            let k = rng.below(handles.len() as u64) as usize;
                            let (hc, hh) = handles.swap_remove(k);
                            assert_eq!(cal.cancel(hc), heap.cancel(hh));
                        }
                    }
                    7 => assert_eq!(cal.peek_time(), heap.peek_time()),
                    _ => assert_eq!(cal.pop(), heap.pop()),
                }
                assert_eq!(cal.len(), heap.len());
                assert_eq!(cal.now(), heap.now());
            }
            loop {
                let (a, b) = (cal.pop(), heap.pop());
                assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }

    /// Regression for the unbounded-bookkeeping bug: a schedule/cancel
    /// churn loop must hold storage proportional to the live population,
    /// not the all-time schedule count.
    #[test]
    fn churn_holds_memory_flat() {
        for backend in both_backends() {
            let mut q = EventQueue::with_backend(backend);
            // A stable population of live timers that keeps getting
            // rescheduled — the pattern World's kernel timers produce.
            let mut live: Vec<EventHandle> =
                (0..64).map(|i| q.schedule(SimTime(1_000 + i), i)).collect();
            for round in 0..50_000u64 {
                let h = live.remove((round % 64) as usize);
                assert!(q.cancel(h));
                live.push(q.schedule(SimTime(2_000 + round), round));
                assert_eq!(q.len(), 64);
                assert!(
                    q.stored_len() <= 2 * q.len() + 2 * MIN_BUCKETS,
                    "stored {} entries for {} live after {} churn rounds",
                    q.stored_len(),
                    q.len(),
                    round + 1
                );
            }
        }
    }

    #[test]
    fn len_excludes_cancelled_entries() {
        for backend in both_backends() {
            let mut q = EventQueue::with_backend(backend);
            let a = q.schedule(SimTime(10), ());
            q.schedule(SimTime(20), ());
            assert_eq!(q.len(), 2);
            q.cancel(a);
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
        }
    }
}
