//! A gprof-style profiler for virtual CPU time.
//!
//! §6.1 of the paper configured a 4.3BSD kernel "to collect the CPU time
//! spent in and number of calls made to each kernel subroutine" and
//! formatted the result with `gprof`. [`Profiler`] collects the same two
//! quantities per named routine of the simulated kernel, and its report is
//! what the `section_6_1` experiment prints.

use crate::time::SimDuration;
use std::collections::HashMap;
use std::fmt;

/// Per-routine call counts and cumulative virtual CPU time.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    routines: HashMap<&'static str, RoutineStats>,
}

/// Statistics for one profiled routine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoutineStats {
    /// Number of calls recorded.
    pub calls: u64,
    /// Total virtual CPU time.
    pub time: SimDuration,
}

impl RoutineStats {
    /// Mean time per call (zero if never called).
    pub fn per_call(&self) -> SimDuration {
        match self.time.as_nanos().checked_div(self.calls) {
            Some(ns) => SimDuration::from_nanos(ns),
            None => SimDuration::ZERO,
        }
    }
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one call to `routine` costing `time`.
    pub fn record(&mut self, routine: &'static str, time: SimDuration) {
        let s = self.routines.entry(routine).or_default();
        s.calls += 1;
        s.time += time;
    }

    /// Statistics for one routine (zeroes if never recorded).
    pub fn stats(&self, routine: &str) -> RoutineStats {
        self.routines.get(routine).copied().unwrap_or_default()
    }

    /// Total time across routines whose name starts with `prefix`.
    pub fn time_with_prefix(&self, prefix: &str) -> SimDuration {
        let ns = self
            .routines
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, s)| s.time.as_nanos())
            .sum();
        SimDuration::from_nanos(ns)
    }

    /// Total calls across routines whose name starts with `prefix`.
    pub fn calls_with_prefix(&self, prefix: &str) -> u64 {
        self.routines
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, s)| s.calls)
            .sum()
    }

    /// Total recorded virtual CPU time.
    pub fn total_time(&self) -> SimDuration {
        SimDuration::from_nanos(self.routines.values().map(|s| s.time.as_nanos()).sum())
    }

    /// All routines, sorted by descending cumulative time (the gprof flat
    /// profile ordering).
    pub fn flat_profile(&self) -> Vec<(&'static str, RoutineStats)> {
        let mut v: Vec<_> = self.routines.iter().map(|(n, s)| (*n, *s)).collect();
        v.sort_by(|a, b| b.1.time.cmp(&a.1.time).then(a.0.cmp(b.0)));
        v
    }

    /// Merges another profiler's samples into this one.
    pub fn merge(&mut self, other: &Profiler) {
        for (name, s) in &other.routines {
            let e = self.routines.entry(name).or_default();
            e.calls += s.calls;
            e.time += s.time;
        }
    }
}

impl fmt::Display for Profiler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total_time();
        writeln!(
            f,
            "{:>6}  {:>12}  {:>10}  {:>10}  routine",
            "%time", "cumulative", "calls", "ms/call"
        )?;
        for (name, s) in self.flat_profile() {
            let pct = if total.as_nanos() == 0 {
                0.0
            } else {
                100.0 * s.time.as_nanos() as f64 / total.as_nanos() as f64
            };
            writeln!(
                f,
                "{:>5.1}%  {:>9.3} ms  {:>10}  {:>10.3}  {}",
                pct,
                s.time.as_millis_f64(),
                s.calls,
                s.per_call().as_millis_f64(),
                name
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_aggregates() {
        let mut p = Profiler::new();
        p.record("pf:filter", SimDuration::from_micros(100));
        p.record("pf:filter", SimDuration::from_micros(50));
        p.record("ip:input", SimDuration::from_micros(490));
        let s = p.stats("pf:filter");
        assert_eq!(s.calls, 2);
        assert_eq!(s.time, SimDuration::from_micros(150));
        assert_eq!(s.per_call(), SimDuration::from_micros(75));
        assert_eq!(p.total_time(), SimDuration::from_micros(640));
    }

    #[test]
    fn prefix_aggregation() {
        let mut p = Profiler::new();
        p.record("pf:filter", SimDuration::from_micros(10));
        p.record("pf:input", SimDuration::from_micros(20));
        p.record("ip:input", SimDuration::from_micros(40));
        assert_eq!(p.time_with_prefix("pf:"), SimDuration::from_micros(30));
        assert_eq!(p.calls_with_prefix("pf:"), 2);
    }

    #[test]
    fn flat_profile_sorted_by_time() {
        let mut p = Profiler::new();
        p.record("small", SimDuration::from_micros(1));
        p.record("big", SimDuration::from_micros(100));
        let flat = p.flat_profile();
        assert_eq!(flat[0].0, "big");
        assert_eq!(flat[1].0, "small");
    }

    #[test]
    fn unknown_routine_is_zero() {
        let p = Profiler::new();
        assert_eq!(p.stats("nothing"), RoutineStats::default());
        assert_eq!(p.stats("nothing").per_call(), SimDuration::ZERO);
    }

    #[test]
    fn merge_adds() {
        let mut a = Profiler::new();
        a.record("x", SimDuration::from_micros(5));
        let mut b = Profiler::new();
        b.record("x", SimDuration::from_micros(7));
        b.record("y", SimDuration::from_micros(1));
        a.merge(&b);
        assert_eq!(a.stats("x").time, SimDuration::from_micros(12));
        assert_eq!(a.stats("y").calls, 1);
    }

    #[test]
    fn display_contains_headers() {
        let mut p = Profiler::new();
        p.record("pf:filter", SimDuration::from_micros(100));
        let s = p.to_string();
        assert!(s.contains("%time"));
        assert!(s.contains("pf:filter"));
    }
}
