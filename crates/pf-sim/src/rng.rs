//! A small deterministic PRNG for workload generation and fault injection.
//!
//! SplitMix64: tiny, fast, and — unlike thread-local or OS-seeded
//! generators — exactly reproducible from a seed, which every experiment
//! requires. It is the workspace's only randomness source: the default
//! build is hermetic (no external crates), so workload generation, fault
//! injection, and the differential fuzz loops all seed from here.

/// A SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits → [0, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform value in `[0, n)`; `n = 0` yields `0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn below_bounds() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn chance_rate_is_roughly_p() {
        let mut r = SplitMix64::new(1234);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2200..2800).contains(&hits), "{hits}");
    }
}
