//! Virtual time for the deterministic simulation.
//!
//! The paper's measurements are in milliseconds and microseconds on
//! mid-1980s VAX hardware; we track virtual time in integer nanoseconds,
//! which is fine-grained enough that no calibrated cost loses precision and
//! coarse enough that a `u64` spans centuries of simulated time.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// An instant in virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since the epoch.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch (truncating).
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since the epoch, as a float (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Seconds since the epoch, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("`earlier` must not be later than `self`"),
        )
    }

    /// Saturating difference (zero if `earlier` is later).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// From seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// From a float number of microseconds (rounded to nanoseconds).
    pub fn from_micros_f64(us: f64) -> Self {
        SimDuration((us * 1_000.0).round() as u64)
    }

    /// Nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds (truncating).
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds, as a float (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Seconds, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Scales by an integer factor.
    pub fn times(self, n: u64) -> Self {
        SimDuration(self.0 * n)
    }

    /// Integer division of two durations (how many `other` fit in `self`).
    pub fn div_duration(self, other: SimDuration) -> u64 {
        self.0 / other.0.max(1)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000_000 {
            write!(f, "{:.1} µs", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{:.3} ms", self.as_millis_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(2);
        assert_eq!(t.as_micros(), 2_000);
        let t2 = t + SimDuration::from_micros(500);
        assert_eq!(t2.since(t), SimDuration::from_micros(500));
        assert_eq!(t2.as_millis_f64(), 2.5);
    }

    #[test]
    fn saturating_since() {
        let a = SimTime(100);
        let b = SimTime(200);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration(100));
    }

    #[test]
    #[should_panic(expected = "`earlier` must not be later")]
    fn since_panics_on_reversed_order() {
        let _ = SimTime(100).since(SimTime(200));
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_millis(1).as_micros(), 1000);
        assert_eq!(SimDuration::from_secs(1).as_millis_f64(), 1000.0);
        assert_eq!(SimDuration::from_micros_f64(0.4).as_nanos(), 400);
        assert_eq!(SimDuration::from_micros(7).times(3).as_micros(), 21);
        assert_eq!(
            SimDuration::from_millis(10).div_duration(SimDuration::from_millis(3)),
            3
        );
    }

    #[test]
    fn display() {
        assert_eq!(SimDuration::from_micros(400).to_string(), "400.0 µs");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000 ms");
        assert_eq!(SimTime(1_500_000).to_string(), "1.500 ms");
    }
}
