//! Event counters for the quantities the paper's figures are about.
//!
//! Figures 2-1/2-2/2-3 and 3-4/3-5 are cost diagrams counting context
//! switches, system calls, domain crossings, and data copies per packet;
//! [`Counters`] tracks exactly those, and the `figures` experiment prints
//! them.

use core::fmt;
use core::ops::Sub;

/// Cumulative event counts for one simulated host.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Process-to-process context switches.
    pub context_switches: u64,
    /// System calls issued by user processes.
    pub syscalls: u64,
    /// Kernel↔user domain crossings (two per system call, plus signal
    /// deliveries; figure 2-3's currency).
    pub domain_crossings: u64,
    /// Kernel↔user (or pipe) data copies.
    pub copies: u64,
    /// Bytes moved by those copies.
    pub bytes_copied: u64,
    /// Frames handed to a network interface for transmission.
    pub packets_sent: u64,
    /// Frames received from the network by the host.
    pub packets_received: u64,
    /// Packets accepted by some filter and queued to a port.
    pub packets_delivered: u64,
    /// Packets dropped because a port's input queue was full.
    pub drops_queue_full: u64,
    /// Packets rejected by every filter.
    pub drops_no_match: u64,
    /// Packets dropped by the network interface itself (overrun).
    pub drops_interface: u64,
    /// Filter predicates applied (§6.1: "the average packet is tested
    /// against 6.3 predicates").
    pub filters_applied: u64,
    /// Filter instructions interpreted.
    pub filter_instructions: u64,
    /// Signals delivered to processes.
    pub signals_delivered: u64,
    /// Received-packet timestamps taken (each costs `microtime`).
    pub timestamps: u64,
    /// Filters quarantined (failed bind-time validation or could exceed
    /// the instruction budget); quarantined filters are served by the
    /// checked interpreter instead of the compiled engines.
    pub filters_quarantined: u64,
    /// Filter evaluations terminated by the per-evaluation instruction
    /// budget (each rejects its packet).
    pub filter_budget_overruns: u64,
    /// Packets shed at the NIC by the admission gate, before any filter
    /// ran (drop-at-NIC; `drops_no_match`/`drops_queue_full` count
    /// drop-after-demux).
    pub drops_admission: u64,
    /// Polled drain passes executed while the receive path was in
    /// polling mode.
    pub poll_batches: u64,
    /// Receive-path mode switches (interrupt→polling and back).
    pub rx_mode_switches: u64,
    /// Backpressure notifications posted to port owners when a port
    /// queue crossed its high-water mark.
    pub backpressure_signals: u64,
    /// Frames steered to a non-default receive queue by the RSS hash
    /// (single-queue configurations never increment this).
    pub frames_steered: u64,
    /// Cross-core wakeups: a demultiplexing core delivered to a consumer
    /// homed on another core.
    pub cross_core_wakeups: u64,
    /// Work-steal operations: an idle core migrated frames from a
    /// sibling's receive queue.
    pub queue_steals: u64,
    /// Batched engine evaluations launched (each covers 1..=batch frames).
    pub batches_executed: u64,
    /// Frames shed at the NIC as signature mimics: they wore a protected
    /// port's admission signature but failed a word the protected filter
    /// provably requires. Kept separate from `drops_admission` — these
    /// are adversarial drops, not quota exhaustion.
    pub drops_mimicry_shed: u64,
    /// Gate-signature re-selections: a protected gate entry under
    /// mimicry pressure widened its signature to verify the filter's
    /// remaining required words.
    pub gate_resignature_events: u64,
}

impl Counters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Average filter predicates applied per received packet.
    pub fn filters_per_packet(&self) -> f64 {
        if self.packets_received == 0 {
            0.0
        } else {
            self.filters_applied as f64 / self.packets_received as f64
        }
    }
}

impl Sub for Counters {
    type Output = Counters;

    /// Element-wise difference: `end - start` gives the counts for an
    /// interval.
    fn sub(self, rhs: Counters) -> Counters {
        Counters {
            context_switches: self.context_switches - rhs.context_switches,
            syscalls: self.syscalls - rhs.syscalls,
            domain_crossings: self.domain_crossings - rhs.domain_crossings,
            copies: self.copies - rhs.copies,
            bytes_copied: self.bytes_copied - rhs.bytes_copied,
            packets_sent: self.packets_sent - rhs.packets_sent,
            packets_received: self.packets_received - rhs.packets_received,
            packets_delivered: self.packets_delivered - rhs.packets_delivered,
            drops_queue_full: self.drops_queue_full - rhs.drops_queue_full,
            drops_no_match: self.drops_no_match - rhs.drops_no_match,
            drops_interface: self.drops_interface - rhs.drops_interface,
            filters_applied: self.filters_applied - rhs.filters_applied,
            filter_instructions: self.filter_instructions - rhs.filter_instructions,
            signals_delivered: self.signals_delivered - rhs.signals_delivered,
            timestamps: self.timestamps - rhs.timestamps,
            filters_quarantined: self.filters_quarantined - rhs.filters_quarantined,
            filter_budget_overruns: self.filter_budget_overruns - rhs.filter_budget_overruns,
            drops_admission: self.drops_admission - rhs.drops_admission,
            poll_batches: self.poll_batches - rhs.poll_batches,
            rx_mode_switches: self.rx_mode_switches - rhs.rx_mode_switches,
            backpressure_signals: self.backpressure_signals - rhs.backpressure_signals,
            frames_steered: self.frames_steered - rhs.frames_steered,
            cross_core_wakeups: self.cross_core_wakeups - rhs.cross_core_wakeups,
            queue_steals: self.queue_steals - rhs.queue_steals,
            batches_executed: self.batches_executed - rhs.batches_executed,
            drops_mimicry_shed: self.drops_mimicry_shed - rhs.drops_mimicry_shed,
            gate_resignature_events: self.gate_resignature_events - rhs.gate_resignature_events,
        }
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "context switches:    {}", self.context_switches)?;
        writeln!(f, "system calls:        {}", self.syscalls)?;
        writeln!(f, "domain crossings:    {}", self.domain_crossings)?;
        writeln!(
            f,
            "data copies:         {} ({} bytes)",
            self.copies, self.bytes_copied
        )?;
        writeln!(f, "packets sent:        {}", self.packets_sent)?;
        writeln!(f, "packets received:    {}", self.packets_received)?;
        writeln!(f, "packets delivered:   {}", self.packets_delivered)?;
        writeln!(
            f,
            "packets dropped:     {} queue-full, {} no-match, {} interface, {} admission",
            self.drops_queue_full, self.drops_no_match, self.drops_interface, self.drops_admission
        )?;
        writeln!(
            f,
            "filters applied:     {} ({} instructions)",
            self.filters_applied, self.filter_instructions
        )?;
        writeln!(f, "signals delivered:   {}", self.signals_delivered)?;
        writeln!(f, "timestamps taken:    {}", self.timestamps)?;
        writeln!(
            f,
            "filters quarantined: {} ({} budget overruns)",
            self.filters_quarantined, self.filter_budget_overruns
        )?;
        writeln!(
            f,
            "overload armor:      {} poll batches, {} mode switches, {} backpressure signals",
            self.poll_batches, self.rx_mode_switches, self.backpressure_signals
        )?;
        writeln!(
            f,
            "multi-core:          {} steered, {} cross-core wakeups, {} steals, {} batches",
            self.frames_steered, self.cross_core_wakeups, self.queue_steals, self.batches_executed
        )?;
        write!(
            f,
            "adversary armor:     {} mimics shed, {} gate re-signatures",
            self.drops_mimicry_shed, self.gate_resignature_events
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn difference() {
        let mut a = Counters::new();
        a.syscalls = 10;
        a.copies = 4;
        let mut b = a;
        b.syscalls = 25;
        b.copies = 9;
        let d = b - a;
        assert_eq!(d.syscalls, 15);
        assert_eq!(d.copies, 5);
        assert_eq!(d.context_switches, 0);
    }

    #[test]
    fn filters_per_packet() {
        let mut c = Counters::new();
        assert_eq!(c.filters_per_packet(), 0.0);
        c.packets_received = 10;
        c.filters_applied = 63;
        assert!((c.filters_per_packet() - 6.3).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_key_counters() {
        let c = Counters::new();
        let s = c.to_string();
        assert!(s.contains("context switches"));
        assert!(s.contains("domain crossings"));
    }
}
