//! Single-CPU serialization of virtual work.
//!
//! Every host in the simulation has one processor (the paper's VAXes did,
//! too, except the Pyramid port). Work items — interrupt service, filter
//! interpretation, copies, protocol processing — execute serially: a work
//! item requested at time *t* starts at `max(t, cpu_free)` and completes
//! `cost` later. This is what makes throughput experiments (tables 6-3
//! through 6-9) come out right: when packets arrive faster than the
//! per-packet CPU cost, the CPU saturates and the completion rate, not the
//! arrival rate, limits throughput.

use crate::profile::Profiler;
use crate::time::{SimDuration, SimTime};

/// A single simulated CPU with a profiler attached.
#[derive(Debug, Default)]
pub struct Cpu {
    free_at: SimTime,
    busy: SimDuration,
    profiler: Profiler,
}

impl Cpu {
    /// A CPU idle since time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `cost` of work for `routine`, requested at `now`.
    ///
    /// Returns the completion time: `max(now, free) + cost`. Schedule any
    /// dependent event at the returned time.
    pub fn charge(&mut self, routine: &'static str, now: SimTime, cost: SimDuration) -> SimTime {
        let start = now.max(self.free_at);
        self.free_at = start + cost;
        self.busy += cost;
        self.profiler.record(routine, cost);
        self.free_at
    }

    /// When the CPU next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total busy time accumulated.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Utilization over the interval `[0, now]` (clamped to 1.0).
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now.as_nanos() == 0 {
            0.0
        } else {
            (self.busy.as_nanos() as f64 / now.as_nanos() as f64).min(1.0)
        }
    }

    /// The attached profiler.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Mutable access to the profiler (e.g. to merge or reset).
    pub fn profiler_mut(&mut self) -> &mut Profiler {
        &mut self.profiler
    }
}

/// A fixed-size pool of simulated CPUs for multi-core hosts.
///
/// Each core serializes its own work independently; there is no implicit
/// coordination. Cross-core costs (wakeups, steals) are modeled by the
/// `pf_kernel::mc` layer charging the appropriate core explicitly.
#[derive(Debug)]
pub struct CpuPool {
    cores: Vec<Cpu>,
}

impl CpuPool {
    /// A pool of `n` idle cores. `n` must be at least 1.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "a host needs at least one CPU");
        CpuPool {
            cores: (0..n).map(|_| Cpu::new()).collect(),
        }
    }

    /// Number of cores in the pool.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// Whether the pool is empty (never true — `new` requires ≥1 core).
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// Shared access to core `i`.
    pub fn core(&self, i: usize) -> &Cpu {
        &self.cores[i]
    }

    /// Mutable access to core `i`.
    pub fn core_mut(&mut self, i: usize) -> &mut Cpu {
        &mut self.cores[i]
    }

    /// Charges `cost` for `routine` on core `i`, requested at `now`.
    pub fn charge(
        &mut self,
        i: usize,
        routine: &'static str,
        now: SimTime,
        cost: SimDuration,
    ) -> SimTime {
        self.cores[i].charge(routine, now, cost)
    }

    /// Total busy time summed across all cores.
    pub fn busy_total(&self) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for c in &self.cores {
            total += c.busy_time();
        }
        total
    }

    /// Per-core utilization over `[0, now]`.
    pub fn utilizations(&self, now: SimTime) -> Vec<f64> {
        self.cores.iter().map(|c| c.utilization(now)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_work() {
        let mut cpu = Cpu::new();
        let t1 = cpu.charge("a", SimTime(0), SimDuration::from_micros(100));
        assert_eq!(t1, SimTime(100_000));
        // Requested before the CPU is free: queues behind.
        let t2 = cpu.charge("b", SimTime(50_000), SimDuration::from_micros(100));
        assert_eq!(t2, SimTime(200_000));
        // Requested after the CPU is free: starts immediately.
        let t3 = cpu.charge("c", SimTime(500_000), SimDuration::from_micros(10));
        assert_eq!(t3, SimTime(510_000));
    }

    #[test]
    fn tracks_busy_and_utilization() {
        let mut cpu = Cpu::new();
        cpu.charge("a", SimTime(0), SimDuration::from_micros(300));
        cpu.charge("a", SimTime(0), SimDuration::from_micros(200));
        assert_eq!(cpu.busy_time(), SimDuration::from_micros(500));
        let u = cpu.utilization(SimTime(1_000_000));
        assert!((u - 0.5).abs() < 1e-9, "{u}");
        assert_eq!(cpu.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn profiles_by_routine() {
        let mut cpu = Cpu::new();
        cpu.charge("pf:filter", SimTime(0), SimDuration::from_micros(28));
        cpu.charge("pf:filter", SimTime(0), SimDuration::from_micros(28));
        assert_eq!(cpu.profiler().stats("pf:filter").calls, 2);
    }

    #[test]
    fn pool_cores_are_independent() {
        let mut pool = CpuPool::new(4);
        assert_eq!(pool.len(), 4);
        assert!(!pool.is_empty());
        // Work on core 0 does not delay core 1.
        let t0 = pool.charge(0, "a", SimTime(0), SimDuration::from_micros(500));
        let t1 = pool.charge(1, "a", SimTime(0), SimDuration::from_micros(100));
        assert_eq!(t0, SimTime(500_000));
        assert_eq!(t1, SimTime(100_000));
        assert_eq!(pool.busy_total(), SimDuration::from_micros(600));
        let u = pool.utilizations(SimTime(1_000_000));
        assert!((u[0] - 0.5).abs() < 1e-9);
        assert!((u[1] - 0.1).abs() < 1e-9);
        assert_eq!(u[2], 0.0);
        assert_eq!(pool.core(0).profiler().stats("a").calls, 1);
    }

    #[test]
    #[should_panic(expected = "at least one CPU")]
    fn pool_rejects_zero_cores() {
        let _ = CpuPool::new(0);
    }
}
