//! The unified run-loop abstraction every simulation driver implements.
//!
//! Before this trait existed the workspace had three bespoke entry
//! points — `World::run`, `World::run_until`, and `McPipeline::run`
//! (which took a pre-sorted arrival vector) — each with its own loop.
//! [`SimClock`] collapses them: a driver exposes *one* step of progress
//! plus the time of its next event, and the default `run`/`run_until`
//! methods drive any of them identically. Multi-core pipelines, routed
//! topologies, and protocol stacks now share one clock discipline, so
//! callers can pause any simulation at a deadline, interleave external
//! actions (fault injection, routing churn), and resume.

use crate::time::SimTime;

/// A simulation that advances one discrete event at a time.
///
/// Implementors supply [`now`](SimClock::now),
/// [`next_event_time`](SimClock::next_event_time), and
/// [`step`](SimClock::step); the `run`/`run_until` drivers come for
/// free and behave identically across every implementor.
pub trait SimClock {
    /// Current virtual time: the timestamp of the last processed event.
    fn now(&self) -> SimTime;

    /// Timestamp of the next event, or `None` when the simulation has
    /// quiesced. Takes `&mut self` because lazily-cancelled queue
    /// entries are reclaimed while peeking.
    fn next_event_time(&mut self) -> Option<SimTime>;

    /// Process exactly one event. Returns `false` when there was
    /// nothing left to do (the clock did not advance).
    fn step(&mut self) -> bool;

    /// Run until no events remain; returns the final virtual time.
    fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now()
    }

    /// Run while the next event is at or before `deadline`; returns the
    /// virtual time reached. Events after the deadline stay queued, so
    /// the simulation can be resumed (possibly after mutating it — this
    /// is how routing churn and fault windows are injected mid-run).
    fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(t) = self.next_event_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        self.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::EventQueue;

    /// Minimal driver: pops integers off a queue and sums them.
    struct Toy {
        events: EventQueue<u64>,
        sum: u64,
    }

    impl SimClock for Toy {
        fn now(&self) -> SimTime {
            self.events.now()
        }
        fn next_event_time(&mut self) -> Option<SimTime> {
            self.events.peek_time()
        }
        fn step(&mut self) -> bool {
            match self.events.pop() {
                Some((_, v)) => {
                    self.sum += v;
                    true
                }
                None => false,
            }
        }
    }

    #[test]
    fn run_drains_everything() {
        let mut toy = Toy {
            events: EventQueue::new(),
            sum: 0,
        };
        for i in 1..=4 {
            toy.events.schedule(SimTime(i * 100), i);
        }
        assert_eq!(toy.run(), SimTime(400));
        assert_eq!(toy.sum, 10);
        assert!(!toy.step(), "drained clock reports no progress");
    }

    #[test]
    fn run_until_stops_at_the_deadline_and_resumes() {
        let mut toy = Toy {
            events: EventQueue::new(),
            sum: 0,
        };
        for i in 1..=4 {
            toy.events.schedule(SimTime(i * 100), i);
        }
        assert_eq!(toy.run_until(SimTime(250)), SimTime(200));
        assert_eq!(toy.sum, 3, "only events at or before the deadline ran");
        // Mutate mid-run (what churn injection does), then resume.
        toy.events.schedule(SimTime(300), 10);
        assert_eq!(toy.run(), SimTime(400));
        assert_eq!(toy.sum, 20);
    }

    #[test]
    fn run_until_includes_events_exactly_at_the_deadline() {
        let mut toy = Toy {
            events: EventQueue::new(),
            sum: 0,
        };
        toy.events.schedule(SimTime(100), 1);
        toy.events.schedule(SimTime(200), 2);
        assert_eq!(toy.run_until(SimTime(200)), SimTime(200));
        assert_eq!(toy.sum, 3);
    }
}
