//! Deterministic discrete-event simulation substrate.
//!
//! The paper's evaluation ran on VAX-11/780 and MicroVAX-II machines; this
//! crate is the substitute substrate: virtual time ([`time`]), a
//! deterministic event queue with calendar and heap backends ([`queue`]),
//! the unified run-loop trait every simulation driver implements
//! ([`clock`]), a single-CPU work serializer with a gprof-style profiler
//! ([`cpu`], [`profile`]), the calibrated cost model ([`cost`]), event
//! counters for the paper's figure quantities ([`counters`]), and a
//! reproducible PRNG ([`rng`]).
//!
//! The simulated Unix-like host, its scheduler, and the packet-filter
//! device itself live in `pf-kernel`, layered on these pieces.

pub mod clock;
pub mod cost;
pub mod counters;
pub mod cpu;
pub mod profile;
pub mod queue;
pub mod rng;
pub mod time;

pub use clock::SimClock;
pub use cost::CostModel;
pub use counters::Counters;
pub use cpu::{Cpu, CpuPool};
pub use profile::Profiler;
pub use queue::{EventHandle, EventQueue, QueueBackend};
pub use rng::SplitMix64;
pub use time::{SimDuration, SimTime};
