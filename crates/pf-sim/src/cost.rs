//! The calibrated cost model.
//!
//! The paper measured VAX-11/780 and MicroVAX-II machines; we have neither,
//! so the simulation charges virtual CPU time from a [`CostModel`] whose
//! default constants are calibrated from the overhead costs the paper
//! itself reports:
//!
//! * §6.5.2: "a MicroVAX-II running Ultrix 1.2 requires about 0.4 mSec of
//!   CPU time to switch between processes, and about 0.5 mSec of CPU time
//!   to transfer a short packet between the kernel and a process …
//!   data copying requires about 1 mSec/Kbyte";
//! * table 6-10 / §6.1: filter interpretation costs roughly
//!   `0.122 mSec × predicates` — about 28 µs per instruction plus ~50 µs of
//!   per-filter setup for a typical 2–3-instruction-per-field predicate;
//! * §6.1: IP-layer input processing is ~0.49 mSec, rising to ~1.77 mSec
//!   through UDP/TCP; §7: `microtime` costs ~70 µs.
//!
//! Each knob is public so experiments can model the paper's other machines
//! (e.g. the V kernel's cheaper context switches) or ablate a cost.

use crate::time::SimDuration;

/// Virtual-CPU cost constants for a simulated host.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Process-to-process context switch (§6.5.2: 0.4 ms).
    pub context_switch: SimDuration,
    /// System-call entry/exit overhead, excluding data transfer.
    pub syscall: SimDuration,
    /// Fixed part of one kernel↔user data transfer (§6.5.2: a short-packet
    /// transfer totals ~0.5 ms; the fixed part is what is left after the
    /// per-byte cost of 128 bytes).
    pub copy_base: SimDuration,
    /// Per-byte part of a data copy (§6.5.2: ~1 ms/KByte).
    pub copy_per_byte_ns: u64,
    /// Network-interface receive interrupt + driver bookkeeping, fixed.
    pub driver_rx: SimDuration,
    /// Driver per-byte receive cost (buffer chaining).
    pub driver_rx_per_byte_ns: u64,
    /// Driver transmit cost, fixed (queueing a frame for transmission).
    pub driver_tx: SimDuration,
    /// Driver per-byte transmit cost.
    pub driver_tx_per_byte_ns: u64,
    /// Packet-filter bookkeeping per delivered packet: queueing, wakeup
    /// bookkeeping, and the 4.3BSD header-restore work §7 grumbles about.
    pub pf_bookkeeping: SimDuration,
    /// Packet-filter fixed transmit-path cost above the driver (the paper:
    /// cheaper than UDP since "it does not need to choose a route … or
    /// compute a checksum").
    pub pf_send_fixed: SimDuration,
    /// Per-filter-application setup cost (fetching the filter, stack init).
    pub filter_setup: SimDuration,
    /// Per-instruction filter interpretation cost.
    pub filter_instr: SimDuration,
    /// One decision-table hash probe (per filter *shape*) for the §7
    /// compiled-demultiplexer engine.
    pub dtree_probe: SimDuration,
    /// One native (template-JIT) filter application: straight-line machine
    /// code with no per-instruction dispatch, so the whole evaluation is
    /// charged as a flat cost comparable to a couple of interpreted
    /// instructions.
    pub jit_eval: SimDuration,
    /// `microtime()` for received-packet timestamps (§7: ~70 µs).
    pub microtime: SimDuration,
    /// Kernel IP input processing, IP layer only (§6.1: ~0.49 ms).
    pub ip_input: SimDuration,
    /// Additional input processing from IP up through UDP/TCP
    /// (§6.1: ~1.77 ms total).
    pub transport_input: SimDuration,
    /// Kernel UDP output processing above IP and the driver: socket
    /// layer, route choice, header construction (calibrated so that the
    /// whole UDP send path — syscall + copy + this + `ip_input`-sized IP
    /// output work + driver — reproduces table 6-1's 3.1 ms at 128 bytes).
    pub udp_send_fixed: SimDuration,
    /// Kernel ARP input processing.
    pub arp_input: SimDuration,
    /// Pipe transfer overhead beyond its two copies (wakeup, locking) —
    /// §6.3 blames "the poor IPC facilities in 4.3BSD".
    pub pipe_overhead: SimDuration,
    /// Scheduler work to make a blocked process runnable.
    pub wakeup: SimDuration,
    /// Fixed cost to schedule one polled drain pass when the receive path
    /// has switched from per-packet interrupts to polling (the softirq-like
    /// dispatch that replaces N interrupt entries with one).
    pub poll_batch: SimDuration,
    /// Per-packet driver cost under polling: buffer handoff without the
    /// interrupt entry/exit, so much cheaper than `driver_rx`.
    pub poll_per_packet: SimDuration,
    /// One admission-gate probe ahead of the filter ladder: a token-bucket
    /// check plus at most one packet-word load, charged per arriving frame
    /// while the gate is enabled.
    pub admission_probe: SimDuration,
    /// One RSS steering hash over a frame's configured header words (a few
    /// word loads plus integer mixing), charged per frame on multi-queue
    /// receive paths. Single-queue configurations charge nothing — the
    /// default steering is the identity.
    pub rss_hash: SimDuration,
    /// Cross-core wakeup (IPI send plus the cache-line bounce of the
    /// handoff) when a demultiplexing core delivers to a consumer homed on
    /// another core. Much cheaper than a full context switch: the target
    /// core does not change address spaces.
    pub mc_wakeup: SimDuration,
    /// One work-steal: an idle core locking a sibling's receive queue and
    /// migrating a run of frames.
    pub queue_steal: SimDuration,
    /// Fixed cost to launch one batched engine evaluation (fetching the
    /// compiled set, priming scratch). Replaces the per-packet
    /// `filter_setup` on batch paths: at batch size 1 it equals
    /// `filter_setup`, so batching is a pure amortization, never a
    /// discount.
    pub batch_dispatch: SimDuration,
    /// One geometric-classifier tuple probe: a hash on the tuple key plus
    /// a logarithmic descent of that tuple's interval structure. Charged
    /// per probed tuple per packet — dearer than a flat decision-table
    /// hash probe (`dtree_probe`) because of the descent, far cheaper
    /// than interpreting a member filter.
    pub geom_probe: SimDuration,
    /// One routed IP forward on a gateway node: header validation, TTL
    /// decrement, route lookup, and re-encapsulation — the switching half
    /// of `ip_input` without the socket-layer delivery work.
    pub ip_forward: SimDuration,
    /// Emitting one neighbor-liveness hello on a router interface:
    /// building and queueing a tiny control frame. Probing must be far
    /// cheaper than forwarding, or the cure costs more than the disease.
    pub hello_emit: SimDuration,
    /// Processing one received routing-control frame (hello bookkeeping
    /// or a link-state update: sequence check, adjacency-map update,
    /// re-flood decision).
    pub lsu_process: SimDuration,
    /// One triggered route recomputation over the residual topology —
    /// the expensive, rare event of the resilience plane (a full
    /// shortest-path pass, dearer than any single forward).
    pub route_recompute: SimDuration,
}

impl CostModel {
    /// The MicroVAX-II / Ultrix 1.2 calibration (the paper's main testbed).
    pub fn microvax_ii() -> Self {
        CostModel {
            context_switch: SimDuration::from_micros(400),
            syscall: SimDuration::from_micros(150),
            copy_base: SimDuration::from_micros(370),
            copy_per_byte_ns: 1_000, // 1 µs/byte ≈ 1 ms/KByte
            driver_rx: SimDuration::from_micros(300),
            driver_rx_per_byte_ns: 400,
            driver_tx: SimDuration::from_micros(200),
            driver_tx_per_byte_ns: 250,
            pf_bookkeeping: SimDuration::from_micros(600),
            pf_send_fixed: SimDuration::from_micros(1_050),
            filter_setup: SimDuration::from_micros(50),
            filter_instr: SimDuration::from_micros(28),
            dtree_probe: SimDuration::from_micros(25),
            jit_eval: SimDuration::from_micros(10),
            microtime: SimDuration::from_micros(70),
            ip_input: SimDuration::from_micros(490),
            transport_input: SimDuration::from_micros(1_280),
            udp_send_fixed: SimDuration::from_micros(1_750),
            arp_input: SimDuration::from_micros(200),
            pipe_overhead: SimDuration::from_micros(450),
            wakeup: SimDuration::from_micros(100),
            poll_batch: SimDuration::from_micros(150),
            poll_per_packet: SimDuration::from_micros(60),
            admission_probe: SimDuration::from_micros(8),
            rss_hash: SimDuration::from_micros(2),
            mc_wakeup: SimDuration::from_micros(150),
            queue_steal: SimDuration::from_micros(60),
            batch_dispatch: SimDuration::from_micros(50),
            geom_probe: SimDuration::from_micros(30),
            ip_forward: SimDuration::from_micros(250),
            hello_emit: SimDuration::from_micros(20),
            lsu_process: SimDuration::from_micros(80),
            route_recompute: SimDuration::from_micros(2_000),
        }
    }

    /// A V-kernel-like profile: the same datapath costs but much cheaper
    /// process switching and domain crossing, for the table 6-2/6-3
    /// "V kernel" rows and the §2 observation that cheap context switches
    /// shrink the packet filter's advantage.
    pub fn v_kernel() -> Self {
        CostModel {
            context_switch: SimDuration::from_micros(100),
            syscall: SimDuration::from_micros(50),
            wakeup: SimDuration::from_micros(40),
            ..Self::microvax_ii()
        }
    }

    /// One kernel↔user copy of `bytes` bytes.
    pub fn copy(&self, bytes: usize) -> SimDuration {
        self.copy_base + SimDuration::from_nanos(self.copy_per_byte_ns * bytes as u64)
    }

    /// Driver receive processing for a frame of `bytes` bytes.
    pub fn driver_rx_cost(&self, bytes: usize) -> SimDuration {
        self.driver_rx + SimDuration::from_nanos(self.driver_rx_per_byte_ns * bytes as u64)
    }

    /// Driver transmit processing for a frame of `bytes` bytes.
    pub fn driver_tx_cost(&self, bytes: usize) -> SimDuration {
        self.driver_tx + SimDuration::from_nanos(self.driver_tx_per_byte_ns * bytes as u64)
    }

    /// Interpreting one filter that executed `instructions` instructions.
    pub fn filter_cost(&self, instructions: u32) -> SimDuration {
        self.filter_setup + self.filter_instr.times(u64::from(instructions))
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::microvax_ii()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_packet_copy_is_about_half_a_millisecond() {
        // §6.5.2's headline number.
        let m = CostModel::microvax_ii();
        let c = m.copy(128).as_micros();
        assert!((450..=550).contains(&c), "copy(128B) = {c} µs");
    }

    #[test]
    fn copy_scales_at_about_1ms_per_kbyte() {
        let m = CostModel::microvax_ii();
        let delta = m.copy(1152).as_micros() - m.copy(128).as_micros();
        assert!((900..=1100).contains(&delta), "1 KB delta = {delta} µs");
    }

    #[test]
    fn filter_cost_matches_6_1_model() {
        // §6.1: ~0.122 ms per predicate tested, for a typical short filter.
        let m = CostModel::microvax_ii();
        let typical = m.filter_cost(3).as_micros(); // 2-3 instructions/field
        assert!(
            (100..=150).contains(&typical),
            "typical predicate = {typical} µs"
        );
    }

    #[test]
    fn table_6_10_shape() {
        // Going from a 0-instruction to a 21-instruction filter added
        // ~0.6 ms in table 6-10.
        let m = CostModel::microvax_ii();
        let delta = m.filter_cost(21).as_micros() - m.filter_cost(0).as_micros();
        assert!(
            (500..=700).contains(&delta),
            "21-instruction delta = {delta} µs"
        );
    }

    #[test]
    fn polled_receive_amortizes_interrupt_cost() {
        // The point of the interrupt→polling switchover: one polled batch
        // of N frames must cost less than N interrupt entries, and the
        // admission probe must be far cheaper than even one filter
        // instruction so shedding at the gate actually saves work.
        let m = CostModel::microvax_ii();
        let batch = m.poll_batch + m.poll_per_packet.times(16);
        assert!(batch < m.driver_rx.times(16), "polling must amortize");
        assert!(m.admission_probe < m.filter_instr);
    }

    #[test]
    fn batch_dispatch_amortizes_but_never_discounts() {
        // Batch paths charge `batch_dispatch` once per batch instead of
        // `filter_setup` once per packet. At batch size 1 the two must be
        // equal — batching is an amortization, not a pricing change — and
        // a 32-frame batch must save 31 setups' worth of work.
        let m = CostModel::microvax_ii();
        assert_eq!(m.batch_dispatch, m.filter_setup);
        let per_packet = m.filter_setup.times(32);
        assert!(m.batch_dispatch < per_packet);
        // Cross-core handoff is cheaper than a full context switch but
        // dearer than an in-core wakeup; stealing beats idling only if it
        // costs less than the work migrated.
        assert!(m.mc_wakeup < m.context_switch);
        assert!(m.mc_wakeup > m.rss_hash);
        assert!(m.queue_steal < m.driver_rx);
    }

    #[test]
    fn geom_probe_sits_between_dtree_and_interpretation() {
        // A tuple probe is a hash plus a log-depth descent: costlier than
        // the decision table's flat hash probe, but a probed tuple must be
        // far cheaper than interpreting even one short member filter —
        // that gap is the whole point of the geometric classifier.
        let m = CostModel::microvax_ii();
        assert!(m.geom_probe > m.dtree_probe);
        assert!(m.geom_probe < m.filter_cost(1));
        // Forwarding skips the socket-layer half of input processing.
        assert!(m.ip_forward < m.ip_input);
    }

    #[test]
    fn resilience_costs_keep_probing_cheap_and_recompute_rare_but_dear() {
        // A hello is a tiny fixed-format frame: much cheaper than a
        // forward, or steady-state probing would dominate the router.
        // Control-frame processing sits between a hello and a forward,
        // and a full route recomputation — the rare, triggered event —
        // must dwarf any single forward so convergence shows up as a
        // visible CPU spike rather than free magic.
        let m = CostModel::microvax_ii();
        assert!(m.hello_emit < m.lsu_process);
        assert!(m.lsu_process < m.ip_forward);
        assert!(m.route_recompute > m.ip_forward.times(4));
    }

    #[test]
    fn v_kernel_switches_cheaply() {
        let v = CostModel::v_kernel();
        let u = CostModel::microvax_ii();
        assert!(v.context_switch < u.context_switch);
        assert_eq!(v.copy(128), u.copy(128), "datapath costs unchanged");
    }
}
