//! Trace analysis: the "substantial analysis in real time" of §5.4.
//!
//! "Since one can easily write arbitrarily elaborate programs to analyze
//! the trace data … an integrated network monitor appears to be far more
//! useful than a dedicated one." This module is a small library of such
//! analyses: per-type traffic accounting, conversation matrices, size
//! histograms, and inter-arrival statistics.

use crate::capture::Captured;
use pf_net::frame;
use pf_net::medium::Medium;
use pf_sim::time::SimDuration;
use std::collections::HashMap;

/// Aggregate statistics over a captured trace.
#[derive(Debug, Clone, Default)]
pub struct TraceStats {
    /// Total packets analyzed.
    pub packets: u64,
    /// Total bytes on the wire.
    pub bytes: u64,
    /// Packets and bytes per Ethernet type.
    pub by_ethertype: HashMap<u16, (u64, u64)>,
    /// Packets per (source, destination) link-address pair.
    pub conversations: HashMap<(u64, u64), u64>,
    /// Packet-size histogram with 128-byte buckets.
    pub size_histogram: Vec<u64>,
    /// Smallest observed inter-arrival gap.
    pub min_gap: Option<SimDuration>,
    /// Mean inter-arrival gap.
    pub mean_gap: Option<SimDuration>,
    /// Frames that failed data-link parsing.
    pub malformed: u64,
}

impl TraceStats {
    /// Analyzes a trace captured on `medium`.
    pub fn analyze(medium: &Medium, trace: &[Captured]) -> Self {
        let mut s = TraceStats {
            size_histogram: vec![0; 13],
            ..Default::default()
        };
        let mut prev_stamp = None;
        let mut gap_total: u64 = 0;
        let mut gap_count: u64 = 0;
        for c in trace {
            s.packets += 1;
            s.bytes += c.bytes.len() as u64;
            let bucket = (c.bytes.len() / 128).min(s.size_histogram.len() - 1);
            s.size_histogram[bucket] += 1;
            match frame::parse(medium, &c.bytes) {
                Ok(h) => {
                    let e = s.by_ethertype.entry(h.ethertype).or_insert((0, 0));
                    e.0 += 1;
                    e.1 += c.bytes.len() as u64;
                    *s.conversations.entry((h.src, h.dst)).or_insert(0) += 1;
                }
                Err(_) => s.malformed += 1,
            }
            if let (Some(prev), Some(now)) = (prev_stamp, c.stamp) {
                let gap = now.saturating_since(prev);
                s.min_gap = Some(s.min_gap.map_or(gap, |m: SimDuration| m.min(gap)));
                gap_total += gap.as_nanos();
                gap_count += 1;
            }
            prev_stamp = c.stamp.or(prev_stamp);
        }
        if let Some(mean) = gap_total.checked_div(gap_count) {
            s.mean_gap = Some(SimDuration::from_nanos(mean));
        }
        s
    }

    /// The busiest conversations, descending, at most `n`.
    pub fn top_talkers(&self, n: usize) -> Vec<((u64, u64), u64)> {
        let mut v: Vec<_> = self.conversations.iter().map(|(k, c)| (*k, *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Packets of a given Ethernet type.
    pub fn packets_of_type(&self, ethertype: u16) -> u64 {
        self.by_ethertype.get(&ethertype).map_or(0, |e| e.0)
    }

    /// Mean packet size in bytes.
    pub fn mean_size(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.bytes as f64 / self.packets as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_sim::time::SimTime;

    fn cap(bytes: Vec<u8>, at: u64) -> Captured {
        Captured {
            stamp: Some(SimTime(at)),
            bytes,
            dropped_before: 0,
        }
    }

    fn pup_frame(src: u64, dst: u64, len: usize) -> Vec<u8> {
        let m = Medium::experimental_3mb();
        frame::build(&m, dst, src, 2, &vec![0u8; len]).unwrap()
    }

    #[test]
    fn counts_types_and_conversations() {
        let m = Medium::experimental_3mb();
        let trace = vec![
            cap(pup_frame(1, 2, 10), 1_000),
            cap(pup_frame(1, 2, 20), 3_000),
            cap(pup_frame(3, 2, 30), 6_000),
            cap(frame::build(&m, 2, 4, 0x900, &[0; 4]).unwrap(), 10_000),
        ];
        let s = TraceStats::analyze(&m, &trace);
        assert_eq!(s.packets, 4);
        assert_eq!(s.packets_of_type(2), 3);
        assert_eq!(s.packets_of_type(0x900), 1);
        assert_eq!(s.conversations[&(1, 2)], 2);
        assert_eq!(s.top_talkers(1), vec![((1, 2), 2)]);
        assert_eq!(s.malformed, 0);
    }

    #[test]
    fn gap_statistics() {
        let trace = vec![
            cap(pup_frame(1, 2, 10), 1_000),
            cap(pup_frame(1, 2, 10), 2_000),
            cap(pup_frame(1, 2, 10), 5_000),
        ];
        let s = TraceStats::analyze(&Medium::experimental_3mb(), &trace);
        assert_eq!(s.min_gap, Some(SimDuration::from_nanos(1_000)));
        assert_eq!(s.mean_gap, Some(SimDuration::from_nanos(2_000)));
    }

    #[test]
    fn size_histogram_buckets() {
        let trace = vec![
            cap(pup_frame(1, 2, 10), 0),  // 14 bytes → bucket 0
            cap(pup_frame(1, 2, 300), 0), // 304 bytes → bucket 2
        ];
        let s = TraceStats::analyze(&Medium::experimental_3mb(), &trace);
        assert_eq!(s.size_histogram[0], 1);
        assert_eq!(s.size_histogram[2], 1);
        assert!((s.mean_size() - (14.0 + 304.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn malformed_frames_counted() {
        let trace = vec![Captured {
            stamp: None,
            bytes: vec![1],
            dropped_before: 0,
        }];
        let s = TraceStats::analyze(&Medium::experimental_3mb(), &trace);
        assert_eq!(s.malformed, 1);
    }

    #[test]
    fn empty_trace() {
        let s = TraceStats::analyze(&Medium::experimental_3mb(), &[]);
        assert_eq!(s.packets, 0);
        assert_eq!(s.mean_size(), 0.0);
        assert!(s.min_gap.is_none());
        assert!(s.top_talkers(5).is_empty());
    }
}
