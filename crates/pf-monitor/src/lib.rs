//! Network monitoring over the packet filter (§5.4 of the paper).
//!
//! "For the developer or maintainer of network software, no tool is as
//! valuable as a network monitor." This crate is the integrated monitor
//! the paper argues for: a capture process over a promiscuous,
//! non-diverting, timestamping packet-filter port ([`capture`]),
//! protocol decoders producing trace lines ([`mod@decode`]), and trace
//! analyses ([`stats`]).

pub mod capture;
pub mod decode;
pub mod stats;

pub use capture::{CaptureApp, Captured};
pub use decode::{decode, Decoded};
pub use stats::TraceStats;
