//! Packet capture over the packet filter (§5.4).
//!
//! "One of us has been using the packet filter, on a MicroVAX-II
//! workstation, as the basis for a variety of experimental network
//! monitoring tools." The capture process puts its interface in
//! promiscuous mode, binds a high-priority filter with the
//! deliver-to-lower option set — so monitored processes still receive
//! their packets undisturbed (§3.2) — enables timestamping and batched
//! reads, and accumulates a bounded trace.

use pf_filter::program::FilterProgram;
use pf_filter::samples;
use pf_kernel::app::App;
use pf_kernel::types::{Fd, PortConfig, ReadError, ReadMode, RecvPacket};
use pf_kernel::world::ProcCtx;
use pf_sim::time::SimTime;

/// One captured packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Captured {
    /// Kernel arrival timestamp (§3.3's per-packet marking).
    pub stamp: Option<SimTime>,
    /// The complete frame.
    pub bytes: Vec<u8>,
    /// Packets the capture port had dropped before this one.
    pub dropped_before: u64,
}

/// The hardened capture predicate for monitoring one endpoint: the
/// endpoint's *own* filter, re-prioritized for the monitor port.
///
/// A monitor that approximates the endpoint with a *stricter* filter
/// (extra header constraints the endpoint never checks — the classic
/// figure-3-9 shape watching a lenient socket listener) can be evaded:
/// traffic shaped to satisfy the endpoint but violate the approximation
/// reaches the endpoint uncaptured. Capturing with the endpoint's own
/// predicate closes that gap by construction — the monitor accepts
/// exactly what the endpoint accepts. (It does *not* defend against the
/// converse: traffic the endpoint itself rejects was never the
/// monitor's to see.)
pub fn covering_filter(endpoint: &FilterProgram, priority: u8) -> FilterProgram {
    endpoint.clone().with_priority(priority)
}

/// A capture process.
///
/// By default it captures everything ("sufficient performance to record
/// all packets flowing on a moderately busy Ethernet"); pass a narrower
/// filter to watch one conversation ("more than sufficient performance to
/// capture all packets between a pair of communicating hosts").
pub struct CaptureApp {
    filter: FilterProgram,
    max_packets: usize,
    queue_len: usize,
    fd: Option<Fd>,
    /// The accumulated trace.
    pub trace: Vec<Captured>,
    /// Packets seen but not stored (trace full).
    pub overflowed: u64,
}

impl CaptureApp {
    /// Captures every packet on the segment, storing at most
    /// `max_packets`.
    pub fn promiscuous(max_packets: usize) -> Self {
        // High priority + deliver-to-lower: the monitor sees the packet
        // first but never diverts it.
        Self::with_filter(samples::accept_all(200), max_packets)
    }

    /// Captures packets matching `filter` (still non-diverting).
    pub fn with_filter(filter: FilterProgram, max_packets: usize) -> Self {
        CaptureApp {
            filter,
            max_packets,
            queue_len: 64,
            fd: None,
            trace: Vec::new(),
            overflowed: 0,
        }
    }

    /// Sets the kernel-side input-queue bound for the capture port.
    pub fn with_queue_len(mut self, frames: usize) -> Self {
        self.queue_len = frames;
        self
    }

    /// Number of packets captured.
    pub fn captured(&self) -> usize {
        self.trace.len()
    }
}

impl App for CaptureApp {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        k.set_promiscuous(true);
        let fd = k.pf_open();
        k.pf_set_filter(fd, self.filter.clone());
        k.pf_configure(
            fd,
            PortConfig {
                read_mode: ReadMode::Batch,
                deliver_to_lower: true,
                timestamp: true,
                max_queue: self.queue_len,
                ..Default::default()
            },
        );
        self.fd = Some(fd);
        k.pf_read(fd);
    }

    fn on_packets(&mut self, fd: Fd, packets: Vec<RecvPacket>, k: &mut ProcCtx<'_>) {
        for p in packets {
            if self.trace.len() >= self.max_packets {
                self.overflowed += 1;
                continue;
            }
            self.trace.push(Captured {
                stamp: p.stamp,
                bytes: p.bytes,
                dropped_before: p.dropped_before,
            });
        }
        k.pf_read(fd);
    }

    fn on_read_error(&mut self, fd: Fd, _err: ReadError, k: &mut ProcCtx<'_>) {
        k.pf_read(fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_kernel::world::World;
    use pf_net::medium::Medium;
    use pf_net::segment::FaultModel;
    use pf_proto::bsp::BspConfig;
    use pf_proto::bsp_app::{BspReceiverApp, BspSenderApp};
    use pf_proto::pup::PupAddr;
    use pf_sim::cost::CostModel;
    use pf_sim::SimClock;

    /// A BSP transfer between two hosts, with a monitor on a third.
    fn monitored_transfer() -> (
        World,
        pf_kernel::types::HostId,
        pf_kernel::types::ProcId,
        u64,
    ) {
        let mut w = World::new(21);
        let seg = w.add_segment(Medium::experimental_3mb(), FaultModel::default());
        let a = w.add_host("sender", seg, 0x0A, CostModel::microvax_ii());
        let b = w.add_host("receiver", seg, 0x0B, CostModel::microvax_ii());
        let m = w.add_host("monitor", seg, 0x0C, CostModel::microvax_ii());
        let src = PupAddr::new(1, 0x0A, 0x300);
        let dst = PupAddr::new(1, 0x0B, 0x400);
        let cfg = BspConfig::default();
        let rx = w.spawn(b, Box::new(BspReceiverApp::new(dst, cfg.clone())));
        w.spawn(
            a,
            Box::new(BspSenderApp::new(src, dst, vec![5u8; 10_000], cfg)),
        );
        let cap = w.spawn(m, Box::new(CaptureApp::promiscuous(10_000)));
        w.run();
        let bytes = w.app_ref::<BspReceiverApp>(b, rx).unwrap().bytes;
        (w, m, cap, bytes)
    }

    #[test]
    fn monitor_captures_whole_conversation_without_disturbing_it() {
        let (w, m, cap, bytes) = monitored_transfer();
        assert_eq!(bytes, 10_000, "transfer unaffected by the monitor");
        let app = w.app_ref::<CaptureApp>(m, cap).unwrap();
        // RFC, OPEN, ~19 data packets, acks, END, END_REPLY.
        assert!(app.captured() > 20, "captured {}", app.captured());
        assert!(app.trace.iter().all(|c| c.stamp.is_some()), "all stamped");
        // Timestamps are monotonically non-decreasing.
        let stamps: Vec<_> = app.trace.iter().map(|c| c.stamp.unwrap()).collect();
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn trace_cap_is_respected() {
        let mut w = World::new(22);
        let seg = w.add_segment(Medium::experimental_3mb(), FaultModel::default());
        let a = w.add_host("sender", seg, 0x0A, CostModel::microvax_ii());
        let m = w.add_host("monitor", seg, 0x0C, CostModel::microvax_ii());
        let cap = w.spawn(m, Box::new(CaptureApp::promiscuous(5)));
        struct Blast;
        impl App for Blast {
            fn start(&mut self, k: &mut ProcCtx<'_>) {
                let fd = k.pf_open();
                for i in 0..10u8 {
                    let p = pf_filter::samples::pup_packet_3mb(2, 0, u16::from(i), 1);
                    let _ = k.pf_write(fd, &p);
                }
            }
        }
        w.spawn(a, Box::new(Blast));
        w.run();
        let app = w.app_ref::<CaptureApp>(m, cap).unwrap();
        assert_eq!(app.captured(), 5);
        assert_eq!(app.overflowed, 5);
    }

    #[test]
    fn filtered_capture_sees_only_matching_packets() {
        let mut w = World::new(23);
        let seg = w.add_segment(Medium::experimental_3mb(), FaultModel::default());
        let a = w.add_host("sender", seg, 0x0A, CostModel::microvax_ii());
        let m = w.add_host("monitor", seg, 0x0C, CostModel::microvax_ii());
        // Only Pups to socket 35.
        let filt = pf_filter::samples::pup_socket_filter(200, 0, 35);
        let cap = w.spawn(m, Box::new(CaptureApp::with_filter(filt, 100)));
        struct Mixed;
        impl App for Mixed {
            fn start(&mut self, k: &mut ProcCtx<'_>) {
                let fd = k.pf_open();
                for sock in [35u16, 36, 35, 37, 35] {
                    let p = pf_filter::samples::pup_packet_3mb(2, 0, sock, 1);
                    let _ = k.pf_write(fd, &p);
                }
            }
        }
        w.spawn(a, Box::new(Mixed));
        w.run();
        assert_eq!(w.app_ref::<CaptureApp>(m, cap).unwrap().captured(), 3);
    }

    #[test]
    fn covering_filter_closes_the_capture_evasion_gap() {
        use pf_filter::program::Assembler;
        use pf_filter::word::BinaryOp;

        // The endpoint is lenient: it checks only the destination-socket
        // word. The classic monitoring mistake is approximating it with
        // the stricter figure-3-9 filter, whose extra ethertype and
        // socket-hi constraints the endpoint never enforces.
        let endpoint_filter = Assembler::new(10)
            .pushword(8)
            .pushlit_op(BinaryOp::Eq, 35)
            .finish();

        struct CountApp {
            filter: FilterProgram,
            got: usize,
        }
        impl App for CountApp {
            fn start(&mut self, k: &mut ProcCtx<'_>) {
                let fd = k.pf_open();
                k.pf_set_filter(fd, self.filter.clone());
                k.pf_configure(
                    fd,
                    PortConfig {
                        read_mode: ReadMode::Batch,
                        max_queue: 64,
                        ..Default::default()
                    },
                );
                k.pf_read(fd);
            }
            fn on_packets(&mut self, fd: Fd, packets: Vec<RecvPacket>, k: &mut ProcCtx<'_>) {
                self.got += packets.len();
                k.pf_read(fd);
            }
            fn on_read_error(&mut self, fd: Fd, _err: ReadError, k: &mut ProcCtx<'_>) {
                k.pf_read(fd);
            }
        }

        /// Shaped traffic: every variant satisfies the lenient endpoint;
        /// only the first and last satisfy the strict approximation.
        struct Shaper;
        impl App for Shaper {
            fn start(&mut self, k: &mut ProcCtx<'_>) {
                let fd = k.pf_open();
                let mut variants = vec![
                    pf_filter::samples::pup_packet_3mb(2, 0, 35, 1), // standard
                    pf_filter::samples::pup_packet_3mb(9, 0, 35, 1), // ethertype-shaped
                    pf_filter::samples::pup_packet_3mb(2, 7, 35, 1), // socket-hi-shaped
                    pf_filter::samples::pup_packet_3mb_with_data(2, 1, 0, 35, 1, &[0u8; 40]), // padded
                ];
                for v in &mut variants {
                    v[0] = 0x0B; // address the endpoint host
                    let _ = k.pf_write(fd, v);
                }
            }
        }

        let mut w = World::new(24);
        let seg = w.add_segment(Medium::experimental_3mb(), FaultModel::default());
        let a = w.add_host("shaper", seg, 0x0A, CostModel::microvax_ii());
        let b = w.add_host("endpoint", seg, 0x0B, CostModel::microvax_ii());
        let m = w.add_host("monitor", seg, 0x0C, CostModel::microvax_ii());
        let ep = w.spawn(
            b,
            Box::new(CountApp {
                filter: endpoint_filter.clone(),
                got: 0,
            }),
        );
        let strict = w.spawn(
            m,
            Box::new(CaptureApp::with_filter(
                pf_filter::samples::pup_socket_filter(200, 0, 35),
                100,
            )),
        );
        let covering = w.spawn(
            m,
            Box::new(CaptureApp::with_filter(
                covering_filter(&endpoint_filter, 190),
                100,
            )),
        );
        w.spawn(a, Box::new(Shaper));
        w.run();
        assert_eq!(
            w.app_ref::<CountApp>(b, ep).unwrap().got,
            4,
            "the endpoint accepts every shaped variant"
        );
        assert_eq!(
            w.app_ref::<CaptureApp>(m, strict).unwrap().captured(),
            2,
            "the strict approximation is evaded (coverage 0.5)"
        );
        assert_eq!(
            w.app_ref::<CaptureApp>(m, covering).unwrap().captured(),
            4,
            "the covering filter sees exactly what the endpoint sees"
        );
    }
}
