//! Protocol decoders: one-line summaries of captured frames.
//!
//! "A user can write new monitoring programs to display data in novel
//! ways, or to monitor new or unusual protocols" (§5.4) — this is the
//! display half: given a frame, produce a human-readable trace line, in
//! the spirit of Sun's `etherfind` (and everything descended from it).

use core::fmt;
use pf_net::frame;
use pf_net::medium::Medium;
use pf_proto::arp::{oper, ArpPacket, ARP_ETHERTYPE, RARP_ETHERTYPE};
use pf_proto::ip::{decode_ip, decode_udp, IP_ETHERTYPE, PROTO_TCP, PROTO_UDP};
use pf_proto::pup::{Pup, PUP_ETHERTYPE};
use pf_proto::tcp::Segment;
use pf_proto::vmtp::{VmtpPacket, VmtpType, VMTP_ETHERTYPE};

/// A decoded frame summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decoded {
    /// A Pup datagram (possibly BSP).
    Pup {
        /// Source `net.host.socket`.
        src: String,
        /// Destination `net.host.socket`.
        dst: String,
        /// Pup type code.
        ptype: u8,
        /// Payload bytes.
        len: usize,
    },
    /// A VMTP packet.
    Vmtp {
        /// Source entity.
        src: u32,
        /// Destination entity.
        dst: u32,
        /// Packet kind.
        kind: VmtpType,
        /// Transaction id.
        trans: u32,
        /// Payload bytes.
        len: usize,
    },
    /// A UDP datagram inside IP.
    Udp {
        /// `ip.port` source.
        src: String,
        /// `ip.port` destination.
        dst: String,
        /// Payload bytes.
        len: usize,
    },
    /// A TCP segment inside IP.
    Tcp {
        /// `ip.port` source.
        src: String,
        /// `ip.port` destination.
        dst: String,
        /// Sequence number.
        seq: u32,
        /// Acknowledgment number.
        ack: u32,
        /// Flag summary like `S`, `A`, `FA`.
        flags: String,
        /// Payload bytes.
        len: usize,
    },
    /// An ARP or RARP packet.
    Arp {
        /// Operation code.
        oper: u16,
        /// Human name ("arp-request", "rarp-reply", …).
        what: &'static str,
    },
    /// Recognized nothing beyond the Ethernet header.
    Other {
        /// The Ethernet type.
        ethertype: u16,
        /// Frame length.
        len: usize,
    },
    /// Not even a valid frame for the medium.
    Malformed,
}

impl fmt::Display for Decoded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decoded::Pup {
                src,
                dst,
                ptype,
                len,
            } => {
                write!(f, "pup {src} > {dst}: type {ptype} len {len}")
            }
            Decoded::Vmtp {
                src,
                dst,
                kind,
                trans,
                len,
            } => {
                write!(
                    f,
                    "vmtp {src:#x} > {dst:#x}: {kind:?} trans {trans} len {len}"
                )
            }
            Decoded::Udp { src, dst, len } => write!(f, "udp {src} > {dst}: len {len}"),
            Decoded::Tcp {
                src,
                dst,
                seq,
                ack,
                flags,
                len,
            } => {
                write!(
                    f,
                    "tcp {src} > {dst}: {flags} seq {seq} ack {ack} len {len}"
                )
            }
            Decoded::Arp { what, .. } => write!(f, "{what}"),
            Decoded::Other { ethertype, len } => {
                write!(f, "ether type {ethertype:#06x} len {len}")
            }
            Decoded::Malformed => write!(f, "malformed frame"),
        }
    }
}

/// Decodes one frame captured on `medium`.
pub fn decode(medium: &Medium, bytes: &[u8]) -> Decoded {
    let Ok(h) = frame::parse(medium, bytes) else {
        return Decoded::Malformed;
    };
    match h.ethertype {
        PUP_ETHERTYPE => match Pup::decode_frame(medium, bytes) {
            Ok(p) => Decoded::Pup {
                src: format!("{}.{}.{}", p.src.net, p.src.host, p.src.socket),
                dst: format!("{}.{}.{}", p.dst.net, p.dst.host, p.dst.socket),
                ptype: p.ptype,
                len: p.data.len(),
            },
            Err(_) => Decoded::Other {
                ethertype: h.ethertype,
                len: bytes.len(),
            },
        },
        VMTP_ETHERTYPE => match VmtpPacket::decode_frame(medium, bytes) {
            Some((p, _)) => Decoded::Vmtp {
                src: p.src_entity,
                dst: p.dst_entity,
                kind: p.ptype,
                trans: p.trans,
                len: p.data.len(),
            },
            None => Decoded::Other {
                ethertype: h.ethertype,
                len: bytes.len(),
            },
        },
        IP_ETHERTYPE => {
            let Ok(body) = frame::payload(medium, bytes) else {
                return Decoded::Malformed;
            };
            let Some((ih, l4)) = decode_ip(body) else {
                return Decoded::Other {
                    ethertype: h.ethertype,
                    len: bytes.len(),
                };
            };
            match ih.proto {
                PROTO_UDP => match decode_udp(l4) {
                    Some((sp, dp, data)) => Decoded::Udp {
                        src: format!("{}.{}", ih.src, sp),
                        dst: format!("{}.{}", ih.dst, dp),
                        len: data.len(),
                    },
                    None => Decoded::Other {
                        ethertype: h.ethertype,
                        len: bytes.len(),
                    },
                },
                PROTO_TCP => match Segment::decode(l4) {
                    Some(s) => {
                        let mut flags = String::new();
                        if s.flags & pf_proto::tcp::flags::SYN != 0 {
                            flags.push('S');
                        }
                        if s.flags & pf_proto::tcp::flags::FIN != 0 {
                            flags.push('F');
                        }
                        if s.flags & pf_proto::tcp::flags::ACK != 0 {
                            flags.push('A');
                        }
                        Decoded::Tcp {
                            src: format!("{}.{}", ih.src, s.src_port),
                            dst: format!("{}.{}", ih.dst, s.dst_port),
                            seq: s.seq,
                            ack: s.ack,
                            flags,
                            len: s.data.len(),
                        }
                    }
                    None => Decoded::Other {
                        ethertype: h.ethertype,
                        len: bytes.len(),
                    },
                },
                _ => Decoded::Other {
                    ethertype: h.ethertype,
                    len: bytes.len(),
                },
            }
        }
        ARP_ETHERTYPE | RARP_ETHERTYPE => {
            let Ok(body) = frame::payload(medium, bytes) else {
                return Decoded::Malformed;
            };
            match ArpPacket::decode_body(body) {
                Some(p) => Decoded::Arp {
                    oper: p.oper,
                    what: match p.oper {
                        oper::ARP_REQUEST => "arp-request",
                        oper::ARP_REPLY => "arp-reply",
                        oper::RARP_REQUEST => "rarp-request",
                        oper::RARP_REPLY => "rarp-reply",
                        _ => "arp-unknown",
                    },
                },
                None => Decoded::Other {
                    ethertype: h.ethertype,
                    len: bytes.len(),
                },
            }
        }
        other => Decoded::Other {
            ethertype: other,
            len: bytes.len(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_proto::pup::PupAddr;

    #[test]
    fn decodes_pup() {
        let m = Medium::experimental_3mb();
        let p = Pup::new(
            16,
            1,
            PupAddr::new(1, 0x0B, 35),
            PupAddr::new(1, 0x0A, 9),
            vec![1, 2],
        );
        let d = decode(&m, &p.encode_frame(&m, false));
        assert_eq!(
            d,
            Decoded::Pup {
                src: "1.10.9".into(),
                dst: "1.11.35".into(),
                ptype: 16,
                len: 2
            }
        );
        assert!(d.to_string().contains("pup 1.10.9 > 1.11.35"));
    }

    #[test]
    fn decodes_vmtp() {
        let m = Medium::standard_10mb();
        let p = VmtpPacket {
            dst_entity: 0x20,
            src_entity: 0x10,
            trans: 7,
            ptype: VmtpType::Request,
            index: 0,
            count: 1,
            opcode: 0,
            data: vec![],
        };
        let d = decode(&m, &p.encode_frame(&m, 0x0B, 0x0A));
        assert!(matches!(d, Decoded::Vmtp { trans: 7, .. }));
    }

    #[test]
    fn decodes_udp_and_tcp() {
        use pf_proto::ip::{encode_ip, encode_udp, IpHeader};
        let m = Medium::standard_10mb();
        let udp = encode_ip(
            &IpHeader {
                proto: PROTO_UDP,
                ttl: 9,
                src: 1,
                dst: 2,
                total_len: 0,
            },
            &encode_udp(100, 200, b"xyz"),
        );
        let f = frame::build(&m, 0x0B, 0x0A, IP_ETHERTYPE, &udp).unwrap();
        assert_eq!(
            decode(&m, &f),
            Decoded::Udp {
                src: "1.100".into(),
                dst: "2.200".into(),
                len: 3
            }
        );

        let seg = Segment {
            src_port: 5,
            dst_port: 6,
            seq: 1,
            ack: 2,
            flags: pf_proto::tcp::flags::SYN | pf_proto::tcp::flags::ACK,
            window: 100,
            data: vec![],
        };
        let tcp = encode_ip(
            &IpHeader {
                proto: PROTO_TCP,
                ttl: 9,
                src: 1,
                dst: 2,
                total_len: 0,
            },
            &seg.encode(),
        );
        let f = frame::build(&m, 0x0B, 0x0A, IP_ETHERTYPE, &tcp).unwrap();
        let d = decode(&m, &f);
        assert!(
            matches!(&d, Decoded::Tcp { flags, .. } if flags == "SA"),
            "{d}"
        );
    }

    #[test]
    fn decodes_arp_family() {
        let m = Medium::standard_10mb();
        let p = ArpPacket {
            oper: oper::RARP_REQUEST,
            sha: 1,
            spa: 0,
            tha: 1,
            tpa: 0,
        };
        let f = p.encode_frame(&m, RARP_ETHERTYPE, m.broadcast, 1);
        assert_eq!(
            decode(&m, &f),
            Decoded::Arp {
                oper: oper::RARP_REQUEST,
                what: "rarp-request"
            }
        );
    }

    #[test]
    fn unknown_and_malformed() {
        let m = Medium::experimental_3mb();
        let f = frame::build(&m, 1, 2, 0x7777, &[1, 2, 3]).unwrap();
        assert_eq!(
            decode(&m, &f),
            Decoded::Other {
                ethertype: 0x7777,
                len: 7
            }
        );
        assert_eq!(decode(&m, &[1]), Decoded::Malformed);
    }
}
