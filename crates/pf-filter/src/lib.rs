//! The packet-filter language and its execution engines.
//!
//! This crate implements the core contribution of Mogul, Rashid & Accetta,
//! *The Packet Filter: An Efficient Mechanism for User-level Network Code*
//! (SOSP 1987): a small stack-based predicate language over received
//! packets, in which user processes describe which packets they want, and
//! the interpreter a kernel uses to evaluate those predicates.
//!
//! The crate provides the complete ladder of execution engines the paper
//! describes or proposes:
//!
//! 1. [`interp::CheckedInterpreter`] — the paper's production interpreter,
//!    with per-instruction validity, stack, and packet-bounds checks (§4);
//! 2. [`validate::ValidatedProgram`] — all static checks hoisted to filter
//!    bind time, leaving only a packet-length check at evaluation (§7);
//! 3. [`compile::CompiledFilter`] — filters compiled to a flat micro-op
//!    array with literals folded in (§7, "compiling filters into machine
//!    code", within safe Rust);
//! 4. [`dtree::FilterSet`] — a whole *set* of active filters compiled into
//!    a shared discrimination tree (§7, "compile the set of active filters
//!    into a decision table");
//! 5. `pf_ir::IrFilter` / `pf_ir::IrFilterSet` (sibling crate) — programs
//!    translated to a register-based control-flow-graph IR, optimized, and
//!    lowered to threaded code, with leading guard tests shared and
//!    memoized across a filter set.
//!
//! Filters are built three ways: raw words
//! ([`program::FilterProgram::from_words`]), the fluent
//! [`program::Assembler`], or the predicate-expression
//! [`builder`] DSL, which plays the role of the paper's run-time
//! "library procedure" and performs the short-circuit optimization of
//! figure 3-9 automatically.
//!
//! # Example
//!
//! ```
//! use pf_filter::builder::Expr;
//! use pf_filter::interp::CheckedInterpreter;
//! use pf_filter::packet::PacketView;
//! use pf_filter::samples;
//!
//! // "Pup packets addressed to socket 35", as a predicate expression.
//! let filter = Expr::word(1).eq(2)
//!     .and(Expr::word(7).eq(0))
//!     .and(Expr::word(8).eq(35))
//!     .compile(10)
//!     .unwrap();
//!
//! let pkt = samples::pup_packet_3mb(2, 0, 35, 1);
//! assert!(CheckedInterpreter::default().eval(&filter, PacketView::new(&pkt)));
//! ```

pub mod asm;
pub mod builder;
pub mod compat;
pub mod compile;
pub mod dtree;
pub mod error;
pub mod interp;
pub mod packet;
pub mod program;
pub mod samples;
pub mod validate;
pub mod word;

pub use error::{RuntimeError, ValidateError};
pub use interp::{CheckedInterpreter, Dialect, EvalStats, InterpConfig, ShortCircuitStyle};
pub use packet::PacketView;
pub use program::{Assembler, FilterProgram};
pub use word::{BinaryOp, Instr, StackAction};
