//! Filter programs: the wire format, an assembler, and a disassembler.
//!
//! A filter is "a data structure including an array of 16-bit words" plus a
//! priority (§3.1, §3.2). This module holds that raw representation
//! ([`FilterProgram`]), a fluent [`Assembler`] used the way the paper's
//! run-time "library procedure" was, and a disassembler for debugging and
//! display.

use crate::error::ValidateError;
use crate::word::{BinaryOp, Instr, StackAction};
use core::fmt;

/// Maximum program length in 16-bit words (instructions plus literals).
///
/// The historical implementation bounded filter length similarly; the exact
/// limit is an implementation constant, not part of the paper's interface.
pub const MAX_PROGRAM_WORDS: usize = 256;

/// Default filter priority, matching the paper's examples (`10, …`).
pub const DEFAULT_PRIORITY: u8 = 10;

/// A filter program: a priority and an array of 16-bit instruction words.
///
/// This is the exact artifact a user process binds to a packet-filter port
/// (the paper's `struct enfilter`). It is *unvalidated*; see
/// [`crate::validate::ValidatedProgram`] for the bind-time-checked form and
/// [`crate::interp::CheckedInterpreter`] for direct checked evaluation.
///
/// # Examples
///
/// Figure 3-8's filter, which accepts Pup packets with types 1..=100:
///
/// ```
/// use pf_filter::program::FilterProgram;
/// use pf_filter::samples;
///
/// let f: FilterProgram = samples::fig_3_8_pup_type_range();
/// assert_eq!(f.priority(), 10);
/// assert_eq!(f.len_words(), 12); // the paper's "length" field
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FilterProgram {
    priority: u8,
    words: Vec<u16>,
}

impl FilterProgram {
    /// Creates a program from raw words.
    ///
    /// No validation is performed; undecodable words simply cause the packet
    /// to be rejected at evaluation time (or are reported by the validator).
    pub fn from_words(priority: u8, words: Vec<u16>) -> Self {
        FilterProgram { priority, words }
    }

    /// An empty program. Evaluates to *reject* (empty stack at exit).
    pub fn empty(priority: u8) -> Self {
        FilterProgram {
            priority,
            words: Vec::new(),
        }
    }

    /// The filter's priority (larger = applied earlier; §3.2).
    pub fn priority(&self) -> u8 {
        self.priority
    }

    /// Replaces the priority, returning the modified program.
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// The raw instruction words.
    pub fn words(&self) -> &[u16] {
        &self.words
    }

    /// Program length in 16-bit words (the paper's "length" field counts
    /// instructions *and* literals).
    pub fn len_words(&self) -> usize {
        self.words.len()
    }

    /// Whether the program has no words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Number of *instructions* (excluding literal words). Undecodable words
    /// are counted as instructions, since that is how evaluation meets them.
    pub fn len_instructions(&self) -> usize {
        self.disassemble()
            .iter()
            .filter(|i| !matches!(i, DisasmItem::Literal(_)))
            .count()
    }

    /// Disassembles the program for display or analysis.
    ///
    /// Literal words following `PUSHLIT` instructions are reported as
    /// [`DisasmItem::Literal`]; words that do not decode are reported as
    /// [`DisasmItem::Undecodable`].
    pub fn disassemble(&self) -> Vec<DisasmItem> {
        let mut out = Vec::with_capacity(self.words.len());
        let mut i = 0usize;
        while i < self.words.len() {
            let w = self.words[i];
            match Instr::decode(w) {
                Some(instr) => {
                    out.push(DisasmItem::Instr(instr));
                    i += 1;
                    if instr.takes_literal() {
                        if let Some(&lit) = self.words.get(i) {
                            out.push(DisasmItem::Literal(lit));
                            i += 1;
                        }
                        // A trailing PUSHLIT with no literal is left for the
                        // validator/interpreter to report.
                    }
                }
                None => {
                    out.push(DisasmItem::Undecodable(w));
                    i += 1;
                }
            }
        }
        out
    }

    /// The largest packet-word index referenced by any `PUSHWORD`
    /// instruction, or `None` if the program never reads the packet.
    ///
    /// Indirect pushes are *not* included (their index is dynamic); see
    /// [`crate::validate::ValidatedProgram::uses_indirect`].
    pub fn max_word_index(&self) -> Option<usize> {
        self.disassemble()
            .iter()
            .filter_map(|item| match item {
                DisasmItem::Instr(Instr {
                    action: StackAction::PushWord(n),
                    ..
                }) => Some(usize::from(*n)),
                _ => None,
            })
            .max()
    }
}

impl fmt::Display for FilterProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "filter(priority={}, length={}):",
            self.priority,
            self.words.len()
        )?;
        let mut pending_lit_for: Option<Instr> = None;
        for (idx, item) in self.disassemble().into_iter().enumerate() {
            match item {
                DisasmItem::Instr(i) => {
                    if i.takes_literal() {
                        pending_lit_for = Some(i);
                    } else {
                        writeln!(f, "  [{idx:3}] {i}")?;
                    }
                }
                DisasmItem::Literal(v) => {
                    let i = pending_lit_for.take().expect("literal follows PUSHLIT");
                    writeln!(f, "  [{:3}] {i}, {v}", idx - 1)?;
                }
                DisasmItem::Undecodable(w) => {
                    writeln!(f, "  [{idx:3}] ??? {w:#06x}")?;
                }
            }
        }
        if let Some(i) = pending_lit_for {
            writeln!(f, "  [end] {i}, <missing literal>")?;
        }
        Ok(())
    }
}

/// One element of a disassembly listing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisasmItem {
    /// A decoded instruction.
    Instr(Instr),
    /// The literal word following a `PUSHLIT`.
    Literal(u16),
    /// A word with a reserved encoding.
    Undecodable(u16),
}

/// A fluent assembler for filter programs.
///
/// This plays the role of the paper's run-time "library procedure" at the
/// instruction level; for predicate-level construction see
/// [`crate::builder`].
///
/// # Examples
///
/// Figure 3-9's short-circuit filter:
///
/// ```
/// use pf_filter::program::Assembler;
/// use pf_filter::word::BinaryOp;
///
/// let f = Assembler::new(10)
///     .pushword(8).pushlit_op(BinaryOp::Cand, 35) // low word of socket == 35
///     .pushword(7).pushzero_op(BinaryOp::Cand)    // high word of socket == 0
///     .pushword(1).pushlit_op(BinaryOp::Eq, 2)    // packet type == Pup
///     .finish();
/// assert_eq!(f.len_words(), 8); // the paper's "length 8"
/// ```
#[derive(Debug, Clone)]
pub struct Assembler {
    priority: u8,
    words: Vec<u16>,
}

impl Assembler {
    /// Starts a program with the given priority.
    pub fn new(priority: u8) -> Self {
        Assembler {
            priority,
            words: Vec::new(),
        }
    }

    /// Appends a raw word.
    pub fn raw(mut self, word: u16) -> Self {
        self.words.push(word);
        self
    }

    /// Appends an instruction (and no literal).
    pub fn instr(mut self, instr: Instr) -> Self {
        self.words.push(instr.encode());
        self
    }

    /// `PUSHWORD+n` with no operator.
    pub fn pushword(self, n: u8) -> Self {
        self.instr(Instr::push(StackAction::PushWord(n)))
    }

    /// `PUSHWORD+n | op`.
    pub fn pushword_op(self, n: u8, op: BinaryOp) -> Self {
        self.instr(Instr::new(StackAction::PushWord(n), op))
    }

    /// `PUSHLIT, lit` with no operator.
    pub fn pushlit(mut self, lit: u16) -> Self {
        self.words.push(Instr::push(StackAction::PushLit).encode());
        self.words.push(lit);
        self
    }

    /// `PUSHLIT | op, lit` — push the literal, then apply `op`.
    pub fn pushlit_op(mut self, op: BinaryOp, lit: u16) -> Self {
        self.words
            .push(Instr::new(StackAction::PushLit, op).encode());
        self.words.push(lit);
        self
    }

    /// `PUSHZERO | op`.
    pub fn pushzero_op(self, op: BinaryOp) -> Self {
        self.instr(Instr::new(StackAction::PushZero, op))
    }

    /// `PUSHZERO`.
    pub fn pushzero(self) -> Self {
        self.instr(Instr::push(StackAction::PushZero))
    }

    /// `PUSHONE`.
    pub fn pushone(self) -> Self {
        self.instr(Instr::push(StackAction::PushOne))
    }

    /// A bare stack action.
    pub fn push(self, action: StackAction) -> Self {
        self.instr(Instr::push(action))
    }

    /// A bare stack action combined with an operator.
    pub fn push_op(self, action: StackAction, op: BinaryOp) -> Self {
        self.instr(Instr::new(action, op))
    }

    /// A bare operator (`NOPUSH`).
    pub fn op(self, op: BinaryOp) -> Self {
        self.instr(Instr::op(op))
    }

    /// Current length in words.
    pub fn len_words(&self) -> usize {
        self.words.len()
    }

    /// Finishes assembly.
    pub fn finish(self) -> FilterProgram {
        FilterProgram::from_words(self.priority, self.words)
    }

    /// Finishes assembly, checking the program-length limit.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError::TooLong`] if the program exceeds
    /// [`MAX_PROGRAM_WORDS`].
    pub fn try_finish(self) -> Result<FilterProgram, ValidateError> {
        if self.words.len() > MAX_PROGRAM_WORDS {
            return Err(ValidateError::TooLong {
                words: self.words.len(),
            });
        }
        Ok(self.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;

    #[test]
    fn fig_3_8_has_paper_length() {
        // The paper's figure 3-8 declares "priority and length" = 10, 12.
        let f = samples::fig_3_8_pup_type_range();
        assert_eq!(f.priority(), 10);
        assert_eq!(f.len_words(), 12);
    }

    #[test]
    fn fig_3_9_has_paper_length() {
        // Figure 3-9 declares 10, 8.
        let f = samples::fig_3_9_pup_socket_35();
        assert_eq!(f.priority(), 10);
        assert_eq!(f.len_words(), 8);
    }

    #[test]
    fn disassemble_round_trip_fig_3_8() {
        let f = samples::fig_3_8_pup_type_range();
        let items = f.disassemble();
        // 10 instructions + 2 literals.
        assert_eq!(items.len(), 12);
        let lits: Vec<u16> = items
            .iter()
            .filter_map(|i| match i {
                DisasmItem::Literal(v) => Some(*v),
                _ => None,
            })
            .collect();
        assert_eq!(lits, vec![2, 100]);
        assert_eq!(f.len_instructions(), 10);
    }

    #[test]
    fn max_word_index() {
        let f = samples::fig_3_9_pup_socket_35();
        assert_eq!(f.max_word_index(), Some(8));
        let empty = FilterProgram::empty(0);
        assert_eq!(empty.max_word_index(), None);
        let no_pkt = Assembler::new(0)
            .pushzero()
            .pushone()
            .op(BinaryOp::And)
            .finish();
        assert_eq!(no_pkt.max_word_index(), None);
    }

    #[test]
    fn undecodable_words_are_reported() {
        // Operator code 14 is reserved.
        let f = FilterProgram::from_words(0, vec![14 << 6]);
        assert_eq!(f.disassemble(), vec![DisasmItem::Undecodable(14 << 6)]);
    }

    #[test]
    fn trailing_pushlit_without_literal() {
        let f = Assembler::new(0).push(StackAction::PushLit).finish();
        let items = f.disassemble();
        assert_eq!(items.len(), 1);
        assert!(matches!(items[0], DisasmItem::Instr(_)));
    }

    #[test]
    fn try_finish_rejects_overlong() {
        let mut a = Assembler::new(0);
        for _ in 0..(MAX_PROGRAM_WORDS + 1) {
            a = a.pushzero();
        }
        assert!(matches!(
            a.try_finish(),
            Err(ValidateError::TooLong { words }) if words == MAX_PROGRAM_WORDS + 1
        ));
    }

    #[test]
    fn display_contains_mnemonics() {
        let f = samples::fig_3_9_pup_socket_35();
        let s = f.to_string();
        assert!(s.contains("PUSHWORD+8"), "{s}");
        assert!(s.contains("CAND"), "{s}");
        assert!(s.contains("35"), "{s}");
    }

    #[test]
    fn with_priority_replaces() {
        let f = FilterProgram::empty(10).with_priority(99);
        assert_eq!(f.priority(), 99);
    }
}
