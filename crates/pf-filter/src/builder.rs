//! Predicate-expression builder: the paper's run-time "library procedure".
//!
//! "In normal use, the filters are not directly constructed by the
//! programmer, but are 'compiled' at run time by a library procedure"
//! (§3.1). [`Expr`] is that library procedure: a small predicate-expression
//! tree over packet words and constants that compiles to a
//! [`FilterProgram`], applying the short-circuit optimization of figure 3-9
//! automatically (leading equality conjuncts become `CAND` chains, leading
//! equality disjuncts become `COR` chains).
//!
//! Order your tests by selectivity, as §3.2 advises — "the DstSocket field
//! is checked before the packet type field, since in most packets the
//! DstSocket is likely not to match" — the compiler preserves conjunct
//! order.

use crate::error::ValidateError;
use crate::program::{FilterProgram, MAX_PROGRAM_WORDS};
use crate::validate::ValidatedProgram;
use crate::word::{BinaryOp, Instr, StackAction, MAX_PUSHWORD_INDEX};
use core::fmt;

/// An error constructing a filter program from an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A packet-word index exceeds `PUSHWORD`'s 6-bit field and the target
    /// dialect has no indirect push to reach it.
    WordIndexTooLarge {
        /// The offending word index.
        index: u16,
    },
    /// The expression requires an extended-dialect feature (arithmetic,
    /// indirect indexing) but the classic dialect was requested.
    NeedsExtendedDialect {
        /// Human-readable name of the feature.
        feature: &'static str,
    },
    /// The compiled program failed validation (e.g. exceeds
    /// [`MAX_PROGRAM_WORDS`] or the evaluation stack).
    Validate(ValidateError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::WordIndexTooLarge { index } => {
                write!(f, "packet word index {index} exceeds PUSHWORD range")
            }
            BuildError::NeedsExtendedDialect { feature } => {
                write!(f, "{feature} requires the extended dialect")
            }
            BuildError::Validate(e) => write!(f, "compiled program invalid: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<ValidateError> for BuildError {
    fn from(e: ValidateError) -> Self {
        BuildError::Validate(e)
    }
}

/// Arithmetic operators available in the extended dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division (rejects on zero divisor).
    Div,
    /// Remainder (rejects on zero divisor).
    Mod,
    /// Left shift by `rhs & 0xF`.
    Lsh,
    /// Right shift by `rhs & 0xF`.
    Rsh,
}

impl ArithOp {
    fn binary_op(self) -> BinaryOp {
        match self {
            ArithOp::Add => BinaryOp::Add,
            ArithOp::Sub => BinaryOp::Sub,
            ArithOp::Mul => BinaryOp::Mul,
            ArithOp::Div => BinaryOp::Div,
            ArithOp::Mod => BinaryOp::Mod,
            ArithOp::Lsh => BinaryOp::Lsh,
            ArithOp::Rsh => BinaryOp::Rsh,
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<` (unsigned)
    Lt,
    /// `<=` (unsigned)
    Le,
    /// `>` (unsigned)
    Gt,
    /// `>=` (unsigned)
    Ge,
}

impl CmpOp {
    fn binary_op(self) -> BinaryOp {
        match self {
            CmpOp::Eq => BinaryOp::Eq,
            CmpOp::Ne => BinaryOp::Neq,
            CmpOp::Lt => BinaryOp::Lt,
            CmpOp::Le => BinaryOp::Le,
            CmpOp::Gt => BinaryOp::Gt,
            CmpOp::Ge => BinaryOp::Ge,
        }
    }
}

/// A predicate or value expression over a received packet.
///
/// Value expressions produce 16-bit words (packet words, constants, masks,
/// arithmetic); predicate expressions produce booleans (comparisons,
/// conjunction, disjunction, negation). The distinction is by convention —
/// the filter language itself has a single word type, and any non-zero
/// final value accepts.
///
/// # Examples
///
/// Figure 3-8 as an expression:
///
/// ```
/// use pf_filter::builder::Expr;
///
/// let pup_type = Expr::word(3).mask(0x00FF);
/// let filter = Expr::word(1).eq(2)
///     .and(pup_type.clone().gt(0))
///     .and(pup_type.le(100))
///     .compile(10)
///     .unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// The `n`th 16-bit word of the packet.
    Word(u16),
    /// A literal constant.
    Lit(u16),
    /// The packet word whose index is the value of the inner expression
    /// (extended dialect: `PUSHIND`).
    WordAt(Box<Expr>),
    /// Bitwise AND of two values.
    BitAnd(Box<Expr>, Box<Expr>),
    /// Bitwise OR of two values.
    BitOr(Box<Expr>, Box<Expr>),
    /// Bitwise XOR of two values.
    BitXor(Box<Expr>, Box<Expr>),
    /// Arithmetic on two values (extended dialect).
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Comparison of two values, producing a boolean.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical conjunction of two predicates.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction of two predicates.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation (`e == 0`).
    Not(Box<Expr>),
}

impl From<u16> for Expr {
    fn from(v: u16) -> Self {
        Expr::Lit(v)
    }
}

impl Expr {
    /// The `n`th 16-bit word of the packet.
    pub fn word(n: u16) -> Expr {
        Expr::Word(n)
    }

    /// A literal constant.
    pub fn lit(v: u16) -> Expr {
        Expr::Lit(v)
    }

    /// The packet word indexed by this expression's value (extended).
    pub fn word_at(index: Expr) -> Expr {
        Expr::WordAt(Box::new(index))
    }

    /// Bitwise-AND with a mask (the figure 3-8 field-extraction idiom).
    pub fn mask(self, m: u16) -> Expr {
        Expr::BitAnd(Box::new(self), Box::new(Expr::Lit(m)))
    }

    /// `self == rhs`.
    pub fn eq(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(rhs.into()))
    }

    /// `self != rhs`.
    pub fn ne(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(rhs.into()))
    }

    /// `self < rhs`, unsigned.
    pub fn lt(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(rhs.into()))
    }

    /// `self <= rhs`, unsigned.
    pub fn le(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(rhs.into()))
    }

    /// `self > rhs`, unsigned.
    pub fn gt(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(rhs.into()))
    }

    /// `self >= rhs`, unsigned.
    pub fn ge(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(rhs.into()))
    }

    /// Logical conjunction.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }

    /// Logical disjunction.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }

    /// Logical negation.
    // Deliberately named like the operator it mirrors; `Expr` does not
    // implement the `Not`/`BitAnd`/`BitOr` traits because the DSL methods
    // take `impl Into<Expr>` and build predicate trees, not values.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Bitwise AND of two values.
    #[allow(clippy::should_implement_trait)]
    pub fn bitand(self, rhs: impl Into<Expr>) -> Expr {
        Expr::BitAnd(Box::new(self), Box::new(rhs.into()))
    }

    /// Bitwise OR of two values.
    #[allow(clippy::should_implement_trait)]
    pub fn bitor(self, rhs: impl Into<Expr>) -> Expr {
        Expr::BitOr(Box::new(self), Box::new(rhs.into()))
    }

    /// Arithmetic (extended dialect).
    pub fn arith(self, op: ArithOp, rhs: impl Into<Expr>) -> Expr {
        Expr::Arith(op, Box::new(self), Box::new(rhs.into()))
    }

    /// Compiles to a classic-dialect program with short-circuit
    /// optimization enabled.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] if the expression needs extended features,
    /// a word index is out of `PUSHWORD` range, or the result fails
    /// validation.
    pub fn compile(&self, priority: u8) -> Result<FilterProgram, BuildError> {
        self.compile_with(priority, &CompileOptions::default())
    }

    /// Compiles for the extended dialect (arithmetic and indirect pushes
    /// allowed; word indexes above 47 lowered to `PUSHLIT; PUSHIND`).
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] if compilation or validation fails.
    pub fn compile_extended(&self, priority: u8) -> Result<FilterProgram, BuildError> {
        self.compile_with(
            priority,
            &CompileOptions {
                extended: true,
                ..Default::default()
            },
        )
    }

    /// Compiles with explicit options.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] if compilation or validation fails.
    pub fn compile_with(
        &self,
        priority: u8,
        opts: &CompileOptions,
    ) -> Result<FilterProgram, BuildError> {
        let mut c = Compiler {
            words: Vec::new(),
            opts,
        };
        c.emit_top(self)?;
        if c.words.len() > MAX_PROGRAM_WORDS {
            return Err(BuildError::Validate(ValidateError::TooLong {
                words: c.words.len(),
            }));
        }
        let program = FilterProgram::from_words(priority, c.words);
        // Re-validate under the target dialect to catch stack-depth issues.
        let cfg = if opts.extended {
            crate::interp::InterpConfig {
                dialect: crate::interp::Dialect::Extended,
                ..Default::default()
            }
        } else {
            crate::interp::InterpConfig::default()
        };
        ValidatedProgram::with_config(program.clone(), cfg)?;
        Ok(program)
    }
}

/// Options controlling expression compilation.
#[derive(Debug, Clone, Default)]
pub struct CompileOptions {
    /// Target the extended (§7) dialect.
    pub extended: bool,
    /// Disable the `CAND`/`COR` short-circuit optimization (for ablation;
    /// the output then uses only plain `AND`/`OR`/`EQ` combinations).
    pub no_short_circuit: bool,
}

struct Compiler<'a> {
    words: Vec<u16>,
    opts: &'a CompileOptions,
}

impl Compiler<'_> {
    /// Emits the whole predicate; top level gets short-circuit treatment.
    fn emit_top(&mut self, e: &Expr) -> Result<(), BuildError> {
        if self.opts.no_short_circuit {
            return self.emit_value(e);
        }
        match e {
            Expr::And(..) => {
                let mut conjuncts = Vec::new();
                flatten(e, &mut conjuncts, true);
                // The *leading run* of equality conjuncts becomes a CAND
                // chain (figure 3-9's shape); operand order is preserved, so
                // callers control selectivity ordering (§3.2). Only the
                // leading run is converted: a CAND after a plain conjunct
                // would orphan the value that conjunct left on the stack.
                let last = conjuncts.len() - 1;
                let leading = count_leading_eqs(&conjuncts[..last]);
                for c in &conjuncts[..leading] {
                    let Expr::Cmp(CmpOp::Eq, a, b) = c else {
                        unreachable!()
                    };
                    self.emit_value(a)?;
                    self.emit_with_op(b, BinaryOp::Cand)?;
                }
                for c in &conjuncts[leading..] {
                    self.emit_value(c)?;
                }
                // Combine the plain (non-CAND) conjuncts. Any TRUE words the
                // continuing CANDs pushed sit harmlessly below the result —
                // the verdict is the top of stack.
                let plain = conjuncts.len() - leading;
                for _ in 0..plain.saturating_sub(1) {
                    self.push_instr(Instr::op(BinaryOp::And));
                }
                Ok(())
            }
            Expr::Or(..) => {
                let mut disjuncts = Vec::new();
                flatten(e, &mut disjuncts, false);
                // Dual of the And case: leading equality disjuncts become a
                // COR chain that accepts immediately on match.
                let last = disjuncts.len() - 1;
                let leading = count_leading_eqs(&disjuncts[..last]);
                for d in &disjuncts[..leading] {
                    let Expr::Cmp(CmpOp::Eq, a, b) = d else {
                        unreachable!()
                    };
                    self.emit_value(a)?;
                    self.emit_with_op(b, BinaryOp::Cor)?;
                }
                for d in &disjuncts[leading..] {
                    self.emit_value(d)?;
                }
                let plain = disjuncts.len() - leading;
                for _ in 0..plain.saturating_sub(1) {
                    self.push_instr(Instr::op(BinaryOp::Or));
                }
                Ok(())
            }
            other => self.emit_value(other),
        }
    }

    /// Emits code leaving the expression's value on top of the stack.
    fn emit_value(&mut self, e: &Expr) -> Result<(), BuildError> {
        match e {
            Expr::Word(_) | Expr::Lit(_) | Expr::WordAt(_) => self.emit_push(e),
            Expr::BitAnd(a, b) => self.emit_binary(a, b, BinaryOp::And),
            Expr::BitOr(a, b) => self.emit_binary(a, b, BinaryOp::Or),
            Expr::BitXor(a, b) => self.emit_binary(a, b, BinaryOp::Xor),
            Expr::Arith(op, a, b) => {
                if !self.opts.extended {
                    return Err(BuildError::NeedsExtendedDialect {
                        feature: "arithmetic operator",
                    });
                }
                self.emit_binary(a, b, op.binary_op())
            }
            Expr::Cmp(op, a, b) => self.emit_binary(a, b, op.binary_op()),
            Expr::And(a, b) => self.emit_binary(a, b, BinaryOp::And),
            Expr::Or(a, b) => self.emit_binary(a, b, BinaryOp::Or),
            Expr::Not(a) => {
                // NOT e == (e == 0).
                self.emit_value(a)?;
                self.push_instr(Instr::new(StackAction::PushZero, BinaryOp::Eq));
                Ok(())
            }
        }
    }

    /// Emits `a`, then `b` with `op` folded into `b`'s final push when
    /// possible, else a bare operator instruction.
    fn emit_binary(&mut self, a: &Expr, b: &Expr, op: BinaryOp) -> Result<(), BuildError> {
        self.emit_value(a)?;
        self.emit_with_op(b, op)
    }

    /// Emits `e` and applies `op` afterwards, folding `op` into the final
    /// instruction when that instruction carries no operator.
    fn emit_with_op(&mut self, e: &Expr, op: BinaryOp) -> Result<(), BuildError> {
        let before = self.words.len();
        self.emit_value(e)?;
        // Fold: the last emitted instruction must be a plain push (NOP op)
        // and not a literal word. Track by re-scanning from `before`: we
        // only fold when `e` compiled to a single push (possibly + literal).
        if let Some(folded) = self.try_fold(before, op) {
            self.words[folded] = {
                let instr = Instr::decode(self.words[folded]).expect("just emitted");
                Instr::new(instr.action, op).encode()
            };
        } else {
            self.push_instr(Instr::op(op));
        }
        Ok(())
    }

    /// Returns the index of the instruction word to fold `op` into, if the
    /// code emitted since `before` is a single operator-free push.
    fn try_fold(&self, before: usize, _op: BinaryOp) -> Option<usize> {
        let emitted = &self.words[before..];
        let first = Instr::decode(*emitted.first()?)?;
        let expect_len = if first.takes_literal() { 2 } else { 1 };
        if emitted.len() != expect_len {
            return None;
        }
        (first.op == BinaryOp::Nop && first.action.pushes()).then_some(before)
    }

    fn emit_push(&mut self, e: &Expr) -> Result<(), BuildError> {
        match e {
            Expr::Word(n) => {
                if *n <= MAX_PUSHWORD_INDEX {
                    self.push_instr(Instr::push(StackAction::PushWord(*n as u8)));
                } else if self.opts.extended {
                    // Lower to PUSHLIT index; PUSHIND.
                    self.push_instr(Instr::push(StackAction::PushLit));
                    self.words.push(*n);
                    self.push_instr(Instr::push(StackAction::PushInd));
                } else {
                    return Err(BuildError::WordIndexTooLarge { index: *n });
                }
                Ok(())
            }
            Expr::Lit(v) => {
                let action = match v {
                    0 => StackAction::PushZero,
                    1 => StackAction::PushOne,
                    0xFFFF => StackAction::PushFFFF,
                    0xFF00 => StackAction::PushFF00,
                    0x00FF => StackAction::Push00FF,
                    _ => {
                        self.push_instr(Instr::push(StackAction::PushLit));
                        self.words.push(*v);
                        return Ok(());
                    }
                };
                self.push_instr(Instr::push(action));
                Ok(())
            }
            Expr::WordAt(idx) => {
                if !self.opts.extended {
                    return Err(BuildError::NeedsExtendedDialect {
                        feature: "indirect packet indexing",
                    });
                }
                self.emit_value(idx)?;
                self.push_instr(Instr::push(StackAction::PushInd));
                Ok(())
            }
            _ => unreachable!("emit_push called on non-push expression"),
        }
    }

    fn push_instr(&mut self, i: Instr) {
        self.words.push(i.encode());
    }
}

/// Counts the leading operands that are equality comparisons.
fn count_leading_eqs(operands: &[Expr]) -> usize {
    operands
        .iter()
        .take_while(|c| matches!(c, Expr::Cmp(CmpOp::Eq, _, _)))
        .count()
}

/// Flattens nested `And`/`Or` chains into an ordered operand list.
fn flatten(e: &Expr, out: &mut Vec<Expr>, conj: bool) {
    match (e, conj) {
        (Expr::And(a, b), true) => {
            flatten(a, out, true);
            flatten(b, out, true);
        }
        (Expr::Or(a, b), false) => {
            flatten(a, out, false);
            flatten(b, out, false);
        }
        _ => out.push(e.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::CheckedInterpreter;
    use crate::packet::PacketView;
    use crate::samples;
    use crate::word::StackAction;

    fn accepts(prog: &FilterProgram, pkt: &[u8]) -> bool {
        CheckedInterpreter::default().eval(prog, PacketView::new(pkt))
    }

    fn accepts_ext(prog: &FilterProgram, pkt: &[u8]) -> bool {
        CheckedInterpreter::extended().eval(prog, PacketView::new(pkt))
    }

    #[test]
    fn simple_equality() {
        let f = Expr::word(1).eq(2).compile(10).unwrap();
        assert!(accepts(&f, &samples::pup_packet_3mb(2, 0, 35, 1)));
        assert!(!accepts(&f, &samples::pup_packet_3mb(3, 0, 35, 1)));
    }

    #[test]
    fn fig_3_8_equivalent_expression() {
        let pup_type = Expr::word(3).mask(0x00FF);
        let f = Expr::word(1)
            .eq(2)
            .and(pup_type.clone().gt(0))
            .and(pup_type.le(100))
            .compile(10)
            .unwrap();
        let reference = samples::fig_3_8_pup_type_range();
        for ethertype in [2u16, 3] {
            for ptype in [0u8, 1, 50, 100, 101] {
                let pkt = samples::pup_packet_3mb(ethertype, 0, 35, ptype);
                assert_eq!(
                    accepts(&f, &pkt),
                    accepts(&reference, &pkt),
                    "ethertype={ethertype} ptype={ptype}"
                );
            }
        }
    }

    #[test]
    fn fig_3_9_equivalent_expression_uses_cand() {
        let f = Expr::word(8)
            .eq(35)
            .and(Expr::word(7).eq(0))
            .and(Expr::word(1).eq(2))
            .compile(10)
            .unwrap();
        // Leading equality conjuncts must compile to CANDs.
        let has_cand = f
            .disassemble()
            .iter()
            .any(|i| matches!(i, crate::program::DisasmItem::Instr(x) if x.op == BinaryOp::Cand));
        assert!(has_cand, "{f}");
        let reference = samples::fig_3_9_pup_socket_35();
        for (et, hi, lo) in [(2u16, 0u16, 35u16), (2, 0, 36), (2, 1, 35), (3, 0, 35)] {
            let pkt = samples::pup_packet_3mb(et, hi, lo, 1);
            assert_eq!(accepts(&f, &pkt), accepts(&reference, &pkt));
        }
    }

    #[test]
    fn short_circuit_can_be_disabled() {
        let opts = CompileOptions {
            no_short_circuit: true,
            ..Default::default()
        };
        let f = Expr::word(8)
            .eq(35)
            .and(Expr::word(1).eq(2))
            .compile_with(10, &opts)
            .unwrap();
        let any_sc = f
            .disassemble()
            .iter()
            .any(|i| matches!(i, crate::program::DisasmItem::Instr(x) if x.op.is_short_circuit()));
        assert!(!any_sc, "{f}");
        assert!(accepts(&f, &samples::pup_packet_3mb(2, 0, 35, 1)));
        assert!(!accepts(&f, &samples::pup_packet_3mb(2, 0, 36, 1)));
    }

    #[test]
    fn or_chain_uses_cor() {
        let f = Expr::word(1)
            .eq(2)
            .or(Expr::word(1).eq(6))
            .or(Expr::word(1).eq(8))
            .compile(10)
            .unwrap();
        let has_cor = f
            .disassemble()
            .iter()
            .any(|i| matches!(i, crate::program::DisasmItem::Instr(x) if x.op == BinaryOp::Cor));
        assert!(has_cor, "{f}");
        for (et, expect) in [(2u16, true), (6, true), (8, true), (7, false)] {
            let pkt = samples::pup_packet_3mb(et, 0, 35, 1);
            assert_eq!(accepts(&f, &pkt), expect, "ethertype {et}");
        }
    }

    #[test]
    fn mixed_and_or() {
        // (type == 2 || type == 6) && socket_lo == 35
        let f = Expr::word(1)
            .eq(2)
            .or(Expr::word(1).eq(6))
            .and(Expr::word(8).eq(35))
            .compile(10)
            .unwrap();
        assert!(accepts(&f, &samples::pup_packet_3mb(2, 0, 35, 1)));
        assert!(accepts(&f, &samples::pup_packet_3mb(6, 0, 35, 1)));
        assert!(!accepts(&f, &samples::pup_packet_3mb(7, 0, 35, 1)));
        assert!(!accepts(&f, &samples::pup_packet_3mb(2, 0, 36, 1)));
    }

    #[test]
    fn non_eq_conjunct_before_eq_is_preserved() {
        // A non-equality first conjunct must not be orphaned on the stack
        // when later equality conjuncts could short-circuit.
        let f = Expr::word(3)
            .mask(0xFF)
            .gt(50)
            .and(Expr::word(1).eq(2))
            .and(Expr::word(8).eq(35))
            .compile(10)
            .unwrap();
        // gt fails, eqs hold: must reject.
        assert!(!accepts(&f, &samples::pup_packet_3mb(2, 0, 35, 10)));
        // all hold: accept.
        assert!(accepts(&f, &samples::pup_packet_3mb(2, 0, 35, 60)));
        // gt holds, eq fails: reject.
        assert!(!accepts(&f, &samples::pup_packet_3mb(3, 0, 35, 60)));
    }

    #[test]
    fn not_compiles_to_eq_zero() {
        let f = Expr::word(1).eq(2).not().compile(10).unwrap();
        assert!(!accepts(&f, &samples::pup_packet_3mb(2, 0, 35, 1)));
        assert!(accepts(&f, &samples::pup_packet_3mb(3, 0, 35, 1)));
    }

    #[test]
    fn named_constants_are_used() {
        let f = Expr::word(0).mask(0x00FF).eq(0).compile(10).unwrap();
        let uses_00ff = f.disassemble().iter().any(|i| {
            matches!(i, crate::program::DisasmItem::Instr(x) if x.action == StackAction::Push00FF)
        });
        assert!(uses_00ff, "{f}");
    }

    #[test]
    fn comparisons_fold_into_literal_push() {
        // word(0) <= 100 should be 3 words: PUSHWORD, PUSHLIT|LE, 100.
        let f = Expr::word(0).le(100).compile(0).unwrap();
        assert_eq!(f.len_words(), 3, "{f}");
    }

    #[test]
    fn classic_rejects_arithmetic_and_big_indexes() {
        let e = Expr::word(0).arith(ArithOp::Add, 1).eq(5);
        assert!(matches!(
            e.compile(0),
            Err(BuildError::NeedsExtendedDialect { .. })
        ));
        assert!(matches!(
            Expr::word(100).eq(1).compile(0),
            Err(BuildError::WordIndexTooLarge { index: 100 })
        ));
    }

    #[test]
    fn extended_arithmetic_works() {
        let f = Expr::word(0)
            .arith(ArithOp::Add, 1)
            .eq(0x1235)
            .compile_extended(0)
            .unwrap();
        assert!(accepts_ext(&f, &[0x12, 0x34]));
        assert!(!accepts_ext(&f, &[0x12, 0x35]));
    }

    #[test]
    fn extended_big_word_index_lowers_to_pushind() {
        let f = Expr::word(100).eq(0xCAFE).compile_extended(0).unwrap();
        let mut pkt = vec![0u8; 202];
        pkt[200] = 0xCA;
        pkt[201] = 0xFE;
        assert!(accepts_ext(&f, &pkt));
        pkt[201] = 0xFF;
        assert!(!accepts_ext(&f, &pkt));
    }

    #[test]
    fn indirect_expression() {
        // word[word[0]] == 0xCAFE — the §7 variable-offset-header use case.
        let f = Expr::word_at(Expr::word(0))
            .eq(0xCAFE)
            .compile_extended(0)
            .unwrap();
        assert!(accepts_ext(&f, &[0x00, 0x02, 0x00, 0x00, 0xCA, 0xFE]));
        assert!(!accepts_ext(&f, &[0x00, 0x01, 0x00, 0x00, 0xCA, 0xFE]));
    }

    #[test]
    fn compiled_programs_validate() {
        let exprs = [
            Expr::word(1).eq(2),
            Expr::word(8)
                .eq(35)
                .and(Expr::word(7).eq(0))
                .and(Expr::word(1).eq(2)),
            Expr::word(3)
                .mask(0xFF)
                .gt(0)
                .and(Expr::word(3).mask(0xFF).le(100)),
            Expr::word(1).eq(2).or(Expr::word(1).eq(6)),
            Expr::word(1).eq(2).not(),
        ];
        for e in exprs {
            let p = e.compile(10).expect("compiles");
            ValidatedProgram::new(p).expect("validates");
        }
    }
}
