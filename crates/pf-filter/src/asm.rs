//! A textual assembler for filter programs.
//!
//! Parses the mnemonic syntax the paper's figures (and this crate's
//! `Display` impl) use, so filters can be written in config files, fed to
//! monitoring tools, or round-tripped through text:
//!
//! ```text
//! PUSHWORD+8, PUSHLIT|CAND, 35,
//! PUSHWORD+7, PUSHZERO|CAND,
//! PUSHWORD+1, PUSHLIT|EQ, 2
//! ```
//!
//! Commas and newlines both separate items; `#` and `/* … */`-free `//`
//! comments run to end of line; literals may be decimal or `0x…` hex.

use crate::program::FilterProgram;
use crate::word::{BinaryOp, Instr, StackAction, MAX_PUSHWORD_INDEX};

/// A parse error with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_action(tok: &str, line: usize) -> Result<StackAction, ParseError> {
    let t = tok.to_ascii_uppercase();
    if let Some(n) = t.strip_prefix("PUSHWORD+") {
        let n: u16 = n
            .parse()
            .map_err(|_| err(line, format!("bad PUSHWORD index `{n}`")))?;
        if n > MAX_PUSHWORD_INDEX {
            return Err(err(
                line,
                format!("PUSHWORD index {n} exceeds {MAX_PUSHWORD_INDEX}"),
            ));
        }
        return Ok(StackAction::PushWord(n as u8));
    }
    Ok(match t.as_str() {
        "NOPUSH" => StackAction::NoPush,
        "PUSHLIT" => StackAction::PushLit,
        "PUSHZERO" => StackAction::PushZero,
        "PUSHONE" => StackAction::PushOne,
        "PUSHFFFF" => StackAction::PushFFFF,
        "PUSHFF00" => StackAction::PushFF00,
        "PUSH00FF" => StackAction::Push00FF,
        "PUSHIND" => StackAction::PushInd,
        other => return Err(err(line, format!("unknown stack action `{other}`"))),
    })
}

fn parse_op(tok: &str, line: usize) -> Result<BinaryOp, ParseError> {
    Ok(match tok.to_ascii_uppercase().as_str() {
        "NOP" => BinaryOp::Nop,
        "EQ" => BinaryOp::Eq,
        "NEQ" => BinaryOp::Neq,
        "LT" => BinaryOp::Lt,
        "LE" => BinaryOp::Le,
        "GT" => BinaryOp::Gt,
        "GE" => BinaryOp::Ge,
        "AND" => BinaryOp::And,
        "OR" => BinaryOp::Or,
        "XOR" => BinaryOp::Xor,
        "COR" => BinaryOp::Cor,
        "CAND" => BinaryOp::Cand,
        "CNOR" => BinaryOp::Cnor,
        "CNAND" => BinaryOp::Cnand,
        "ADD" => BinaryOp::Add,
        "SUB" => BinaryOp::Sub,
        "MUL" => BinaryOp::Mul,
        "DIV" => BinaryOp::Div,
        "MOD" => BinaryOp::Mod,
        "LSH" => BinaryOp::Lsh,
        "RSH" => BinaryOp::Rsh,
        other => return Err(err(line, format!("unknown operator `{other}`"))),
    })
}

fn parse_literal(tok: &str, line: usize) -> Result<u16, ParseError> {
    let v = if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        u16::from_str_radix(hex, 16)
    } else {
        tok.parse()
    };
    v.map_err(|_| err(line, format!("bad literal `{tok}`")))
}

/// Parses a filter program from mnemonic text.
///
/// # Errors
///
/// Returns a [`ParseError`] pointing at the offending line.
///
/// # Examples
///
/// ```
/// use pf_filter::asm::parse;
/// use pf_filter::samples;
///
/// let program = parse(10, "
///     // figure 3-9: Pups for socket 35, socket tested first
///     PUSHWORD+8, PUSHLIT|CAND, 35,
///     PUSHWORD+7, PUSHZERO|CAND,
///     PUSHWORD+1, PUSHLIT|EQ, 2
/// ").unwrap();
/// assert_eq!(program.words(), samples::fig_3_9_pup_socket_35().words());
/// ```
pub fn parse(priority: u8, text: &str) -> Result<FilterProgram, ParseError> {
    let mut words = Vec::new();
    let mut expect_literal_from: Option<usize> = None;
    for (lineno, raw_line) in text.lines().enumerate() {
        let line = lineno + 1;
        let code = raw_line
            .split_once('#')
            .map_or(raw_line, |(c, _)| c)
            .split_once("//")
            .map_or_else(
                || raw_line.split_once('#').map_or(raw_line, |(c, _)| c),
                |(c, _)| c,
            );
        for tok in code.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            if expect_literal_from.is_some() {
                words.push(parse_literal(tok, line)?);
                expect_literal_from = None;
                continue;
            }
            // `ACTION|OP`, bare ACTION, or bare OP. Tokens shaped like a
            // stack action are parsed as one so their specific errors
            // (e.g. an out-of-range PUSHWORD index) surface.
            let instr = if let Some((a, o)) = tok.split_once('|') {
                Instr::new(parse_action(a.trim(), line)?, parse_op(o.trim(), line)?)
            } else if tok.to_ascii_uppercase().starts_with("PUSH")
                || tok.eq_ignore_ascii_case("NOPUSH")
            {
                Instr::push(parse_action(tok, line)?)
            } else {
                Instr::op(parse_op(tok, line)?)
            };
            words.push(instr.encode());
            if instr.takes_literal() {
                expect_literal_from = Some(line);
            }
        }
    }
    if let Some(line) = expect_literal_from {
        return Err(err(line, "PUSHLIT missing its literal"));
    }
    Ok(FilterProgram::from_words(priority, words))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;

    #[test]
    fn parses_fig_3_8() {
        let p = parse(
            10,
            "PUSHWORD+1, PUSHLIT|EQ, 2,
             PUSHWORD+3, PUSH00FF|AND,
             PUSHZERO|GT,
             PUSHWORD+3, PUSH00FF|AND,
             PUSHLIT|LE, 100,
             AND,
             AND",
        )
        .unwrap();
        assert_eq!(p.words(), samples::fig_3_8_pup_type_range().words());
    }

    #[test]
    fn display_round_trips_through_parse() {
        for native in [
            samples::fig_3_8_pup_type_range(),
            samples::fig_3_9_pup_socket_35(),
            samples::ethertype_filter(7, 0x800),
        ] {
            // Display prints one item per line with offsets; strip them.
            let text: String = native
                .to_string()
                .lines()
                .skip(1) // header
                .map(|l| l.split_once(']').map(|x| x.1).unwrap_or("").trim())
                .collect::<Vec<_>>()
                .join(",\n");
            let parsed = parse(native.priority(), &text).unwrap();
            assert_eq!(parsed.words(), native.words(), "from text:\n{text}");
        }
    }

    #[test]
    fn comments_and_hex() {
        let p = parse(
            0,
            "# leading comment
             PUSHWORD+0, PUSHLIT|EQ, 0xCAFE  # trailing comment
             // a C++-style comment line
            ",
        )
        .unwrap();
        assert_eq!(p.len_words(), 3);
        assert_eq!(p.words()[2], 0xCAFE);
    }

    #[test]
    fn case_insensitive() {
        let a = parse(0, "pushword+1, pushlit|eq, 2").unwrap();
        let b = parse(0, "PUSHWORD+1, PUSHLIT|EQ, 2").unwrap();
        assert_eq!(a.words(), b.words());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse(0, "PUSHONE,\nBOGUS").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("BOGUS"));
        let e = parse(0, "PUSHWORD+99").unwrap_err();
        assert!(e.message.contains("exceeds"));
        let e = parse(0, "PUSHLIT|EQ").unwrap_err();
        assert!(e.message.contains("missing its literal"));
        let e = parse(0, "PUSHLIT|EQ, zebra").unwrap_err();
        assert!(e.message.contains("zebra"));
    }

    #[test]
    fn extended_mnemonics_parse() {
        let p = parse(0, "PUSHWORD+0, PUSHIND, PUSHLIT|ADD, 4").unwrap();
        assert_eq!(p.len_instructions(), 3);
    }
}
